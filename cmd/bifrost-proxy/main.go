// Command bifrost-proxy runs one Bifrost proxy: the per-service routing
// component that live testing strategies reconfigure.
//
// Usage:
//
//	bifrost-proxy -service product -listen 127.0.0.1:8081 \
//	    -backend product=http://127.0.0.1:9001 \
//	    -backend productA=http://127.0.0.1:9002
//
// All traffic received on -listen is routed between the configured version
// backends; the engine updates the configuration at runtime through the
// admin API under /_bifrost/.
//
// With -federate the proxy also runs a metrics federation agent: upstream
// latency samples feed per-window mergeable quantile sketches that are
// shipped as idempotent deltas to a bifrost-metrics store
// (/api/v1/federate), alongside the registry's counters. -replica names
// this proxy's series in the fleet (defaults to the hostname).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
	"bifrost/internal/metrics/federation"
	"bifrost/internal/proxy"
)

type backendFlags []proxy.Backend

func (b *backendFlags) String() string { return fmt.Sprint(*b) }

func (b *backendFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("backend %q: want name=url", v)
	}
	weight := 0.0
	if len(*b) == 0 {
		weight = 1 // first backend starts with all traffic
	}
	*b = append(*b, proxy.Backend{Version: name, URL: url, Weight: weight})
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	service := flag.String("service", "", "service this proxy fronts (required)")
	listen := flag.String("listen", "127.0.0.1:8081", "address to serve traffic on")
	stickyCap := flag.Int("sticky-capacity", proxy.DefaultStickyCapacity,
		"max pinned sticky assignments before clock eviction (evictions surface on proxy_sticky_evictions_total)")
	federate := flag.String("federate", "",
		"bifrost-metrics base URL to ship metric deltas to (enables the federation agent)")
	replica := flag.String("replica", "",
		"replica name for federated series (default: hostname)")
	shipInterval := flag.Duration("ship-interval", 2*time.Second,
		"how often the federation agent ships closed buckets")
	var backends backendFlags
	flag.Var(&backends, "backend", "version backend as name=url (repeatable; first gets 100% until configured)")
	flag.Parse()

	if *service == "" {
		return fmt.Errorf("missing -service")
	}
	cfg := proxy.Config{Service: *service, Generation: 0}
	cfg.Backends = backends

	opts := []proxy.Option{proxy.WithStickyCapacity(*stickyCap)}
	var agent *federation.Agent
	if *federate != "" {
		name := *replica
		if name == "" {
			host, err := os.Hostname()
			if err != nil {
				return fmt.Errorf("-replica not set and hostname unavailable: %v", err)
			}
			name = host
		}
		// The proxy and the agent share one registry: the agent gathers the
		// proxy's counters (requests, errors) each flush, while raw latency
		// samples flow into its sketches through the observer hook.
		reg := metrics.NewRegistry()
		sink := federation.HTTPSink{Client: metrics.Client{BaseURL: *federate}}
		agent = federation.New(name, sink,
			federation.WithShipInterval(*shipInterval),
			federation.WithRegistry(reg))
		opts = append(opts,
			proxy.WithRegistry(reg),
			proxy.WithLatencyObserver(agent.Observe))
		log.Printf("federation agent %q shipping to %s every %v", name, *federate, *shipInterval)
	}

	p, err := proxy.New(*service, cfg, opts...)
	if err != nil {
		return err
	}
	defer p.Close()

	if agent != nil {
		agent.Start()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			agent.Stop(ctx)
		}()
	}

	srv, err := httpx.NewServer(*listen, p)
	if err != nil {
		return err
	}
	srv.Start()
	log.Printf("bifrost-proxy for %q listening on %s (admin under /_bifrost/)", *service, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
