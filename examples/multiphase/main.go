// The full evaluation scenario (§5.1) in miniature: deploy the seven-service
// case-study shop, put Bifrost proxies in front of product and search, and
// enact the four-phase release strategy — canary launch of product A and B,
// dark launch at 100% duplication, a sticky A/B test on sales, and a
// gradual rollout of the winner — under live load.
//
//	go run ./examples/multiphase
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bifrost/internal/engine"
	"bifrost/internal/experiments"
	"bifrost/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{
		WithProxies: true,
		Products:    30,
		Users:       15,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	fmt.Printf("case-study shop deployed; gateway at %s\n", tb.Gateway.URL())

	plan := experiments.QuickPhases()
	strategy, err := experiments.CompileReleaseStrategy("product-release", tb, plan)
	if err != nil {
		return err
	}
	fmt.Printf("compiled strategy: %d automaton states, total planned duration %v\n",
		len(strategy.Automaton.States), plan.Total())

	// Follow engine events live while load runs.
	events, cancelEvents := tb.Engine.Subscribe(512)
	defer cancelEvents()
	go func() {
		for ev := range events {
			switch ev.Type {
			case engine.EventStateEntered, engine.EventTransition,
				engine.EventExceptionTriggered, engine.EventCompleted:
				fmt.Printf("  [engine] %-16s %s %s\n", ev.Type, ev.State, ev.Detail)
			}
		}
	}()

	run, err := tb.Engine.Enact(strategy)
	if err != nil {
		return err
	}

	fmt.Println("driving 35 req/s of Buy/Details/Products/Search traffic…")
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:    tb.Gateway.URL(),
		RPS:        35,
		Duration:   plan.Total() + time.Second,
		Users:      15,
		ProductIDs: tb.ProductIDs,
		Seed:       99,
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = run.Wait(ctx)
	status := run.Status()

	fmt.Printf("\nstrategy %s: %s in %d transitions (enactment delay %v)\n",
		status.Strategy, status.State, len(status.Path),
		status.Delay().Round(time.Millisecond))
	for _, tr := range status.Path {
		fmt.Printf("  %s → %s (outcome %d)\n", tr.From, tr.To, tr.Outcome)
	}

	st := loadgen.StatsOf(res.Samples)
	fmt.Printf("\nload test: %d requests, %d errors\n", st.Count, st.Errors)
	fmt.Printf("response time ms: mean=%.2f median=%.2f sd=%.2f\n",
		st.Mean, st.Median, st.SD)

	// Business metrics collected by the monitoring substrate.
	tb.Scraper.ScrapeOnce(context.Background())
	for _, version := range []string{"productA", "productB"} {
		sales, qerr := tb.MetricsStore.QueryNow(
			fmt.Sprintf(`shop_sales_total{version=%q}`, version))
		if qerr == nil {
			fmt.Printf("sales via %s: %.0f\n", version, sales)
		}
	}
	return nil
}
