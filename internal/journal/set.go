// Per-run journal partitions. A Set manages a root directory holding one
// independent journal per run under runs/<encoded-name>/ — each partition
// has its own lock (or fence), segments, and snapshot compaction, so N
// engine replicas can own disjoint shards of runs over one shared
// directory, and a run's history can be replayed or deleted without
// touching any other run's.
//
// Layout under the root:
//
//	runs/<enc(run)>/seg-NNNNNNNN.wal     per-run segments
//	runs/<enc(run)>/snap-<seq>.json      per-run snapshot
//	runs/<enc(run)>/fence, fence.lock    fencing-token ownership (HA mode)
//	legacy/                              pre-partition files, kept after migration
//
// OpenSet transparently migrates the legacy single-directory layout (every
// run's records interleaved in one segment sequence): records are split
// byte-exactly by run into per-run partitions, heartbeat records (which
// carry no run) are duplicated into every partition that needs a crash-time
// estimate, and the caller-supplied SplitSnapshot breaks the engine-wide
// snapshot into per-run snapshots at the same covered sequence.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

const (
	runsDir   = "runs"
	legacyDir = "legacy"
)

// SplitSnapshot breaks a legacy engine-wide snapshot payload into one
// payload per run. The journal treats snapshot payloads as opaque, so the
// schema knowledge lives with the caller (the engine's mirror).
type SplitSnapshot func(snapshot []byte) (map[string][]byte, error)

// SetOptions tune a partition set.
type SetOptions struct {
	// Journal holds the per-partition options. FencingToken is ignored
	// here — it is supplied per partition via Set.Partition.
	Journal Options
	// SplitSnapshot is required to migrate a legacy snapshot; without it a
	// legacy directory containing a snapshot fails to migrate (records-only
	// legacy directories still migrate fine).
	SplitSnapshot SplitSnapshot
}

// Set is an open collection of per-run journal partitions. All methods are
// safe for concurrent use.
type Set struct {
	root string
	opts SetOptions

	mu     sync.Mutex
	parts  map[string]*Journal // open partitions by run name
	closed bool
}

// OpenSet opens (or creates) the partition set rooted at root, migrating a
// legacy single-directory journal if one is found there. Partitions are
// opened lazily by Partition; OpenSet itself only prepares the directory.
func OpenSet(root string, opts SetOptions) (*Set, error) {
	opts.Journal = opts.Journal.withDefaults()
	opts.Journal.FencingToken = 0
	if err := os.MkdirAll(filepath.Join(root, runsDir), 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := migrateLegacy(root, opts); err != nil {
		return nil, err
	}
	return &Set{root: root, opts: opts, parts: make(map[string]*Journal, 8)}, nil
}

// Root returns the set's root directory.
func (s *Set) Root() string { return s.root }

// WriteThrough reports whether the set's partitions fsync every append
// (Journal.WriteThrough); callers deferring journal I/O must not defer in
// write-through mode.
func (s *Set) WriteThrough() bool { return s.opts.Journal.FlushInterval < 0 }

// Partition opens (or creates) the journal partition for run, with the
// given fencing token (0 = classic flock protection). An already-open
// partition is returned as-is; close it with CloseRun before reopening
// under a newer token.
func (s *Set) Partition(run string, token int64) (*Journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if j, ok := s.parts[run]; ok {
		return j, nil
	}
	opts := s.opts.Journal
	opts.FencingToken = token
	j, err := Open(s.partitionDir(run), opts)
	if err != nil {
		return nil, err
	}
	s.parts[run] = j
	return j, nil
}

// Get returns the already-open partition for run, if any.
func (s *Set) Get(run string) (*Journal, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.parts[run]
	return j, ok
}

// CloseRun closes run's partition (if open) without deleting it.
func (s *Set) CloseRun(run string) error {
	s.mu.Lock()
	j := s.parts[run]
	delete(s.parts, run)
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// Remove closes and deletes run's partition directory: the run's durable
// history is gone. Removing a partition that does not exist is a no-op.
func (s *Set) Remove(run string) error {
	if err := s.CloseRun(run); err != nil && !errors.Is(err, ErrFenced) {
		return err
	}
	dir := s.partitionDir(run)
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(filepath.Join(s.root, runsDir))
	return nil
}

// List returns the run names that have partition directories on disk,
// sorted, whether or not they are open.
func (s *Set) List() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, runsDir))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var runs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := decodePartitionName(e.Name())
		if err != nil {
			continue // not one of ours
		}
		runs = append(runs, name)
	}
	sort.Strings(runs)
	return runs, nil
}

// Each calls fn for every open partition. The set lock is not held during
// fn, so fn may call back into the set.
func (s *Set) Each(fn func(run string, j *Journal)) {
	s.mu.Lock()
	open := make(map[string]*Journal, len(s.parts))
	for run, j := range s.parts {
		open[run] = j
	}
	s.mu.Unlock()
	for run, j := range open {
		fn(run, j)
	}
}

// Close closes every open partition. Further operations return ErrClosed.
func (s *Set) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	open := s.parts
	s.parts = nil
	s.mu.Unlock()
	var firstErr error
	for _, j := range open {
		if err := j.Close(); err != nil && !errors.Is(err, ErrFenced) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Set) partitionDir(run string) string {
	return filepath.Join(s.root, runsDir, encodePartitionName(run))
}

// encodePartitionName maps a run name to a filesystem-safe directory name.
// Alphanumerics, '.', '_' and '-' pass through; every other byte becomes
// %XX, and a leading '.' is escaped so partitions are never dotfiles. The
// encoding is reversible (decodePartitionName) so List can report run
// names without a sidecar manifest.
func encodePartitionName(run string) string {
	var b strings.Builder
	for i := 0; i < len(run); i++ {
		c := run[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.' && i > 0:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

func decodePartitionName(enc string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(enc); i++ {
		c := enc[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(enc) {
			return "", fmt.Errorf("journal: truncated escape in %q", enc)
		}
		var v int
		if _, err := fmt.Sscanf(enc[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("journal: bad escape in %q", enc)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

// migrateLegacy converts a pre-partition single-directory journal (segments
// and snapshot directly under root) into per-run partitions. The legacy
// directory's flock is held for the duration so a still-running old engine
// cannot append mid-migration; afterwards the legacy files are moved to
// root/legacy/ (kept, not deleted — they are the rollback story).
func migrateLegacy(root string, opts SetOptions) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var segs []segment
	legacySnap := ""
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			var idx int
			if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &idx); err == nil {
				segs = append(segs, segment{path: filepath.Join(root, name), index: idx})
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			legacySnap = name // loadLegacySnapshot re-picks the newest below
		}
	}
	if len(segs) == 0 && legacySnap == "" {
		return nil // nothing legacy here
	}

	// Exclude any live legacy writer for the duration of the migration.
	lf, err := os.OpenFile(filepath.Join(root, "journal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer lf.Close()
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("%w: %s (cannot migrate a live legacy journal)", ErrLocked, root)
	}
	defer func() { _ = syscall.Flock(int(lf.Fd()), syscall.LOCK_UN) }()

	// Newest decodable legacy snapshot, split per run.
	lj := &Journal{dir: root}
	if err := lj.loadSnapshot(); err != nil {
		return err
	}
	perRun := map[string][]byte{}
	if lj.snapshot != nil {
		if opts.SplitSnapshot == nil {
			return errors.New("journal: legacy snapshot present but no SplitSnapshot configured")
		}
		perRun, err = opts.SplitSnapshot(lj.snapshot)
		if err != nil {
			return fmt.Errorf("journal: splitting legacy snapshot: %w", err)
		}
	}

	m := &migration{root: root, snapshotSeq: lj.snapshotSeq, files: map[string]*bufio.Writer{}, handles: map[string]*os.File{}}
	defer m.closeAll()
	for run, payload := range perRun {
		if err := m.writeSnapshot(run, payload, lj.snapshotSeq); err != nil {
			return err
		}
		if _, err := m.writer(run); err != nil {
			return err
		}
	}

	// Split the record stream byte-exactly by run. Heartbeats (Run == "")
	// carry the crash-time estimate every live run needs, so they fan out
	// to every partition known at that point in the stream.
	sort.Slice(segs, func(a, b int) bool { return segs[a].index < segs[b].index })
	for _, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		err = readRecords(f, func(rec Record, line []byte) error {
			if rec.Run == "" {
				return m.appendAll(line)
			}
			w, err := m.writer(rec.Run)
			if err != nil {
				return err
			}
			_, err = w.Write(line)
			return err
		})
		f.Close()
		if err != nil {
			return err
		}
	}
	if err := m.finish(); err != nil {
		return err
	}

	// Move the legacy files aside (segments, snapshots, and stray tmp
	// files); the partition tree is now the source of truth.
	backup := filepath.Join(root, legacyDir)
	if err := os.MkdirAll(backup, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	entries, err = os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		keep := strings.HasPrefix(name, segPrefix) || strings.HasPrefix(name, snapPrefix)
		if !keep {
			continue
		}
		if err := os.Rename(filepath.Join(root, name), filepath.Join(backup, name)); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	syncDir(root)
	return nil
}

// migration tracks the partition files being built during a legacy split.
type migration struct {
	root        string
	snapshotSeq int64
	files       map[string]*bufio.Writer
	handles     map[string]*os.File
}

func (m *migration) dir(run string) string {
	return filepath.Join(m.root, runsDir, encodePartitionName(run))
}

func (m *migration) writer(run string) (*bufio.Writer, error) {
	if w, ok := m.files[run]; ok {
		return w, nil
	}
	dir := m.dir(run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriterSize(f, 64<<10)
	m.files[run] = w
	m.handles[run] = f
	return w, nil
}

func (m *migration) writeSnapshot(run string, payload []byte, seq int64) error {
	dir := m.dir(run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	raw, err := json.Marshal(snapFile{Seq: seq, Data: payload})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
	if err := writeFileSync(final+".tmp", raw); err != nil {
		return err
	}
	if err := os.Rename(final+".tmp", final); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(dir)
	return nil
}

func (m *migration) appendAll(line []byte) error {
	for _, w := range m.files {
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

func (m *migration) finish() error {
	for run, w := range m.files {
		if err := w.Flush(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		f := m.handles[run]
		if err := f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		delete(m.files, run)
		delete(m.handles, run)
		syncDir(m.dir(run))
	}
	return nil
}

func (m *migration) closeAll() {
	for run, f := range m.handles {
		_ = f.Close()
		delete(m.handles, run)
		delete(m.files, run)
	}
}
