package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestBench10Smoke runs the hierarchical-rollout macro-bench at toy
// scale: every scenario must complete, the parallel shapes must beat the
// sequential chain, the poisoned region must stay contained, and the
// JSON must carry the BENCH_9-comparable pipeline keys.
func TestBench10Smoke(t *testing.T) {
	res, err := RunBench10(Bench10Config{
		Regions:             4,
		Quorum:              3,
		CheckInterval:       5 * time.Millisecond,
		Executions:          4,
		SlowFactor:          4,
		PipelineEvents:      300,
		PipelineSubscribers: 8,
	})
	if err != nil {
		t.Fatalf("RunBench10: %v", err)
	}
	if res.SequentialWallMs <= 0 || res.ParallelWallMs <= 0 || res.QuorumWallMs <= 0 {
		t.Errorf("wall times not measured: %+v", res)
	}
	if res.ParallelSpeedup <= 1 {
		t.Errorf("parallel regions no faster than sequential: speedup %.2f", res.ParallelSpeedup)
	}
	if res.QuorumSpeedup <= 1 {
		t.Errorf("quorum promotion no faster than sequential: speedup %.2f", res.QuorumSpeedup)
	}
	// The quorum scenario's straggler runs SlowFactor× longer than every
	// other region; promoting on quorum means not paying for it.
	if slowest := float64(res.Config.SlowFactor) * res.ParallelWallMs / 2; res.QuorumWallMs > slowest {
		t.Errorf("quorum wall %.1fms looks like it waited for the straggler (parallel %.1fms, factor %d)",
			res.QuorumWallMs, res.ParallelWallMs, res.Config.SlowFactor)
	}
	if res.FailedRegions != 1 || res.AbortedSiblings != 0 {
		t.Errorf("blast radius: %d failed / %d aborted siblings, want 1 / 0",
			res.FailedRegions, res.AbortedSiblings)
	}
	if res.PassedRegions != res.Config.Regions-1 {
		t.Errorf("%d regions passed, want %d", res.PassedRegions, res.Config.Regions-1)
	}
	if res.PipelineEventsPerSec <= 0 || res.PublishEventsPerSec <= 0 {
		t.Errorf("pipeline throughput not re-measured: %+v", res)
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("result JSON does not parse: %v", err)
	}
	for _, key := range []string{"sequentialWallMs", "quorumWallMs", "pipelineEventsPerSec", "deliveredFramesPerSec"} {
		v, ok := decoded[key].(float64)
		if !ok || v <= 0 {
			t.Errorf("JSON key %q missing or non-positive: %v", key, decoded[key])
		}
	}
}
