// Package journal implements the durable run journal of the Bifrost engine:
// an append-only, fsync-batched, segment-rotated log of JSON-lines records
// plus periodic snapshot compaction.
//
// The engine writes one record per observable side effect (run scheduled,
// state entered, routing applied, check concluded, gate decision, pause or
// resume, run finished). On startup it replays the newest snapshot plus
// every record behind it to rebuild unfinished runs, so the paper's
// hours-long multi-phase live tests survive a control-plane restart instead
// of being silently aborted.
//
// Durability model: Append writes through a buffered writer to the current
// segment and marks the journal dirty; a background flusher fsyncs at most
// every FlushInterval (group commit), so a crash loses at most the last
// interval's records — typically ending in a torn final line, which replay
// tolerates. Sync forces a flush for records that must not be lost (run
// finished). Segments rotate at SegmentBytes; Compact writes a snapshot
// (atomic tmp+rename) and deletes segments wholly covered by it.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Record is one journal entry. Seq is the engine's global event sequence
// (strictly increasing across runs and restarts); Data is the type-specific
// payload, opaque to the journal.
type Record struct {
	Seq  int64           `json:"seq"`
	Time time.Time       `json:"time"`
	Type string          `json:"type"`
	Run  string          `json:"run,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Options tune a journal. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size. Default 4 MiB.
	SegmentBytes int64
	// FlushInterval is the fsync batching window: appended records are
	// guaranteed durable at most this long after Append returns. Default
	// 25ms. Negative fsyncs on every append (tests, paranoid setups).
	FlushInterval time.Duration
	// CompactBytes is the advisory threshold ShouldCompact uses: once this
	// many bytes of records accumulated since the last snapshot, the owner
	// should build a snapshot and call Compact. Default 1 MiB.
	CompactBytes int64
	// FencingToken switches the journal from flock-based single-writer
	// protection to fencing-token protection (HA mode, where the writer
	// holding the flock may be a dead replica's zombie process). A positive
	// token is compared against the directory's fence file: Open fails with
	// ErrFenced if a newer owner already registered a higher token, and
	// appends/flushes are rejected once a higher token appears — the zombie
	// writer is fenced off instead of corrupting the new owner's view.
	// Zero keeps the classic flock behavior.
	FencingToken int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 25 * time.Millisecond
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 1 << 20
	}
	return o
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrLocked is returned by Open when another process holds the journal: a
// rolling deploy briefly running two engines must fail the second opener
// loudly rather than let both append conflicting records.
var ErrLocked = errors.New("journal: directory locked by another process")

// ErrFenced is returned in fencing mode (Options.FencingToken > 0) when a
// newer owner has registered a higher token for this directory: the caller
// lost ownership (its lease was stolen) and must stop writing.
var ErrFenced = errors.New("journal: fenced by a newer owner")

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".json"
)

// segment is one on-disk log file and the seq range it holds.
type segment struct {
	path     string
	index    int
	firstSeq int64 // 0 when empty
	lastSeq  int64 // 0 when empty
}

// Journal is an open run journal. All methods are safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu         sync.Mutex
	segments   []segment // sealed segments, oldest first
	active     segment
	f          *os.File
	w          *bufio.Writer
	activeSize int64
	// dirty: records buffered but not yet written through to the OS.
	// needsSync: records written through but not yet fsynced.
	dirty     bool
	needsSync bool
	closed    bool

	snapshot     []byte // payload of the newest valid snapshot
	snapshotSeq  int64  // seq the snapshot covers (records ≤ this are compacted)
	snapshotPath string

	bytesSinceCompact int64

	// fenced latches once a higher fencing token is observed; every
	// subsequent append or flush fails with ErrFenced.
	fenced bool

	// compactMu serializes Compact calls (the snapshot write happens
	// outside j.mu so appends are not stalled by its fsyncs).
	compactMu sync.Mutex

	lockFile  *os.File
	flushDone chan struct{}
	flushErr  error
}

// snapFile is the on-disk snapshot envelope.
type snapFile struct {
	Seq  int64           `json:"seq"`
	Data json.RawMessage `json:"data"`
}

// Open opens (or creates) the journal in dir. Existing segments are scanned
// so replay and compaction know their seq ranges; a torn final record —
// the expected artifact of a crash mid-append — is tolerated and ignored.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, flushDone: make(chan struct{})}
	if opts.FencingToken > 0 {
		// Fencing mode: the previous owner may be a zombie still holding its
		// flock, so ownership is arbitrated by token comparison instead.
		if err := j.registerFence(); err != nil {
			return nil, err
		}
	} else if err := j.acquireLock(); err != nil {
		return nil, err
	}
	if err := j.loadSnapshot(); err != nil {
		j.releaseLock()
		return nil, err
	}
	if err := j.loadSegments(); err != nil {
		j.releaseLock()
		return nil, err
	}
	// Always start a fresh segment: the previous active segment may end in
	// a torn record, and appending after it would hide that tear from
	// future replays.
	if err := j.rotateLocked(); err != nil {
		j.releaseLock()
		return nil, err
	}
	go j.flushLoop()
	return j, nil
}

// acquireLock flocks journal.lock so exactly one process owns the journal.
// The lock is advisory but automatic: a crashed owner's lock vanishes with
// its process, so crash recovery is never blocked by a stale lock file.
func (j *Journal) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(j.dir, "journal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return fmt.Errorf("%w: %s", ErrLocked, j.dir)
	}
	j.lockFile = f
	return nil
}

func (j *Journal) releaseLock() {
	if j.lockFile != nil {
		_ = syscall.Flock(int(j.lockFile.Fd()), syscall.LOCK_UN)
		_ = j.lockFile.Close()
		j.lockFile = nil
	}
}

const (
	fenceFile     = "fence"
	fenceLockFile = "fence.lock"
)

// registerFence claims fencing-mode ownership: under a briefly-held flock on
// fence.lock it compares the stored token against ours and, unless a newer
// owner already registered, durably writes our token. Writing the fence
// BEFORE any segment is read or written guarantees the previous owner's
// in-flight appends are rejected no later than its next fence check.
func (j *Journal) registerFence() error {
	lf, err := os.OpenFile(filepath.Join(j.dir, fenceLockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer lf.Close()
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("journal: fence lock: %w", err)
	}
	defer func() { _ = syscall.Flock(int(lf.Fd()), syscall.LOCK_UN) }()
	cur, err := readFenceToken(j.dir)
	if err != nil {
		return err
	}
	if cur > j.opts.FencingToken {
		return fmt.Errorf("%w: token %d < %d", ErrFenced, j.opts.FencingToken, cur)
	}
	if cur == j.opts.FencingToken {
		return nil // re-open by the same owner epoch
	}
	raw := []byte(fmt.Sprintf("%d\n", j.opts.FencingToken))
	tmp := filepath.Join(j.dir, fenceFile+".tmp")
	if err := writeFileSync(tmp, raw); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, fenceFile)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(j.dir)
	return nil
}

// readFenceToken returns the directory's current fence token (0 if none).
func readFenceToken(dir string) (int64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, fenceFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	var tok int64
	if _, err := fmt.Sscanf(string(raw), "%d", &tok); err != nil {
		return 0, fmt.Errorf("journal: corrupt fence file: %w", err)
	}
	return tok, nil
}

// checkFenceLocked rejects writes once a newer owner registered a higher
// token. Callers hold j.mu. The read is one small-file pread per append —
// cheap next to the JSON encode that precedes it — and the result latches,
// so a fenced journal never recovers.
func (j *Journal) checkFenceLocked() error {
	if j.opts.FencingToken <= 0 {
		return nil
	}
	if j.fenced {
		return ErrFenced
	}
	cur, err := readFenceToken(j.dir)
	if err == nil && cur > j.opts.FencingToken {
		j.fenced = true
		// Discard anything buffered but not yet written through: those
		// records were accepted before we learned about the new owner, and
		// writing them now would plant records the new owner never replayed.
		if j.w != nil {
			j.w = bufio.NewWriterSize(j.f, 64<<10)
		}
		j.dirty = false
		return ErrFenced
	}
	return nil
}

func (j *Journal) loadSnapshot() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	best := ""
	var bestSeq int64 = -1
	var stale []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		path := filepath.Join(j.dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var sf snapFile
		if json.Unmarshal(raw, &sf) != nil {
			// A torn snapshot (crash between write and rename cannot
			// happen, but a damaged disk can): ignore it, an older one or
			// the raw segments still replay.
			stale = append(stale, path)
			continue
		}
		if sf.Seq > bestSeq {
			if best != "" {
				stale = append(stale, best)
			}
			best, bestSeq = path, sf.Seq
			j.snapshot, j.snapshotSeq = sf.Data, sf.Seq
		} else {
			stale = append(stale, path)
		}
	}
	j.snapshotPath = best
	for _, p := range stale {
		_ = os.Remove(p)
	}
	return nil
}

func (j *Journal) loadSegments() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &idx); err != nil {
			continue
		}
		seg := segment{path: filepath.Join(j.dir, name), index: idx}
		first, last, size, err := scanSegment(seg.path)
		if err != nil {
			return err
		}
		if last == 0 {
			// No decodable records (a clean shutdown's empty active
			// segment, or one whose only write was torn): reclaim it now
			// instead of rescanning it on every startup forever.
			_ = os.Remove(seg.path)
			continue
		}
		seg.firstSeq, seg.lastSeq = first, last
		if last > j.snapshotSeq {
			// Segments fully covered by the snapshot (kept only for
			// boundary-seq markers) add no compaction pressure.
			j.bytesSinceCompact += size
		}
		j.segments = append(j.segments, seg)
	}
	sort.Slice(j.segments, func(a, b int) bool {
		return j.segments[a].index < j.segments[b].index
	})
	return nil
}

// scanSegment reads a segment's records to find its seq range, stopping at
// the first undecodable line (a torn tail) and reporting the byte size of
// the valid prefix.
func scanSegment(path string) (first, last, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	err = readRecords(f, func(rec Record, line []byte) error {
		if first == 0 {
			first = rec.Seq
		}
		last = rec.Seq
		size += int64(len(line))
		return nil
	})
	return first, last, size, err
}

// readRecords streams the decodable prefix of r, calling fn with each record
// and its raw encoded line (newline included). An undecodable or
// unterminated final line ends the stream silently: that is the torn-write
// artifact replay must tolerate.
func readRecords(r *os.File, fn func(Record, []byte) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// Missing trailing newline means the final append was torn;
			// any other read error also ends the valid prefix here.
			return nil
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Seq == 0 {
			// Torn or corrupt record: everything after it is untrusted.
			return nil
		}
		if err := fn(rec, line); err != nil {
			return err
		}
	}
}

func segName(index int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

// rotateLocked seals the active segment and opens the next one. Callers
// hold j.mu (or are inside Open, before the journal is shared).
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := j.flushLocked(true); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.segments = append(j.segments, j.active)
	}
	next := 1
	if n := len(j.segments); n > 0 {
		next = j.segments[n-1].index + 1
	}
	j.active = segment{path: filepath.Join(j.dir, segName(next)), index: next}
	f, err := os.OpenFile(j.active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 64<<10)
	j.activeSize = 0
	return nil
}

// Append writes one record. It returns once the record is handed to the OS
// (buffered); durability follows within FlushInterval, or immediately after
// Sync.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.checkFenceLocked(); err != nil {
		return err
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.active.firstSeq == 0 {
		j.active.firstSeq = rec.Seq
	}
	j.active.lastSeq = rec.Seq
	j.activeSize += int64(len(line))
	j.bytesSinceCompact += int64(len(line))
	j.dirty = true
	if j.opts.FlushInterval < 0 {
		if err := j.flushLocked(true); err != nil {
			return err
		}
	}
	if j.activeSize >= j.opts.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

// AppendBatch writes records under a single lock acquisition and one
// buffered-writer pass: the per-record JSON encoding happens before the
// lock is taken, so N queued records cost one fence check and one Write
// instead of N of each. Ordering and durability semantics match N calls to
// Append — the batch is buffered on return, durable within FlushInterval
// (or immediately in write-through mode), and the active segment rotates
// once the batch pushes it past SegmentBytes.
func (j *Journal) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	buf := make([]byte, 0, 256*len(recs))
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.checkFenceLocked(); err != nil {
		return err
	}
	if _, err := j.w.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.active.firstSeq == 0 {
		j.active.firstSeq = recs[0].Seq
	}
	j.active.lastSeq = recs[len(recs)-1].Seq
	j.activeSize += int64(len(buf))
	j.bytesSinceCompact += int64(len(buf))
	j.dirty = true
	if j.opts.FlushInterval < 0 {
		if err := j.flushLocked(true); err != nil {
			return err
		}
	}
	if j.activeSize >= j.opts.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

// WriteThrough reports whether every append is fsynced synchronously
// (Options.FlushInterval < 0): callers that defer journal I/O for
// throughput must bypass that deferral in write-through mode, where the
// caller's contract is "durable before Append returns".
func (j *Journal) WriteThrough() bool { return j.opts.FlushInterval < 0 }

// Sync forces buffered records to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.flushLocked(true)
}

func (j *Journal) flushLocked(fsync bool) error {
	if j.w == nil {
		return nil
	}
	if j.dirty {
		// Re-check the fence right before buffered records reach the file:
		// a writer fenced between Append and flush must not plant records
		// the new owner's replay never saw. (checkFenceLocked discards the
		// buffer when it latches.)
		if err := j.checkFenceLocked(); err != nil {
			return err
		}
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.dirty {
		j.needsSync = true
	}
	j.dirty = false
	if fsync && j.needsSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.needsSync = false
	}
	return nil
}

// flushLoop is the fsync batcher: it wakes every FlushInterval and syncs
// when records were appended since the last pass. The buffer flush happens
// under j.mu, but the fsync itself runs outside it so appenders (and the
// engine's publish pipeline behind them) never stall on disk latency. If
// the segment was rotated or closed between flush and fsync, those paths
// already synced it, so a failure on the captured handle is ignorable.
func (j *Journal) flushLoop() {
	if j.opts.FlushInterval <= 0 {
		<-j.flushDone
		return
	}
	t := time.NewTicker(j.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			var f *os.File
			if !j.closed && (j.dirty || j.needsSync) {
				if err := j.flushLocked(false); err != nil && j.flushErr == nil {
					j.flushErr = err
				} else {
					f = j.f
				}
			}
			j.mu.Unlock()
			if f != nil && f.Sync() == nil {
				j.mu.Lock()
				// The fsync covered everything flushed to this segment so
				// far; records appended since remain in dirty.
				if j.f == f {
					j.needsSync = false
				}
				j.mu.Unlock()
			}
		case <-j.flushDone:
			return
		}
	}
}

// Snapshot returns the payload of the newest snapshot (nil if none) and the
// sequence number it covers.
func (j *Journal) Snapshot() ([]byte, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshot, j.snapshotSeq
}

// Replay streams the records behind the snapshot, oldest first, across all
// segments. Torn or corrupt tails end a segment's stream without error.
// Replay may run on a journal that is also being appended to; it only
// observes records flushed before the call.
//
// Segments ending exactly at the snapshot seq are still replayed: marker
// records (the engine's heartbeats) reuse the newest event's sequence
// number, so they can trail the snapshot boundary while carrying state the
// snapshot lacks. Callers replaying stateful records must therefore skip
// those with Seq ≤ SnapshotSeq themselves.
func (j *Journal) Replay(fn func(Record) error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if err := j.flushLocked(false); err != nil {
		j.mu.Unlock()
		return err
	}
	afterSeq := j.snapshotSeq
	paths := make([]string, 0, len(j.segments)+1)
	for _, s := range j.segments {
		if s.lastSeq != 0 && s.lastSeq < afterSeq {
			continue // wholly covered by the snapshot
		}
		paths = append(paths, s.path)
	}
	paths = append(paths, j.active.path)
	j.mu.Unlock()

	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("journal: %w", err)
		}
		err = readRecords(f, func(rec Record, _ []byte) error {
			if rec.Seq < afterSeq {
				return nil
			}
			return fn(rec)
		})
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// ShouldCompact reports whether enough record bytes accumulated since the
// last snapshot that the owner should compact.
func (j *Journal) ShouldCompact() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.closed && j.bytesSinceCompact >= j.opts.CompactBytes
}

// Compact installs a new snapshot covering every record with seq ≤ upToSeq
// and deletes the segments it makes redundant. The snapshot is written to a
// temporary file, fsynced, and renamed, so a crash never leaves a partial
// snapshot in play. The write happens outside j.mu: appenders (and with
// them the engine's publish pipeline) are not stalled behind the snapshot's
// disk I/O.
func (j *Journal) Compact(snapshot []byte, upToSeq int64) error {
	j.compactMu.Lock()
	defer j.compactMu.Unlock()

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if upToSeq <= j.snapshotSeq {
		j.mu.Unlock()
		return nil // nothing new to cover
	}
	if err := j.flushLocked(true); err != nil {
		j.mu.Unlock()
		return err
	}
	j.mu.Unlock()

	raw, err := json.Marshal(snapFile{Seq: upToSeq, Data: snapshot})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	final := filepath.Join(j.dir, fmt.Sprintf("%s%016d%s", snapPrefix, upToSeq, snapSuffix))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, raw); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(j.dir)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	old := j.snapshotPath
	j.snapshot, j.snapshotSeq, j.snapshotPath = snapshot, upToSeq, final
	if old != "" && old != final {
		_ = os.Remove(old)
	}

	// Seal the active segment if the snapshot covers it entirely, then
	// drop every sealed segment whose records are all behind upToSeq.
	// Segments ending exactly at upToSeq survive one more compaction
	// cycle: they may carry boundary-seq marker records (heartbeats) the
	// snapshot does not subsume.
	if j.active.lastSeq != 0 && j.active.lastSeq <= upToSeq {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	kept := j.segments[:0]
	for _, s := range j.segments {
		if s.lastSeq != 0 && s.lastSeq < upToSeq {
			_ = os.Remove(s.path)
			continue
		}
		kept = append(kept, s)
	}
	j.segments = kept
	j.bytesSinceCompact = j.activeSize
	for _, s := range j.segments {
		if s.lastSeq != 0 && s.lastSeq <= upToSeq {
			// Retained only for possible boundary-seq markers; its records
			// are covered by the snapshot, so it adds no compaction
			// pressure (another compaction at this seq would be a no-op).
			continue
		}
		j.bytesSinceCompact += approxSegmentSize(s)
	}
	return nil
}

// approxSegmentSize stats a sealed segment for the compaction accounting;
// on error it counts zero (the accounting is advisory).
func approxSegmentSize(s segment) int64 {
	fi, err := os.Stat(s.path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and removals are durable; best
// effort on filesystems that reject directory syncs.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Close flushes, fsyncs, and closes the journal. Further operations return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	close(j.flushDone)
	err := j.flushLocked(true)
	if cerr := j.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: %w", cerr)
	}
	if err == nil {
		err = j.flushErr
	}
	j.f, j.w = nil, nil
	j.releaseLock()
	return err
}
