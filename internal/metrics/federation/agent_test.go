package federation

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/metrics"
	"bifrost/internal/sketch"
)

// captureSink records shipped batches and can fail on demand.
type captureSink struct {
	mu      sync.Mutex
	batches []metrics.DeltaBatch
	fail    bool
	store   *metrics.Store // optional: apply to a store like the real endpoint
	// ackLost: apply to the store but still report failure, modelling a
	// delivery whose acknowledgement never came back.
	ackLost bool
}

func (c *captureSink) ShipDelta(_ context.Context, b metrics.DeltaBatch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail && !c.ackLost {
		return errors.New("sink down")
	}
	if c.store != nil {
		if _, err := c.store.ApplyDelta(b); err != nil {
			return err
		}
	}
	if c.ackLost {
		return errors.New("ack lost")
	}
	c.batches = append(c.batches, b)
	return nil
}

func (c *captureSink) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.batches)
}

var testBase = time.Unix(1_700_000_000, 0)

func TestAgentClosesOnlyElapsedBuckets(t *testing.T) {
	clk := clock.NewManual(testBase)
	sink := &captureSink{}
	a := New("r1", sink, WithClock(clk), WithBucketWidth(time.Second))

	a.Observe("lat_ms", metrics.Labels{"service": "s"}, 10)
	clk.Advance(500 * time.Millisecond)
	a.Observe("lat_ms", metrics.Labels{"service": "s"}, 20)

	// The current bucket has not elapsed: nothing ships.
	if n := a.Flush(context.Background()); n != 0 {
		t.Fatalf("pending after premature flush: %d", n)
	}
	if sink.count() != 0 {
		t.Fatalf("open bucket was shipped early")
	}

	clk.Advance(time.Second) // now ≥ bucket end + width
	a.Flush(context.Background())
	if sink.count() != 1 {
		t.Fatalf("expected 1 batch, got %d", sink.count())
	}
	b := sink.batches[0]
	if b.Seq != 1 || b.Replica != "r1" || len(b.Buckets) != 1 {
		t.Fatalf("unexpected batch %+v", b)
	}
	d := b.Buckets[0]
	if d.Count != 2 || d.Sum != 30 || d.Min != 10 || d.Max != 20 {
		t.Fatalf("bucket stats %+v", d)
	}
	if d.Sketch == nil || d.Sketch.Count != 2 {
		t.Fatalf("bucket missing sketch: %+v", d.Sketch)
	}
}

func TestAgentRetryBackoffThenDrain(t *testing.T) {
	clk := clock.NewManual(testBase)
	store := metrics.NewStore(metrics.WithClock(clk))
	sink := &captureSink{store: store, fail: true}
	a := New("r1", sink, WithClock(clk),
		WithBackoff(200*time.Millisecond, 5*time.Second))

	for i := 0; i < 3; i++ {
		a.Observe("lat_ms", nil, float64(100+i))
		clk.Advance(time.Second)
	}
	clk.Advance(time.Second)
	if n := a.Flush(context.Background()); n != 1 {
		t.Fatalf("want 1 pending batch while sink down, got %d", n)
	}
	// Within backoff: flush must not hammer the sink.
	a.Flush(context.Background())
	sink.mu.Lock()
	sink.fail = false
	sink.mu.Unlock()
	if n := a.Flush(context.Background()); n != 1 {
		t.Fatalf("flush inside backoff window should not ship (pending=%d)", n)
	}
	clk.Advance(time.Second) // past the 200ms..400ms backoff
	if n := a.Flush(context.Background()); n != 0 {
		t.Fatalf("queue not drained after recovery: %d", n)
	}
	cnt, err := store.WindowAggregate("count_over_time", 0, "lat_ms", nil, time.Hour, clk.Now())
	if err != nil || cnt != 3 {
		t.Fatalf("store count %v err %v", cnt, err)
	}
}

// TestAgentAckLostNoDoubleCount: the store applies a batch whose ack is
// lost; the agent retries it and the store's dedup keeps totals exact.
func TestAgentAckLostNoDoubleCount(t *testing.T) {
	clk := clock.NewManual(testBase)
	store := metrics.NewStore(metrics.WithClock(clk))
	sink := &captureSink{store: store, ackLost: true}
	a := New("r1", sink, WithClock(clk), WithBackoff(time.Millisecond, time.Millisecond))

	a.Observe("lat_ms", nil, 42)
	clk.Advance(2 * time.Second)
	if n := a.Flush(context.Background()); n != 1 {
		t.Fatalf("batch should stay pending on lost ack (pending=%d)", n)
	}
	sink.mu.Lock()
	sink.ackLost = false
	sink.mu.Unlock()
	clk.Advance(time.Second)
	if n := a.Flush(context.Background()); n != 0 {
		t.Fatalf("retry did not drain: %d", n)
	}
	cnt, err := store.WindowAggregate("count_over_time", 0, "lat_ms", nil, time.Hour, clk.Now())
	if err != nil || cnt != 1 {
		t.Fatalf("double count after lost ack: count=%v err=%v", cnt, err)
	}
}

func TestAgentBoundedQueue(t *testing.T) {
	clk := clock.NewManual(testBase)
	sink := &captureSink{fail: true}
	a := New("r1", sink, WithClock(clk), WithMaxPending(3))
	for i := 0; i < 6; i++ {
		a.Observe("lat_ms", nil, float64(i))
		clk.Advance(2 * time.Second)
		a.Flush(context.Background())
	}
	if n := a.Pending(); n != 3 {
		t.Fatalf("pending %d, want bound 3", n)
	}
	if a.Dropped() == 0 {
		t.Fatal("expected dropped batches to be counted")
	}
}

func TestAgentRegistryGather(t *testing.T) {
	clk := clock.NewManual(testBase)
	store := metrics.NewStore(metrics.WithClock(clk))
	sink := &captureSink{store: store}
	reg := metrics.NewRegistry()
	a := New("r1", sink, WithClock(clk), WithRegistry(reg))

	c := reg.Counter("proxy_requests_total", metrics.Labels{"service": "s", "version": "v2"})
	for flush := 0; flush < 4; flush++ {
		for i := 0; i < 5; i++ {
			c.Inc()
		}
		clk.Advance(2 * time.Second)
		a.Flush(context.Background())
	}
	clk.Advance(2 * time.Second)
	a.Flush(context.Background()) // ships the last closed bucket

	inc, err := store.WindowAggregate("increase", 0, "proxy_requests_total",
		[]metrics.LabelMatch{{Name: "replica", Value: "r1"}}, time.Hour, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	// First gathered value (5) counts as the series' starting point; the
	// three later gathers add 5 each.
	if inc != 15 {
		t.Fatalf("federated counter increase %v, want 15", inc)
	}
	v, err := store.InstantValue("proxy_requests_total", nil, "sum", clk.Now())
	if err != nil || v != 20 {
		t.Fatalf("instant cumulative value %v err %v, want 20", v, err)
	}
}

// duplicatingSink ships every batch twice, modelling aggressive
// at-least-once redelivery over the real HTTP endpoint.
type duplicatingSink struct{ inner DeltaSink }

func (d duplicatingSink) ShipDelta(ctx context.Context, b metrics.DeltaBatch) error {
	if err := d.inner.ShipDelta(ctx, b); err != nil {
		return err
	}
	return d.inner.ShipDelta(ctx, b)
}

// TestFleetE2E is the acceptance e2e: three proxy agents shipping deltas
// over HTTP to one federating store; one agent restarts mid-run (new
// incarnation); one agent's deliveries are all duplicated. The fleet p99
// from merged sketches must be within the sketch's documented relative
// error of the exact quantile over all raw samples, and counts must be
// exact (nothing lost, nothing double-counted).
func TestFleetE2E(t *testing.T) {
	store := metrics.NewStore()
	srv := httptest.NewServer(metrics.NewServer(store).Handler())
	defer srv.Close()
	sink := HTTPSink{Client: metrics.Client{BaseURL: srv.URL}}

	rng := rand.New(rand.NewSource(21))
	labels := metrics.Labels{"service": "search"}
	var all []float64
	ctx := context.Background()

	observe := func(a *Agent, clk *clock.Manual, n int) {
		for i := 0; i < n; i++ {
			v := math.Exp(4 + 0.6*rng.NormFloat64()) // lognormal latencies
			all = append(all, v)
			a.Observe("upstream_ms", labels, v)
			clk.Advance(25 * time.Millisecond)
		}
	}
	drain := func(a *Agent, clk *clock.Manual) {
		clk.Advance(2 * time.Second)
		if n := a.Flush(ctx); n != 0 {
			t.Fatalf("agent %s left %d pending batches", a.replica, n)
		}
	}

	// r1: plain agent. r2: restarts mid-run. r3: duplicated deliveries.
	clk1 := clock.NewManual(testBase)
	a1 := New("r1", sink, WithClock(clk1))
	clk3 := clock.NewManual(testBase)
	a3 := New("r3", duplicatingSink{sink}, WithClock(clk3))

	clk2 := clock.NewManual(testBase)
	a2 := New("r2", sink, WithClock(clk2))
	observe(a2, clk2, 700)
	drain(a2, clk2) // everything shipped, then the process "crashes"
	a2b := New("r2", sink, WithClock(clk2))
	if a2b.Incarnation() == a2.Incarnation() {
		t.Fatal("restarted agent reused its incarnation")
	}
	observe(a2b, clk2, 700)
	drain(a2b, clk2)

	observe(a1, clk1, 1400)
	drain(a1, clk1)
	observe(a3, clk3, 1400)
	drain(a3, clk3)

	at := testBase.Add(time.Hour)
	cnt, err := store.WindowAggregate("count_over_time", 0, "upstream_ms", nil, 2*time.Hour, at)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != float64(len(all)) {
		t.Fatalf("fleet count %v, want %d (lost or double-counted)", cnt, len(all))
	}

	p99, err := store.WindowAggregate("quantile_over_time", 0.99, "upstream_ms", nil, 2*time.Hour, at)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(all)
	exact := all[int(math.Ceil(0.99*float64(len(all))))-1]
	if math.Abs(p99-exact) > sketch.DefaultAlpha*exact {
		t.Fatalf("fleet p99 %v vs exact %v exceeds alpha=%v bound", p99, exact, sketch.DefaultAlpha)
	}

	// Sanity: three distinct replicas landed as three series.
	if got := store.FederatedReplicaCount(); got != 4 { // r1, r2×2 incarnations, r3
		t.Fatalf("cursor count %d, want 4", got)
	}
}

func TestAgentStartLoopAndGracefulStop(t *testing.T) {
	store := metrics.NewStore()
	sink := &captureSink{store: store}
	a := New("r1", sink) // real clock, short interval
	a.interval = 10 * time.Millisecond
	a.Start()
	a.Observe("lat_ms", nil, 5)
	time.Sleep(30 * time.Millisecond)
	a.Stop(context.Background())
	// The final flush ships even the open bucket.
	cnt, err := store.WindowAggregate("count_over_time", 0, "lat_ms", nil, time.Hour, time.Now())
	if err != nil || cnt != 1 {
		t.Fatalf("graceful stop lost the open bucket: count=%v err=%v", cnt, err)
	}
}
