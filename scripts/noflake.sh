#!/usr/bin/env bash
# Flake quarantine: run `go test -json "$@"` and fail if any test was run
# more than once in the invocation. Go itself never retries a test, so a
# duplicated run means a retry wrapper (or a stray -count) is papering
# over a flaky test. Flaky tests get fixed or explicitly skipped — never
# retried into green — and this check keeps that policy enforceable.
set -u

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -json "$@" >"$out" 2>&1
status=$?

# Surface the human-readable test output. Build errors and panics arrive
# as plain text rather than JSON events; pass those through untouched.
sed -n 's/.*"Action":"output","Package":[^,]*\(,"Test":[^,]*\)\{0,1\},"Output":"\(.*\)"}$/\2/p' "$out" |
  sed 's/\\t/\t/g; s/\\n$//; s/\\"/"/g; s/\\\\/\\/g'
grep -v '^{' "$out" || true

retried="$(sed -n 's/.*"Action":"run","Package":"\([^"]*\)","Test":"\([^"]*\)".*/\1 \2/p' "$out" | sort | uniq -d)"
if [ -n "$retried" ]; then
  echo "flake quarantine violation: tests were run more than once (retried):" >&2
  echo "$retried" >&2
  exit 1
fi
exit "$status"
