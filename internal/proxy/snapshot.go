package proxy

import (
	"errors"
	"fmt"
	"net/url"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// routeState is one immutable, fully materialized routing configuration.
// The proxy publishes it through an atomic pointer: the data plane
// (decide, weightedDraw, observe, scheduleShadows) reads one snapshot per
// request and never takes a lock; SetConfig builds a fresh snapshot off
// the hot path and swaps it in. Everything a request needs — parsed
// backend URLs, the cumulative-weight selector, precompiled shadow rules,
// and the metric handles for every routable version — is resolved once
// per config generation at build time.
type routeState struct {
	cfg      Config
	selector *core.Selector
	backends map[string]*backendRef
	shadows  []shadowRule
	// sticky is the assignment table M of this state. A new snapshot gets
	// a fresh table because assignments are scoped to one state of the
	// release automaton; swapping the snapshot clears them atomically.
	sticky *stickyStore
}

// backendRef is one routable version with its upstream URL and the metric
// handles observe() hits on every request, resolved once at build time.
type backendRef struct {
	version string
	url     *url.URL
	m       *versionMetrics
}

// versionMetrics caches the per-version instrument handles so the
// per-request path increments atomics directly instead of re-resolving
// name+labels in the registry maps.
type versionMetrics struct {
	requests *metrics.Counter
	errors   *metrics.Counter
	msSum    *metrics.Counter
	msCount  *metrics.Counter
	msLast   *metrics.Gauge
	// record feeds the raw latency sample to an external observer (the
	// federation agent's sketch); nil unless WithLatencyObserver is set.
	record func(ms float64)
}

// shadowRule is one dark-launch rule with its target URL resolved and
// validated at build time, so enqueueing never parses or silently drops.
type shadowRule struct {
	source  string // "" or "*" matches any served version
	target  string
	percent float64
	url     *url.URL
	counter *metrics.Counter
}

// buildRouteState validates cfg and materializes it into a snapshot.
func (p *Proxy) buildRouteState(cfg Config) (*routeState, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("proxy: config has no backends")
	}
	backends := make(map[string]*backendRef, len(cfg.Backends))
	weights := make(map[string]float64, len(cfg.Backends))
	for _, b := range cfg.Backends {
		u, err := parseUpstreamURL(b.URL)
		if err != nil {
			return nil, fmt.Errorf("proxy: bad backend URL %q for version %q", b.URL, b.Version)
		}
		backends[b.Version] = &backendRef{
			version: b.Version,
			url:     u,
			m:       p.newVersionMetrics(b.Version),
		}
		weights[b.Version] = b.Weight
	}
	rc := core.RoutingConfig{Service: cfg.Service, Weights: weights}
	selector, err := core.NewSelector(&rc)
	if err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	shadows := make([]shadowRule, 0, len(cfg.Shadows))
	for _, sh := range cfg.Shadows {
		if sh.Percent < 0 || sh.Percent > 100 {
			return nil, fmt.Errorf("proxy: shadow percent %v out of range", sh.Percent)
		}
		rule := shadowRule{
			source:  sh.Source,
			target:  sh.Target,
			percent: sh.Percent,
			counter: p.registry.Counter("proxy_shadow_requests_total",
				metrics.Labels{"service": p.service, "version": sh.Target}),
		}
		if sh.TargetURL == "" {
			ref, ok := backends[sh.Target]
			if !ok {
				return nil, fmt.Errorf("proxy: shadow target %q has no backend", sh.Target)
			}
			rule.url = ref.url
		} else {
			// Same scheme/host bar as backend URLs: a scheme-less target
			// used to validate here and then be dropped at enqueue time.
			u, err := parseUpstreamURL(sh.TargetURL)
			if err != nil {
				return nil, fmt.Errorf("proxy: bad shadow target URL %q", sh.TargetURL)
			}
			rule.url = u
		}
		shadows = append(shadows, rule)
	}
	if cfg.Mode == "header" && cfg.Header == "" {
		return nil, errors.New("proxy: header mode without header name")
	}
	return &routeState{
		cfg:      cfg,
		selector: selector,
		backends: backends,
		shadows:  shadows,
		sticky:   newStickyStore(p.stickyCap, stickyShardCount, p.mRequests.stickyEvicted),
	}, nil
}

// parseUpstreamURL parses an upstream base URL, requiring scheme and host.
func parseUpstreamURL(s string) (*url.URL, error) {
	u, err := url.Parse(s)
	if err != nil {
		return nil, err
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("url %q: missing scheme or host", s)
	}
	return u, nil
}

func (p *Proxy) newVersionMetrics(version string) *versionMetrics {
	labels := metrics.Labels{"service": p.service, "version": version}
	vm := &versionMetrics{
		requests: p.registry.Counter("proxy_requests_total", labels),
		errors:   p.registry.Counter("proxy_request_errors_total", labels),
		msSum:    p.registry.Counter("proxy_upstream_ms_sum", labels),
		msCount:  p.registry.Counter("proxy_upstream_ms_count", labels),
		msLast:   p.registry.Gauge("proxy_upstream_ms_last", labels),
	}
	if obs := p.latencyObs; obs != nil {
		vm.record = func(ms float64) { obs("proxy_upstream_ms", labels, ms) }
	}
	return vm
}
