package httpx

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

type echo struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestServerStartShutdown(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"pong": "ok"})
	})
	srv, err := NewServer("127.0.0.1:0", mux)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Start()

	var out map[string]string
	if err := GetJSON(context.Background(), srv.URL()+"/ping", &out); err != nil {
		t.Fatalf("GetJSON: %v", err)
	}
	if out["pong"] != "ok" {
		t.Errorf("pong = %q", out["pong"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := GetJSON(context.Background(), srv.URL()+"/ping", &out); err == nil {
		t.Fatal("request after shutdown succeeded")
	}
}

func TestPostJSONRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in echo
		if err := ReadJSON(r, &in); err != nil {
			WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		in.Count++
		WriteJSON(w, http.StatusOK, in)
	}))
	defer ts.Close()

	var out echo
	err := PostJSON(context.Background(), ts.URL, echo{Name: "fastSearch", Count: 1}, &out)
	if err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if out.Name != "fastSearch" || out.Count != 2 {
		t.Errorf("out = %+v", out)
	}
}

func TestErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusConflict, "strategy already running")
	}))
	defer ts.Close()

	err := GetJSON(context.Background(), ts.URL, &struct{}{})
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type = %T (%v), want *Error", err, err)
	}
	if apiErr.StatusCode != http.StatusConflict {
		t.Errorf("status = %d, want 409", apiErr.StatusCode)
	}
	if !strings.Contains(apiErr.Message, "already running") {
		t.Errorf("message = %q", apiErr.Message)
	}
}

func TestReadJSONRejectsUnknownFieldsAndTrailing(t *testing.T) {
	mk := func(body string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(body))
		return r
	}
	var v echo
	if err := ReadJSON(mk(`{"name":"a","bogus":1}`), &v); err == nil {
		t.Error("unknown field accepted")
	}
	if err := ReadJSON(mk(`{"name":"a"} {"name":"b"}`), &v); err == nil {
		t.Error("trailing data accepted")
	}
	if err := ReadJSON(mk(`{"name":"a","count":3}`), &v); err != nil {
		t.Errorf("valid body rejected: %v", err)
	}
}

func TestPutJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			WriteError(w, http.StatusMethodNotAllowed, "want PUT")
			return
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	defer ts.Close()
	var out map[string]bool
	if err := PutJSON(context.Background(), ts.URL, echo{}, &out); err != nil {
		t.Fatalf("PutJSON: %v", err)
	}
	if !out["ok"] {
		t.Error("ok = false")
	}
}

func TestGetJSONNilTarget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]int{"n": 1})
	}))
	defer ts.Close()
	if err := PostJSON(context.Background(), ts.URL, nil, nil); err != nil {
		t.Fatalf("PostJSON nil target: %v", err)
	}
}
