package proxy

import (
	"fmt"
	"io"
	"net/http"
	"testing"

	"bifrost/internal/metrics"
)

func TestStickyStoreBoundedWithEvictions(t *testing.T) {
	evictions := metrics.NewRegistry().Counter("evictions", nil)
	s := newStickyStore(64, 4, evictions)

	const n = 200
	for i := 0; i < n; i++ {
		s.put(fmt.Sprintf("client-%d", i), "v1")
	}
	if got := s.len(); got > 64 {
		t.Errorf("store holds %d entries, capacity 64", got)
	}
	// Capacity is split over shards (rounded up), so the floor is a bit
	// below n - 64 but must be in that ballpark.
	if ev := evictions.Value(); ev < n-80 {
		t.Errorf("evictions = %v, want ≈ %d", ev, n-64)
	}
}

func TestStickyStoreClockKeepsHotEntries(t *testing.T) {
	// Single shard makes the clock sweep deterministic.
	s := newStickyStore(8, 1, nil)
	s.put("hot", "v1")
	for i := 0; i < 100; i++ {
		// Touch the hot entry (sets its reference bit), then insert a
		// cold one that forces an eviction once the shard is full.
		if _, ok := s.get("hot"); !ok {
			t.Fatalf("hot entry evicted after %d cold inserts", i)
		}
		s.put(fmt.Sprintf("cold-%d", i), "v2")
	}
	if v, ok := s.get("hot"); !ok || v != "v1" {
		t.Errorf("hot entry = %q, %v; want v1, true", v, ok)
	}
}

func TestStickyStoreRepeatPutKeepsFirstAssignment(t *testing.T) {
	s := newStickyStore(8, 1, nil)
	s.put("u", "v1")
	s.put("u", "v2")
	if v, _ := s.get("u"); v != "v1" {
		t.Errorf("assignment = %q, want first write v1", v)
	}
	if s.len() != 1 {
		t.Errorf("len = %d, want 1", s.len())
	}
}

// TestProxyStickyCapacityEnforced drives a sticky proxy with far more
// distinct clients than its configured capacity: the mapping table must
// stay bounded and the evictions must surface as a metric.
func TestProxyStickyCapacityEnforced(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	cfg := twoBackendConfig(a, b, 50, 50, true)
	p, err := New("product", cfg, WithSeed(7), WithStickyCapacity(32),
		WithTransport(stubTransport{}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)

	const clients = 500
	for i := 0; i < clients; i++ {
		req := newRecordedRequest(t, p, fmt.Sprintf("123e4567-e89b-42d3-a456-4266141%05d", i))
		if req != http.StatusOK {
			t.Fatalf("client %d: status %d", i, req)
		}
	}
	if got := len(p.Mappings()); got > 32 {
		t.Errorf("sticky mappings = %d, want ≤ capacity 32", got)
	}
	var evictions float64
	for _, pt := range p.Registry().Gather() {
		if pt.Name == "proxy_sticky_evictions_total" {
			evictions = pt.Value
		}
	}
	if evictions < clients-48 {
		t.Errorf("proxy_sticky_evictions_total = %v, want ≈ %d", evictions, clients-32)
	}
}

// newRecordedRequest sends one in-process request with the given client
// cookie through the proxy and returns the status code.
func newRecordedRequest(t *testing.T, p *Proxy, cookieVal string) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, "http://front/x", nil)
	req.AddCookie(&http.Cookie{Name: CookieName, Value: cookieVal})
	rec := newStatusRecorder()
	p.ServeHTTP(rec, req)
	return rec.status
}

// stubTransport answers every round trip in-process; benchmarks and
// capacity tests use it to measure the proxy alone, not the network.
type stubTransport struct{}

func (stubTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Body != nil {
		_, _ = io.Copy(io.Discard, r.Body)
		_ = r.Body.Close()
	}
	return &http.Response{
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        make(http.Header),
		Body:          http.NoBody,
		ContentLength: 0,
		Request:       r,
	}, nil
}

// statusRecorder is a minimal ResponseWriter for in-process routing tests
// and benchmarks (httptest.ResponseRecorder allocates more than we want in
// the contention benchmarks).
type statusRecorder struct {
	h      http.Header
	status int
}

func newStatusRecorder() *statusRecorder {
	return &statusRecorder{h: make(http.Header), status: http.StatusOK}
}

func (r *statusRecorder) Header() http.Header         { return r.h }
func (r *statusRecorder) WriteHeader(code int)        { r.status = code }
func (r *statusRecorder) Write(b []byte) (int, error) { return len(b), nil }

// TestStickyStoreExactBoundSmallCapacity: capacities that do not divide
// evenly by the shard count (or are below it) must still respect the
// configured total bound.
func TestStickyStoreExactBoundSmallCapacity(t *testing.T) {
	for _, capacity := range []int{4, 10, 17} {
		s := newStickyStore(capacity, 16, nil)
		for i := 0; i < 300; i++ {
			s.put(fmt.Sprintf("c-%d", i), "v")
		}
		if got := s.len(); got > capacity {
			t.Errorf("capacity %d: store holds %d entries", capacity, got)
		}
	}
}
