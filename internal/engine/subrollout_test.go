package engine

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/journal"
)

// subChild builds a child strategy whose single gated phase passes or fails
// by a constant check: canary → (full | fallback).
func subChild(name string, eval core.Evaluator, interval time.Duration, executions int) *core.Strategy {
	return &core.Strategy{
		Name:     name,
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "canary",
			Finals: []string{"full", "fallback"},
			States: []core.State{
				{
					ID: "canary",
					Checks: []core.Check{{
						Name:       "errors",
						Kind:       core.BasicCheck,
						Eval:       eval,
						Interval:   interval,
						Executions: executions,
						Weight:     1,
						Thresholds: []int{executions - 1},
						Outputs:    []int{-1, 1},
					}},
					Thresholds:  []int{0},
					Transitions: []string{"fallback", "full"},
					Routing:     routeTo(95, 5),
				},
				{ID: "full", Routing: routeTo(0, 100)},
				{ID: "fallback", Routing: routeTo(100, 0)},
			},
		},
	}
}

// subParent wraps child refs into a parent: regions → (done | holdback).
func subParent(name string, sub *core.SubRollout) *core.Strategy {
	return &core.Strategy{
		Name:     name,
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "regions",
			Finals: []string{"done", "holdback"},
			States: []core.State{
				{
					ID:          "regions",
					Sub:         sub,
					Thresholds:  []int{0},
					Transitions: []string{"holdback", "done"},
				},
				{ID: "done"},
				{ID: "holdback"},
			},
		},
	}
}

func childRef(s *core.Strategy, region string) core.ChildRef {
	return core.ChildRef{
		Name: s.Name, Region: region, SuccessFinal: "full", Strategy: s,
	}
}

func TestSubRolloutQuorumPromotes(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	eu := subChild("hier-eu", core.ConstEvaluator(true), time.Millisecond, 3)
	us := subChild("hier-us", core.ConstEvaluator(true), time.Millisecond, 3)
	ap := subChild("hier-ap", core.ConstEvaluator(false), time.Millisecond, 3)
	parent := subParent("hier", &core.SubRollout{
		Children: []core.ChildRef{childRef(eu, "eu"), childRef(us, "us"), childRef(ap, "ap")},
		Quorum:   2,
	})

	run, err := eng.Enact(parent)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("parent state = %s (%s)", st.State, st.Error)
	}
	last := st.Path[len(st.Path)-1]
	if last.To != "done" || last.Outcome != 1 || last.Cause != "quorum" {
		t.Fatalf("final transition = %+v, want regions→done outcome 1 cause quorum", last)
	}

	// The failing region fell back on its own — it was not aborted.
	apRun, ok := eng.Run("hier-ap")
	if !ok {
		t.Fatal("failing child not registered")
	}
	apSt := waitDone(t, apRun)
	if apSt.State != RunCompleted || apSt.Current != "fallback" {
		t.Fatalf("failing child = %s in %q, want completed in fallback", apSt.State, apSt.Current)
	}

	// The parent's Children mirror shows the full region tree.
	if len(st.Children) != 3 {
		t.Fatalf("children = %+v, want 3 entries", st.Children)
	}
	passed := 0
	for _, c := range st.Children {
		if c.Passed {
			passed++
		}
		if c.Region == "" {
			t.Errorf("child %s lost its region label", c.Name)
		}
	}
	if passed < 2 {
		t.Errorf("children = %+v, want >= 2 passed", st.Children)
	}

	// The linkage events landed in the parent's history.
	evs := eng.RunEvents("hier", 0)
	var scheduled, terminal int
	for _, ev := range evs {
		switch ev.Type {
		case EventChildScheduled:
			scheduled++
		case EventChildTerminal:
			terminal++
		}
	}
	if scheduled != 3 {
		t.Errorf("child_scheduled events = %d, want 3", scheduled)
	}
	if terminal < 2 {
		t.Errorf("child_terminal events = %d, want >= 2", terminal)
	}
}

func TestSubRolloutQuorumUnreachableFailsEarly(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	// Quorum 0 means all three regions must pass; the slow failing region
	// makes early failure (passes + running < need) the only way to finish
	// fast once two fail.
	eu := subChild("unq-eu", core.ConstEvaluator(false), time.Millisecond, 3)
	us := subChild("unq-us", core.ConstEvaluator(false), time.Millisecond, 3)
	ap := subChild("unq-ap", core.ConstEvaluator(true), 20*time.Millisecond, 200)
	parent := subParent("unq", &core.SubRollout{
		Children: []core.ChildRef{childRef(eu, "eu"), childRef(us, "us"), childRef(ap, "ap")},
	})

	run, err := eng.Enact(parent)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	last := st.Path[len(st.Path)-1]
	if last.To != "holdback" || last.Cause != "quorum_failed" {
		t.Fatalf("final transition = %+v, want regions→holdback cause quorum_failed", last)
	}
	// The fallback policy contains failures: the still-running region was
	// NOT aborted by the parent's failure.
	apRun, _ := eng.Run("unq-ap")
	if apRun.Done() {
		if s := apRun.Status(); s.State == RunAborted {
			t.Fatalf("sibling was aborted under fallback policy: %+v", s)
		}
	}
	apRun.Abort() // clean shutdown
}

func TestSubRolloutAbortPolicy(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	bad := subChild("abr-eu", core.ConstEvaluator(false), time.Millisecond, 2)
	slow1 := subChild("abr-us", core.ConstEvaluator(true), 20*time.Millisecond, 500)
	slow2 := subChild("abr-ap", core.ConstEvaluator(true), 20*time.Millisecond, 500)
	parent := subParent("abr", &core.SubRollout{
		Children:    []core.ChildRef{childRef(bad, "eu"), childRef(slow1, "us"), childRef(slow2, "ap")},
		Quorum:      2,
		OnChildFail: core.ChildFailAbort,
	})

	run, err := eng.Enact(parent)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	last := st.Path[len(st.Path)-1]
	if last.To != "holdback" || last.Cause != "child_failure" {
		t.Fatalf("final transition = %+v, want regions→holdback cause child_failure", last)
	}
	for _, name := range []string{"abr-us", "abr-ap"} {
		r, ok := eng.Run(name)
		if !ok {
			t.Fatalf("sibling %s not registered", name)
		}
		s := waitDone(t, r)
		if s.State != RunAborted {
			t.Errorf("sibling %s = %s, want aborted (abort policy)", name, s.State)
		}
	}
}

func TestSubRolloutRejectsPause(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	slow := subChild("nop-eu", core.ConstEvaluator(true), 20*time.Millisecond, 500)
	parent := subParent("nop", &core.SubRollout{
		Children: []core.ChildRef{childRef(slow, "eu")},
	})
	run, err := eng.Enact(parent)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	waitState(t, run, "regions")
	if _, err := run.Pause(); err == nil || !strings.Contains(err.Error(), "cannot be paused") {
		t.Fatalf("Pause on sub-rollout state: err = %v, want rejection", err)
	}
	// Manual promote overrides the quorum like any other gate.
	if err := run.Promote(""); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted || st.Current != "done" {
		t.Fatalf("after promote: %s in %q", st.State, st.Current)
	}
	if r, ok := eng.Run("nop-eu"); ok {
		r.Abort()
	}
}

func waitState(t *testing.T, r *Run, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if r.Status().Current == state {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run never reached state %q (at %q)", state, r.Status().Current)
}

// TestFlatRunsCarryNoChildKeys is the byte-identity guard: a flat strategy's
// journal records and status must not gain a single new key from the
// hierarchical machinery.
func TestFlatRunsCarryNoChildKeys(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 3)
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)

	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"children", "child", "region", "childState", "childPhase"} {
		if strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("flat run status contains key %q: %s", key, raw)
		}
	}
	for _, ev := range eng.RunEvents(s.Name, 0) {
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"child", "region", "childState", "childPhase"} {
			if strings.Contains(string(raw), `"`+key+`"`) {
				t.Errorf("flat run event %s contains key %q: %s", ev.Type, key, raw)
			}
		}
	}
}

// TestSubRolloutRecovery suspends an engine mid-sub-rollout and recovers it
// on the same journal: the parent must re-link to its children (no fresh
// child_scheduled events), pick up their terminals, and promote exactly
// once.
func TestSubRolloutRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() *Engine {
		js, err := OpenJournal(dir, journal.Options{FlushInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		return New(WithJournalSet(js))
	}

	eu := subChild("rec-eu", core.ConstEvaluator(true), 5*time.Millisecond, 10)
	us := subChild("rec-us", core.ConstEvaluator(true), 5*time.Millisecond, 10)
	parent := subParent("rec", &core.SubRollout{
		Children: []core.ChildRef{childRef(eu, "eu"), childRef(us, "us")},
		Quorum:   2,
	})
	compile := func(src string) (*core.Strategy, error) {
		switch src {
		case "src-rec":
			return parent, nil
		case "src-rec-eu":
			return eu, nil
		case "src-rec-us":
			return us, nil
		}
		return nil, fmt.Errorf("unknown source %q", src)
	}
	// The children carry their sources so the engine can journal and
	// recover them independently of the parent.
	parent.Automaton.States[0].Sub.Children[0].Source = "src-rec-eu"
	parent.Automaton.States[0].Sub.Children[1].Source = "src-rec-us"

	eng := open()
	run, err := eng.EnactSource(parent, "src-rec")
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	waitState(t, run, "regions")
	// Let the children get scheduled before suspending.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := eng.Run("rec-eu"); ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	eng.Suspend()

	eng2 := open()
	defer eng2.Shutdown()
	report, err := eng2.Recover(compile)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for name, reason := range report.Skipped {
		t.Fatalf("recovery skipped %s: %s", name, reason)
	}
	run2, ok := eng2.Run("rec")
	if !ok {
		t.Fatal("parent not recovered")
	}
	st := waitDone(t, run2)
	if st.State != RunCompleted || st.Current != "done" {
		t.Fatalf("recovered parent = %s in %q (%s)", st.State, st.Current, st.Error)
	}
	last := st.Path[len(st.Path)-1]
	if last.Cause != "quorum" {
		t.Fatalf("final transition = %+v, want cause quorum", last)
	}

	// Exactly one promote decision and one scheduled announcement per child
	// across both lives.
	evs := eng2.RunEvents("rec", 0)
	announced := map[string]int{}
	transitions := 0
	for _, ev := range evs {
		if ev.Type == EventChildScheduled {
			announced[ev.Child]++
		}
		if ev.Type == EventTransition && ev.State == "regions" {
			transitions++
		}
	}
	for child, n := range announced {
		if n != 1 {
			t.Errorf("child %s announced %d times, want 1", child, n)
		}
	}
	if transitions != 1 {
		t.Errorf("regions state transitioned %d times, want exactly 1", transitions)
	}
	if len(st.Children) != 2 || !st.Children[0].Passed || !st.Children[1].Passed {
		t.Errorf("recovered children mirror = %+v", st.Children)
	}
}
