package abtest

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportionsClearWinner(t *testing.T) {
	// A converts 15%, B converts 10%, large n → A wins.
	v, err := Proportions(1500, 10000, 1000, 10000, 0.05)
	if err != nil {
		t.Fatalf("Proportions: %v", err)
	}
	if !v.Significant || v.Winner != "A" {
		t.Errorf("verdict = %+v, want significant A win", v)
	}
	if v.PValue > 0.001 {
		t.Errorf("p = %v, want tiny", v.PValue)
	}
	if math.Abs(v.Effect-0.05) > 1e-9 {
		t.Errorf("effect = %v, want 0.05", v.Effect)
	}
	if !strings.Contains(v.String(), "A wins") {
		t.Errorf("String = %q", v.String())
	}
}

func TestProportionsNoDifference(t *testing.T) {
	v, err := Proportions(100, 1000, 103, 1000, 0.05)
	if err != nil {
		t.Fatalf("Proportions: %v", err)
	}
	if v.Significant {
		t.Errorf("verdict = %+v, want not significant", v)
	}
	if v.Winner != "" {
		t.Errorf("winner = %q, want none", v.Winner)
	}
	if !strings.Contains(v.String(), "no significant") {
		t.Errorf("String = %q", v.String())
	}
}

func TestProportionsSmallSampleNotSignificant(t *testing.T) {
	// 2/10 vs 1/10 looks like a 2× difference but cannot be significant.
	v, err := Proportions(2, 10, 1, 10, 0.05)
	if err != nil {
		t.Fatalf("Proportions: %v", err)
	}
	if v.Significant {
		t.Errorf("tiny sample significant: %+v", v)
	}
}

func TestProportionsDegenerate(t *testing.T) {
	v, err := Proportions(0, 100, 0, 100, 0.05)
	if err != nil || v.Significant {
		t.Errorf("all-zero: %+v, %v", v, err)
	}
	v, err = Proportions(100, 100, 100, 100, 0.05)
	if err != nil || v.Significant {
		t.Errorf("all-one: %+v, %v", v, err)
	}
}

func TestProportionsErrors(t *testing.T) {
	cases := [][4]int{
		{0, 0, 0, 0},
		{5, 4, 1, 10}, // successes > trials
		{-1, 10, 1, 10},
	}
	for _, c := range cases {
		if _, err := Proportions(c[0], c[1], c[2], c[3], 0.05); err == nil {
			t.Errorf("Proportions(%v) succeeded", c)
		}
	}
}

func TestWelchDetectsMeanShift(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = 100 + r.NormFloat64()*10 // product A: mean basket 100
		b[i] = 95 + r.NormFloat64()*10  // product B: mean basket 95
	}
	v, err := Welch(Summarize(a), Summarize(b), 0.05)
	if err != nil {
		t.Fatalf("Welch: %v", err)
	}
	if !v.Significant || v.Winner != "A" {
		t.Errorf("verdict = %+v, want A wins", v)
	}
}

func TestWelchNoShift(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = 50 + r.NormFloat64()*5
		b[i] = 50 + r.NormFloat64()*5
	}
	v, err := Welch(Summarize(a), Summarize(b), 0.01)
	if err != nil {
		t.Fatalf("Welch: %v", err)
	}
	if v.Significant {
		t.Errorf("verdict = %+v, want not significant", v)
	}
}

func TestWelchZeroVariance(t *testing.T) {
	a := Summarize([]float64{5, 5, 5})
	b := Summarize([]float64{3, 3, 3})
	v, err := Welch(a, b, 0.05)
	if err != nil {
		t.Fatalf("Welch: %v", err)
	}
	if !v.Significant || v.Winner != "A" {
		t.Errorf("verdict = %+v", v)
	}
	same, err := Welch(a, a, 0.05)
	if err != nil || same.Significant {
		t.Errorf("identical: %+v, %v", same, err)
	}
}

func TestWelchInsufficient(t *testing.T) {
	if _, err := Welch(Summary{N: 1}, Summary{N: 5, Var: 1}, 0.05); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	// Sample variance with n−1 denominator: 32/7.
	if math.Abs(s.Var-32.0/7.0) > 1e-9 {
		t.Errorf("var = %v, want %v", s.Var, 32.0/7.0)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary wrong")
	}
	one := Summarize([]float64{42})
	if one.N != 1 || one.Mean != 42 || one.Var != 0 {
		t.Errorf("single = %+v", one)
	}
}

// Property: p-values are valid probabilities and symmetric in A/B swap.
func TestProportionSymmetryProperty(t *testing.T) {
	f := func(sa, sb uint8) bool {
		trials := 200
		a, b := int(sa)%trials, int(sb)%trials
		v1, err1 := Proportions(a, trials, b, trials, 0.05)
		v2, err2 := Proportions(b, trials, a, trials, 0.05)
		if err1 != nil || err2 != nil {
			return false
		}
		if v1.PValue < 0 || v1.PValue > 1 {
			return false
		}
		if math.Abs(v1.PValue-v2.PValue) > 1e-12 {
			return false
		}
		// Swapping the arms flips the winner.
		if v1.Significant != v2.Significant {
			return false
		}
		if v1.Significant && v1.Winner == v2.Winner {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := normalCDF(c.x); math.Abs(got-c.want) > 0.001 {
			t.Errorf("normalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
