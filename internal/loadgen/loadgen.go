// Package loadgen is the workload generator of the evaluation — the
// standard-library substitute for the Apache JMeter instance the paper used
// to "simulate production traffic" (§5.1.2).
//
// It reproduces the paper's test suite: a pool of logged-in users issuing a
// weighted mix of Buy, Details, Products, and Search requests against the
// case-study gateway at a steady request rate after a ramp-up period, with
// per-request latency recording, 3-second moving-average series, and
// summary statistics (mean/min/max/sd/median) over arbitrary windows —
// exactly the numbers Figure 6 and Table 1 report.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/cookiejar"
	"sort"
	"strings"
	"sync"
	"time"

	"bifrost/internal/httpx"
)

// RequestKind enumerates the paper's four request types.
type RequestKind int

// The JMeter test-suite request types.
const (
	Buy RequestKind = iota + 1
	Details
	Products
	Search
)

// String implements fmt.Stringer.
func (k RequestKind) String() string {
	switch k {
	case Buy:
		return "buy"
	case Details:
		return "details"
	case Products:
		return "products"
	case Search:
		return "search"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// WeightedRequest gives one request kind a share of the mix.
type WeightedRequest struct {
	Kind   RequestKind
	Weight float64
}

// DefaultMix is the uniform four-request mix of the paper's test suite.
func DefaultMix() []WeightedRequest {
	return []WeightedRequest{
		{Kind: Buy, Weight: 1},
		{Kind: Details, Weight: 1},
		{Kind: Products, Weight: 1},
		{Kind: Search, Weight: 1},
	}
}

// Config parameterizes a load test.
type Config struct {
	// BaseURL is the application entry point (the gateway).
	BaseURL string
	// RPS is the steady request rate after ramp-up.
	RPS float64
	// Duration is the steady-state duration (excluding ramp-up).
	Duration time.Duration
	// RampUp linearly increases the rate from 0 to RPS ("a ramp up
	// period of 30 seconds to slowly increase the load").
	RampUp time.Duration
	// Users is the size of the logged-in user pool (default 25). Each
	// user keeps a cookie jar, so sticky sessions behave like browsers.
	Users int
	// Mix is the request mix; DefaultMix when nil.
	Mix []WeightedRequest
	// ProductIDs are the ids Details/Buy draw from.
	ProductIDs []string
	// SearchTerms are the queries Search draws from.
	SearchTerms []string
	// Seed makes the workload reproducible.
	Seed int64
	// MaxInFlight bounds concurrent requests (default 256).
	MaxInFlight int
}

// Sample is one completed request.
type Sample struct {
	// Offset is the time since the load test started.
	Offset time.Duration
	// Latency is the service time: request sent to response drained.
	Latency time.Duration
	// Sched is the request's intended start per the open-loop schedule;
	// Corrected is the latency measured from that intended start, so time
	// a request spent queued behind a stalled server (or the in-flight
	// cap) counts against it. This is the coordinated-omission-corrected
	// number: a generator that only measures Latency lets a 500ms server
	// stall vanish from the percentiles, because the requests that
	// *should* have been issued during the stall were silently delayed.
	Sched     time.Duration
	Corrected time.Duration
	Kind      RequestKind
	Status    int
	Err       bool
}

// Result collects a load test's samples.
type Result struct {
	Start   time.Time
	Samples []Sample
	// CorrectedHist and ServiceHist are HdrHistogram-style aggregates of
	// every sample's Corrected and Latency values, recorded lock-free as
	// requests complete. CorrectedHist is the one to quote for tail
	// latency under load.
	CorrectedHist *Hist
	ServiceHist   *Hist
}

// Stats summarizes latencies in milliseconds, Table-1 style.
type Stats struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	SD     float64
	Median float64
	P99    float64
	// Errors counts failed requests (transport errors or HTTP ≥ 500).
	Errors int
}

// user is one logged-in synthetic client.
type user struct {
	token  string
	client *http.Client
}

// Run executes the load test until the configured duration (plus ramp-up)
// elapses or ctx is cancelled.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" || cfg.RPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: need BaseURL, RPS and Duration")
	}
	if cfg.Users <= 0 {
		cfg.Users = 25
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix()
	}
	if len(cfg.ProductIDs) == 0 {
		cfg.ProductIDs = []string{"p-000"}
	}
	if len(cfg.SearchTerms) == 0 {
		cfg.SearchTerms = []string{"tv", "laptop", "phone"}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))

	users, err := loginUsers(ctx, cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Start: time.Now(), CorrectedHist: &Hist{}, ServiceHist: &Hist{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.MaxInFlight)

	total := cfg.RampUp + cfg.Duration
	deadline := res.Start.Add(total)

	// Open-loop dispatcher: a 10ms tick computes how many requests are
	// due given the (ramping) target rate and dispatches them. The
	// dispatcher never blocks on the in-flight cap — each request's
	// goroutine waits for its semaphore slot itself, with the clock on
	// the intended start already running, so a saturated or stalled
	// server inflates the corrected latencies instead of silently
	// slowing the schedule (coordinated omission).
	const tick = 10 * time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var issued float64
	var due float64

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case now := <-ticker.C:
			if now.After(deadline) {
				break loop
			}
			elapsed := now.Sub(res.Start)
			rate := cfg.RPS
			if cfg.RampUp > 0 && elapsed < cfg.RampUp {
				rate = cfg.RPS * float64(elapsed) / float64(cfg.RampUp)
			}
			due += rate * tick.Seconds()
			for issued < due {
				issued++
				u := users[rng.Intn(len(users))]
				kind := pickKind(rng, cfg.Mix)
				productID := cfg.ProductIDs[rng.Intn(len(cfg.ProductIDs))]
				term := cfg.SearchTerms[rng.Intn(len(cfg.SearchTerms))]
				intended := now
				wg.Add(1)
				go func() {
					defer wg.Done()
					select {
					case sem <- struct{}{}:
					case <-ctx.Done():
						return
					}
					defer func() { <-sem }()
					s := issueRequest(ctx, cfg.BaseURL, u, kind, productID, term, res.Start)
					s.Sched = intended.Sub(res.Start)
					s.Corrected = time.Since(intended)
					res.CorrectedHist.Record(s.Corrected)
					res.ServiceHist.Record(s.Latency)
					mu.Lock()
					res.Samples = append(res.Samples, s)
					mu.Unlock()
				}()
			}
		}
	}
	wg.Wait()
	sort.Slice(res.Samples, func(i, j int) bool {
		return res.Samples[i].Offset < res.Samples[j].Offset
	})
	return res, nil
}

func loginUsers(ctx context.Context, cfg Config) ([]*user, error) {
	users := make([]*user, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		jar, err := cookiejar.New(nil)
		if err != nil {
			return nil, fmt.Errorf("loadgen: cookie jar: %w", err)
		}
		client := &http.Client{Timeout: 30 * time.Second, Jar: jar}
		var login map[string]string
		err = httpx.PostJSON(ctx, cfg.BaseURL+"/auth/login", map[string]string{
			"email":    fmt.Sprintf("user-%d@example.com", i),
			"password": "secret",
		}, &login)
		if err != nil {
			return nil, fmt.Errorf("loadgen: login user %d: %w", i, err)
		}
		users = append(users, &user{token: login["token"], client: client})
	}
	return users, nil
}

func pickKind(rng *rand.Rand, mix []WeightedRequest) RequestKind {
	var total float64
	for _, m := range mix {
		total += m.Weight
	}
	x := rng.Float64() * total
	for _, m := range mix {
		x -= m.Weight
		if x < 0 {
			return m.Kind
		}
	}
	return mix[len(mix)-1].Kind
}

func issueRequest(ctx context.Context, base string, u *user, kind RequestKind,
	productID, term string, start time.Time) Sample {

	var req *http.Request
	var err error
	switch kind {
	case Buy:
		body := fmt.Sprintf(`{"productId":%q}`, productID)
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/products/buy", strings.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	case Details:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/products/"+productID, nil)
	case Products:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/products", nil)
	case Search:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/products/search?q="+term, nil)
	}
	if err != nil {
		return Sample{Offset: time.Since(start), Kind: kind, Err: true}
	}
	req.Header.Set("Authorization", "Bearer "+u.token)

	t0 := time.Now()
	resp, err := u.client.Do(req)
	latency := time.Since(t0)
	s := Sample{
		Offset:  t0.Sub(start),
		Latency: latency,
		Kind:    kind,
	}
	if err != nil {
		s.Err = true
		return s
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 16<<20))
	_ = resp.Body.Close()
	s.Status = resp.StatusCode
	s.Err = resp.StatusCode >= 500
	return s
}

// Window returns the samples with from ≤ Offset < to.
func (r *Result) Window(from, to time.Duration) []Sample {
	out := make([]Sample, 0, 256)
	for _, s := range r.Samples {
		if s.Offset >= from && s.Offset < to {
			out = append(out, s)
		}
	}
	return out
}

// StatsOf summarizes a sample slice.
func StatsOf(samples []Sample) Stats {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	lat := make([]float64, 0, len(samples))
	var sum float64
	for _, s := range samples {
		if s.Err {
			st.Errors++
		}
		ms := float64(s.Latency.Microseconds()) / 1000
		lat = append(lat, ms)
		sum += ms
		if ms < st.Min {
			st.Min = ms
		}
		if ms > st.Max {
			st.Max = ms
		}
	}
	st.Count = len(lat)
	if st.Count == 0 {
		return Stats{}
	}
	st.Mean = sum / float64(st.Count)
	var ss float64
	for _, v := range lat {
		d := v - st.Mean
		ss += d * d
	}
	if st.Count > 1 {
		st.SD = math.Sqrt(ss / float64(st.Count-1))
	}
	sort.Float64s(lat)
	mid := st.Count / 2
	if st.Count%2 == 1 {
		st.Median = lat[mid]
	} else {
		st.Median = (lat[mid-1] + lat[mid]) / 2
	}
	st.P99 = lat[(st.Count-1)*99/100]
	return st
}

// CorrectedStatsOf summarizes the coordinated-omission-corrected latencies
// of a sample slice: each sample contributes its Corrected value (latency
// from the intended start) instead of its service time.
func CorrectedStatsOf(samples []Sample) Stats {
	shifted := make([]Sample, len(samples))
	for i, s := range samples {
		s.Latency = s.Corrected
		shifted[i] = s
	}
	return StatsOf(shifted)
}

// StatsWindow summarizes the samples between from and to.
func (r *Result) StatsWindow(from, to time.Duration) Stats {
	return StatsOf(r.Window(from, to))
}

// SeriesPoint is one point of a moving-average series.
type SeriesPoint struct {
	// Offset is the window end, in seconds since test start.
	OffsetSeconds float64
	// MeanMillis is the average latency over the window.
	MeanMillis float64
	// Count is the number of samples in the window.
	Count int
}

// MovingAverage computes the paper's Figure-6 series: the mean latency over
// a sliding window (the paper uses 3 seconds), sampled every second.
func (r *Result) MovingAverage(window time.Duration) []SeriesPoint {
	if len(r.Samples) == 0 {
		return nil
	}
	end := r.Samples[len(r.Samples)-1].Offset
	points := make([]SeriesPoint, 0, int(end/time.Second)+1)
	for at := window; at <= end; at += time.Second {
		var sum float64
		var n int
		for _, s := range r.Window(at-window, at) {
			sum += float64(s.Latency.Microseconds()) / 1000
			n++
		}
		p := SeriesPoint{OffsetSeconds: at.Seconds(), Count: n}
		if n > 0 {
			p.MeanMillis = sum / float64(n)
		}
		points = append(points, p)
	}
	return points
}
