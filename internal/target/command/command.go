// Package command is the shell-out enactment target: services declare an
// argv in their deployment (`target: command` + `command: [prog, args…]`)
// and the runner invokes it on every state entry with the rendered
// routing state on stdin and identifying environment variables — a
// declarative escape hatch to external control planes (kubectl apply,
// an Envoy xDS bridge, a vendor flag API) without teaching the engine
// their protocols.
package command

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/target"
)

// Invocation is the JSON document written to the command's stdin: the
// routing state of one service in one strategy state.
type Invocation struct {
	Strategy   string            `json:"strategy"`
	Service    string            `json:"service"`
	State      string            `json:"state"`
	Generation int64             `json:"generation"`
	Sticky     bool              `json:"sticky"`
	Mode       string            `json:"mode,omitempty"` // "" or "header"
	Header     string            `json:"header,omitempty"`
	Variants   []Variant         `json:"variants"`
	Shadows    []core.ShadowRule `json:"shadows,omitempty"`
}

// Variant is one routable version with its normalized traffic share.
type Variant struct {
	Name     string  `json:"name"`
	Endpoint string  `json:"endpoint"`
	Weight   float64 `json:"weight"`
}

// Runner implements target.Target by executing each service's declared
// command. Commands are expected to be idempotent: the engine re-invokes
// them on recovery re-entries exactly as it re-pushes proxy configs.
type Runner struct {
	// Timeout bounds one invocation (default 30s).
	Timeout time.Duration
}

var _ target.Target = (*Runner)(nil)

// Apply implements target.Target.
func (r *Runner) Apply(ctx context.Context, s *core.Strategy, state *core.State,
	rc core.RoutingConfig, generation int64) error {

	svc, ok := s.FindService(rc.Service)
	if !ok {
		return fmt.Errorf("command: routing for unknown service %q", rc.Service)
	}
	if len(svc.Command) == 0 {
		return fmt.Errorf("command: service %q declares no command", rc.Service)
	}
	inv := Invocation{
		Strategy:   s.Name,
		Service:    rc.Service,
		Generation: generation,
		Sticky:     rc.Sticky,
		Shadows:    rc.Shadows,
	}
	if state != nil {
		inv.State = state.ID
	}
	if rc.Mode == core.RouteHeader {
		inv.Mode = "header"
		inv.Header = rc.Header
	}
	names, shares, err := rc.NormalizedWeights()
	if err != nil {
		return fmt.Errorf("command: %w", err)
	}
	for i, name := range names {
		v, ok := svc.FindVersion(name)
		if !ok {
			return fmt.Errorf("command: unknown version %q of %q", name, rc.Service)
		}
		inv.Variants = append(inv.Variants, Variant{
			Name: name, Endpoint: v.Endpoint, Weight: shares[i],
		})
	}
	payload, err := json.Marshal(inv)
	if err != nil {
		return fmt.Errorf("command: encode invocation: %w", err)
	}

	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	cmd := exec.CommandContext(cctx, svc.Command[0], svc.Command[1:]...)
	// Grandchildren inheriting the output pipe must not stall the engine
	// past the deadline: give up on their output shortly after the kill.
	cmd.WaitDelay = time.Second
	cmd.Stdin = bytes.NewReader(payload)
	cmd.Env = append(os.Environ(),
		"BIFROST_STRATEGY="+s.Name,
		"BIFROST_SERVICE="+rc.Service,
		"BIFROST_STATE="+inv.State,
		fmt.Sprintf("BIFROST_GENERATION=%d", generation),
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		msg := string(bytes.TrimSpace(out))
		if msg != "" {
			return fmt.Errorf("command: %q for service %q: %w: %s",
				svc.Command[0], rc.Service, err, msg)
		}
		return fmt.Errorf("command: %q for service %q: %w", svc.Command[0], rc.Service, err)
	}
	return nil
}

// Convergence implements target.Target: external control planes own their
// convergence story; the runner has nothing to observe.
func (r *Runner) Convergence(context.Context, string) []target.Convergence { return nil }

// Retire implements target.Target.
func (r *Runner) Retire(string) {}
