package sketch

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the empirical q-quantile (rank ⌈q·n⌉, 1-based) of
// sorted — the definition the sketch's error model is stated against.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// assertWithinAlpha fails unless est is within relative error alpha of the
// exact q-quantile of samples.
func assertWithinAlpha(t *testing.T, samples []float64, est, q, alpha float64) {
	t.Helper()
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	exact := exactQuantile(sorted, q)
	bound := alpha * math.Abs(exact)
	if bound == 0 {
		bound = 1e-12
	}
	if math.Abs(est-exact) > bound {
		t.Fatalf("q=%v: estimate %v vs exact %v — off by %v, bound %v",
			q, est, exact, math.Abs(est-exact), bound)
	}
}

var testQuantiles = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}

func generators(rng *rand.Rand) map[string]func() float64 {
	return map[string]func() float64{
		"uniform":   func() float64 { return 1 + 99*rng.Float64() },
		"lognormal": func() float64 { return math.Exp(3 + 1.2*rng.NormFloat64()) },
		"bimodal": func() float64 {
			if rng.Float64() < 0.8 {
				return 20 + 5*rng.NormFloat64()
			}
			return 200 + 20*rng.NormFloat64()
		},
		"heavytail": func() float64 { return 10 / math.Pow(rng.Float64(), 0.7) },
	}
}

func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, gen := range generators(rng) {
		t.Run(name, func(t *testing.T) {
			s := New(DefaultAlpha)
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := gen()
				samples = append(samples, v)
				s.Add(v)
			}
			for _, q := range testQuantiles {
				assertWithinAlpha(t, samples, s.Quantile(q), q, DefaultAlpha)
			}
		})
	}
}

// TestMergeMatchesConcatenation is the federation property: N sketches
// built from disjoint streams, merged, must answer quantiles within the
// alpha bound of the exact quantiles over the concatenated samples — and
// must be identical to the single sketch built from the full stream.
func TestMergeMatchesConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gens := generators(rng)
	// Each "replica" draws from a different distribution so the merged
	// shape is something none of the parts saw.
	parts := []string{"uniform", "lognormal", "bimodal", "heavytail"}

	merged := New(DefaultAlpha)
	direct := New(DefaultAlpha)
	var all []float64
	for _, name := range parts {
		part := New(DefaultAlpha)
		for i := 0; i < 5000; i++ {
			v := gens[name]()
			part.Add(v)
			direct.Add(v)
			all = append(all, v)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatalf("merge %s: %v", name, err)
		}
	}
	if merged.Count() != uint64(len(all)) {
		t.Fatalf("merged count %d, want %d", merged.Count(), len(all))
	}
	if math.Abs(merged.Sum()-direct.Sum()) > 1e-6*math.Abs(direct.Sum()) {
		t.Fatalf("merged sum %v, direct sum %v", merged.Sum(), direct.Sum())
	}
	for _, q := range testQuantiles {
		assertWithinAlpha(t, all, merged.Quantile(q), q, DefaultAlpha)
		// Merge must be lossless: identical answer to the direct sketch.
		if m, d := merged.Quantile(q), direct.Quantile(q); m != d {
			t.Fatalf("q=%v: merged %v != direct %v (merge not lossless)", q, m, d)
		}
	}
}

func TestMergeAlphaMismatch(t *testing.T) {
	a := New(0.01)
	b := New(0.02)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alpha must fail")
	}
	// Merging an empty sketch is a no-op regardless of alpha.
	if err := a.Merge(New(0.5)); err != nil {
		t.Fatalf("merging empty sketch: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil sketch: %v", err)
	}
}

func TestSummaryRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(DefaultAlpha)
	var samples []float64
	for i := 0; i < 10000; i++ {
		v := math.Exp(2 + rng.NormFloat64())
		samples = append(samples, v)
		s.Add(v)
	}
	s.Add(0) // exercise the zero bucket
	s.AddN(-5.5, 3)
	samples = append(samples, 0, -5.5, -5.5, -5.5)

	raw, err := json.Marshal(s.Export())
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatal(err)
	}
	back, err := FromSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != s.Count() || back.Sum() != s.Sum() ||
		back.Min() != s.Min() || back.Max() != s.Max() {
		t.Fatalf("moments changed over roundtrip: %+v vs %+v", back.Export(), s.Export())
	}
	for _, q := range testQuantiles {
		if a, b := s.Quantile(q), back.Quantile(q); a != b {
			t.Fatalf("q=%v changed over roundtrip: %v vs %v", q, a, b)
		}
		assertWithinAlpha(t, samples, back.Quantile(q), q, DefaultAlpha)
	}
}

func TestFromSummaryRejectsBadWire(t *testing.T) {
	cases := []Summary{
		{Alpha: 0, Count: 1},                     // bad alpha
		{Alpha: 2, Count: 1},                     // bad alpha
		{Alpha: 0.01, PosIdx: []int{1}},          // misaligned slices
		{Alpha: 0.01, Count: 5, Zero: 1},         // counts inconsistent
		{Alpha: 0.01, Count: 1, PosIdx: []int{3}, PosCnt: []uint64{2}}, // inconsistent
	}
	for i, c := range cases {
		if _, err := FromSummary(c); err == nil {
			t.Errorf("case %d: FromSummary accepted invalid summary %+v", i, c)
		}
	}
}

// TestCollapseBoundsMemory drives a huge dynamic range through a tiny
// sketch and checks the bucket bound holds while upper quantiles keep
// their guarantee.
func TestCollapseBoundsMemory(t *testing.T) {
	// At α = 1% a bucket covers ~2% of value, ≈115 buckets per decade;
	// 256 buckets keep ≈2.2 decades, so a 12-decade log-uniform stream
	// forces collapse while quantiles in the top two decades (q ≥ 0.85
	// here) keep their guarantee.
	const maxB = 256
	s := New(DefaultAlpha, WithMaxBuckets(maxB))
	rng := rand.New(rand.NewSource(4))
	var samples []float64
	for i := 0; i < 50000; i++ {
		v := math.Pow(10, -6+12*rng.Float64())
		samples = append(samples, v)
		s.Add(v)
	}
	if len(s.pos) > maxB {
		t.Fatalf("bucket bound violated: %d > %d", len(s.pos), maxB)
	}
	if !s.Collapsed() {
		t.Fatal("expected collapse on 12-decade range with 64 buckets")
	}
	if s.Count() != uint64(len(samples)) {
		t.Fatalf("collapse lost counts: %d vs %d", s.Count(), len(samples))
	}
	// Upper quantiles live far above the collapsed low tail.
	for _, q := range []float64{0.9, 0.95, 0.99, 0.999} {
		assertWithinAlpha(t, samples, s.Quantile(q), q, DefaultAlpha)
	}
}

func TestEmptyAndEdgeQuantiles(t *testing.T) {
	s := New(DefaultAlpha)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch must return NaN")
	}
	s.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Fatalf("single-value sketch q=%v: got %v", q, got)
		}
	}
	if s.Min() != 42 || s.Max() != 42 || s.Count() != 1 || s.Sum() != 42 {
		t.Fatal("single-value moments wrong")
	}
}

func TestNegativeValues(t *testing.T) {
	s := New(DefaultAlpha)
	var samples []float64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64() * 50 // mixed signs around zero
		samples = append(samples, v)
		s.Add(v)
	}
	for _, q := range testQuantiles {
		assertWithinAlpha(t, samples, s.Quantile(q), q, DefaultAlpha)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(DefaultAlpha)
	rng := rand.New(rand.NewSource(6))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = math.Exp(3 + rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&1023])
	}
}

func BenchmarkMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	parts := make([]*Sketch, 16)
	for i := range parts {
		parts[i] = New(DefaultAlpha)
		for j := 0; j < 10000; j++ {
			parts[i].Add(math.Exp(3 + rng.NormFloat64()))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := New(DefaultAlpha)
		for _, p := range parts {
			if err := dst.Merge(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}
