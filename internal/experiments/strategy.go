package experiments

import (
	"fmt"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/dsl"
)

// PhasePlan captures the compressed timing of the §5.1 release strategy.
// The paper ran 60-second phases and a 200-second gradual rollout; the
// defaults here compress that 380-second schedule by a configurable factor
// so tests and benches finish quickly, exactly as the paper itself
// compressed real-world multi-day phases into seconds.
type PhasePlan struct {
	// Canary, Dark, AB are the three fixed phase durations.
	Canary time.Duration
	Dark   time.Duration
	AB     time.Duration
	// RolloutStep is the per-step duration of the gradual rollout and
	// RolloutStepPct its traffic increment (paper: 10s and 5%).
	RolloutStep    time.Duration
	RolloutStepPct float64
	// CheckInterval is the canary checks' re-execution period (paper:
	// 12 seconds, re-executed 5 times inside the 60-second phase).
	CheckInterval time.Duration
	CheckCount    int
}

// PaperPhases returns the literal timing of §5.1.2: 60s+60s+60s+200s.
func PaperPhases() PhasePlan {
	return PhasePlan{
		Canary: 60 * time.Second, Dark: 60 * time.Second, AB: 60 * time.Second,
		RolloutStep: 10 * time.Second, RolloutStepPct: 5,
		CheckInterval: 12 * time.Second, CheckCount: 5,
	}
}

// QuickPhases compresses the schedule to roughly 1/20 for tests/benches.
func QuickPhases() PhasePlan {
	return PhasePlan{
		Canary: 3 * time.Second, Dark: 3 * time.Second, AB: 3 * time.Second,
		RolloutStep: 500 * time.Millisecond, RolloutStepPct: 10,
		CheckInterval: 600 * time.Millisecond, CheckCount: 5,
	}
}

// Total returns the specified execution time of the full strategy along
// its success path.
func (p PhasePlan) Total() time.Duration {
	steps := int(100/p.RolloutStepPct) + 0
	return p.Canary + p.Dark + p.AB + time.Duration(steps)*p.RolloutStep
}

// ReleaseStrategyYAML renders the §5.1.2 four-phase release strategy
// (canary → dark launch → A/B test → gradual rollout of the winner) in the
// Bifrost DSL, parameterized with the testbed's endpoints.
func ReleaseStrategyYAML(name string, tb *Testbed, plan PhasePlan) string {
	return fmt.Sprintf(`
name: %s
deployment:
  services:
    - service: product
      proxy: %s
      versions:
        - name: product
          endpoint: %s
        - name: productA
          endpoint: %s
        - name: productB
          endpoint: %s
providers:
  prometheus: %s
strategy:
  start: canary
  phases:
    - phase: canary
      description: canary launch of product A and B at 5%% each
      duration: %s
      routes:
        - route:
            service: product
            weights: {product: 90, productA: 5, productB: 5}
      checks:
        - metric:
            name: a_errors
            provider: prometheus
            query: shop_request_errors_total{version="productA"}
            intervalTime: %s
            intervalLimit: %d
            threshold: %d
            validator: "<5"
        - metric:
            name: b_errors
            provider: prometheus
            query: shop_request_errors_total{version="productB"}
            intervalTime: %s
            intervalLimit: %d
            threshold: %d
            validator: "<5"
      on:
        success: darklaunch
        failure: rollback
    - phase: darklaunch
      description: 100%% of product traffic duplicated to A and B
      duration: %s
      routes:
        - route:
            service: product
            weights: {product: 100}
            shadows:
              - target: productA
                percent: 100
              - target: productB
                percent: 100
      on:
        success: abtest
        failure: rollback
    - phase: abtest
      description: sticky 50/50 A/B test on sales performance
      duration: %s
      routes:
        - route:
            service: product
            weights: {productA: 50, productB: 50}
            sticky: true
      checks:
        - metric:
            name: sales_compare
            provider: prometheus
            query: shop_sales_total{version="productA"} - shop_sales_total{version="productB"}
            intervalLimit: 1
            validator: ">=0"
      thresholds: [0]
      transitions: [rollout-b, rollout-a]
    - phase: rollout-a
      gradual:
        service: product
        stable: product
        candidate: productA
        from: %g
        to: 100
        step: %g
        interval: %s
      on:
        success: done-a
    - phase: rollout-b
      gradual:
        service: product
        stable: product
        candidate: productB
        from: %g
        to: 100
        step: %g
        interval: %s
      on:
        success: done-b
    - phase: done-a
      description: product A fully rolled out, traffic reverted for teardown
      routes:
        - route:
            service: product
            weights: {product: 100}
    - phase: done-b
      routes:
        - route:
            service: product
            weights: {product: 100}
    - phase: rollback
      routes:
        - route:
            service: product
            weights: {product: 100}
`,
		name,
		tb.ProductProxySrv.URL(),
		tb.ProductVersions["product"].URL(),
		tb.ProductVersions["productA"].URL(),
		tb.ProductVersions["productB"].URL(),
		tb.MetricsSrv.URL(),
		plan.Canary,
		plan.CheckInterval, plan.CheckCount, plan.CheckCount,
		plan.CheckInterval, plan.CheckCount, plan.CheckCount,
		plan.Dark,
		plan.AB,
		plan.RolloutStepPct, plan.RolloutStepPct, plan.RolloutStep,
		plan.RolloutStepPct, plan.RolloutStepPct, plan.RolloutStep,
	)
}

// CompileReleaseStrategy compiles the release strategy against the testbed.
func CompileReleaseStrategy(name string, tb *Testbed, plan PhasePlan) (*core.Strategy, error) {
	return dsl.Compile(ReleaseStrategyYAML(name, tb, plan))
}
