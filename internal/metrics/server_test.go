package metrics

import (
	"context"
	"strings"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/httpx"
)

func startMetricsServer(t *testing.T, store *Store) (*httpx.Server, func()) {
	t.Helper()
	srv, err := httpx.NewServer("127.0.0.1:0", NewServer(store).Handler())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Start()
	return srv, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
}

func TestServerQueryEndpoint(t *testing.T) {
	clk := clock.NewManual(t0)
	store := NewStore(WithClock(clk))
	store.Append("request_errors", Labels{"instance": "search:80"}, 4, clk.Now())
	srv, stop := startMetricsServer(t, store)
	defer stop()

	c := &Client{BaseURL: srv.URL()}
	got, err := c.Query(context.Background(), `request_errors{instance="search:80"}`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got != 4 {
		t.Errorf("got %v, want 4", got)
	}
}

func TestServerQueryErrors(t *testing.T) {
	store := NewStore()
	srv, stop := startMetricsServer(t, store)
	defer stop()
	c := &Client{BaseURL: srv.URL()}

	if _, err := c.Query(context.Background(), "ghost"); err == nil {
		t.Error("no-data query succeeded")
	} else if !strings.Contains(err.Error(), "no data") {
		t.Errorf("error = %v, want no-data message", err)
	}
	if _, err := c.Query(context.Background(), "m{bad"); err == nil {
		t.Error("syntax-error query succeeded")
	}
	if _, err := c.Query(context.Background(), ""); err == nil {
		t.Error("empty query succeeded")
	}
}

func TestServerIngest(t *testing.T) {
	clk := clock.NewManual(t0)
	store := NewStore(WithClock(clk))
	srv, stop := startMetricsServer(t, store)
	defer stop()
	c := &Client{BaseURL: srv.URL()}

	err := c.Push(context.Background(), []IngestSample{
		{Name: "cpu_busy", Labels: map[string]string{"container": "engine"}, Value: 0.4},
		{Name: "cpu_busy", Labels: map[string]string{"container": "proxy"}, Value: 0.2,
			UnixNanos: t0.UnixNano()},
	})
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	got, err := c.Query(context.Background(), "sum(cpu_busy)")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got < 0.6-1e-9 || got > 0.6+1e-9 {
		t.Errorf("sum = %v, want ≈ 0.6", got)
	}
}

func TestServerSeriesAndHealth(t *testing.T) {
	store := NewStore()
	store.Append("alpha", nil, 1, time.Now())
	store.Append("beta", nil, 1, time.Now())
	srv, stop := startMetricsServer(t, store)
	defer stop()

	var names []string
	if err := httpx.GetJSON(context.Background(), srv.URL()+"/api/v1/series", &names); err != nil {
		t.Fatalf("series: %v", err)
	}
	if len(names) != 2 || names[0] != "alpha" {
		t.Errorf("names = %v", names)
	}
	var health map[string]string
	if err := httpx.GetJSON(context.Background(), srv.URL()+"/-/healthy", &health); err != nil {
		t.Fatalf("health: %v", err)
	}
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}
}
