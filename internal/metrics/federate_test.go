package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/sketch"
)

// buildBatches simulates one replica's agent: samples bucketed by width,
// closed buckets shipped in seq-numbered batches of one bucket each.
func buildBatches(replica, inc string, name string, labels Labels, samples []Sample, width time.Duration) []DeltaBatch {
	byStart := map[int64]*AggBucket{}
	var starts []int64
	for _, sm := range samples {
		start := BucketStart(sm.T, width)
		b, ok := byStart[start]
		if !ok {
			b = NewAggBucket(start, int64(width), sketch.DefaultAlpha)
			byStart[start] = b
			starts = append(starts, start)
		}
		b.Observe(sm.T.UnixNano(), sm.V)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]DeltaBatch, 0, len(starts))
	for i, start := range starts {
		out = append(out, DeltaBatch{
			Replica:     replica,
			Incarnation: inc,
			Seq:         uint64(i + 1),
			Buckets:     []BucketDelta{byStart[start].Export(name, labels)},
		})
	}
	return out
}

func fedTestSamples(rng *rand.Rand, base time.Time, n int) []Sample {
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		t := base.Add(time.Duration(i) * 50 * time.Millisecond)
		out = append(out, Sample{T: t, V: math.Exp(3 + 0.8*rng.NormFloat64())})
	}
	return out
}

// totals queries the federated aggregates the fault-injection tests
// compare across delivery schedules.
type fedTotals struct {
	count, sum, mean, p99 float64
}

func queryTotals(t *testing.T, s *Store, at time.Time, window time.Duration) fedTotals {
	t.Helper()
	sel := []LabelMatch(nil)
	cnt, err := s.WindowAggregate("count_over_time", 0, "fed_latency_ms", sel, window, at)
	if err != nil {
		t.Fatalf("count_over_time: %v", err)
	}
	sum, err := s.WindowAggregate("sum_over_time", 0, "fed_latency_ms", sel, window, at)
	if err != nil {
		t.Fatalf("sum_over_time: %v", err)
	}
	avg, err := s.WindowAggregate("avg_over_time", 0, "fed_latency_ms", sel, window, at)
	if err != nil {
		t.Fatalf("avg_over_time: %v", err)
	}
	p99, err := s.WindowAggregate("quantile_over_time", 0.99, "fed_latency_ms", sel, window, at)
	if err != nil {
		t.Fatalf("quantile_over_time: %v", err)
	}
	return fedTotals{count: cnt, sum: sum, mean: avg, p99: p99}
}

// TestApplyDeltaFaultInjection is the delta-shipping property test: the
// same batches delivered cleanly, with duplicates, reordered, and with
// drops-then-retries must all converge to identical federated totals.
func TestApplyDeltaFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := time.Unix(1_700_000_000, 0)
	labels := Labels{"service": "search"}

	var allBatches [][]DeltaBatch
	var allSamples []float64
	for _, replica := range []string{"r1", "r2", "r3"} {
		samples := fedTestSamples(rng, base, 600)
		for _, sm := range samples {
			allSamples = append(allSamples, sm.V)
		}
		allBatches = append(allBatches, buildBatches(replica, "inc-1", "fed_latency_ms", labels, samples, time.Second))
	}
	at := base.Add(time.Minute)
	const window = 2 * time.Minute

	newStore := func() *Store {
		clk := clock.NewManual(at)
		return NewStore(WithClock(clk))
	}

	// Schedule A: clean in-order delivery.
	clean := newStore()
	for _, batches := range allBatches {
		for _, b := range batches {
			if applied, err := clean.ApplyDelta(b); err != nil || !applied {
				t.Fatalf("clean delivery rejected batch %d: applied=%v err=%v", b.Seq, applied, err)
			}
		}
	}
	want := queryTotals(t, clean, at, window)

	// The exact p99 over every raw sample across the fleet must be within
	// the sketch's documented relative error of the federated answer.
	sort.Float64s(allSamples)
	exact := allSamples[int(math.Ceil(0.99*float64(len(allSamples))))-1]
	if math.Abs(want.p99-exact) > sketch.DefaultAlpha*exact {
		t.Fatalf("federated p99 %v vs exact %v exceeds alpha bound", want.p99, exact)
	}
	if want.count != float64(len(allSamples)) {
		t.Fatalf("federated count %v, want %d", want.count, len(allSamples))
	}

	// Schedule B: every batch delivered twice (duplicates).
	dup := newStore()
	for _, batches := range allBatches {
		for _, b := range batches {
			if _, err := dup.ApplyDelta(b); err != nil {
				t.Fatal(err)
			}
			applied, err := dup.ApplyDelta(b)
			if err != nil {
				t.Fatal(err)
			}
			if applied {
				t.Fatalf("duplicate batch seq=%d was applied twice", b.Seq)
			}
		}
	}

	// Schedule C: random global reorder across replicas.
	reorder := newStore()
	var flat []DeltaBatch
	for _, batches := range allBatches {
		flat = append(flat, batches...)
	}
	rng.Shuffle(len(flat), func(i, j int) { flat[i], flat[j] = flat[j], flat[i] })
	for _, b := range flat {
		if _, err := reorder.ApplyDelta(b); err != nil {
			t.Fatal(err)
		}
	}

	// Schedule D: every third delivery dropped, then the whole stream
	// retried from the top (at-least-once redelivery after loss).
	drop := newStore()
	for i, b := range flat {
		if i%3 == 2 {
			continue // dropped on the wire
		}
		if _, err := drop.ApplyDelta(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range flat { // retry pass
		if _, err := drop.ApplyDelta(b); err != nil {
			t.Fatal(err)
		}
	}

	for name, s := range map[string]*Store{"duplicate": dup, "reorder": reorder, "drop+retry": drop} {
		got := queryTotals(t, s, at, window)
		if got != want {
			t.Errorf("%s schedule diverged: got %+v want %+v", name, got, want)
		}
	}
}

// TestApplyDeltaIncarnationRestart models an agent restart: the new
// incarnation restarts seq at 1 and must not be deduplicated against the
// old incarnation's sequence numbers.
func TestApplyDeltaIncarnationRestart(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	at := base.Add(time.Minute)
	s := NewStore(WithClock(clock.NewManual(at)))
	labels := Labels{"service": "search"}
	rng := rand.New(rand.NewSource(12))

	first := buildBatches("r1", "inc-1", "fed_latency_ms", labels, fedTestSamples(rng, base, 100), time.Second)
	// Restarted incarnation observes a disjoint, later slice of traffic.
	second := buildBatches("r1", "inc-2", "fed_latency_ms", labels, fedTestSamples(rng, base.Add(10*time.Second), 100), time.Second)

	total := 0
	for _, b := range append(append([]DeltaBatch{}, first...), second...) {
		applied, err := s.ApplyDelta(b)
		if err != nil {
			t.Fatal(err)
		}
		if !applied {
			t.Fatalf("batch inc=%s seq=%d wrongly deduplicated", b.Incarnation, b.Seq)
		}
		for _, d := range b.Buckets {
			total += d.Count
		}
	}
	cnt, err := s.WindowAggregate("count_over_time", 0, "fed_latency_ms", nil, time.Hour, at)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != float64(total) {
		t.Fatalf("count across incarnations: got %v want %d", cnt, total)
	}
	if s.FederatedReplicaCount() != 2 {
		t.Fatalf("expected 2 cursors, got %d", s.FederatedReplicaCount())
	}
}

// TestApplyDeltaRejectsMalformed pins the validation contract: malformed
// batches error without being marked applied.
func TestApplyDeltaRejectsMalformed(t *testing.T) {
	s := NewStore()
	bad := []DeltaBatch{
		{Replica: "", Seq: 1},
		{Replica: "r1", Seq: 0},
		{Replica: "r1", Seq: 1, Buckets: []BucketDelta{{Name: "", Width: 1, Count: 1}}},
		{Replica: "r1", Seq: 1, Buckets: []BucketDelta{{Name: "x", Width: 0, Count: 1}}},
		{Replica: "r1", Seq: 1, Buckets: []BucketDelta{{Name: "x", Width: 1, Count: 0}}},
	}
	for i, b := range bad {
		if _, err := s.ApplyDelta(b); err == nil {
			t.Errorf("case %d: malformed batch accepted", i)
		}
	}
	// The failed seq 1 must still be applicable once well-formed.
	ok := DeltaBatch{Replica: "r1", Seq: 1, Buckets: []BucketDelta{
		NewAggBucketForTest(0, int64(time.Second), 5, 10).Export("x", nil),
	}}
	applied, err := s.ApplyDelta(ok)
	if err != nil || !applied {
		t.Fatalf("well-formed retry after malformed attempts: applied=%v err=%v", applied, err)
	}
}

// TestRemoteInstantAndRate covers the instant-query and counter paths of
// federated series: latestBefore from bucket lastT/lastV, and rate across
// bucket boundaries including a counter reset.
func TestRemoteInstantAndRate(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	at := base.Add(30 * time.Second)
	s := NewStore(WithClock(clock.NewManual(at)))

	// Cumulative counter sampled once per second: 10, 20, ..., then a
	// reset to 3 (restart), then 6.
	vals := []float64{10, 20, 30, 40, 3, 6}
	seq := uint64(0)
	for i, v := range vals {
		ts := base.Add(time.Duration(i) * time.Second)
		b := NewAggBucket(BucketStart(ts, time.Second), int64(time.Second), 0)
		b.Observe(ts.UnixNano(), v)
		seq++
		if _, err := s.ApplyDelta(DeltaBatch{
			Replica: "r1", Incarnation: "i", Seq: seq,
			Buckets: []BucketDelta{b.Export("req_total", Labels{"service": "s"})},
		}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.InstantValue("req_total", nil, "sum", at)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Fatalf("instant value: got %v want 6", v)
	}
	// Increase: (20-10)+(30-20)+(40-30) + reset-restart (3) + (6-3) = 36.
	inc, err := s.WindowAggregate("increase", 0, "req_total", nil, time.Minute, at)
	if err != nil {
		t.Fatal(err)
	}
	if inc != 36 {
		t.Fatalf("increase: got %v want 36", inc)
	}
}

// NewAggBucketForTest builds a bucket with n synthetic samples; helper
// for tests in this and other packages.
func NewAggBucketForTest(start, width int64, n int, base float64) *AggBucket {
	b := NewAggBucket(start, width, sketch.DefaultAlpha)
	for i := 0; i < n; i++ {
		b.Observe(start+int64(i), base+float64(i))
	}
	return b
}
