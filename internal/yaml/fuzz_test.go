package yaml

import (
	"reflect"
	"testing"
)

// FuzzParse exercises the parser with arbitrary input: it must never panic,
// and any successfully parsed document must re-encode and re-parse to the
// same value (Encode∘Parse is a retraction on the parser's image).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"key: value",
		"- a\n- b\n",
		"a:\n  b:\n    - 1\n    - {x: y}\n",
		"- metric:\n    providers:\n      - prometheus:\n          name: e\n",
		"literal: |\n  line\n  line2\n",
		"flow: [1, 2.5, true, null, \"s\"]\n",
		"q: \"with \\\"escape\\\" and \\u00e9\"\n",
		"# comment only\n",
		"---\nkey: value\n",
		"weights: {a: 95, b: 5}\n",
		"bad: [unterminated\n",
		"\t tab",
		"a: &anchor x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		enc, err := Encode(v)
		if err != nil {
			return // values with unsupported shapes cannot occur from Parse
		}
		back, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nencoded:\n%s", err, enc)
		}
		if !reflect.DeepEqual(back, v) {
			t.Fatalf("round trip mismatch:\nfirst:  %#v\nsecond: %#v\nencoded:\n%s", v, back, enc)
		}
	})
}
