package loadgen

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bifrost/internal/httpx"
)

// TestHistQuantileAccuracy pins the histogram's relative error: quantiles
// over a heavy-tailed sample set must land within the log-linear bucket
// width (1/32 ≈ 3%, plus the µs quantization floor) of the exact values.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := &Hist{}
	vals := make([]float64, 50_000)
	for i := range vals {
		// Lognormal microseconds spanning ~1µs to ~1s.
		us := math.Exp(8 + 2.2*rng.NormFloat64())
		vals[i] = us
		h.Record(time.Duration(us) * time.Microsecond)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := float64(h.Quantile(q).Microseconds())
		relErr := math.Abs(got-exact) / exact
		if relErr > 0.05 {
			t.Errorf("q%.3f: hist %v exact %v (rel err %.3f)", q, got, exact, relErr)
		}
	}
	if h.Count() != int64(len(vals)) {
		t.Errorf("count = %d, want %d", h.Count(), len(vals))
	}
	if got, want := float64(h.Max().Microseconds()), vals[len(vals)-1]; math.Abs(got-want) > 1 {
		t.Errorf("max = %v, want %v", got, want)
	}
}

// TestHistConcurrentRecordAndMerge: Record must be safe from many
// goroutines, and Merge must preserve total counts.
func TestHistConcurrentRecordAndMerge(t *testing.T) {
	shards := make([]*Hist, 4)
	var wg sync.WaitGroup
	for i := range shards {
		shards[i] = &Hist{}
		wg.Add(1)
		go func(h *Hist, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 10_000; j++ {
				h.Record(time.Duration(rng.Intn(1_000_000)) * time.Microsecond)
			}
		}(shards[i], int64(i))
	}
	wg.Wait()
	total := &Hist{}
	for _, h := range shards {
		total.Merge(h)
	}
	if total.Count() != 40_000 {
		t.Errorf("merged count = %d, want 40000", total.Count())
	}
	if total.Quantile(0.5) <= 0 || total.Mean() <= 0 {
		t.Errorf("merged stats: q50=%v mean=%v", total.Quantile(0.5), total.Mean())
	}
}

// TestCoordinatedOmissionCorrection injects a 500ms server stall behind a
// 1-slot in-flight cap: the requests the schedule wanted to issue during
// the stall are delayed, so their *service* latencies look healthy, but the
// corrected latencies (measured from each request's intended start) must
// surface the stall in the tail. A generator that blocks its dispatcher on
// the cap — the pre-fix behavior — hides the stall entirely.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	var stalled atomic.Bool
	var reqs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /auth/login", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"token": "tok"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// Exactly one request pays the stall directly; everything queued
		// behind it pays in waiting time only.
		if n := reqs.Add(1); n == 20 && stalled.CompareAndSwap(false, true) {
			time.Sleep(500 * time.Millisecond)
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		RPS:         200,
		Duration:    1200 * time.Millisecond,
		Users:       4,
		Seed:        7,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !stalled.Load() {
		t.Fatal("stall was never triggered")
	}
	service := StatsOf(res.Samples)
	corrected := CorrectedStatsOf(res.Samples)

	// ~100 of ~240 scheduled requests queue behind the stall: far more
	// than 1% of samples, so the corrected p99 must show hundreds of ms.
	if corrected.P99 < 200 {
		t.Errorf("corrected p99 = %.1fms, want ≥ 200ms (stall hidden)", corrected.P99)
	}
	// Exactly one sample has a ~500ms service time — below 1% of the
	// population, so the uncorrected p99 stays oblivious.
	if service.P99 > 150 {
		t.Errorf("service p99 = %.1fms, want < 150ms (only one request pays the stall directly)", service.P99)
	}
	if corrected.P99 < 2*service.P99 {
		t.Errorf("corrected p99 %.1fms not > 2× service p99 %.1fms", corrected.P99, service.P99)
	}
	// The histogram aggregate must agree with the per-sample stats.
	histP99 := float64(res.CorrectedHist.Quantile(0.99).Microseconds()) / 1000
	if histP99 < 200 {
		t.Errorf("CorrectedHist p99 = %.1fms, want ≥ 200ms", histP99)
	}
	// Corrected ≥ service for every sample, and Sched is monotone-ish
	// with Offset (requests start at or after their intended time).
	for _, s := range res.Samples {
		if s.Corrected < s.Latency {
			t.Fatalf("sample corrected %v < service %v", s.Corrected, s.Latency)
		}
	}
}
