package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareBench(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeFile(t, oldPath, `{
		"config": {"events": 1000},
		"pipelineEventsPerSec": 200.0,
		"proxyP99Ms": 8.0,
		"droppedMetric": 3.0
	}`)
	writeFile(t, newPath, `{
		"config": {"events": 1000},
		"pipelineEventsPerSec": 300.0,
		"proxyP99Ms": 6.0,
		"addedMetric": 1.5
	}`)

	var buf bytes.Buffer
	if err := compareBench(&buf, oldPath, newPath); err != nil {
		t.Fatalf("compareBench: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"pipelineEventsPerSec", "+50.0%",
		"proxyP99Ms", "-25.0%",
		"config.events", "+0.0%",
		"droppedMetric", "gone",
		"addedMetric", "new",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestFlattenNumbers(t *testing.T) {
	out := make(map[string]float64)
	flattenNumbers("", map[string]any{
		"a": 1.0,
		"b": map[string]any{"c": 2.0, "s": "text"},
		"l": []any{3.0, map[string]any{"d": 4.0}},
	}, out)
	want := map[string]float64{"a": 1, "b.c": 2, "l[0]": 3, "l[1].d": 4}
	if len(out) != len(want) {
		t.Fatalf("flatten = %v, want %v", out, want)
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("flatten[%q] = %v, want %v", k, out[k], v)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
