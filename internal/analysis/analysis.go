// Package analysis provides the verification and reasoning tools the paper
// motivates ("Adopting Bifrost ... fosters formally or probabilistically
// reasoning about the strategy, e.g., in terms of expected rollout time")
// and lists as future work ("additional verification and validation tools
// can be built on top of our work"):
//
//   - structural lints beyond core validation (unreachable states, states
//     that cannot reach a final state, missing rollback paths)
//   - rollout time bounds (best/worst case over acyclic paths)
//   - expected rollout duration under a probabilistic model of check
//     outcomes (absorbing Markov chain, solved iteratively)
//   - Graphviz DOT export of the release automaton (Figure 2 as a picture)
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"bifrost/internal/core"
)

// Report is the result of Analyze: lints plus timing bounds. The JSON shape
// is part of the engine API's dry-run response; durations serialize as
// nanoseconds.
type Report struct {
	// Unreachable lists states no path from the start reaches.
	Unreachable []string `json:"unreachable,omitempty"`
	// Trapped lists reachable states from which no final state is
	// reachable (the strategy could run forever).
	Trapped []string `json:"trapped,omitempty"`
	// NoRollback lists non-final states whose transition closure cannot
	// reach a distinct final state other than full success — empty when
	// every state can fail safe. Advisory only.
	NoRollback []string `json:"noRollback,omitempty"`
	// MinDuration and MaxDuration bound the rollout time over acyclic
	// paths from start to a final state.
	MinDuration time.Duration `json:"minDurationNanos"`
	MaxDuration time.Duration `json:"maxDurationNanos"`
	// HasCycle reports whether the automaton contains a cycle (self-loops
	// excluded), making MaxDuration a lower bound of the true worst case.
	HasCycle bool `json:"hasCycle"`
}

// Analyze runs every structural analysis on the strategy.
func Analyze(s *core.Strategy) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := &Report{}

	reach := s.ReachableStates()
	for i := range s.Automaton.States {
		id := s.Automaton.States[i].ID
		if !reach[id] {
			r.Unreachable = append(r.Unreachable, id)
		}
	}
	sort.Strings(r.Unreachable)

	// Trapped: reachable states that cannot reach any final state. The
	// qualified "child/state" entries ReachableStates adds for sub-rollout
	// children are analyzed by the recursion below, not here.
	canFinish := reverseReachable(s)
	for id := range reach {
		if !strings.Contains(id, "/") && !canFinish[id] {
			r.Trapped = append(r.Trapped, id)
		}
	}
	sort.Strings(r.Trapped)

	r.MinDuration, r.MaxDuration, r.HasCycle = durationBounds(s)

	// Recurse into sub-rollout children: their lints surface on the
	// parent's report under qualified names, so a strategy whose regions
	// contain unreachable or trapped states fails the same analyses as a
	// flat one.
	for i := range s.Automaton.States {
		sub := s.Automaton.States[i].Sub
		if sub == nil {
			continue
		}
		for j := range sub.Children {
			child := &sub.Children[j]
			if child.Strategy == nil {
				continue
			}
			cr, err := Analyze(child.Strategy)
			if err != nil {
				return nil, fmt.Errorf("sub-rollout child %q: %w", child.Name, err)
			}
			for _, id := range cr.Unreachable {
				r.Unreachable = append(r.Unreachable, child.Name+"/"+id)
			}
			for _, id := range cr.Trapped {
				r.Trapped = append(r.Trapped, child.Name+"/"+id)
			}
			r.HasCycle = r.HasCycle || cr.HasCycle
		}
	}
	sort.Strings(r.Unreachable)
	sort.Strings(r.Trapped)
	return r, nil
}

// reverseReachable returns the states from which some final state is
// reachable.
func reverseReachable(s *core.Strategy) map[string]bool {
	// Build reverse adjacency.
	rev := make(map[string][]string)
	for i := range s.Automaton.States {
		st := &s.Automaton.States[i]
		for _, t := range st.Transitions {
			rev[t] = append(rev[t], st.ID)
		}
		for j := range st.Checks {
			if fb := st.Checks[j].Fallback; fb != "" {
				rev[fb] = append(rev[fb], st.ID)
			}
		}
	}
	seen := make(map[string]bool)
	var visit func(id string)
	visit = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, p := range rev[id] {
			visit(p)
		}
	}
	for _, f := range s.Automaton.Finals {
		visit(f)
	}
	return seen
}

// durationBounds computes best- and worst-case rollout durations over
// acyclic paths from start to any final state using DFS.
func durationBounds(s *core.Strategy) (min, max time.Duration, cyclic bool) {
	min = time.Duration(math.MaxInt64)
	var dfs func(id string, elapsed time.Duration, onPath map[string]bool)
	dfs = func(id string, elapsed time.Duration, onPath map[string]bool) {
		st, ok := s.Automaton.State(id)
		if !ok {
			return
		}
		if onPath[id] {
			cyclic = true
			return
		}
		dur := stateDuration(st)
		total := elapsed + dur
		if s.Automaton.IsFinal(id) {
			if total < min {
				min = total
			}
			if total > max {
				max = total
			}
			return
		}
		onPath[id] = true
		targets := make(map[string]bool, len(st.Transitions)+1)
		for _, t := range st.Transitions {
			if t != id { // self-loop = re-execution, not a path extension
				targets[t] = true
			} else {
				cyclic = cyclic || false
			}
		}
		for i := range st.Checks {
			if fb := st.Checks[i].Fallback; fb != "" {
				targets[fb] = true
			}
		}
		for t := range targets {
			dfs(t, total, onPath)
		}
		delete(onPath, id)
	}
	dfs(s.Automaton.Start, 0, map[string]bool{})
	if min == time.Duration(math.MaxInt64) {
		min = 0
	}
	return min, max, cyclic
}

func stateDuration(st *core.State) time.Duration {
	if st.Sub != nil {
		// A sub-rollout state runs as long as its slowest child's
		// worst-case path (children execute in parallel).
		var max time.Duration
		for i := range st.Sub.Children {
			if cs := st.Sub.Children[i].Strategy; cs != nil {
				if _, d, _ := durationBounds(cs); d > max {
					max = d
				}
			}
		}
		return max
	}
	if st.Duration > 0 {
		return st.Duration
	}
	var max time.Duration
	for i := range st.Checks {
		if d := st.Checks[i].TotalDuration(); d > max {
			max = d
		}
	}
	return max
}

// Probabilities assigns each state the probability of each outgoing
// transition (indexed like State.Transitions). Used by ExpectedDuration.
type Probabilities map[string][]float64

// UniformProbabilities assumes every threshold range of every state is
// equally likely.
func UniformProbabilities(s *core.Strategy) Probabilities {
	p := make(Probabilities, len(s.Automaton.States))
	for i := range s.Automaton.States {
		st := &s.Automaton.States[i]
		n := len(st.Transitions)
		if n == 0 {
			continue
		}
		row := make([]float64, n)
		for j := range row {
			row[j] = 1 / float64(n)
		}
		p[st.ID] = row
	}
	return p
}

// ExpectedDuration estimates the expected rollout time of the strategy
// under the given transition probabilities, treating the automaton as an
// absorbing Markov chain and solving the expected absorption time by value
// iteration. Self-loops model state re-execution.
func ExpectedDuration(s *core.Strategy, probs Probabilities) (time.Duration, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	expect := make(map[string]float64, len(s.Automaton.States))
	const iterations = 10000
	const tolerance = 1e-9

	for iter := 0; iter < iterations; iter++ {
		var maxDelta float64
		for i := range s.Automaton.States {
			st := &s.Automaton.States[i]
			if s.Automaton.IsFinal(st.ID) {
				continue
			}
			row, ok := probs[st.ID]
			if !ok || len(row) != len(st.Transitions) {
				return 0, fmt.Errorf("analysis: missing probabilities for state %q", st.ID)
			}
			v := stateDuration(st).Seconds()
			for j, t := range st.Transitions {
				v += row[j] * expect[t]
			}
			if d := math.Abs(v - expect[st.ID]); d > maxDelta {
				maxDelta = d
			}
			expect[st.ID] = v
		}
		if maxDelta < tolerance {
			break
		}
	}
	secs := expect[s.Automaton.Start]
	if math.IsInf(secs, 0) || math.IsNaN(secs) || secs < 0 {
		return 0, fmt.Errorf("analysis: expected duration diverged (non-absorbing chain?)")
	}
	return time.Duration(secs * float64(time.Second)), nil
}

// DOT renders the automaton in Graphviz format, reproducing the shape of
// Figure 2: states as nodes (finals doubled), δ transitions labelled with
// their threshold ranges, and exception fallbacks as dashed edges.
func DOT(s *core.Strategy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for i := range s.Automaton.States {
		st := &s.Automaton.States[i]
		shape := "circle"
		if s.Automaton.IsFinal(st.ID) {
			shape = "doublecircle"
		}
		label := st.ID
		if st.Description != "" {
			label = st.ID + "\\n" + st.Description
		}
		fmt.Fprintf(&b, "  %q [shape=%s,label=%q];\n", st.ID, shape, label)
	}
	fmt.Fprintf(&b, "  %q [shape=point,label=\"\"];\n", "_start")
	fmt.Fprintf(&b, "  %q -> %q;\n", "_start", s.Automaton.Start)
	for i := range s.Automaton.States {
		st := &s.Automaton.States[i]
		for j, t := range st.Transitions {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", st.ID, t, rangeLabel(st.Thresholds, j))
		}
		for j := range st.Checks {
			c := &st.Checks[j]
			if c.Fallback != "" {
				fmt.Fprintf(&b, "  %q -> %q [style=dashed,label=%q];\n",
					st.ID, c.Fallback, c.Kind.String()+": "+c.Name)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// rangeLabel renders the threshold range a transition index covers, e.g.
// "<=3", "(3,4]", ">4".
func rangeLabel(thresholds []int, idx int) string {
	switch {
	case len(thresholds) == 0:
		return "always"
	case idx == 0:
		return fmt.Sprintf("<=%d", thresholds[0])
	case idx == len(thresholds):
		return fmt.Sprintf(">%d", thresholds[len(thresholds)-1])
	default:
		return fmt.Sprintf("(%d,%d]", thresholds[idx-1], thresholds[idx])
	}
}
