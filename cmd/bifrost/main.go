// Command bifrost is the Bifrost CLI (paper §4.1): it connects to the
// engine and schedules, inspects, and aborts release strategies — remotely
// or from release scripts.
//
// Usage:
//
//	bifrost -engine http://127.0.0.1:7000 schedule strategy.yaml
//	bifrost status [name]
//	bifrost events [-n 50]
//	bifrost abort name
//	bifrost validate strategy.yaml     (local, no engine needed)
//	bifrost graph strategy.yaml        (DOT to stdout)
//	bifrost estimate strategy.yaml     (expected rollout time)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"bifrost/internal/analysis"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bifrost", flag.ContinueOnError)
	engineURL := fs.String("engine", "http://127.0.0.1:7000", "engine API base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: bifrost [-engine URL] <schedule|status|events|abort|validate|graph|estimate> [args]")
	}
	client := &engine.Client{BaseURL: *engineURL}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch cmd := rest[0]; cmd {
	case "schedule":
		if len(rest) != 2 {
			return fmt.Errorf("usage: bifrost schedule <strategy.yaml>")
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		st, err := client.Schedule(ctx, string(src))
		if err != nil {
			return err
		}
		fmt.Printf("scheduled %s (state %s)\n", st.Strategy, st.State)
		return nil

	case "status":
		if len(rest) == 2 {
			st, err := client.Get(ctx, rest[1])
			if err != nil {
				return err
			}
			printStatus(st)
			return nil
		}
		list, err := client.List(ctx)
		if err != nil {
			return err
		}
		if len(list) == 0 {
			fmt.Println("no strategies")
			return nil
		}
		for _, st := range list {
			printStatus(st)
		}
		return nil

	case "events":
		n := 50
		if len(rest) == 3 && rest[1] == "-n" {
			if v, err := strconv.Atoi(rest[2]); err == nil {
				n = v
			}
		}
		events, err := client.Events(ctx, n)
		if err != nil {
			return err
		}
		for _, ev := range events {
			fmt.Printf("%s  %-20s %-20s %s %s\n",
				ev.Time.Format(time.RFC3339), ev.Strategy, ev.Type, ev.State, ev.Detail)
		}
		return nil

	case "abort":
		if len(rest) != 2 {
			return fmt.Errorf("usage: bifrost abort <name>")
		}
		if err := client.Abort(ctx, rest[1]); err != nil {
			return err
		}
		fmt.Printf("aborted %s\n", rest[1])
		return nil

	case "validate", "graph", "estimate":
		if len(rest) != 2 {
			return fmt.Errorf("usage: bifrost %s <strategy.yaml>", cmd)
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		strategy, err := dsl.Compile(string(src))
		if err != nil {
			return err
		}
		switch cmd {
		case "validate":
			report, err := analysis.Analyze(strategy)
			if err != nil {
				return err
			}
			fmt.Printf("strategy %q is valid: %d states, rollout %v .. %v\n",
				strategy.Name, len(strategy.Automaton.States),
				report.MinDuration, report.MaxDuration)
			if len(report.Unreachable) > 0 {
				fmt.Printf("warning: unreachable states: %v\n", report.Unreachable)
			}
			if len(report.Trapped) > 0 {
				fmt.Printf("warning: states that cannot finish: %v\n", report.Trapped)
			}
		case "graph":
			fmt.Print(analysis.DOT(strategy))
		case "estimate":
			d, err := analysis.ExpectedDuration(strategy, analysis.UniformProbabilities(strategy))
			if err != nil {
				return err
			}
			fmt.Printf("expected rollout time (uniform outcomes): %v\n", d)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printStatus(st engine.Status) {
	fmt.Printf("%-24s %-10s current=%-16s transitions=%d delay=%v\n",
		st.Strategy, st.State, st.Current, len(st.Path), st.Delay().Round(time.Millisecond))
	for _, c := range st.Checks {
		fmt.Printf("    check %-24s %s  %d/%d ok", c.Name, c.Kind, c.Successes, c.Executions)
		if c.LastError != "" {
			fmt.Printf("  last error: %s", c.LastError)
		}
		fmt.Println()
	}
}
