package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func queryStore() (*Store, time.Time) {
	s := NewStore()
	at := t0.Add(2 * time.Minute)
	// Counter that grows 2/s for two minutes on two instances.
	for i := 0; i <= 120; i++ {
		tm := t0.Add(time.Duration(i) * time.Second)
		s.Append("http_requests_total", Labels{"instance": "search:80"}, float64(2*i), tm)
		s.Append("http_requests_total", Labels{"instance": "product:80"}, float64(3*i), tm)
	}
	// Response time samples.
	for i, v := range []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		s.Append("response_ms", Labels{"instance": "search:80"}, v,
			at.Add(-time.Duration(10-i)*time.Second))
	}
	s.Append("request_errors", Labels{"instance": "search:80"}, 4, at)
	return s, at
}

func TestQueryInstant(t *testing.T) {
	s, at := queryStore()
	got, err := s.Query(`request_errors{instance="search:80"}`, at)
	if err != nil || got != 4 {
		t.Fatalf("got %v, %v; want 4", got, err)
	}
}

func TestQueryAggregations(t *testing.T) {
	s, at := queryStore()
	cases := []struct {
		expr string
		want float64
	}{
		{`sum(http_requests_total)`, 600}, // 240 + 360
		{`avg(http_requests_total)`, 300}, //
		{`min(http_requests_total)`, 240}, //
		{`max(http_requests_total)`, 360}, //
		{`count(http_requests_total)`, 2}, //
		{`sum(http_requests_total{instance="search:80"})`, 240},
	}
	for _, c := range cases {
		got, err := s.Query(c.expr, at)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestQueryRateAndIncrease(t *testing.T) {
	s, at := queryStore()
	inc, err := s.Query(`increase(http_requests_total{instance="search:80"}[60s])`, at)
	if err != nil {
		t.Fatalf("increase: %v", err)
	}
	// 2/s over 60s window: samples at 61..120s → increase 118 (59 steps of 2).
	if inc < 110 || inc > 122 {
		t.Errorf("increase = %v, want ≈ 118", inc)
	}
	rate, err := s.Query(`rate(http_requests_total{instance="search:80"}[60s])`, at)
	if err != nil {
		t.Fatalf("rate: %v", err)
	}
	if rate < 1.8 || rate > 2.1 {
		t.Errorf("rate = %v, want ≈ 2", rate)
	}
}

func TestQueryCounterReset(t *testing.T) {
	s := NewStore()
	at := t0.Add(time.Minute)
	// Counter: 10, 20, 5 (reset), 15 → increase = 10 + 5 + 10 = 25.
	vals := []float64{10, 20, 5, 15}
	for i, v := range vals {
		s.Append("c", nil, v, t0.Add(time.Duration(i)*time.Second))
	}
	got, err := s.Query("increase(c[5m])", at)
	if err != nil || got != 25 {
		t.Fatalf("increase = %v, %v; want 25", got, err)
	}
}

func TestQueryOverTimeFunctions(t *testing.T) {
	s, at := queryStore()
	cases := []struct {
		expr string
		want float64
	}{
		{`avg_over_time(response_ms{instance="search:80"}[1m])`, 55},
		{`min_over_time(response_ms{instance="search:80"}[1m])`, 10},
		{`max_over_time(response_ms{instance="search:80"}[1m])`, 100},
		{`sum_over_time(response_ms{instance="search:80"}[1m])`, 550},
		{`count_over_time(response_ms{instance="search:80"}[1m])`, 10},
		{`quantile_over_time(0.5, response_ms{instance="search:80"}[1m])`, 55},
		{`quantile_over_time(0, response_ms{instance="search:80"}[1m])`, 10},
		{`quantile_over_time(1, response_ms{instance="search:80"}[1m])`, 100},
	}
	for _, c := range cases {
		got, err := s.Query(c.expr, at)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestQueryArithmetic(t *testing.T) {
	s, at := queryStore()
	got, err := s.Query(`request_errors{instance="search:80"} * 2 + 1`, at)
	if err != nil || got != 9 {
		t.Fatalf("got %v, %v; want 9", got, err)
	}
	got, err = s.Query(`(request_errors{instance="search:80"} + 4) / 2`, at)
	if err != nil || got != 4 {
		t.Fatalf("got %v, %v; want 4", got, err)
	}
	// Error ratio idiom.
	got, err = s.Query(`request_errors{instance="search:80"} / sum(http_requests_total{instance="search:80"})`, at)
	if err != nil {
		t.Fatalf("ratio: %v", err)
	}
	if math.Abs(got-4.0/240.0) > 1e-9 {
		t.Errorf("ratio = %v", got)
	}
	// Division by zero yields NaN, not a crash.
	got, err = s.Query(`4 / 0`, at)
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("4/0 = %v, %v; want NaN", got, err)
	}
	// Operator precedence: 2 + 3 * 4 = 14.
	got, err = s.Query(`2 + 3 * 4`, at)
	if err != nil || got != 14 {
		t.Fatalf("precedence = %v, %v; want 14", got, err)
	}
}

func TestQueryNoData(t *testing.T) {
	s, at := queryStore()
	for _, expr := range []string{
		`ghost_metric`,
		`rate(ghost_metric[1m])`,
		`sum(ghost_metric{instance="x"})`,
	} {
		if _, err := s.Query(expr, at); !errors.Is(err, ErrNoData) {
			t.Errorf("%s: err = %v, want ErrNoData", expr, err)
		}
	}
}

func TestQuerySyntaxErrors(t *testing.T) {
	s, at := queryStore()
	for _, expr := range []string{
		``,
		`{instance="x"}`,
		`m{instance=}`,
		`m{instance="x"`,
		`rate(m)`,    // rate needs a window
		`sum(m[1m])`, // sum takes an instant selector
		`m[notaduration]`,
		`m{} trailing`,
		`quantile_over_time(m[1m])`, // missing q
		`m{label~"x"}`,
		`1 +`,
	} {
		if _, err := s.Query(expr, at); err == nil {
			t.Errorf("Query(%q) succeeded, want error", expr)
		}
	}
}

func TestQueryIdentifiersWithColons(t *testing.T) {
	s := NewStore()
	s.Append("node:cpu:busy", nil, 0.5, t0)
	got, err := s.Query("node:cpu:busy", t0)
	if err != nil || got != 0.5 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		lo, hi := quantile(vals, 0), quantile(vals, 1)
		v1, v2 := quantile(vals, q1), quantile(vals, q2)
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQueryInstant(b *testing.B) {
	s, at := queryStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(`request_errors{instance="search:80"}`, at); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryRate(b *testing.B) {
	s, at := queryStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(`rate(http_requests_total{instance="search:80"}[60s])`, at); err != nil {
			b.Fatal(err)
		}
	}
}
