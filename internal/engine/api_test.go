package engine

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/httpx"
)

func apiFixture(t *testing.T) (*Engine, *Client) {
	t.Helper()
	eng := New()
	t.Cleanup(eng.Shutdown)
	compile := func(src string) (*core.Strategy, error) {
		if src == "" {
			return nil, errors.New("empty strategy source")
		}
		s := canaryStrategy(core.ConstEvaluator(true), 2*time.Millisecond, 4)
		s.Name = src // test shim: the "source" is the strategy name
		return s, nil
	}
	ts := httptest.NewServer(NewAPI(eng, compile).Handler())
	t.Cleanup(ts.Close)
	return eng, &Client{BaseURL: ts.URL}
}

func TestAPIScheduleAndGet(t *testing.T) {
	eng, c := apiFixture(t)
	ctx := context.Background()

	st, err := c.Schedule(ctx, "release-1")
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if st.Strategy != "release-1" {
		t.Errorf("strategy = %q", st.Strategy)
	}

	run, ok := eng.Run("release-1")
	if !ok {
		t.Fatal("run not registered")
	}
	waitDone(t, run)

	got, err := c.Get(ctx, "release-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.State != RunCompleted {
		t.Errorf("state = %s", got.State)
	}
	if len(got.Path) != 1 || got.Path[0].To != "done" {
		t.Errorf("path = %+v", got.Path)
	}
}

func TestAPIListAndEvents(t *testing.T) {
	eng, c := apiFixture(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Schedule(ctx, fmt.Sprintf("s-%d", i)); err != nil {
			t.Fatalf("Schedule %d: %v", i, err)
		}
	}
	for _, r := range eng.Runs() {
		waitDone(t, r)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 3 {
		t.Errorf("list = %d entries", len(list))
	}
	events, err := c.Events(ctx, 500)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(events) == 0 {
		t.Error("no events")
	}
	completed := 0
	for _, ev := range events {
		if ev.Type == EventCompleted {
			completed++
		}
	}
	if completed != 3 {
		t.Errorf("completed events = %d, want 3", completed)
	}
}

func TestAPIAbort(t *testing.T) {
	eng, c := apiFixture(t)
	ctx := context.Background()
	compileSlow := func() *core.Strategy {
		s := canaryStrategy(core.ConstEvaluator(true), 50*time.Millisecond, 1000)
		s.Name = "slow"
		return s
	}
	if _, err := eng.Enact(compileSlow()); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(ctx, "slow"); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	run, _ := eng.Run("slow")
	st := waitDone(t, run)
	if st.State != RunAborted {
		t.Errorf("state = %s", st.State)
	}
	if err := c.Abort(ctx, "ghost"); err == nil {
		t.Error("abort of unknown strategy succeeded")
	}
}

func TestAPIErrors(t *testing.T) {
	_, c := apiFixture(t)
	ctx := context.Background()

	// Empty source → compile error → 422 problem with a typed code.
	_, err := c.Schedule(ctx, "")
	var problem *httpx.Problem
	if !errors.As(err, &problem) || problem.Status != 422 || problem.Code != CodeCompileFailed {
		t.Errorf("schedule empty: %v, want 422 %s", err, CodeCompileFailed)
	}

	// Duplicate while running → 409.
	if _, err := c.Schedule(ctx, "dup"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Schedule(ctx, "dup")
	// The first may already have finished on a slow machine; accept 409
	// or success-after-completion.
	if err != nil {
		if !errors.As(err, &problem) || problem.Status != 409 || problem.Code != CodeAlreadyRunning {
			t.Errorf("duplicate schedule: %v, want 409 %s", err, CodeAlreadyRunning)
		}
	}

	// Unknown strategy → 404.
	_, err = c.Get(ctx, "ghost")
	if !errors.As(err, &problem) || problem.Status != 404 || problem.Code != CodeNotFound {
		t.Errorf("get ghost: %v, want 404 %s", err, CodeNotFound)
	}

	if err := c.Healthy(ctx); err != nil {
		t.Errorf("Healthy: %v", err)
	}
}
