// Package dashboard implements the Bifrost dashboard (paper §4.1): a live
// view of strategy execution state — current phase, check outcomes, and the
// event stream. The original prototype pushed updates over Socket.IO; this
// implementation uses Server-Sent Events, which cover the same
// unidirectional status-update channel with plain net/http.
package dashboard

import (
	"encoding/json"
	"fmt"
	"net/http"

	"bifrost/internal/engine"
	"bifrost/internal/httpx"
)

// Dashboard serves the live view for one engine.
type Dashboard struct {
	eng *engine.Engine
}

// New creates a dashboard over an engine.
func New(eng *engine.Engine) *Dashboard { return &Dashboard{eng: eng} }

// Handler returns the dashboard endpoints:
//
//	GET /dashboard         HTML page (auto-refreshing via SSE)
//	GET /dashboard/status  JSON run statuses
//	GET /dashboard/events  Server-Sent Events stream of engine events
func (d *Dashboard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dashboard", d.handlePage)
	mux.HandleFunc("GET /dashboard/status", d.handleStatus)
	mux.HandleFunc("GET /dashboard/events", d.handleEvents)
	return mux
}

func (d *Dashboard) handleStatus(w http.ResponseWriter, r *http.Request) {
	runs := d.eng.Runs()
	statuses := make([]engine.Status, 0, len(runs))
	for _, run := range runs {
		statuses = append(statuses, run.Status())
	}
	httpx.WriteJSON(w, http.StatusOK, statuses)
}

func (d *Dashboard) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpx.WriteError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Replay recent history so late-joining dashboards have context, then
	// stream live events until the client goes away.
	for _, ev := range d.eng.RecentEvents(64) {
		writeSSE(w, ev)
	}
	flusher.Flush()

	events, cancel := d.eng.Subscribe(256)
	defer cancel()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev engine.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

func (d *Dashboard) handlePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!DOCTYPE html>
<html>
<head>
<title>Bifrost Dashboard</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; background: #101418; color: #e6edf3; }
h1 { color: #7ee787; }
table { border-collapse: collapse; width: 100%; margin-bottom: 2rem; }
th, td { border: 1px solid #30363d; padding: 0.4rem 0.8rem; text-align: left; }
th { background: #161b22; }
#log { font-family: monospace; font-size: 0.85rem; white-space: pre-wrap;
       background: #161b22; padding: 1rem; max-height: 24rem; overflow-y: auto; }
.state-running { color: #58a6ff; } .state-completed { color: #7ee787; }
.state-failed, .state-aborted { color: #ff7b72; }
</style>
</head>
<body>
<h1>Bifrost Dashboard</h1>
<table id="strategies">
<thead><tr><th>Strategy</th><th>State</th><th>Current phase</th><th>Transitions</th><th>Delay</th></tr></thead>
<tbody></tbody>
</table>
<h2>Events</h2>
<div id="log"></div>
<script>
async function refresh() {
  const resp = await fetch('/dashboard/status');
  const statuses = await resp.json();
  const body = document.querySelector('#strategies tbody');
  body.innerHTML = '';
  for (const s of statuses) {
    const tr = document.createElement('tr');
    const delayMs = ((s.actualNanos - s.plannedNanos) / 1e6).toFixed(1);
    tr.innerHTML = '<td>' + s.strategy + '</td>' +
      '<td class="state-' + s.state + '">' + s.state + '</td>' +
      '<td>' + (s.current || '') + '</td>' +
      '<td>' + (s.path ? s.path.length : 0) + '</td>' +
      '<td>' + (s.state === 'running' ? '…' : delayMs + ' ms') + '</td>';
    body.appendChild(tr);
  }
}
const log = document.getElementById('log');
const source = new EventSource('/dashboard/events');
source.onmessage = (e) => { append(e.data); };
for (const type of ['state_entered','routing_applied','check_executed',
                    'exception_triggered','transition','completed','aborted','error']) {
  source.addEventListener(type, (e) => { append(e.data); refresh(); });
}
function append(data) {
  log.textContent += data + '\n';
  log.scrollTop = log.scrollHeight;
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
