package httpx

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// SSE support shared by the engine's /api/v2/events/stream endpoint and the
// dashboard: a server-side writer and a client-side parser, so the CLI and
// dashboard receive live engine events instead of polling.

// SSEWriter streams Server-Sent Events over one HTTP response.
type SSEWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	// scratch assembles each SendRaw frame so the steady-state hot path
	// (engine event fan-out) allocates nothing per event after warm-up.
	scratch []byte
}

// NewSSEWriter prepares w for an SSE stream (headers, immediate flush). It
// fails when the underlying writer cannot stream.
func NewSSEWriter(w http.ResponseWriter) (*SSEWriter, error) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return nil, errors.New("httpx: response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	return &SSEWriter{w: w, flusher: flusher}, nil
}

// Send writes one event with v JSON-encoded as its data, flushing so the
// client sees it immediately. name and id are optional per the SSE format.
func (s *SSEWriter) Send(name, id string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if name != "" {
		if _, err := fmt.Fprintf(s.w, "event: %s\n", name); err != nil {
			return err
		}
	}
	if id != "" {
		if _, err := fmt.Fprintf(s.w, "id: %s\n", id); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(s.w, "data: %s\n\n", data); err != nil {
		return err
	}
	s.flusher.Flush()
	return nil
}

// SendRaw writes one event whose data payload is already JSON-encoded —
// the engine's encode-once fan-out path, where every subscriber shares the
// same marshaled bytes. The frame is assembled in the writer's reused
// scratch buffer and written with a single Write, so after warm-up the call
// performs zero allocations. id <= 0 omits the id line.
func (s *SSEWriter) SendRaw(name string, id int64, data []byte) error {
	b := s.scratch[:0]
	if name != "" {
		b = append(b, "event: "...)
		b = append(b, name...)
		b = append(b, '\n')
	}
	if id > 0 {
		b = append(b, "id: "...)
		b = strconv.AppendInt(b, id, 10)
		b = append(b, '\n')
	}
	b = append(b, "data: "...)
	b = append(b, data...)
	b = append(b, '\n', '\n')
	s.scratch = b
	if _, err := s.w.Write(b); err != nil {
		return err
	}
	s.flusher.Flush()
	return nil
}

// Comment writes an SSE comment line; clients ignore it, so it doubles as a
// keep-alive for idle streams.
func (s *SSEWriter) Comment(text string) {
	_, _ = fmt.Fprintf(s.w, ": %s\n\n", text)
	s.flusher.Flush()
}

// SSEEvent is one parsed server-sent event.
type SSEEvent struct {
	Name string
	ID   string
	Data []byte
}

// ReadSSE parses a Server-Sent Events stream, calling fn for every complete
// event until the stream ends or fn returns an error. A clean end of stream
// returns nil.
func ReadSSE(r io.Reader, fn func(SSEEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 16<<10), 1<<20)
	var ev SSEEvent
	var data []byte
	dispatch := func() error {
		if ev.Name == "" && ev.ID == "" && data == nil {
			return nil // empty separator lines between events
		}
		ev.Data = data
		err := fn(ev)
		ev, data = SSEEvent{}, nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				return err
			}
		case strings.HasPrefix(line, ":"): // comment / keep-alive
		case strings.HasPrefix(line, "event:"):
			ev.Name = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "id:"):
			ev.ID = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "data:"):
			chunk := strings.TrimPrefix(line[len("data:"):], " ")
			if data != nil {
				data = append(data, '\n')
			}
			data = append(data, chunk...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return dispatch() // stream ended without a trailing blank line
}

// StreamClient is the HTTP client for long-lived streaming responses (SSE):
// unlike Client it has no overall timeout, so streams stay open until the
// caller cancels the request context.
var StreamClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:          64,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
	},
}
