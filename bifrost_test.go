package bifrost

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bifrost/internal/engine"
)

// backendPair spins up two version backends and returns their URLs.
func backendPair(t *testing.T) (string, string) {
	t.Helper()
	mk := func(name string) string {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-Served-By", name)
			_, _ = w.Write([]byte(name))
		}))
		t.Cleanup(srv.Close)
		return srv.URL
	}
	return mk("stable"), mk("canary")
}

func TestPublicAPIEndToEnd(t *testing.T) {
	stableURL, canaryURL := backendPair(t)

	yaml := fmt.Sprintf(`
name: public-api-demo
deployment:
  services:
    - service: web
      versions:
        - name: stable
          endpoint: %s
        - name: canary
          endpoint: %s
strategy:
  phases:
    - phase: canary
      duration: 300ms
      routes:
        - route:
            service: web
            weights: {stable: 95, canary: 5}
      on:
        success: full
    - phase: full
      routes:
        - route:
            service: web
            weights: {canary: 100}
`, stableURL, canaryURL)

	strategy, err := CompileStrategy(yaml)
	if err != nil {
		t.Fatalf("CompileStrategy: %v", err)
	}
	if err := Validate(strategy); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	p, err := NewProxy("web", ProxyConfig{})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	local := NewLocalProxies()
	local.Register("web", p)
	eng := NewEngine(WithLocalProxies(local))
	defer eng.Shutdown()

	run, err := eng.Enact(strategy)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	status, err := WaitForCompletion(ctx, run)
	if err != nil {
		t.Fatalf("WaitForCompletion: %v", err)
	}
	if status.State != engine.RunCompleted {
		t.Fatalf("state = %s (%s)", status.State, status.Error)
	}
	cfg := p.Config()
	if len(cfg.Backends) != 1 || cfg.Backends[0].Version != "canary" {
		t.Errorf("final proxy config = %+v, want canary 100%%", cfg.Backends)
	}
}

func TestPublicAnalysisHelpers(t *testing.T) {
	yaml := `
name: tiny
deployment:
  services:
    - service: s
      versions:
        - name: a
          endpoint: h:1
strategy:
  phases:
    - phase: only
      duration: 10s
      routes:
        - route:
            service: s
            weights: {a: 100}
      on: {}
    - phase: end
      routes:
        - route:
            service: s
            weights: {a: 100}
`
	s, err := CompileStrategy(yaml)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Analyze(s)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if report.MinDuration != 10*time.Second {
		t.Errorf("min duration = %v", report.MinDuration)
	}
	d, err := ExpectedDuration(s)
	if err != nil || d != 10*time.Second {
		t.Errorf("expected duration = %v, %v", d, err)
	}
	dot := DOT(s)
	if !strings.Contains(dot, `"only" -> "end"`) {
		t.Errorf("DOT = %s", dot)
	}
}
