// The paper's running example (Figures 1 and 2): the fastSearch strategy —
// a 1% canary, daily gradual increases to 5/10/20%, a five-day 50/50 A/B
// test, and either a full rollout or a rollback.
//
// Nine simulated days execute in under a second on a manual clock; the
// program prints the automaton as Graphviz DOT, the formal analysis
// (rollout-time bounds, expected duration), and the transition log of one
// enactment.
//
//	go run ./examples/running-example
package main

import (
	"fmt"
	"log"
	"time"

	"bifrost"
	"bifrost/internal/analysis"
	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/engine"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One model "unit" = one simulated hour; a paper-day is 24 units.
	strategy := core.RunningExample(time.Hour)

	fmt.Println("=== Release automaton (Figure 2) as Graphviz DOT ===")
	fmt.Print(bifrost.DOT(strategy))

	report, err := bifrost.Analyze(strategy)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Formal analysis ===")
	fmt.Printf("states: %d, rollout duration bounds: %v .. %v\n",
		len(strategy.Automaton.States), report.MinDuration, report.MaxDuration)
	expected, err := analysis.ExpectedDuration(strategy, analysis.UniformProbabilities(strategy))
	if err != nil {
		return err
	}
	fmt.Printf("expected rollout time under uniform outcomes: %v\n", expected)

	// Enact on a manual clock: days pass in milliseconds.
	clk := clock.NewManual(time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.WithClock(clk))
	defer eng.Shutdown()

	run, err := eng.Enact(strategy)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Enactment (simulated time) ===")
	deadline := time.Now().Add(20 * time.Second)
	for !run.Done() && time.Now().Before(deadline) {
		clk.Advance(15 * time.Minute)
		time.Sleep(100 * time.Microsecond)
	}
	status := run.Status()
	fmt.Printf("final state: %s after %d transitions\n", status.State, len(status.Path))
	for _, tr := range status.Path {
		fmt.Printf("  %s: %s → %s (outcome %d)\n",
			tr.At.Format("Jan 02 15:04"), tr.From, tr.To, tr.Outcome)
	}
	simulated := status.FinishedAt.Sub(status.StartedAt)
	fmt.Printf("simulated rollout time: %v (%.1f paper-days)\n",
		simulated, simulated.Hours()/24)
	return nil
}
