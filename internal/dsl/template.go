package dsl

// Strategy templates: one YAML source stamping out many concrete runs.
//
// Three document-level sections turn a strategy file into a template:
//
//	vars:                      # scalar bindings, substituted as ${name}
//	  candidate-weight: 5
//	var-transforms:            # derived bindings: regex over another var
//	  - from: region
//	    match: ^([a-z]+)-.*$
//	    replace: $1
//	    to: region-short
//	matrix:                    # cartesian expansion: one run per combo
//	  region: [eu-west, us-east]
//	  cohort: [free, paid]
//
// Every `${name}` in the rest of the document — map keys and string
// values alike — is substituted per combination. A value that is exactly
// one `${name}` keeps the bound scalar's type (so `weight: ${w}` stays a
// number); embedded references render as strings. Run names must come out
// distinct: when the name template references no matrix variable, the
// sorted axis values are appended automatically (product → product-eu-
// west-free, …); partial references that still collide are compile
// errors.
//
// Expansion happens before compilation: each combination's resolved
// document is re-encoded to standalone YAML (Expanded.Source), which the
// engine journals per run — so crash recovery recompiles the concrete
// run, never the template.

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"bifrost/internal/core"
	"bifrost/internal/yaml"
)

// maxMatrixRuns bounds one template's expansion; beyond this the matrix
// is almost certainly a typo and would flood the engine.
const maxMatrixRuns = 256

// Expanded is one concrete run stamped out of a strategy source.
type Expanded struct {
	// Strategy is the compiled, validated run.
	Strategy *core.Strategy
	// Source is standalone YAML for exactly this run: the original source
	// for non-templates, the resolved re-encoded document for template
	// expansions. It recompiles under Compile, which is what the engine
	// journals and recovery replays.
	Source string
	// Vars are the bindings this expansion was produced with (vars ∪
	// matrix combo ∪ transforms), rendered as strings; nil for
	// non-templates.
	Vars map[string]string
}

// CompileAll is a convenience for a zero-config compiler.
func CompileAll(src string) ([]Expanded, error) {
	return (&Compiler{}).CompileAll(src)
}

// CompileAll parses src, expands templates (vars, var-transforms,
// matrix) into concrete documents, and compiles each. Non-template
// sources compile to exactly one Expanded whose Source is src itself.
func (c *Compiler) CompileAll(src string) ([]Expanded, error) {
	doc, err := yaml.ParseMap(src)
	if err != nil {
		return nil, err
	}
	if !isTemplate(doc) {
		s, err := c.compileDoc(doc)
		if err != nil {
			return nil, err
		}
		return []Expanded{{Strategy: s, Source: src}}, nil
	}

	d := &decoder{}
	resolved := expandTemplate(d, doc)
	if err := d.err(); err != nil {
		return nil, err
	}
	out := make([]Expanded, 0, len(resolved))
	for _, rd := range resolved {
		src2, err := yaml.Encode(rd.doc)
		if err != nil {
			return nil, fmt.Errorf("dsl: re-encode expanded run %q: %w", rd.name, err)
		}
		// Compile from the re-encoded source, not the in-memory tree: the
		// journaled Source must be exactly what compiled, or recovery
		// could replay something the schedule never validated.
		doc2, err := yaml.ParseMap(src2)
		if err != nil {
			return nil, fmt.Errorf("dsl: expanded run %q: %w", rd.name, err)
		}
		s, err := c.compileDoc(doc2)
		if err != nil {
			return nil, fmt.Errorf("dsl: expanded run %q: %w", rd.name, err)
		}
		out = append(out, Expanded{Strategy: s, Source: src2, Vars: rd.vars})
	}
	return out, nil
}

const (
	keyVars       = "vars"
	keyTransforms = "var-transforms"
	keyMatrix     = "matrix"
)

func isTemplate(doc map[string]any) bool {
	for _, k := range []string{keyVars, keyTransforms, keyMatrix} {
		if _, ok := doc[k]; ok {
			return true
		}
	}
	return false
}

// resolvedDoc is one expansion: the substituted document tree (template
// sections stripped) plus its derived name and bindings.
type resolvedDoc struct {
	doc  map[string]any
	name string
	vars map[string]string
}

// transform is one compiled var-transform.
type transform struct {
	from, to string
	re       *regexp.Regexp
	replace  string
}

// expandTemplate validates the template sections and produces one
// resolved document per matrix combination. All problems are collected on
// d with their positions.
func expandTemplate(d *decoder, doc map[string]any) []resolvedDoc {
	base := templateVars(d, doc)
	axes, values := templateMatrix(d, doc, base)
	transforms := templateTransforms(d, doc, base, axes)
	if len(d.problems) > 0 {
		return nil
	}

	combos := cartesian(values)
	if len(combos) > maxMatrixRuns {
		d.errf("matrix: expands to %d runs (limit %d)", len(combos), maxMatrixRuns)
		return nil
	}

	// The template body is everything but the template sections.
	body := make(map[string]any, len(doc))
	for k, v := range doc {
		if k == keyVars || k == keyTransforms || k == keyMatrix {
			continue
		}
		body[k] = v
	}

	// Whether the name template itself references a matrix variable
	// decides name derivation: names that don't reference the matrix get
	// the axis values appended automatically.
	nameUsesAxis := false
	if rawName, _ := body["name"].(string); rawName != "" {
		refs := make(map[string]bool, 2)
		for _, m := range varPattern.FindAllStringSubmatch(rawName, -1) {
			refs[m[1]] = true
		}
		for _, axis := range axes {
			if refs[axis] {
				nameUsesAxis = true
			}
		}
	}

	out := make([]resolvedDoc, 0, len(combos))
	for _, combo := range combos {
		bindings := make(map[string]any, len(base)+len(axes)+len(transforms))
		for k, v := range base {
			bindings[k] = v
		}
		for i, axis := range axes {
			bindings[axis] = combo[i]
		}
		for _, t := range transforms {
			src := scalarString(bindings[t.from])
			bindings[t.to] = t.re.ReplaceAllString(src, t.replace)
		}
		used := make(map[string]bool, len(bindings))
		resolved, ok := substitute(d, body, "document", bindings, used).(map[string]any)
		if !ok || len(d.problems) > 0 {
			return nil
		}
		vars := make(map[string]string, len(bindings))
		for k, v := range bindings {
			vars[k] = scalarString(v)
		}
		name, _ := resolved["name"].(string)
		out = append(out, resolvedDoc{doc: resolved, name: name, vars: vars})
	}

	deriveNames(d, out, axes, combos, nameUsesAxis)
	return out
}

// deriveNames guarantees deterministic, distinct run names. When the name
// template references no matrix variable, every run gets the sorted axis
// values appended; names that still collide (a partial axis reference, or
// duplicate axis values) are compile errors.
func deriveNames(d *decoder, runs []resolvedDoc, axes []string, combos [][]any, usedAxes bool) {
	if len(runs) > 1 && !usedAxes {
		for i := range runs {
			suffix := make([]string, 0, len(axes))
			for ai := range axes {
				suffix = append(suffix, slug(scalarString(combos[i][ai])))
			}
			runs[i].name = runs[i].name + "-" + strings.Join(suffix, "-")
			runs[i].doc["name"] = runs[i].name
		}
	}
	seen := make(map[string]int, len(runs))
	for i := range runs {
		if j, dup := seen[runs[i].name]; dup {
			d.errf("matrix: runs %d and %d both expand to name %q; reference the matrix variables in name",
				j, i, runs[i].name)
			return
		}
		seen[runs[i].name] = i
	}
}

// slug renders an axis value into a name fragment: lowercase, with runs
// of non-alphanumerics collapsed to single dashes.
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// templateVars decodes the vars section into scalar bindings.
func templateVars(d *decoder, doc map[string]any) map[string]any {
	section := d.getMap(doc, keyVars, "document")
	out := make(map[string]any, len(section))
	for name, v := range section {
		if !isScalar(v) {
			d.errf("vars.%s: must be a scalar (string, number, or bool), got %T", name, v)
			continue
		}
		out[name] = v
	}
	return out
}

// templateMatrix decodes the matrix section: axis name → value list.
// Returns sorted axis names and their value lists in declared order.
func templateMatrix(d *decoder, doc map[string]any, vars map[string]any) ([]string, [][]any) {
	section := d.getMap(doc, keyMatrix, "document")
	if _, present := doc[keyMatrix]; present && len(section) == 0 {
		d.errf("matrix: declared but empty — delete it or add at least one axis")
		return nil, nil
	}
	axes := make([]string, 0, len(section))
	for axis := range section {
		axes = append(axes, axis)
	}
	sort.Strings(axes)
	values := make([][]any, 0, len(axes))
	for _, axis := range axes {
		ctx := "matrix." + axis
		if _, dup := vars[axis]; dup {
			d.errf("%s: axis collides with vars.%s", ctx, axis)
		}
		raw, ok := section[axis].([]any)
		if !ok {
			d.errf("%s: must be a sequence of scalar values, got %T", ctx, section[axis])
			continue
		}
		if len(raw) == 0 {
			d.errf("%s: axis has no values", ctx)
			continue
		}
		for i, v := range raw {
			if !isScalar(v) {
				d.errf("%s[%d]: must be a scalar, got %T", ctx, i, v)
			}
		}
		values = append(values, raw)
	}
	return axes, values
}

// templateTransforms decodes and compiles the var-transforms section.
// Each transform derives a new binding `to` by applying a regex
// match/replace to an existing binding `from` (a var or a matrix axis).
func templateTransforms(d *decoder, doc map[string]any, vars map[string]any,
	axes []string) []transform {

	bound := make(map[string]bool, len(vars)+len(axes))
	for name := range vars {
		bound[name] = true
	}
	for _, axis := range axes {
		bound[axis] = true
	}
	raw := d.getSlice(doc, keyTransforms, "document")
	out := make([]transform, 0, len(raw))
	for i, rv := range raw {
		ctx := keyTransforms + "[" + itoa(i) + "]"
		m, ok := rv.(map[string]any)
		if !ok {
			d.errf("%s: must be a mapping", ctx)
			continue
		}
		d.unknownKeys(m, ctx, "from", "match", "replace", "to")
		t := transform{
			from:    d.requireString(m, "from", ctx),
			to:      d.requireString(m, "to", ctx),
			replace: d.getString(m, "replace", ctx),
		}
		pattern := d.requireString(m, "match", ctx)
		if t.from != "" && !bound[t.from] {
			d.errf("%s: from references undefined variable %q", ctx, t.from)
		}
		if t.to != "" && bound[t.to] {
			d.errf("%s: to %q collides with an existing variable", ctx, t.to)
		}
		if pattern != "" {
			re, err := regexp.Compile(pattern)
			if err != nil {
				d.errf("%s: bad match pattern: %v", ctx, err)
			} else {
				t.re = re
			}
		}
		if t.to != "" {
			bound[t.to] = true
		}
		if t.from == "" || t.to == "" || t.re == nil {
			continue
		}
		out = append(out, t)
	}
	return out
}

// cartesian produces every combination of the axis value lists, first
// axis varying slowest. No axes yields one empty combination (a template
// with vars but no matrix).
func cartesian(values [][]any) [][]any {
	combos := [][]any{nil}
	for _, axis := range values {
		next := make([][]any, 0, len(combos)*len(axis))
		for _, c := range combos {
			for _, v := range axis {
				combo := make([]any, len(c), len(c)+1)
				copy(combo, c)
				next = append(next, append(combo, v))
			}
		}
		combos = next
	}
	return combos
}

var varPattern = regexp.MustCompile(`\$\{([A-Za-z0-9_][A-Za-z0-9_.-]*)\}`)

// substitute walks the document tree replacing ${name} references in map
// keys and string values. A string that is exactly one reference keeps
// the bound scalar's type; embedded references render as strings.
// Undefined references are compile errors carrying the tree position.
// used records which bindings the tree referenced.
func substitute(d *decoder, v any, ctx string, bindings map[string]any, used map[string]bool) any {
	switch t := v.(type) {
	case string:
		return substituteString(d, t, ctx, bindings, used)
	case []any:
		out := make([]any, len(t))
		for i, item := range t {
			out[i] = substitute(d, item, ctx+"["+itoa(i)+"]", bindings, used)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, item := range t {
			nk := k
			if sub := substituteString(d, k, ctx+"."+k, bindings, used); sub != nil {
				nk = scalarString(sub)
			}
			inner := bindings
			if k == "rollouts" {
				// rollouts blocks bind ${region} per region when the
				// sub-rollout compiles, after template expansion: pass the
				// reference through this pass untouched.
				if _, bound := bindings["region"]; !bound {
					inner = make(map[string]any, len(bindings)+1)
					for bk, bv := range bindings {
						inner[bk] = bv
					}
					inner["region"] = "${region}"
				}
			}
			out[nk] = substitute(d, item, ctx+"."+k, inner, used)
		}
		return out
	default:
		return v
	}
}

func substituteString(d *decoder, s, ctx string, bindings map[string]any, used map[string]bool) any {
	if m := varPattern.FindStringSubmatch(s); m != nil && m[0] == s {
		// Whole-string reference: preserve the scalar type so numeric
		// vars stay numbers (weights, thresholds, durations).
		val, ok := bindings[m[1]]
		if !ok {
			d.errf("%s: undefined variable ${%s}", ctx, m[1])
			return s
		}
		used[m[1]] = true
		return val
	}
	return varPattern.ReplaceAllStringFunc(s, func(ref string) string {
		name := varPattern.FindStringSubmatch(ref)[1]
		val, ok := bindings[name]
		if !ok {
			d.errf("%s: undefined variable ${%s}", ctx, name)
			return ref
		}
		used[name] = true
		return scalarString(val)
	})
}

func isScalar(v any) bool {
	switch v.(type) {
	case string, bool, int64, float64, int:
		return true
	}
	return false
}

// scalarString renders a scalar binding for embedding into a string.
func scalarString(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case bool:
		return strconv.FormatBool(t)
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", t)
	}
}
