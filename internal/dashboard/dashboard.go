// Package dashboard implements the Bifrost dashboard (paper §4.1): a live
// view of strategy execution state — current phase, check outcomes, and the
// event stream — plus operator controls for the enactment lifecycle
// (pause/resume and manual promote/rollback gate decisions). The original
// prototype pushed updates over Socket.IO; this implementation rides the
// engine API's /api/v2/events/stream Server-Sent Events endpoint, which
// covers the same unidirectional status-update channel with plain net/http.
package dashboard

import (
	"net/http"

	"bifrost/internal/engine"
	"bifrost/internal/httpx"
)

// Dashboard serves the live view for one engine.
type Dashboard struct {
	eng *engine.Engine
}

// New creates a dashboard over an engine.
func New(eng *engine.Engine) *Dashboard { return &Dashboard{eng: eng} }

// Handler returns the dashboard endpoints:
//
//	GET /dashboard         HTML page driving the /api/v2 endpoints
//	GET /dashboard/status  JSON run statuses (alias of GET /api/v2/runs)
//	GET /dashboard/events  SSE stream (alias of GET /api/v2/events/stream)
//
// The status and events aliases remain for one release; the page itself
// talks to the v2 API, so it must be mounted alongside engine.API (as
// cmd/bifrost-engine does).
func (d *Dashboard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dashboard", d.handlePage)
	mux.HandleFunc("GET /dashboard/status", d.handleStatus)
	mux.HandleFunc("GET /dashboard/events", d.handleEvents)
	return mux
}

func (d *Dashboard) handleStatus(w http.ResponseWriter, r *http.Request) {
	runs := d.eng.Runs()
	statuses := make([]engine.Status, 0, len(runs))
	for _, run := range runs {
		statuses = append(statuses, run.Status())
	}
	httpx.WriteJSON(w, http.StatusOK, statuses)
}

func (d *Dashboard) handleEvents(w http.ResponseWriter, r *http.Request) {
	d.eng.ServeEventStream(w, r, "", 64)
}

func (d *Dashboard) handlePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!DOCTYPE html>
<html>
<head>
<title>Bifrost Dashboard</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; background: #101418; color: #e6edf3; }
h1 { color: #7ee787; }
table { border-collapse: collapse; width: 100%; margin-bottom: 2rem; }
th, td { border: 1px solid #30363d; padding: 0.4rem 0.8rem; text-align: left; }
th { background: #161b22; }
button { background: #21262d; color: #e6edf3; border: 1px solid #30363d;
         border-radius: 4px; padding: 0.15rem 0.5rem; margin-right: 0.25rem; cursor: pointer; }
button:hover { background: #30363d; }
#log { font-family: monospace; font-size: 0.85rem; white-space: pre-wrap;
       background: #161b22; padding: 1rem; max-height: 24rem; overflow-y: auto; }
.state-running { color: #58a6ff; } .state-completed { color: #7ee787; }
.state-paused { color: #d29922; }
.state-failed, .state-aborted { color: #ff7b72; }
</style>
</head>
<body>
<h1>Bifrost Dashboard</h1>
<table id="strategies">
<thead><tr><th>Strategy</th><th>State</th><th>Current phase</th><th>Regions</th><th>Transitions</th><th>Delay</th><th>Controls</th></tr></thead>
<tbody></tbody>
</table>
<h2>Events</h2>
<div id="log"></div>
<script>
async function control(name, verb) {
  await fetch('/api/v2/runs/' + encodeURIComponent(name) + '/' + verb, {method: 'POST'});
  refresh();
}
async function refresh() {
  const resp = await fetch('/api/v2/runs');
  const statuses = await resp.json();
  const body = document.querySelector('#strategies tbody');
  body.innerHTML = '';
  for (const s of statuses) {
    // Strategy names are user-supplied: build cells via textContent, never
    // string-interpolated markup.
    const tr = document.createElement('tr');
    const delayMs = ((s.actualNanos - s.plannedNanos) / 1e6).toFixed(1);
    const live = s.state === 'running' || s.state === 'paused';
    // Hierarchical runs mirror their per-region children: render the
    // region tree as "eu:canary us:full(pass)".
    const regions = (s.children || []).map(c => {
      let v = (c.region || c.name) + ':' + (c.phase || c.state || '?');
      if (c.passed) v += '(pass)';
      else if (c.failed) v += '(fail)';
      return v;
    }).join(' ');
    const cells = [s.strategy, s.state, s.current || '', regions,
                   String(s.path ? s.path.length : 0),
                   live ? '…' : delayMs + ' ms'];
    cells.forEach((text, i) => {
      const td = document.createElement('td');
      td.textContent = text;
      if (i === 1) td.className = 'state-' + s.state;
      tr.appendChild(td);
    });
    const ctl = document.createElement('td');
    if (live) {
      for (const verb of [s.state === 'paused' ? 'resume' : 'pause', 'promote', 'rollback']) {
        const btn = document.createElement('button');
        btn.textContent = verb;
        btn.addEventListener('click', () => control(s.strategy, verb));
        ctl.appendChild(btn);
      }
    }
    tr.appendChild(ctl);
    body.appendChild(tr);
  }
}
const log = document.getElementById('log');
const source = new EventSource('/api/v2/events/stream?replay=64');
source.onmessage = (e) => { append(e.data); };
for (const type of ['state_entered','routing_applied','routing_converged',
                    'routing_degraded','check_executed','check_concluded',
                    'burnrate_triggered','exception_triggered','transition',
                    'paused','resumed','gate_decision','recovered',
                    'child_scheduled','child_update','child_terminal',
                    'completed','aborted','error']) {
  source.addEventListener(type, (e) => { append(e.data); refresh(); });
}
function append(data) {
  log.textContent += data + '\n';
  log.scrollTop = log.scrollHeight;
}
refresh();
</script>
</body>
</html>
`
