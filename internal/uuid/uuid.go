// Package uuid generates RFC 4122 version 4 (random) UUIDs.
//
// Bifrost proxies use UUIDs to re-identify clients across requests: the
// proxy sets a Set-Cookie header containing a v4 UUID, exactly as described
// in section 4.2.2 of the paper ("The cookie contains a RFC-compliant UUID
// that is used to re-identify the client in subsequent requests").
package uuid

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// UUID is a 128-bit RFC 4122 universally unique identifier.
type UUID [16]byte

// ErrInvalidFormat is returned by Parse when the input is not a canonical
// 36-character UUID string.
var ErrInvalidFormat = errors.New("uuid: invalid format")

// NewV4 returns a new random (version 4, variant 10) UUID. It draws entropy
// from crypto/rand and only fails if the system entropy source fails.
func NewV4() (UUID, error) {
	var u UUID
	if _, err := io.ReadFull(rand.Reader, u[:]); err != nil {
		return UUID{}, fmt.Errorf("uuid: read random: %w", err)
	}
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // variant 10
	return u, nil
}

// MustNewV4 is like NewV4 but panics if entropy is unavailable. It is meant
// for program initialization and tests, never for request handling paths.
func MustNewV4() UUID {
	u, err := NewV4()
	if err != nil {
		panic(err)
	}
	return u
}

// String renders the UUID in canonical 8-4-4-4-12 lowercase hex form.
func (u UUID) String() string {
	const hexDigits = "0123456789abcdef"
	buf := make([]byte, 36)
	i := 0
	for b := 0; b < 16; b++ {
		switch b {
		case 4, 6, 8, 10:
			buf[i] = '-'
			i++
		}
		buf[i] = hexDigits[u[b]>>4]
		buf[i+1] = hexDigits[u[b]&0x0f]
		i += 2
	}
	return string(buf)
}

// Version reports the UUID version number encoded in the value.
func (u UUID) Version() int { return int(u[6] >> 4) }

// Parse decodes a canonical UUID string produced by String.
func Parse(s string) (UUID, error) {
	var u UUID
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return UUID{}, ErrInvalidFormat
	}
	i := 0
	for b := 0; b < 16; b++ {
		switch b {
		case 4, 6, 8, 10:
			i++
		}
		hi, ok1 := hexVal(s[i])
		lo, ok2 := hexVal(s[i+1])
		if !ok1 || !ok2 {
			return UUID{}, ErrInvalidFormat
		}
		u[b] = hi<<4 | lo
		i += 2
	}
	return u, nil
}

// Valid reports whether s parses as a canonical UUID string.
func Valid(s string) bool {
	_, err := Parse(s)
	return err == nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
