// Package proxy implements the Bifrost proxy: the per-service routing
// component that live testing rides on (paper §4.1–4.2).
//
// One proxy fronts one service. The Bifrost engine pushes routing
// configurations (traffic weights per version, stickiness, cookie vs header
// mode, dark-launch shadow rules); the proxy enforces them on every request:
//
//   - cookie-based routing: the proxy buckets clients itself, identifying
//     them with a Set-Cookie UUID, optionally pinning the assignment for
//     the duration of the state (sticky sessions, required for A/B tests)
//   - header-based routing: an externally injected header names the version
//   - dark launches: a percentage of traffic to a source version is
//     duplicated to a shadow version whose response is discarded
//
// The proxy also instruments every request (request counts, error counts,
// upstream latency) on a metrics registry so the engine's checks can reason
// about the versions it is routing to.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
	"bifrost/internal/uuid"
)

// CookieName is the client re-identification cookie the proxy sets.
const CookieName = "bifrost-id"

// maxShadowQueue bounds the asynchronous shadow-delivery queue; beyond it
// shadow requests are dropped (and counted), never blocking live traffic.
const maxShadowQueue = 1024

// maxBodyBytes bounds buffered request bodies. Shadowing requires the body
// to be replayable, so the proxy reads it fully; e-commerce style requests
// are far below this.
const maxBodyBytes = 8 << 20

// Config is the routing configuration the engine pushes to a proxy. It is
// the wire form of one core.RoutingConfig materialized with endpoints.
type Config struct {
	// Service names the fronted service; informational.
	Service string `json:"service"`
	// Generation orders config updates; a proxy rejects configs older
	// than the one it runs.
	Generation int64 `json:"generation"`
	// Backends lists the routable versions with their traffic weights.
	Backends []Backend `json:"backends"`
	// Sticky pins client→version assignments until the next config.
	Sticky bool `json:"sticky"`
	// Mode is "cookie" (default) or "header".
	Mode string `json:"mode,omitempty"`
	// Header is the routing header for header mode, e.g. "X-Bifrost-Group".
	Header string `json:"header,omitempty"`
	// Shadows lists dark-launch duplication rules.
	Shadows []Shadow `json:"shadows,omitempty"`
}

// Backend is one routable version of the fronted service.
type Backend struct {
	Version string  `json:"version"`
	URL     string  `json:"url"`
	Weight  float64 `json:"weight"`
}

// Shadow duplicates Percent% of the traffic served by Source to Target.
type Shadow struct {
	// Source version whose traffic is duplicated; "*" or "" = any.
	Source string `json:"source,omitempty"`
	// Target version receiving the duplicate (must be a backend or have
	// TargetURL set).
	Target string `json:"target"`
	// TargetURL overrides the backend lookup for targets that are not
	// normally routable.
	TargetURL string `json:"targetUrl,omitempty"`
	// Percent of matching requests to duplicate, in [0,100].
	Percent float64 `json:"percent"`
}

// Proxy is a single-service Bifrost proxy. Create with New, route traffic
// through ServeHTTP (admin endpoints live under /_bifrost/), and Close when
// done to drain shadow workers.
type Proxy struct {
	service   string
	transport http.RoundTripper
	registry  *metrics.Registry

	mu       sync.RWMutex
	cfg      Config
	backends map[string]*url.URL // version -> base URL
	selector *core.Selector      // nil when fewer than 1 weighted backend
	sticky   map[string]string   // cookie ID -> version
	rng      *rand.Rand

	shadowCh     chan shadowJob
	wg           sync.WaitGroup
	closed       chan struct{}
	shadowCtx    context.Context
	shadowCancel context.CancelFunc

	adminOnce sync.Once
	adminMux  http.Handler

	// metrics
	mRequests *metricsSet
}

type shadowJob struct {
	req    *http.Request
	target *url.URL
	vers   string
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithRegistry attaches the metrics registry the proxy instruments.
func WithRegistry(r *metrics.Registry) Option {
	return func(p *Proxy) { p.registry = r }
}

// WithTransport overrides the upstream round tripper (tests).
func WithTransport(rt http.RoundTripper) Option {
	return func(p *Proxy) { p.transport = rt }
}

// WithSeed makes the proxy's randomized routing decisions deterministic.
func WithSeed(seed int64) Option {
	return func(p *Proxy) { p.rng = rand.New(rand.NewSource(seed)) }
}

// New creates a proxy for the named service with an initial configuration.
// cfg may be the zero Config for a proxy that starts unconfigured (requests
// fail 503 until the engine pushes a config).
func New(service string, cfg Config, opts ...Option) (*Proxy, error) {
	shadowCtx, shadowCancel := context.WithCancel(context.Background())
	p := &Proxy{
		service:      service,
		transport:    http.DefaultTransport,
		registry:     metrics.NewRegistry(),
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
		shadowCh:     make(chan shadowJob, maxShadowQueue),
		closed:       make(chan struct{}),
		shadowCtx:    shadowCtx,
		shadowCancel: shadowCancel,
		sticky:       make(map[string]string),
	}
	for _, o := range opts {
		o(p)
	}
	p.mRequests = newMetricsSet(p.registry, service)
	if len(cfg.Backends) > 0 {
		if err := p.applyConfig(cfg); err != nil {
			return nil, err
		}
	}
	const shadowWorkers = 8
	for i := 0; i < shadowWorkers; i++ {
		p.wg.Add(1)
		go p.shadowWorker()
	}
	return p, nil
}

// Close stops the shadow workers promptly: queued shadow jobs are
// discarded and in-flight shadow requests are cancelled. Shadow responses
// are discarded by design, so dropping them on shutdown loses nothing.
func (p *Proxy) Close() {
	close(p.closed)
	p.shadowCancel()
	p.wg.Wait()
}

// Registry exposes the proxy's metrics registry for scraping.
func (p *Proxy) Registry() *metrics.Registry { return p.registry }

// Service returns the fronted service name.
func (p *Proxy) Service() string { return p.service }

// SetConfig atomically replaces the routing configuration. Configurations
// older than the current generation are rejected; sticky assignments are
// cleared because they are scoped to one state of the release automaton.
func (p *Proxy) SetConfig(cfg Config) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cfg.Generation < p.cfg.Generation {
		return fmt.Errorf("proxy %s: stale config generation %d < %d",
			p.service, cfg.Generation, p.cfg.Generation)
	}
	return p.applyConfigLocked(cfg)
}

func (p *Proxy) applyConfig(cfg Config) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applyConfigLocked(cfg)
}

func (p *Proxy) applyConfigLocked(cfg Config) error {
	if len(cfg.Backends) == 0 {
		return errors.New("proxy: config has no backends")
	}
	backends := make(map[string]*url.URL, len(cfg.Backends))
	weights := make(map[string]float64, len(cfg.Backends))
	for _, b := range cfg.Backends {
		u, err := url.Parse(b.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("proxy: bad backend URL %q for version %q", b.URL, b.Version)
		}
		backends[b.Version] = u
		weights[b.Version] = b.Weight
	}
	var selector *core.Selector
	rc := core.RoutingConfig{Service: cfg.Service, Weights: weights}
	sel, err := core.NewSelector(&rc)
	if err != nil {
		return fmt.Errorf("proxy: %w", err)
	}
	selector = sel
	for _, sh := range cfg.Shadows {
		if sh.Percent < 0 || sh.Percent > 100 {
			return fmt.Errorf("proxy: shadow percent %v out of range", sh.Percent)
		}
		if sh.TargetURL == "" {
			if _, ok := backends[sh.Target]; !ok {
				return fmt.Errorf("proxy: shadow target %q has no backend", sh.Target)
			}
		} else if _, err := url.Parse(sh.TargetURL); err != nil {
			return fmt.Errorf("proxy: bad shadow target URL %q", sh.TargetURL)
		}
	}
	if cfg.Mode == "header" && cfg.Header == "" {
		return errors.New("proxy: header mode without header name")
	}
	p.cfg = cfg
	p.backends = backends
	p.selector = selector
	p.sticky = make(map[string]string) // assignments are per-state
	p.registry.Gauge("proxy_config_generation", metrics.Labels{"service": p.service}).
		Set(float64(cfg.Generation))
	return nil
}

// Config returns a copy of the active configuration.
func (p *Proxy) Config() Config {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cfg := p.cfg
	cfg.Backends = append([]Backend(nil), p.cfg.Backends...)
	cfg.Shadows = append([]Shadow(nil), p.cfg.Shadows...)
	return cfg
}

// Mappings returns the materialized sticky user mappings M of the current
// state, for the dashboard and for tests of the formal model's ⟨u,v,sticky⟩
// triples.
func (p *Proxy) Mappings() []core.UserMapping {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]core.UserMapping, 0, len(p.sticky))
	for user, version := range p.sticky {
		out = append(out, core.UserMapping{User: user, Version: version, Sticky: true})
	}
	return out
}

var _ http.Handler = (*Proxy)(nil)

// ServeHTTP routes one request according to the active configuration.
// Admin endpoints are served under /_bifrost/ (see Handler in admin.go).
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/_bifrost/") {
		p.adminHandler().ServeHTTP(w, r)
		return
	}
	p.routeRequest(w, r)
}

func (p *Proxy) routeRequest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()

	body, err := readReplayableBody(r)
	if err != nil {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}

	version, target, setCookie, ok := p.decide(w, r)
	if !ok {
		p.mRequests.unrouted.Inc()
		http.Error(w, "no routable backend configured", http.StatusServiceUnavailable)
		return
	}
	if setCookie != "" {
		http.SetCookie(w, &http.Cookie{Name: CookieName, Value: setCookie, Path: "/"})
	}

	p.scheduleShadows(r, body, version)

	outReq := cloneRequest(r, target, body)
	resp, err := p.transport.RoundTrip(outReq)
	elapsed := time.Since(start)
	p.observe(version, elapsed, resp, err)
	if err != nil {
		http.Error(w, "upstream error: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.Header().Set("X-Bifrost-Version", version)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// decide picks the version for this request. It returns the chosen version,
// its backend URL, a cookie value to set (when a new client ID was minted),
// and whether routing is possible at all.
func (p *Proxy) decide(w http.ResponseWriter, r *http.Request) (string, *url.URL, string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.backends) == 0 {
		return "", nil, "", false
	}

	// Header-based routing: the proxy acts solely on its configuration;
	// the header is injected elsewhere in the process (paper §4.2.2).
	if p.cfg.Mode == "header" {
		version := r.Header.Get(p.cfg.Header)
		if u, ok := p.backends[version]; ok {
			return version, u, "", true
		}
		// No (or unknown) group header: fall through to weighted routing.
	}

	clientID, newCookie := p.clientID(r)

	if p.cfg.Sticky {
		if v, ok := p.sticky[clientID]; ok {
			if u, ok := p.backends[v]; ok {
				return v, u, newCookie, true
			}
		}
		v := p.selector.Assign(clientID)
		p.sticky[clientID] = v
		return v, p.backends[v], newCookie, true
	}

	// Non-sticky: every request runs through the decision process again
	// with a fresh weighted draw.
	v := p.weightedDraw()
	return v, p.backends[v], newCookie, true
}

// clientID extracts the UUID cookie or mints a new one. Callers hold p.mu.
func (p *Proxy) clientID(r *http.Request) (id string, newCookie string) {
	if c, err := r.Cookie(CookieName); err == nil && uuid.Valid(c.Value) {
		return c.Value, ""
	}
	u, err := uuid.NewV4()
	if err != nil {
		// Entropy failure: fall back to a time-based pseudo ID rather
		// than refusing traffic.
		id := strconv.FormatInt(time.Now().UnixNano(), 36)
		return id, id
	}
	s := u.String()
	return s, s
}

// weightedDraw picks a version at random according to the configured
// weights. Callers hold p.mu.
func (p *Proxy) weightedDraw() string {
	versions := p.selector.Versions()
	x := p.rng.Float64()
	var acc float64
	total := 0.0
	for _, v := range versions {
		total += p.weightOf(v)
	}
	for _, v := range versions {
		acc += p.weightOf(v) / total
		if x < acc {
			return v
		}
	}
	return versions[len(versions)-1]
}

func (p *Proxy) weightOf(version string) float64 {
	for _, b := range p.cfg.Backends {
		if b.Version == version {
			return b.Weight
		}
	}
	return 0
}

// scheduleShadows enqueues dark-launch duplicates for the request.
func (p *Proxy) scheduleShadows(r *http.Request, body []byte, servedVersion string) {
	p.mu.RLock()
	shadows := p.cfg.Shadows
	backends := p.backends
	p.mu.RUnlock()
	for _, sh := range shadows {
		if sh.Source != "" && sh.Source != "*" && sh.Source != servedVersion {
			continue
		}
		if sh.Percent < 100 {
			p.mu.Lock()
			draw := p.rng.Float64() * 100
			p.mu.Unlock()
			if draw >= sh.Percent {
				continue
			}
		}
		target := backends[sh.Target]
		if sh.TargetURL != "" {
			if u, err := url.Parse(sh.TargetURL); err == nil {
				target = u
			}
		}
		if target == nil {
			continue
		}
		req := cloneRequest(r, target, body)
		job := shadowJob{req: req.WithContext(p.shadowCtx), target: target, vers: sh.Target}
		select {
		case p.shadowCh <- job:
		default:
			p.mRequests.shadowDropped.Inc()
		}
	}
}

func (p *Proxy) shadowWorker() {
	defer p.wg.Done()
	for {
		select {
		case job := <-p.shadowCh:
			resp, err := p.transport.RoundTrip(job.req)
			if err == nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
				_ = resp.Body.Close()
			}
			p.registry.Counter("proxy_shadow_requests_total",
				metrics.Labels{"service": p.service, "version": job.vers}).Inc()
		case <-p.closed:
			return
		}
	}
}

func (p *Proxy) observe(version string, elapsed time.Duration, resp *http.Response, err error) {
	labels := metrics.Labels{"service": p.service, "version": version}
	p.registry.Counter("proxy_requests_total", labels).Inc()
	ms := float64(elapsed.Microseconds()) / 1000.0
	p.registry.Counter("proxy_upstream_ms_sum", labels).Add(ms)
	p.registry.Counter("proxy_upstream_ms_count", labels).Inc()
	p.registry.Gauge("proxy_upstream_ms_last", labels).Set(ms)
	if err != nil || (resp != nil && resp.StatusCode >= 500) {
		p.registry.Counter("proxy_request_errors_total", labels).Inc()
	}
}

type metricsSet struct {
	unrouted      *metrics.Counter
	shadowDropped *metrics.Counter
}

func newMetricsSet(r *metrics.Registry, service string) *metricsSet {
	labels := metrics.Labels{"service": service}
	return &metricsSet{
		unrouted:      r.Counter("proxy_unrouted_total", labels),
		shadowDropped: r.Counter("proxy_shadow_dropped_total", labels),
	}
}

// readReplayableBody drains the request body into memory so it can be sent
// both to the chosen backend and to shadow targets.
func readReplayableBody(r *http.Request) ([]byte, error) {
	if r.Body == nil || r.Body == http.NoBody {
		return nil, nil
	}
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxBodyBytes {
		return nil, errors.New("proxy: body too large")
	}
	return body, nil
}

// cloneRequest builds the upstream request for target from the inbound one.
func cloneRequest(r *http.Request, target *url.URL, body []byte) *http.Request {
	outURL := *target
	outURL.Path = singleJoin(target.Path, r.URL.Path)
	outURL.RawQuery = r.URL.RawQuery
	out, _ := http.NewRequestWithContext(context.Background(), r.Method, outURL.String(), bodyReader(body))
	out.Header = r.Header.Clone()
	out.Header.Del("Connection")
	if prior := r.Header.Get("X-Forwarded-For"); prior != "" {
		out.Header.Set("X-Forwarded-For", prior+", "+remoteIP(r))
	} else if ip := remoteIP(r); ip != "" {
		out.Header.Set("X-Forwarded-For", ip)
	}
	out.ContentLength = int64(len(body))
	return out
}

func bodyReader(body []byte) io.Reader {
	if len(body) == 0 {
		return nil
	}
	return strings.NewReader(string(body))
}

func remoteIP(r *http.Request) string {
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return host
}

func singleJoin(a, b string) string {
	switch {
	case a == "" || a == "/":
		if b == "" {
			return "/"
		}
		return b
	case strings.HasSuffix(a, "/") && strings.HasPrefix(b, "/"):
		return a + b[1:]
	case !strings.HasSuffix(a, "/") && !strings.HasPrefix(b, "/") && b != "":
		return a + "/" + b
	default:
		return a + b
	}
}

func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}
