package flag

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	publicflag "bifrost/flag"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/target"
)

// flagE2EStrategy shifts all traffic from stable to canary across two
// phases. No proxy appears anywhere: routing is enacted purely as flag
// rulesets evaluated inside the SDK.
const flagE2EStrategy = `
name: flag-e2e
deployment:
  services:
    - service: search
      target: flag
      versions:
        - name: stable
          endpoint: 127.0.0.1:9101
        - name: canary
          endpoint: 127.0.0.1:9102
strategy:
  start: launch
  phases:
    - phase: launch
      duration: 150ms
      routes:
        - route:
            service: search
            weights:
              stable: 100
      on:
        success: shift
    - phase: shift
      duration: 30s
      routes:
        - route:
            service: search
            weights:
              canary: 100
      on:
        success: done
    - phase: done
      routes:
        - route:
            service: search
            weights:
              canary: 100
`

// TestFlagTargetEndToEnd proves the flag enactment path: the engine runs a
// real compiled strategy against a registry holding only the flag target,
// the store serves rulesets over HTTP, and the SDK's client-side decisions
// shift versions as the strategy moves between phases.
func TestFlagTargetEndToEnd(t *testing.T) {
	store := NewStore()
	reg := target.NewRegistry()
	if err := reg.Register(target.KindFlag, store); err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.WithConfigurator(engine.NewTargetConfigurator(reg)))
	defer eng.Shutdown()
	ts := httptest.NewServer(store.Handler())
	defer ts.Close()

	s, err := dsl.Compile(flagE2EStrategy)
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatal(err)
	}

	sdk := &publicflag.Client{BaseURL: ts.URL, Service: "search", InstanceID: "sdk-e2e"}
	waitGeneration(t, sdk, 1)
	d, ok := sdk.Decide("alice")
	if !ok || d.Version != "stable" || d.Endpoint != "http://127.0.0.1:9101" {
		t.Fatalf("launch-phase decision = %+v, %v", d, ok)
	}

	// The launch phase times out after 150ms and the automaton moves to
	// shift: the next poll flips the SDK's routing, no restart, no proxy.
	waitGeneration(t, sdk, 2)
	d, ok = sdk.Decide("alice")
	if !ok || d.Version != "canary" || d.Endpoint != "http://127.0.0.1:9102" {
		t.Fatalf("shift-phase decision = %+v, %v", d, ok)
	}

	// The engine sees the SDK instance through the store's convergence
	// reports: one live replica, acked at the current generation.
	reports := store.Convergence(context.Background(), "flag-e2e")
	if len(reports) != 1 {
		t.Fatalf("convergence = %+v, want one service", reports)
	}
	c := reports[0]
	if c.Service != "search" || c.Generation != 2 || c.Replicas != 1 || c.Acked != 1 || !c.Converged {
		t.Errorf("convergence report = %+v", c)
	}

	// Run completion retires the ruleset — the SDK keeps serving its last
	// good snapshot, exactly like a poll outage.
	run.Abort()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := run.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if d, ok := sdk.Decide("alice"); !ok || d.Version != "canary" {
		t.Errorf("post-retire decision = %+v, %v", d, ok)
	}
}

// waitGeneration polls the SDK until it holds at least gen.
func waitGeneration(t *testing.T, sdk *publicflag.Client, gen int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := sdk.Refresh(ctx)
		cancel()
		if err == nil && sdk.Generation() >= gen {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("SDK never reached generation %d: last err %v, at %d",
				gen, err, sdk.Generation())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
