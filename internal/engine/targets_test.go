package engine

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/target"
)

// recordingTarget counts Apply/Retire calls and serves canned convergence.
type recordingTarget struct {
	applies int32
	retires int32
	reports []target.Convergence
	applyFn func(core.RoutingConfig) error
}

func (r *recordingTarget) Apply(_ context.Context, _ *core.Strategy, _ *core.State,
	rc core.RoutingConfig, _ int64) error {
	atomic.AddInt32(&r.applies, 1)
	if r.applyFn != nil {
		return r.applyFn(rc)
	}
	return nil
}

func (r *recordingTarget) Convergence(context.Context, string) []target.Convergence {
	return r.reports
}

func (r *recordingTarget) Retire(string) { atomic.AddInt32(&r.retires, 1) }

// settlingTarget additionally implements Settler/Gate/Paced.
type settlingTarget struct {
	recordingTarget
	settledCalls int32
	gateOK       bool
	every        time.Duration
	budget       time.Duration
}

func (s *settlingTarget) Settled(strategy, service string) { atomic.AddInt32(&s.settledCalls, 1) }

func (s *settlingTarget) WithCurrent(strategy, service string, generation int64, fn func()) bool {
	if !s.gateOK {
		return false
	}
	fn()
	return true
}

func (s *settlingTarget) ReconcileInterval() time.Duration { return s.every }
func (s *settlingTarget) PassBudget() time.Duration        { return s.budget }

func targetFixtureStrategy() *core.Strategy {
	return &core.Strategy{
		Name: "multi-target",
		Services: []core.Service{
			{
				Name:      "shop",
				ProxyURLs: []string{"r1"},
				Versions:  []core.Version{{Name: "stable", Endpoint: "127.0.0.1:9001"}},
			},
			{
				Name:     "search",
				Target:   "flag",
				Versions: []core.Version{{Name: "stable", Endpoint: "127.0.0.1:9002"}},
			},
		},
	}
}

func TestTargetConfiguratorDispatchesByKind(t *testing.T) {
	proxyT := &recordingTarget{}
	flagT := &settlingTarget{}
	reg := target.NewRegistry()
	if err := reg.Register(target.KindProxy, proxyT); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(target.KindFlag, flagT); err != nil {
		t.Fatal(err)
	}
	tc := NewTargetConfigurator(reg)
	s := targetFixtureStrategy()
	ctx := context.Background()

	if err := tc.Configure(ctx, s, nil, core.RoutingConfig{Service: "shop",
		Weights: map[string]float64{"stable": 1}}, 1); err != nil {
		t.Fatal(err)
	}
	if err := tc.Configure(ctx, s, nil, core.RoutingConfig{Service: "search",
		Weights: map[string]float64{"stable": 1}}, 1); err != nil {
		t.Fatal(err)
	}
	if proxyT.applies != 1 || flagT.applies != 1 {
		t.Errorf("applies = proxy %d, flag %d; want 1 each", proxyT.applies, flagT.applies)
	}

	// settled routes only to the owning target that implements Settler.
	tc.settled("multi-target", "shop")
	tc.settled("multi-target", "search")
	if flagT.settledCalls != 1 {
		t.Errorf("flag settled calls = %d, want 1", flagT.settledCalls)
	}

	// forget retires every owner once and drops ownership.
	tc.forget("multi-target")
	if proxyT.retires != 1 || flagT.retires != 1 {
		t.Errorf("retires = proxy %d, flag %d; want 1 each", proxyT.retires, flagT.retires)
	}
	if got := tc.ownerOf("multi-target", "shop"); got != nil {
		t.Errorf("owner survives forget: %v", got)
	}
}

func TestTargetConfiguratorUnknownKind(t *testing.T) {
	tc := NewTargetConfigurator(target.NewRegistry())
	s := targetFixtureStrategy()
	err := tc.Configure(context.Background(), s, nil,
		core.RoutingConfig{Service: "search", Weights: map[string]float64{"stable": 1}}, 1)
	if err == nil {
		t.Fatal("unregistered kind configured")
	}
	if want := `kind "flag"`; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q lacks %q", err, want)
	}
}

func TestTargetConfiguratorAggregatesConvergence(t *testing.T) {
	proxyT := &recordingTarget{reports: []target.Convergence{
		{Service: "shop", Generation: 3, Replicas: 3, Acked: 3, Converged: true},
	}}
	flagT := &settlingTarget{recordingTarget: recordingTarget{reports: []target.Convergence{
		{Service: "search", Generation: 3, Replicas: 2, Acked: 1, Lagging: []string{"sdk-1"}},
	}}}
	reg := target.NewRegistry()
	reg.Register(target.KindProxy, proxyT)
	reg.Register(target.KindFlag, flagT)
	tc := NewTargetConfigurator(reg)
	s := targetFixtureStrategy()
	ctx := context.Background()
	rc := core.RoutingConfig{Weights: map[string]float64{"stable": 1}}
	for _, svc := range []string{"shop", "search"} {
		rc.Service = svc
		if err := tc.Configure(ctx, s, nil, rc, 3); err != nil {
			t.Fatal(err)
		}
	}

	got := tc.reconcile(ctx, "multi-target")
	if len(got) != 2 {
		t.Fatalf("reconcile reports = %+v, want 2", got)
	}
	// Merged across targets, sorted by service.
	if got[0].Service != "search" || got[0].Acked != 1 || got[0].Lagging[0] != "sdk-1" {
		t.Errorf("search report = %+v", got[0])
	}
	if got[1].Service != "shop" || !got[1].Converged {
		t.Errorf("shop report = %+v", got[1])
	}
}

func TestTargetConfiguratorPacing(t *testing.T) {
	fast := &settlingTarget{every: 2 * time.Second, budget: 1 * time.Second}
	slow := &settlingTarget{every: 8 * time.Second, budget: 6 * time.Second}
	reg := target.NewRegistry()
	reg.Register(target.KindFlag, fast)
	reg.Register(target.KindCommand, slow)
	tc := NewTargetConfigurator(reg)
	if got := tc.reconcileInterval(); got != 2*time.Second {
		t.Errorf("reconcileInterval = %v, want fastest (2s)", got)
	}
	if got := tc.passBudget(); got != 6*time.Second {
		t.Errorf("passBudget = %v, want largest (6s)", got)
	}

	// No paced targets → defaults.
	empty := NewTargetConfigurator(target.NewRegistry())
	if got := empty.reconcileInterval(); got != 10*time.Second {
		t.Errorf("default reconcileInterval = %v", got)
	}
	if got := empty.passBudget(); got != 10*time.Second {
		t.Errorf("default passBudget = %v", got)
	}
}

func TestTargetConfiguratorWithCurrent(t *testing.T) {
	gated := &settlingTarget{gateOK: false}
	plain := &recordingTarget{}
	reg := target.NewRegistry()
	reg.Register(target.KindFlag, gated)
	reg.Register(target.KindProxy, plain)
	tc := NewTargetConfigurator(reg)
	s := targetFixtureStrategy()
	ctx := context.Background()
	rc := core.RoutingConfig{Weights: map[string]float64{"stable": 1}}
	for _, svc := range []string{"shop", "search"} {
		rc.Service = svc
		if err := tc.Configure(ctx, s, nil, rc, 1); err != nil {
			t.Fatal(err)
		}
	}

	// No owner → publish refused.
	if tc.withCurrent("multi-target", "ghost", 1, func() {}) {
		t.Error("withCurrent succeeded for unowned service")
	}
	// Gated owner refusing → refused, fn not run.
	ran := false
	if tc.withCurrent("multi-target", "search", 1, func() { ran = true }) || ran {
		t.Error("stale gate let the publish through")
	}
	gated.gateOK = true
	if !tc.withCurrent("multi-target", "search", 1, func() { ran = true }) || !ran {
		t.Error("current gate refused the publish")
	}
	// Owner without a Gate → publish as-is.
	ran = false
	if !tc.withCurrent("multi-target", "shop", 1, func() { ran = true }) || !ran {
		t.Error("gate-less owner refused the publish")
	}
}

func TestTargetConfiguratorTracks(t *testing.T) {
	reg := target.NewRegistry()
	reg.Register(target.KindProxy, &settlingTarget{})
	reg.Register(target.KindFlag, &settlingTarget{})
	reg.Register(target.KindCommand, &recordingTarget{})
	tc := NewTargetConfigurator(reg)

	// flag services track regardless of proxy endpoints.
	if !tc.tracks(targetFixtureStrategy()) {
		t.Error("flag-target strategy not tracked")
	}
	// proxy services track only with declared endpoints.
	proxyOnly := &core.Strategy{Name: "p", Services: []core.Service{{
		Name: "s", Versions: []core.Version{{Name: "v", Endpoint: "e:1"}},
	}}}
	if tc.tracks(proxyOnly) {
		t.Error("endpoint-less proxy service tracked")
	}
	proxyOnly.Services[0].ProxyURLs = []string{"r1"}
	if !tc.tracks(proxyOnly) {
		t.Error("proxy fleet service not tracked")
	}
	// command services never track: the runner reports no convergence.
	cmd := &core.Strategy{Name: "c", Services: []core.Service{{
		Name: "s", Target: "command", Command: []string{"true"},
		Versions: []core.Version{{Name: "v", Endpoint: "e:1"}},
	}}}
	if tc.tracks(cmd) {
		t.Error("command-target strategy tracked")
	}
}

// TestProxyTargetMatchesFleetConfigurator proves the "proxy" plugin is the
// existing fleet delivery with zero behavior change: Apply pushes to every
// replica, Convergence mirrors the configurator's reconcile pass, and the
// gate honors generation currency.
func TestProxyTargetMatchesFleetConfigurator(t *testing.T) {
	s, rc, replicas, dial := fleetFixture()
	fc := NewFleetConfigurator(dial, FleetRetry(fastRetry()))
	pt := NewProxyTarget(fc)
	ctx := context.Background()

	if err := pt.Apply(ctx, s, nil, rc, 1); err != nil {
		t.Fatal(err)
	}
	for name, r := range replicas {
		if r.generation() != 1 {
			t.Errorf("replica %s at generation %d, want 1", name, r.generation())
		}
	}
	pt.Settled(s.Name, "shop")
	reports := pt.Convergence(ctx, s.Name)
	if len(reports) != 1 {
		t.Fatalf("convergence = %+v, want one service", reports)
	}
	rep := reports[0]
	if rep.Service != "shop" || rep.Generation != 1 || rep.Replicas != 3 ||
		rep.Acked != 3 || !rep.Converged {
		t.Errorf("report = %+v", rep)
	}

	if !pt.WithCurrent(s.Name, "shop", 1, func() {}) {
		t.Error("gate refused the current generation")
	}
	if pt.WithCurrent(s.Name, "shop", 99, func() {}) {
		t.Error("gate accepted a foreign generation")
	}

	pt.Retire(s.Name)
	if got := pt.Convergence(ctx, s.Name); len(got) != 0 {
		t.Errorf("convergence after retire = %+v", got)
	}
}

// TestFleetWithCurrentStaleGeneration is the regression test for the
// stale-report race: a convergence report snapshotted for generation N
// must not publish once generation N+1 has superseded it — withCurrent
// re-checks currency under the same lock Configure takes.
func TestFleetWithCurrentStaleGeneration(t *testing.T) {
	s, rc, _, dial := fleetFixture()
	fc := NewFleetConfigurator(dial, FleetRetry(fastRetry()))
	ctx := context.Background()

	if err := fc.Configure(ctx, s, nil, rc, 1); err != nil {
		t.Fatal(err)
	}

	// Mid-settling (routing_applied not journaled yet): no publishes.
	if fc.withCurrent(s.Name, "shop", 1, func() {}) {
		t.Error("withCurrent passed while settling")
	}
	fc.settled(s.Name, "shop")
	ran := false
	if !fc.withCurrent(s.Name, "shop", 1, func() { ran = true }) || !ran {
		t.Error("withCurrent refused the settled current generation")
	}

	// Generation 2 supersedes 1 — exactly the filter-to-publish window the
	// race lived in: a pass that snapshotted gen-1 reports must now find
	// the gate closed.
	if err := fc.Configure(ctx, s, nil, rc, 2); err != nil {
		t.Fatal(err)
	}
	ran = false
	if fc.withCurrent(s.Name, "shop", 1, func() { ran = true }) || ran {
		t.Error("stale generation-1 report slipped through the publish gate")
	}
	// And the new generation stays gated until it settles.
	if fc.withCurrent(s.Name, "shop", 2, func() {}) {
		t.Error("withCurrent passed for a still-settling generation")
	}
	fc.settled(s.Name, "shop")
	if !fc.withCurrent(s.Name, "shop", 2, func() {}) {
		t.Error("withCurrent refused the new settled generation")
	}

	// Unknown fleets never publish.
	if fc.withCurrent(s.Name, "ghost", 1, func() {}) {
		t.Error("withCurrent passed for unknown service")
	}
}
