package proxy

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bifrost/internal/httpx"
)

// backend spins up a test HTTP server that tags responses with its name and
// counts requests.
type backend struct {
	name  string
	srv   *httptest.Server
	hits  atomic.Int64
	bodys sync.Map // path -> last body
	code  atomic.Int64
}

func newBackend(t *testing.T, name string) *backend {
	t.Helper()
	b := &backend{name: name}
	b.code.Store(http.StatusOK)
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		if r.Body != nil {
			data, _ := io.ReadAll(r.Body)
			if len(data) > 0 {
				b.bodys.Store(r.URL.Path, string(data))
			}
		}
		w.Header().Set("X-Backend", name)
		w.WriteHeader(int(b.code.Load()))
		fmt.Fprintf(w, "served by %s", name)
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func twoBackendConfig(a, b *backend, wa, wb float64, sticky bool) Config {
	return Config{
		Service:    "product",
		Generation: 1,
		Sticky:     sticky,
		Backends: []Backend{
			{Version: a.name, URL: a.srv.URL, Weight: wa},
			{Version: b.name, URL: b.srv.URL, Weight: wb},
		},
	}
}

func newTestProxy(t *testing.T, cfg Config) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New("product", cfg, WithSeed(42))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts
}

func get(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestWeightedSplitRoughlyHonored(t *testing.T) {
	a := newBackend(t, "stable")
	b := newBackend(t, "canary")
	_, ts := newTestProxy(t, twoBackendConfig(a, b, 95, 5, false))

	client := ts.Client() // no cookie jar: every request draws fresh
	const n = 1000
	for i := 0; i < n; i++ {
		resp := get(t, client, ts.URL+"/products")
		io.Copy(io.Discard, resp.Body)
	}
	canaryShare := float64(b.hits.Load()) / n
	if canaryShare < 0.02 || canaryShare > 0.09 {
		t.Errorf("canary share = %.3f, want ≈ 0.05", canaryShare)
	}
	if a.hits.Load()+b.hits.Load() != n {
		t.Errorf("hits = %d + %d, want %d", a.hits.Load(), b.hits.Load(), n)
	}
}

func TestResponseCarriesVersionHeaderAndBody(t *testing.T) {
	a := newBackend(t, "only")
	_, ts := newTestProxy(t, Config{
		Service: "product", Generation: 1,
		Backends: []Backend{{Version: "only", URL: a.srv.URL, Weight: 1}},
	})
	resp := get(t, ts.Client(), ts.URL+"/x")
	if got := resp.Header.Get("X-Bifrost-Version"); got != "only" {
		t.Errorf("X-Bifrost-Version = %q", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "served by only" {
		t.Errorf("body = %q", body)
	}
}

func TestCookieSetAndStickySessions(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	_, ts := newTestProxy(t, twoBackendConfig(a, b, 50, 50, true))

	// First request mints a cookie.
	resp := get(t, ts.Client(), ts.URL+"/buy")
	io.Copy(io.Discard, resp.Body)
	var cookie *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == CookieName {
			cookie = c
		}
	}
	if cookie == nil {
		t.Fatal("no bifrost-id cookie set")
	}
	firstVersion := resp.Header.Get("X-Bifrost-Version")

	// Subsequent requests with the cookie stick to the same version.
	for i := 0; i < 20; i++ {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/buy", nil)
		req.AddCookie(cookie)
		r2, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if v := r2.Header.Get("X-Bifrost-Version"); v != firstVersion {
			t.Fatalf("request %d routed to %q, sticky session started on %q", i, v, firstVersion)
		}
	}
}

func TestStickyMappingsExposed(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	p, ts := newTestProxy(t, twoBackendConfig(a, b, 50, 50, true))
	resp := get(t, ts.Client(), ts.URL+"/")
	io.Copy(io.Discard, resp.Body)
	maps := p.Mappings()
	if len(maps) != 1 {
		t.Fatalf("mappings = %d, want 1", len(maps))
	}
	if !maps[0].Sticky || (maps[0].Version != "A" && maps[0].Version != "B") {
		t.Errorf("mapping = %+v", maps[0])
	}
}

func TestConfigChangeClearsSticky(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	p, ts := newTestProxy(t, twoBackendConfig(a, b, 50, 50, true))
	resp := get(t, ts.Client(), ts.URL+"/")
	io.Copy(io.Discard, resp.Body)
	if len(p.Mappings()) != 1 {
		t.Fatal("precondition: one mapping")
	}
	cfg := twoBackendConfig(a, b, 50, 50, true)
	cfg.Generation = 2
	if err := p.SetConfig(cfg); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	if len(p.Mappings()) != 0 {
		t.Error("sticky table survived state change")
	}
}

func TestHeaderBasedRouting(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	cfg := twoBackendConfig(a, b, 50, 50, false)
	cfg.Mode = "header"
	cfg.Header = "X-Bifrost-Group"
	_, ts := newTestProxy(t, cfg)

	for _, want := range []string{"A", "B", "A"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/", nil)
		req.Header.Set("X-Bifrost-Group", want)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Bifrost-Version"); got != want {
			t.Errorf("routed to %q, want %q", got, want)
		}
	}
	// Unknown group falls back to weighted routing rather than failing.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/", nil)
	req.Header.Set("X-Bifrost-Group", "nope")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fallback status = %d", resp.StatusCode)
	}
}

func TestShadowDuplication(t *testing.T) {
	live := newBackend(t, "live")
	dark := newBackend(t, "dark")
	cfg := Config{
		Service: "product", Generation: 1,
		Backends: []Backend{
			{Version: "live", URL: live.srv.URL, Weight: 1},
			{Version: "dark", URL: dark.srv.URL, Weight: 0},
		},
		Shadows: []Shadow{{Source: "*", Target: "dark", Percent: 100}},
	}
	_, ts := newTestProxy(t, cfg)

	const n = 25
	for i := 0; i < n; i++ {
		resp, err := ts.Client().Post(ts.URL+"/buy", "application/json",
			strings.NewReader(`{"product":"tv"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// All client traffic must be served by the live version only.
		if v := resp.Header.Get("X-Bifrost-Version"); v != "live" {
			t.Fatalf("client routed to %q", v)
		}
	}
	// Shadow delivery is async; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for dark.hits.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := dark.hits.Load(); got != n {
		t.Errorf("dark hits = %d, want %d (100%% duplication)", got, n)
	}
	if got := live.hits.Load(); got != n {
		t.Errorf("live hits = %d, want %d", got, n)
	}
	// The duplicated request carries the body.
	if body, ok := dark.bodys.Load("/buy"); !ok || body != `{"product":"tv"}` {
		t.Errorf("shadow body = %v", body)
	}
}

func TestShadowPartialPercent(t *testing.T) {
	live := newBackend(t, "live")
	dark := newBackend(t, "dark")
	cfg := Config{
		Service: "product", Generation: 1,
		Backends: []Backend{
			{Version: "live", URL: live.srv.URL, Weight: 1},
		},
		Shadows: []Shadow{{Target: "dark", TargetURL: dark.srv.URL, Percent: 30}},
	}
	_, ts := newTestProxy(t, cfg)
	const n = 500
	for i := 0; i < n; i++ {
		resp := get(t, ts.Client(), ts.URL+"/d")
		io.Copy(io.Discard, resp.Body)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		h := dark.hits.Load()
		if h > n/5 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	share := float64(dark.hits.Load()) / n
	if share < 0.2 || share > 0.42 {
		t.Errorf("shadow share = %.3f, want ≈ 0.30", share)
	}
}

func TestUnconfiguredProxyReturns503(t *testing.T) {
	p, err := New("empty", Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	resp := get(t, ts.Client(), ts.URL+"/")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func TestStaleGenerationRejected(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	p, _ := newTestProxy(t, twoBackendConfig(a, b, 1, 1, false))
	cfg := twoBackendConfig(a, b, 1, 1, false)
	cfg.Generation = 5
	if err := p.SetConfig(cfg); err != nil {
		t.Fatalf("gen 5: %v", err)
	}
	cfg.Generation = 3
	if err := p.SetConfig(cfg); err == nil {
		t.Fatal("stale generation accepted")
	}
	cfg.Generation = 5 // same generation is allowed (idempotent retry)
	if err := p.SetConfig(cfg); err != nil {
		t.Fatalf("same gen rejected: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	a := newBackend(t, "A")
	cases := []Config{
		{Service: "s", Backends: []Backend{{Version: "v", URL: "://bad", Weight: 1}}},
		{Service: "s", Backends: []Backend{{Version: "v", URL: a.srv.URL, Weight: 1}},
			Shadows: []Shadow{{Target: "ghost", Percent: 10}}},
		{Service: "s", Backends: []Backend{{Version: "v", URL: a.srv.URL, Weight: 1}},
			Shadows: []Shadow{{Target: "v", Percent: 200}}},
		{Service: "s", Backends: []Backend{{Version: "v", URL: a.srv.URL, Weight: 1}},
			Mode: "header"},
		{Service: "s", Backends: []Backend{{Version: "v", URL: a.srv.URL, Weight: 0}}},
	}
	for i, cfg := range cases {
		if _, err := New("s", cfg); err == nil {
			t.Errorf("case %d: config accepted: %+v", i, cfg)
		}
	}
}

func TestErrorMetricsRecorded(t *testing.T) {
	a := newBackend(t, "A")
	a.code.Store(http.StatusInternalServerError)
	p, ts := newTestProxy(t, Config{
		Service: "product", Generation: 1,
		Backends: []Backend{{Version: "A", URL: a.srv.URL, Weight: 1}},
	})
	for i := 0; i < 3; i++ {
		resp := get(t, ts.Client(), ts.URL+"/")
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	points := p.Registry().Gather()
	var errCount float64
	for _, pt := range points {
		if pt.Name == "proxy_request_errors_total" && pt.Labels["version"] == "A" {
			errCount = pt.Value
		}
	}
	if errCount != 3 {
		t.Errorf("proxy_request_errors_total = %v, want 3", errCount)
	}
}

func TestAdminAPIOverHTTP(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	_, ts := newTestProxy(t, twoBackendConfig(a, b, 95, 5, false))
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	cfg, err := c.GetConfig(ctx)
	if err != nil {
		t.Fatalf("GetConfig: %v", err)
	}
	if cfg.Service != "product" || len(cfg.Backends) != 2 {
		t.Errorf("cfg = %+v", cfg)
	}

	newCfg := twoBackendConfig(a, b, 50, 50, true)
	newCfg.Generation = 2
	if err := c.SetConfig(ctx, newCfg); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	got, err := c.GetConfig(ctx)
	if err != nil || !got.Sticky {
		t.Errorf("updated cfg = %+v, %v", got, err)
	}

	// Stale push surfaces as a typed 409 stale_generation problem, so the
	// engine's retry logic can tell a lost ordering race apart from an
	// invalid config.
	stale := twoBackendConfig(a, b, 1, 1, false)
	stale.Generation = 1
	err = c.SetConfig(ctx, stale)
	var prob *httpx.Problem
	if !errors.As(err, &prob) || prob.Status != http.StatusConflict || prob.Code != CodeStaleGeneration {
		t.Errorf("stale push error = %v, want 409 %s", err, CodeStaleGeneration)
	}

	// An invalid config is a typed 400 invalid_config problem — a permanent
	// failure that must never be retried.
	bad := twoBackendConfig(a, b, 50, 50, false)
	bad.Generation = 3
	bad.Backends[0].URL = "not a url"
	err = c.SetConfig(ctx, bad)
	prob = nil
	if !errors.As(err, &prob) || prob.Status != http.StatusBadRequest || prob.Code != CodeInvalidConfig {
		t.Errorf("invalid push error = %v, want 400 %s", err, CodeInvalidConfig)
	}

	// Exposition endpoint serves metrics.
	resp := get(t, ts.Client(), ts.URL+"/_bifrost/metrics")
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "proxy_config_generation") {
		t.Errorf("metrics exposition missing gauge:\n%s", body)
	}
}

func asErr(err error, target **httpx.Error) bool {
	for err != nil {
		if e, ok := err.(*httpx.Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestQueryStringAndPathForwarded(t *testing.T) {
	var gotPath, gotQuery string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotQuery = r.URL.RawQuery
	}))
	t.Cleanup(srv.Close)
	_, ts := newTestProxy(t, Config{
		Service: "search", Generation: 1,
		Backends: []Backend{{Version: "v", URL: srv.URL, Weight: 1}},
	})
	resp := get(t, ts.Client(), ts.URL+"/search/items?q=tv&limit=10")
	io.Copy(io.Discard, resp.Body)
	if gotPath != "/search/items" {
		t.Errorf("path = %q", gotPath)
	}
	if gotQuery != "q=tv&limit=10" {
		t.Errorf("query = %q", gotQuery)
	}
}

func BenchmarkRoutingDecisionCookie(b *testing.B) {
	a := newBackendB(b, "A")
	bb := newBackendB(b, "B")
	p, err := New("product", Config{
		Service: "product", Generation: 1, Sticky: true,
		Backends: []Backend{
			{Version: "A", URL: a, Weight: 50},
			{Version: "B", URL: bb, Weight: 50},
		},
	}, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	req.AddCookie(&http.Cookie{Name: CookieName, Value: "123e4567-e89b-42d3-a456-426614174000"})
	st := p.state.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, _, _ := p.decide(st, req); v == "" {
			b.Fatal("decide failed")
		}
	}
}

func newBackendB(b *testing.B, name string) string {
	b.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	b.Cleanup(srv.Close)
	return srv.URL
}

// TestStreamingResponseFlushedIncrementally proves SSE-style responses
// pass through the proxy as they are produced: the first event must reach
// the client while the upstream handler is still holding the connection
// open. Before the ResponseController fix the proxy's io.Copy sat on the
// ResponseWriter's buffer until the upstream closed.
func TestStreamingResponseFlushedIncrementally(t *testing.T) {
	release := make(chan struct{})
	sse := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "data: first\n\n")
		w.(http.Flusher).Flush()
		select {
		case <-release:
		case <-r.Context().Done():
		}
		fmt.Fprint(w, "data: second\n\n")
	}))
	t.Cleanup(sse.Close)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	_, ts := newTestProxy(t, Config{
		Service: "events", Generation: 1,
		Backends: []Backend{{Version: "v", URL: sse.URL, Weight: 1}},
	})

	resp, err := ts.Client().Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type read struct {
		line string
		err  error
	}
	lines := make(chan read, 4)
	go func() {
		br := bufio.NewReader(resp.Body)
		for {
			l, err := br.ReadString('\n')
			lines <- read{line: l, err: err}
			if err != nil {
				return
			}
		}
	}()

	// The first event must arrive while the upstream handler is blocked.
	select {
	case got := <-lines:
		if got.err != nil || !strings.Contains(got.line, "first") {
			t.Fatalf("first read = %q, %v", got.line, got.err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no data flushed through the proxy while the stream is open")
	}
	close(release)
}

// TestHopByHopHeadersStripped checks RFC 9110 §7.6.1: connection-scoped
// fields, and fields nominated by Connection, must not traverse the proxy
// in either direction.
func TestHopByHopHeadersStripped(t *testing.T) {
	var got http.Header
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Clone()
		w.Header().Set("Keep-Alive", "timeout=5")
		w.Header().Set("X-Secret", "upstream-internal")
		w.Header().Set("X-Public", "yes")
		w.Header().Add("Connection", "X-Secret")
		w.Write([]byte("ok"))
	}))
	t.Cleanup(upstream.Close)

	_, ts := newTestProxy(t, Config{
		Service: "product", Generation: 1,
		Backends: []Backend{{Version: "v", URL: upstream.URL, Weight: 1}},
	})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/h", nil)
	req.Header.Set("Keep-Alive", "timeout=9")
	req.Header.Set("Proxy-Connection", "keep-alive")
	req.Header.Set("X-Private", "client-hop")
	req.Header.Set("X-App", "fine")
	req.Header.Add("Connection", "X-Private")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	for _, h := range []string{"Keep-Alive", "Proxy-Connection", "X-Private"} {
		if v := got.Get(h); v != "" {
			t.Errorf("hop-by-hop request header %s = %q forwarded upstream", h, v)
		}
	}
	if got.Get("X-App") != "fine" {
		t.Errorf("end-to-end request header dropped; upstream saw %v", got)
	}
	for _, h := range []string{"Keep-Alive", "X-Secret"} {
		if v := resp.Header.Get(h); v != "" {
			t.Errorf("hop-by-hop response header %s = %q leaked to client", h, v)
		}
	}
	if resp.Header.Get("X-Public") != "yes" {
		t.Errorf("end-to-end response header dropped; client saw %v", resp.Header)
	}
}

// TestCopyEndToEndHeaderFullSet unit-tests the whole RFC 9110 hop-by-hop
// set, including fields Go's HTTP client would refuse to send end-to-end.
func TestCopyEndToEndHeaderFullSet(t *testing.T) {
	src := http.Header{}
	for _, h := range []string{"Connection", "Keep-Alive", "Proxy-Authenticate",
		"Proxy-Authorization", "Proxy-Connection", "Te", "Trailer",
		"Transfer-Encoding", "Upgrade"} {
		src.Set(h, "x")
	}
	src.Set("Connection", "x-named, other-named")
	src.Set("X-Named", "hop")
	src.Set("Other-Named", "hop")
	src.Set("Content-Type", "application/json")
	dst := http.Header{}
	copyEndToEndHeader(dst, src)
	if len(dst) != 1 || dst.Get("Content-Type") != "application/json" {
		t.Errorf("copied headers = %v, want only Content-Type", dst)
	}
}

// TestShadowTargetURLValidated closes the validation gap: a scheme-less
// shadow TargetURL parsed fine but was silently dropped at enqueue time.
func TestShadowTargetURLValidated(t *testing.T) {
	a := newBackend(t, "A")
	cfg := Config{
		Service: "s", Generation: 1,
		Backends: []Backend{{Version: "A", URL: a.srv.URL, Weight: 1}},
		Shadows:  []Shadow{{Target: "dark", TargetURL: "127.0.0.1:9", Percent: 10}},
	}
	if _, err := New("s", cfg); err == nil {
		t.Error("scheme-less shadow TargetURL accepted")
	}
	cfg.Shadows[0].TargetURL = "http://127.0.0.1:9"
	p, err := New("s", cfg)
	if err != nil {
		t.Errorf("valid shadow TargetURL rejected: %v", err)
	} else {
		p.Close()
	}
}

// TestCloseIdempotent: a second Close used to panic on the double-close of
// the workers' stop channel.
func TestCloseIdempotent(t *testing.T) {
	p, err := New("s", Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
}

// TestLargeBodyStreamsWithoutShadows: request bodies are only buffered
// (and therefore size-capped) when shadow rules need to replay them; with
// no shadows configured a body beyond maxBodyBytes streams through.
func TestLargeBodyStreamsWithoutShadows(t *testing.T) {
	var received int64
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, _ := io.Copy(io.Discard, r.Body)
		received = n
	}))
	t.Cleanup(upstream.Close)
	_, ts := newTestProxy(t, Config{
		Service: "s", Generation: 1,
		Backends: []Backend{{Version: "v", URL: upstream.URL, Weight: 1}},
	})

	size := int64(maxBodyBytes + 1024)
	resp, err := ts.Client().Post(ts.URL+"/up", "application/octet-stream",
		io.LimitReader(neverEndingReader{}, size))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 for streamed large body", resp.StatusCode)
	}
	if received != size {
		t.Errorf("upstream received %d bytes, want %d", received, size)
	}
}

type neverEndingReader struct{}

func (neverEndingReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	return len(p), nil
}
