// Package flag is the Bifrost feature-flag SDK: the client side of the
// engine's "flag" enactment target. Instead of routing requests through a
// Bifrost proxy, an application embeds this client, polls the engine for
// the service's current ruleset, and evaluates routing decisions
// in-process — the fastest possible data plane, with no proxy hop at all.
//
// Cohort assignment is byte-for-byte consistent with the proxy's
// sticky-session semantics: both sides hash the user identity through
// core.Selector, so a user who hits a proxy-fronted service and a
// flag-evaluated service in the same strategy lands in the same cohort.
//
//	c := &flag.Client{BaseURL: "http://engine:8080/flags", Service: "search"}
//	if err := c.Refresh(ctx); err != nil { ... }
//	c.Start() // background polling; defer c.Close()
//
//	d, ok := c.Decide(userID)
//	// d.Version is the variant, d.Endpoint where it runs.
package flag

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/httpx"
	"bifrost/internal/uuid"
)

// InstanceHeader carries the SDK instance identity on ruleset polls; the
// engine's flag store uses it to count live instances and report
// convergence the same way it reports proxy-fleet acks.
const InstanceHeader = "X-Bifrost-Flag-Instance"

// Ruleset is the engine-rendered routing state for one service: the wire
// format served at GET {BaseURL}/{service} and evaluated client-side.
type Ruleset struct {
	Service    string    `json:"service"`
	Strategy   string    `json:"strategy"`
	Generation int64     `json:"generation"`
	Sticky     bool      `json:"sticky"`
	Mode       string    `json:"mode,omitempty"` // "" (weighted/cookie) or "header"
	Header     string    `json:"header,omitempty"`
	Variants   []Variant `json:"variants"`
}

// Variant is one routable version with its normalized traffic share.
type Variant struct {
	Name     string  `json:"name"`
	Endpoint string  `json:"endpoint"`
	Weight   float64 `json:"weight"`
}

// Decision is the outcome of evaluating a ruleset for one user.
type Decision struct {
	// Version is the variant the user is assigned to.
	Version string
	// Endpoint is where that variant's instances are reachable.
	Endpoint string
	// Generation identifies the ruleset the decision came from.
	Generation int64
}

// snapshot is the immutable evaluated form of a ruleset; Decide reads it
// lock-free through Client.mu-free atomics-style replacement under mu.
type snapshot struct {
	set       Ruleset
	selector  *core.Selector
	endpoints map[string]string
}

// Client polls the engine for a service's ruleset and evaluates routing
// decisions locally. The zero value plus BaseURL and Service is ready;
// all methods are safe for concurrent use.
type Client struct {
	// BaseURL is the engine's flag endpoint root, e.g.
	// "http://engine:8080/flags".
	BaseURL string
	// Service names the service whose ruleset this client evaluates.
	Service string
	// HTTPClient overrides http.DefaultClient for polls.
	HTTPClient *http.Client
	// PollInterval is the background refresh cadence (default 5s).
	PollInterval time.Duration
	// InstanceID identifies this SDK instance to the engine's convergence
	// tracking; defaults to a random UUID on first use.
	InstanceID string

	mu       sync.Mutex
	snap     *snapshot
	rng      *rand.Rand
	stopPoll chan struct{}
	pollDone chan struct{}
}

// Refresh fetches the current ruleset once and swaps it in.
func (c *Client) Refresh(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/"+url.PathEscape(c.Service), nil)
	if err != nil {
		return err
	}
	req.Header.Set(InstanceHeader, c.instance())
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("flag: poll %q: %w", c.Service, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var p httpx.Problem
		if err := httpx.ReadJSONBody(resp.Body, &p); err == nil && p.Status != 0 {
			return fmt.Errorf("flag: poll %q: %w", c.Service, &p)
		}
		return fmt.Errorf("flag: poll %q: unexpected status %d", c.Service, resp.StatusCode)
	}
	var set Ruleset
	if err := httpx.ReadJSONBody(resp.Body, &set); err != nil {
		return fmt.Errorf("flag: poll %q: %w", c.Service, err)
	}
	return c.Load(set)
}

// Load installs a ruleset directly, bypassing HTTP — for tests, benches,
// and rulesets delivered out-of-band.
func (c *Client) Load(set Ruleset) error {
	weights := make(map[string]float64, len(set.Variants))
	endpoints := make(map[string]string, len(set.Variants))
	for _, v := range set.Variants {
		weights[v.Name] = v.Weight
		endpoints[v.Name] = v.Endpoint
	}
	rc := core.RoutingConfig{Service: set.Service, Weights: weights}
	sel, err := core.NewSelector(&rc)
	if err != nil {
		return fmt.Errorf("flag: ruleset for %q: %w", set.Service, err)
	}
	c.mu.Lock()
	c.snap = &snapshot{set: set, selector: sel, endpoints: endpoints}
	c.mu.Unlock()
	return nil
}

// Start begins background polling every PollInterval. Calling Start twice
// without Close is a no-op.
func (c *Client) Start() {
	c.mu.Lock()
	if c.stopPoll != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.stopPoll, c.pollDone = stop, done
	interval := c.PollInterval
	c.mu.Unlock()
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			// Keep serving the last good snapshot on poll failure: a
			// briefly unreachable engine must not take routing down.
			_ = c.Refresh(ctx)
			cancel()
		}
	}()
}

// Close stops background polling and waits for the poller to exit.
func (c *Client) Close() {
	c.mu.Lock()
	stop, done := c.stopPoll, c.pollDone
	c.stopPoll, c.pollDone = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Decide evaluates the current ruleset for a user identity (cookie value,
// account ID, or — in header mode — the externally assigned group name).
// It reports false when no ruleset has been loaded yet.
func (c *Client) Decide(user string) (Decision, bool) {
	c.mu.Lock()
	snap := c.snap
	c.mu.Unlock()
	if snap == nil {
		return Decision{}, false
	}
	var version string
	if snap.set.Mode == "header" {
		// Header routing: the caller's value names a variant directly;
		// unknown values fall through to the weighted split, matching the
		// proxy's decide path.
		if _, ok := snap.endpoints[user]; ok {
			version = user
		}
	}
	if version == "" {
		if snap.set.Sticky {
			// Same hash as the proxy's sticky assignment: η is a pure
			// function of (config, user), so proxy and SDK agree.
			version = snap.selector.Assign(user)
		} else {
			version = snap.selector.Pick(c.randFloat())
		}
	}
	return Decision{
		Version:    version,
		Endpoint:   snap.endpoints[version],
		Generation: snap.set.Generation,
	}, true
}

// Generation returns the loaded ruleset's generation, or 0 before the
// first load.
func (c *Client) Generation() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap == nil {
		return 0
	}
	return c.snap.set.Generation
}

func (c *Client) instance() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.InstanceID == "" {
		if u, err := uuid.NewV4(); err == nil {
			c.InstanceID = u.String()
		} else {
			c.InstanceID = fmt.Sprintf("flag-%d", time.Now().UnixNano())
		}
	}
	return c.InstanceID
}

func (c *Client) randFloat() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c.rng.Float64()
}
