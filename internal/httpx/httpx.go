// Package httpx provides the small HTTP plumbing shared by every Bifrost
// component: JSON request/response helpers, a gracefully stoppable server
// bound to an ephemeral or fixed port, and a client with sane timeouts.
//
// The original prototype used Express; this package plays the same role on
// top of net/http.
package httpx

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// MaxBodyBytes caps request bodies accepted by ReadJSON; release strategies
// and routing configs are small, so anything larger is a client error.
const MaxBodyBytes = 4 << 20

// ErrServerClosed mirrors http.ErrServerClosed for callers of Serve.
var ErrServerClosed = http.ErrServerClosed

// Error is the JSON error envelope all Bifrost APIs return.
type Error struct {
	StatusCode int    `json:"status"`
	Message    string `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("http %d: %s", e.StatusCode, e.Message)
}

// WriteJSON serializes v as JSON with the given status code.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding errors after WriteHeader cannot be reported to the client;
	// they surface to the caller's logs via the server's error handling.
	_ = enc.Encode(v)
}

// WriteError writes the standard JSON error envelope.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, Error{StatusCode: status, Message: msg})
}

// ReadJSON decodes the request body into v, rejecting oversized and
// syntactically invalid payloads.
func ReadJSON(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode json body: %w", err)
	}
	// Reject trailing garbage after the JSON value.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		return errors.New("decode json body: trailing data")
	}
	return nil
}

// ReadJSONBody decodes a bounded JSON stream (e.g. a response body) into v.
func ReadJSONBody(body io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(body, MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode json: %w", err)
	}
	return nil
}

// Server wraps http.Server with listener ownership so components can bind
// port 0 and discover their address, and stop cleanly in tests.
type Server struct {
	srv      *http.Server
	listener net.Listener

	mu     sync.Mutex
	done   chan struct{}
	srvErr error
}

// NewServer creates a server for handler on addr (host:port; port may be 0).
// The listener is opened immediately so Addr is valid before Serve starts.
func NewServer(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return &Server{
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 10 * time.Second,
		},
		listener: ln,
		done:     make(chan struct{}),
	}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43817".
func (s *Server) Addr() string { return s.listener.Addr().String() }

// URL returns the http base URL for the bound address.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Start serves in a background goroutine. Use Shutdown to stop and wait.
func (s *Server) Start() {
	go func() {
		err := s.srv.Serve(s.listener)
		s.mu.Lock()
		if !errors.Is(err, http.ErrServerClosed) {
			s.srvErr = err
		}
		s.mu.Unlock()
		close(s.done)
	}()
}

// Shutdown stops the server gracefully and waits for the serve goroutine.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.srvErr
}

// Client is a shared HTTP client with timeouts suitable for control-plane
// calls between Bifrost components on a local network.
var Client = &http.Client{
	Timeout: 30 * time.Second,
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 128,
		IdleConnTimeout:     90 * time.Second,
	},
}

// GetJSON issues GET url and decodes the JSON response into v.
func GetJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	return doJSON(req, v)
}

// PostJSON POSTs body as JSON to url and decodes the response into v when
// v is non-nil.
func PostJSON(ctx context.Context, url string, body, v any) error {
	return sendJSON(ctx, http.MethodPost, url, body, v)
}

// PutJSON PUTs body as JSON to url and decodes the response into v when
// v is non-nil.
func PutJSON(ctx context.Context, url string, body, v any) error {
	return sendJSON(ctx, http.MethodPut, url, body, v)
}

// DoJSON sends body as JSON with an arbitrary method and decodes the
// response into v when v is non-nil.
func DoJSON(ctx context.Context, method, url string, body, v any) error {
	return sendJSON(ctx, method, url, body, v)
}

func sendJSON(ctx context.Context, method, url string, body, v any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("encode body: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bytesReader(raw))
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	// net/http only rewinds bodies it recognizes; with a custom reader a
	// 307 (an HA engine redirecting to a run's owner) would silently
	// re-POST with no body. Supply the rewind explicitly.
	req.ContentLength = int64(len(raw))
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytesReader(raw)), nil
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(req, v)
}

func doJSON(req *http.Request, v any) error {
	resp, err := Client.Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", req.Method, req.URL, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, MaxBodyBytes))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
		// Typed problem+json errors carry a machine-readable code; the
		// legacy envelope remains for components not yet migrated.
		if strings.HasPrefix(resp.Header.Get("Content-Type"), ProblemContentType) {
			var p Problem
			if json.Unmarshal(data, &p) == nil && (p.Title != "" || p.Code != "") {
				p.Status = resp.StatusCode
				return &p
			}
		}
		var apiErr Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			apiErr.StatusCode = resp.StatusCode
			return &apiErr
		}
		return &Error{StatusCode: resp.StatusCode, Message: string(data)}
	}
	if v == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("decode response from %s: %w", req.URL, err)
	}
	return nil
}

// bytesReader avoids importing bytes just for one call site in hot paths.
func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
