package engine

import (
	"context"
	"sync"

	"bifrost/internal/clock"
	"bifrost/internal/core"
)

// checkRunner executes one check's timed (re-)executions within a state,
// implementing the τ timer mechanism of §3.2 and Figure 3 of the paper.
type checkRunner struct {
	run       *Run
	check     *core.Check
	interrupt chan<- string

	mu         sync.Mutex
	executions int
	successes  int
	failures   int
	lastError  string
}

func newCheckRunner(r *Run, c *core.Check, interrupt chan<- string) *checkRunner {
	return &checkRunner{run: r, check: c, interrupt: interrupt}
}

// runTimed executes the check every Interval until the scheduled number of
// executions is reached or the state context ends. Following Figure 3 of
// the paper, the first execution happens immediately on state entry (a1
// starts at t0), so n executions span (n−1)·Interval and always fit inside
// a state whose duration is n·Interval.
func (cr *checkRunner) runTimed(ctx context.Context, clk clock.Clock) {
	if ctx.Err() != nil {
		return
	}
	cr.executeOnce(ctx)
	total := cr.check.ExecutionsOrDefault()
	if total <= 1 {
		return
	}
	ticker := clk.NewTicker(cr.check.Interval)
	defer ticker.Stop()
	for i := 1; i < total; i++ {
		select {
		case <-ticker.C():
			cr.executeOnce(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// runOnce performs a single end-of-state execution (checks without timers).
func (cr *checkRunner) runOnce(ctx context.Context) {
	cr.executeOnce(ctx)
}

func (cr *checkRunner) executeOnce(ctx context.Context) {
	ok, err := cr.check.Eval.Evaluate(ctx)
	cr.run.engine.mChecks.Inc()

	cr.mu.Lock()
	cr.executions++
	if err != nil {
		cr.lastError = err.Error()
		ok = false
	}
	if ok {
		cr.successes++
	} else {
		cr.failures++
	}
	cr.mu.Unlock()

	cr.run.engine.bus.publish(Event{
		Strategy: cr.run.strategy.Name,
		Type:     EventCheckExecuted,
		State:    cr.currentState(),
		Check:    cr.check.Name,
		Outcome:  boolToInt(ok),
		Time:     cr.run.engine.clk.Now(),
	})

	// Exception semantics: a single failed execution triggers the state
	// transition immediately (first failure wins; later ones are no-ops).
	if !ok && cr.check.Kind == core.ExceptionCheck {
		select {
		case cr.interrupt <- cr.check.Fallback:
			cr.run.engine.bus.publish(Event{
				Strategy: cr.run.strategy.Name,
				Type:     EventExceptionTriggered,
				State:    cr.currentState(),
				Check:    cr.check.Name,
				Detail:   cr.check.Fallback,
				Time:     cr.run.engine.clk.Now(),
			})
		default:
		}
	}
}

// mappedOutcome aggregates the execution results (Σ f_j) and maps basic
// checks through their output mapping Out_ci. Exception checks contribute
// their raw success count, which equals n when all executions succeeded.
func (cr *checkRunner) mappedOutcome() (int, error) {
	cr.mu.Lock()
	successes := cr.successes
	cr.mu.Unlock()
	if cr.check.Kind == core.ExceptionCheck {
		return successes, nil
	}
	return cr.check.MapOutcome(successes)
}

func (cr *checkRunner) snapshot() CheckStatus {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return CheckStatus{
		Name:       cr.check.Name,
		Kind:       cr.check.Kind.String(),
		Executions: cr.executions,
		Successes:  cr.successes,
		Failures:   cr.failures,
		LastError:  cr.lastError,
	}
}

func (cr *checkRunner) currentState() string {
	cr.run.mu.Lock()
	defer cr.run.mu.Unlock()
	return cr.run.status.Current
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
