package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// Validator is the compiled form of a DSL check validator such as "<5",
// ">=150", "==0", "!=1" or "10..20" (inclusive range). A check's metric
// evaluating function f_ci applies the validator to the query result to
// produce the {0, 1} outcome of one execution.
type Validator struct {
	op  string
	lhs float64 // lower bound for ranges, otherwise the comparison operand
	rhs float64 // upper bound for ranges
	src string
}

// ParseValidator compiles a validator expression.
func ParseValidator(src string) (Validator, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return Validator{}, fmt.Errorf("metrics: empty validator")
	}
	if i := strings.Index(s, ".."); i >= 0 {
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(s[i+2:]), 64)
		if err1 != nil || err2 != nil {
			return Validator{}, fmt.Errorf("metrics: bad range validator %q", src)
		}
		if hi < lo {
			return Validator{}, fmt.Errorf("metrics: empty range validator %q", src)
		}
		return Validator{op: "..", lhs: lo, rhs: hi, src: src}, nil
	}
	for _, op := range []string{"<=", ">=", "==", "!=", "<", ">", "="} {
		if strings.HasPrefix(s, op) {
			operand := strings.TrimSpace(s[len(op):])
			v, err := strconv.ParseFloat(operand, 64)
			if err != nil {
				return Validator{}, fmt.Errorf("metrics: bad validator operand %q in %q", operand, src)
			}
			if op == "=" {
				op = "=="
			}
			return Validator{op: op, lhs: v, src: src}, nil
		}
	}
	return Validator{}, fmt.Errorf("metrics: unrecognized validator %q", src)
}

// Apply reports whether the value satisfies the validator.
func (v Validator) Apply(value float64) bool {
	switch v.op {
	case "<":
		return value < v.lhs
	case "<=":
		return value <= v.lhs
	case ">":
		return value > v.lhs
	case ">=":
		return value >= v.lhs
	case "==":
		return value == v.lhs
	case "!=":
		return value != v.lhs
	case "..":
		return value >= v.lhs && value <= v.rhs
	default:
		return false
	}
}

// String returns the original validator source.
func (v Validator) String() string { return v.src }

// IsZero reports whether the validator is uninitialized.
func (v Validator) IsZero() bool { return v.op == "" }
