// Package metrics implements the monitoring substrate Bifrost's engine
// queries for its runtime decisions: a small Prometheus-like time-series
// store, an instrumentation registry with text exposition, a scraper, an
// HTTP query API, a query-expression language, and the check "validator"
// expressions from the DSL (e.g. "<5").
//
// Each series keeps, next to its bounded ring of raw samples, a ring of
// pre-aggregated bucket summaries (summary.go); windowed queries — rate,
// increase, the *_over_time family — combine whole buckets and touch raw
// samples only at the window edges, and wide-window quantiles stream
// through a P² estimator. The store also answers moments queries
// (count/mean/variance of a population window, store and HTTP API), the
// raw material of the DSL's statistical compare checks.
//
// The paper's prototype is "primarily built for Prometheus" (§4.2.2); this
// package is the standard-library-only stand-in, serving the same queries
// over the same kind of scraped counters and gauges.
package metrics

import (
	"sort"
	"strings"
)

// Labels is a set of label name/value pairs identifying a series, e.g.
// {instance="search:80"}.
type Labels map[string]string

// Clone returns a copy of the label set.
func (l Labels) Clone() Labels {
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Merge returns a copy of l with the entries of extra added (extra wins).
func (l Labels) Merge(extra Labels) Labels {
	out := l.Clone()
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// Key renders a canonical, order-independent key for the label set.
func (l Labels) Key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// String renders the label set in Prometheus selector syntax.
func (l Labels) String() string {
	if len(l) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(l[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Matches reports whether the series labels satisfy every requirement in
// the selector (subset semantics, as in Prometheus).
func (l Labels) Matches(selector []LabelMatch) bool {
	for _, m := range selector {
		v, ok := l[m.Name]
		switch m.Op {
		case MatchEqual:
			if !ok || v != m.Value {
				return false
			}
		case MatchNotEqual:
			if ok && v == m.Value {
				return false
			}
		case MatchPrefix:
			if !ok || !strings.HasPrefix(v, m.Value) {
				return false
			}
		}
	}
	return true
}

// MatchOp is a label matching operator.
type MatchOp int

// Label matching operators supported in selectors.
const (
	MatchEqual    MatchOp = iota + 1 // label="value"
	MatchNotEqual                    // label!="value"
	MatchPrefix                      // label=~"prefix" (prefix match only)
)

// LabelMatch is one requirement inside a selector.
type LabelMatch struct {
	Name  string
	Op    MatchOp
	Value string
}
