package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/dsl"
	"bifrost/internal/journal"
	"bifrost/internal/proxy"
)

// holdStrategy keeps its first phase open for 30 minutes so tests can crash
// the engine mid-phase deterministically.
const holdStrategy = `
name: hold-run
deployment:
  services:
    - service: svc
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: canary
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: canary
      duration: 30m
      routes:
        - route:
            service: svc
            weights: {stable: 90, canary: 10}
      on:
        success: end
    - phase: end
      routes:
        - route:
            service: svc
            weights: {canary: 100}
`

func openTestJournal(t *testing.T, dir string) *journal.Set {
	t.Helper()
	js, err := OpenJournal(dir, journal.Options{FlushInterval: -1})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return js
}

// eventually polls cond for up to two seconds of real time, advancing
// nothing: recovery loops run on goroutines and need a moment to act.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCrashRecoveryResumesShippedCanaryMidPhase is the end-to-end crash
// drill from the issue: schedule the shipped slo-guarded-canary strategy,
// kill the engine five simulated minutes into the 15-minute canary phase
// (keep the journal directory), restart, and require the run to resume in
// the same phase with elapsed time preserved, the proxy reconfigured, and —
// after a third restart — the finished run replayed exactly once.
func TestCrashRecoveryResumesShippedCanaryMidPhase(t *testing.T) {
	raw, err := os.ReadFile("../../strategies/slo-guarded-canary.yaml")
	if err != nil {
		t.Fatalf("read shipped strategy: %v", err)
	}
	src := string(raw)
	strategy, err := dsl.Compile(src)
	if err != nil {
		t.Fatalf("compile shipped strategy: %v", err)
	}
	name := strategy.Name

	dir := t.TempDir()
	clk := clock.NewManual(time.Date(2026, 7, 30, 9, 0, 0, 0, time.UTC))

	// A real in-process proxy fronting the checkout service, surviving the
	// engine "crash" the way production proxies would.
	p, err := proxy.New("checkout", proxy.Config{
		Service:    "checkout",
		Generation: 0,
		Backends: []proxy.Backend{
			{Version: "stable", URL: "http://127.0.0.1:9001", Weight: 1},
		},
	})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	defer p.Close()
	lc := NewLocalConfigurator()
	lc.Register("checkout", p)

	eng1 := New(WithClock(clk), WithConfigurator(lc), WithJournalSet(openTestJournal(t, dir)))
	if _, err := eng1.EnactSource(strategy, src); err != nil {
		t.Fatalf("EnactSource: %v", err)
	}
	eventually(t, "initial routing applied", func() bool {
		return p.Config().Generation > 0
	})
	entered := clk.Now()

	// Five simulated minutes of canary: the statistical checks tick (their
	// prometheus provider is unreachable, so every verdict is an
	// inconclusive continue) and their executions land in the journal.
	for i := 0; i < 10; i++ {
		clk.Advance(30 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	eventually(t, "check executions past the 4-minute mark", func() bool {
		for _, ev := range eng1.RunEvents(name, 0) {
			if ev.Type == EventCheckExecuted && !ev.Time.Before(entered.Add(4*time.Minute)) {
				return true
			}
		}
		return false
	})
	genBeforeCrash := p.Config().Generation
	preCrashSeq := eng1.RecentEvents(1)[0].Seq

	// "Crash": drop the engine without terminal records, keep the journal.
	eng1.Suspend()

	// Restart on the same journal directory.
	eng2 := New(WithClock(clk), WithConfigurator(lc), WithJournalSet(openTestJournal(t, dir)))
	report, err := eng2.Recover(dsl.Compile)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(report.Resumed) != 1 || report.Finished != 0 || len(report.Skipped) != 0 {
		t.Fatalf("report = %d resumed / %d finished / %v skipped, want 1/0/none",
			len(report.Resumed), report.Finished, report.Skipped)
	}
	r2 := report.Resumed[0]

	// The proxy receives the re-applied routing config with a generation
	// above everything from before the crash.
	eventually(t, "routing re-applied after recovery", func() bool {
		return p.Config().Generation > genBeforeCrash
	})
	cfg := p.Config()
	var candidateShare float64
	for _, b := range cfg.Backends {
		if b.Version == "candidate" {
			candidateShare = b.Weight
		}
	}
	if candidateShare != 0.05 {
		t.Errorf("candidate share after recovery = %v, want 0.05", candidateShare)
	}

	st := r2.Status()
	if !st.Recovered {
		t.Error("status not marked recovered")
	}
	if st.Current != "canary" {
		t.Fatalf("resumed in state %q, want canary", st.Current)
	}
	if st.State != RunRunning {
		t.Fatalf("resumed run state = %s, want running", st.State)
	}

	// Elapsed-in-state was preserved: about five minutes already passed,
	// so the 15-minute phase has ~10 minutes left — not the full 15. (The
	// loop backdates EnteredAt just after re-entry; poll for it.)
	eventually(t, "elapsed-in-state restored", func() bool {
		return clk.Now().Sub(r2.Status().EnteredAt) >= 3*time.Minute
	})
	elapsed := clk.Now().Sub(r2.Status().EnteredAt)
	if elapsed < 3*time.Minute || elapsed > 6*time.Minute {
		t.Fatalf("recovered elapsed-in-state = %v, want ≈5m", elapsed)
	}
	remaining := 15*time.Minute - elapsed

	clk.Advance(remaining - time.Minute)
	time.Sleep(5 * time.Millisecond)
	if cur := r2.Status().Current; cur != "canary" {
		t.Fatalf("left canary after %v, before the phase timer: now in %q",
			remaining-time.Minute, cur)
	}
	// Crossing the phase boundary fires δ: the inconclusive checks fail
	// the gate and the run rolls back (a final state), completing the run.
	finishDeadline := time.Now().Add(10 * time.Second)
	for !r2.Done() && time.Now().Before(finishDeadline) {
		clk.Advance(30 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	if !r2.Done() {
		t.Fatalf("run did not finish after the phase timer; status %+v", r2.Status())
	}
	st = r2.Status()
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) == 0 || st.Path[0].From != "canary" {
		t.Fatalf("path = %+v, want first transition out of canary", st.Path)
	}

	// Sequence numbers continue across the restart (SSE Last-Event-ID
	// stays valid), and the durable history shows both lives of the run.
	events := eng2.RunEvents(name, 0)
	var completions, entries, recoveries int
	var maxSeq int64
	for _, ev := range events {
		if ev.Seq <= maxSeq {
			t.Fatalf("history out of order: seq %d after %d", ev.Seq, maxSeq)
		}
		maxSeq = ev.Seq
		switch {
		case ev.Type == EventCompleted:
			completions++
		case ev.Type == EventStateEntered && ev.State == "canary":
			entries++
		case ev.Type == EventRecovered:
			recoveries++
		}
	}
	if completions != 1 {
		t.Errorf("completed events = %d, want exactly 1", completions)
	}
	if entries != 2 {
		t.Errorf("canary state_entered events = %d, want 2 (initial + recovery)", entries)
	}
	if recoveries != 1 {
		t.Errorf("recovered events = %d, want 1", recoveries)
	}
	if maxSeq <= preCrashSeq {
		t.Errorf("post-recovery seq %d did not continue past pre-crash %d", maxSeq, preCrashSeq)
	}

	// Third restart: the finished run must replay as history, exactly
	// once — no resumed loop, no duplicate finished event, no routing push.
	genAfterFinish := p.Config().Generation
	eng2.Suspend()
	eng3 := New(WithClock(clk), WithConfigurator(lc), WithJournalSet(openTestJournal(t, dir)))
	defer eng3.Shutdown()
	report3, err := eng3.Recover(dsl.Compile)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if len(report3.Resumed) != 0 || report3.Finished != 1 {
		t.Fatalf("report after finish = %d resumed / %d finished, want 0/1",
			len(report3.Resumed), report3.Finished)
	}
	r3, ok := eng3.Run(name)
	if !ok {
		t.Fatal("finished run not listed after restart")
	}
	if st := r3.Status(); st.State != RunCompleted || !r3.Done() {
		t.Fatalf("replayed finished run = %s, want completed", st.State)
	}
	completions = 0
	for _, ev := range eng3.RunEvents(name, 0) {
		if ev.Type == EventCompleted {
			completions++
		}
	}
	if completions != 1 {
		t.Errorf("completed events after second replay = %d, want exactly 1", completions)
	}
	time.Sleep(5 * time.Millisecond)
	if g := p.Config().Generation; g != genAfterFinish {
		t.Errorf("replaying a finished run re-applied routing: generation %d → %d",
			genAfterFinish, g)
	}
}

func TestRecoveryRestoresPausedRun(t *testing.T) {
	strategy, err := dsl.Compile(holdStrategy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dir := t.TempDir()
	clk := clock.NewManual(time.Date(2026, 7, 30, 9, 0, 0, 0, time.UTC))
	cfg := &recordingConfigurator{}

	eng1 := New(WithClock(clk), WithConfigurator(cfg), WithJournalSet(openTestJournal(t, dir)))
	if _, err := eng1.EnactSource(strategy, holdStrategy); err != nil {
		t.Fatalf("EnactSource: %v", err)
	}
	eventually(t, "canary entered", func() bool {
		r, _ := eng1.Run("hold-run")
		return r.Status().Current == "canary"
	})
	gen, err := eng1.Pause("hold-run")
	if err != nil || gen != 1 {
		t.Fatalf("Pause = %d, %v", gen, err)
	}
	eng1.Suspend()

	// First restart holds the pause; a second restart (the engine dying
	// again while the run is still held) must hold it too — the re-entry
	// window may journal state_entered, but the pause must stick.
	engMid := New(WithClock(clk), WithConfigurator(cfg), WithJournalSet(openTestJournal(t, dir)))
	repMid, err := engMid.Recover(dsl.Compile)
	if err != nil || len(repMid.Resumed) != 1 {
		t.Fatalf("mid Recover: %v, resumed %d", err, len(repMid.Resumed))
	}
	waitReentries(t, engMid, "hold-run", 2)
	engMid.Suspend()

	eng2 := New(WithClock(clk), WithConfigurator(cfg), WithJournalSet(openTestJournal(t, dir)))
	defer eng2.Shutdown()
	report, err := eng2.Recover(dsl.Compile)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(report.Resumed) != 1 {
		t.Fatalf("resumed %d runs, want 1 (skipped: %v)", len(report.Resumed), report.Skipped)
	}
	r := report.Resumed[0]
	st := r.Status()
	if st.State != RunPaused || st.PauseGen != 1 || !st.Recovered {
		t.Fatalf("recovered status = %+v, want paused at generation 1 after two restarts", st)
	}

	// Operator controls only come alive once the loop holds the pause.
	eventually(t, "stale resume rejected", func() bool {
		return errors.Is(eng2.Resume("hold-run", 7), ErrStaleResume)
	})
	if err := eng2.Resume("hold-run", 1); err != nil {
		t.Fatalf("Resume with restored generation: %v", err)
	}
	eventually(t, "running after resume", func() bool {
		return r.Status().State == RunRunning
	})
	if err := eng2.Promote("hold-run", ""); err != nil {
		t.Fatalf("Promote: %v (status %+v)", err, r.Status())
	}
	eventually(t, "run completed", r.Done)
	if st := r.Status(); st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
}

func TestRecoverySkipsRunsWithoutSource(t *testing.T) {
	dir := t.TempDir()
	eng1 := New(WithJournalSet(openTestJournal(t, dir)))
	s := canaryStrategy(core.ConstEvaluator(true), 50*time.Millisecond, 1000)
	if _, err := eng1.Enact(s); err != nil { // programmatic: no DSL source
		t.Fatalf("Enact: %v", err)
	}
	eng1.Suspend()

	eng2 := New(WithJournalSet(openTestJournal(t, dir)))
	defer eng2.Shutdown()
	report, err := eng2.Recover(dsl.Compile)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(report.Resumed) != 0 {
		t.Fatalf("resumed a sourceless run: %+v", report.Resumed)
	}
	reason, ok := report.Skipped[s.Name]
	if !ok || !strings.Contains(reason, "source") {
		t.Fatalf("skipped = %v, want %s with a source-related reason", report.Skipped, s.Name)
	}

	// A skipped orphan has no registered run but must still be removable —
	// otherwise it haunts every future snapshot and boot warning.
	if err := eng2.Remove(s.Name); err != nil {
		t.Fatalf("Remove of skipped orphan: %v", err)
	}
	eng2.Suspend()
	eng3 := New(WithJournalSet(openTestJournal(t, dir)))
	defer eng3.Shutdown()
	report3, err := eng3.Recover(dsl.Compile)
	if err != nil {
		t.Fatalf("Recover after orphan removal: %v", err)
	}
	if len(report3.Skipped) != 0 || report3.Finished != 0 {
		t.Fatalf("orphan still present after removal: %+v", report3)
	}
}

// TestRecoveryAfterCompaction drives enough pause/resume churn through a
// tiny compaction threshold that recovery must come from a snapshot plus a
// record tail — and still restore the exact pause generation.
func TestRecoveryAfterCompaction(t *testing.T) {
	strategy, err := dsl.Compile(holdStrategy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dir := t.TempDir()
	clk := clock.NewManual(time.Date(2026, 7, 30, 9, 0, 0, 0, time.UTC))
	js, err := OpenJournal(dir, journal.Options{FlushInterval: -1, CompactBytes: 2048})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	eng1 := New(WithClock(clk), WithJournalSet(js))
	if _, err := eng1.EnactSource(strategy, holdStrategy); err != nil {
		t.Fatalf("EnactSource: %v", err)
	}
	r1, _ := eng1.Run("hold-run")
	eventually(t, "canary entered", func() bool { return r1.Status().Current == "canary" })

	const cycles = 40
	for i := 0; i < cycles; i++ {
		if _, err := eng1.Pause("hold-run"); err != nil {
			t.Fatalf("Pause %d: %v", i, err)
		}
		if err := eng1.Resume("hold-run", 0); err != nil {
			t.Fatalf("Resume %d: %v", i, err)
		}
	}
	if _, err := eng1.Pause("hold-run"); err != nil {
		t.Fatalf("final Pause: %v", err)
	}
	eng1.Suspend()

	eng2 := New(WithClock(clk), WithJournalSet(openTestJournal(t, dir)))
	defer eng2.Shutdown()
	report, err := eng2.Recover(dsl.Compile)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(report.Resumed) != 1 {
		t.Fatalf("resumed %d, want 1 (skipped %v)", len(report.Resumed), report.Skipped)
	}
	st := report.Resumed[0].Status()
	if st.State != RunPaused || st.PauseGen != cycles+1 {
		t.Fatalf("recovered status = %s gen %d, want paused gen %d",
			st.State, st.PauseGen, cycles+1)
	}
}

// waitReentries blocks until the run's history shows n state_entered
// events (the loop has actually (re-)entered its state).
func waitReentries(t *testing.T, eng *Engine, name string, n int) {
	t.Helper()
	eventually(t, fmt.Sprintf("%d state entries", n), func() bool {
		count := 0
		for _, ev := range eng.RunEvents(name, 0) {
			if ev.Type == EventStateEntered {
				count++
			}
		}
		return count >= n
	})
}

// TestElapsedSurvivesSecondRestart: elapsed-in-state must accumulate
// across *multiple* restarts (journal heartbeats advance the crash-time
// estimate even in phases without checks), never reset by the recovery
// re-entry itself.
func TestElapsedSurvivesSecondRestart(t *testing.T) {
	strategy, err := dsl.Compile(holdStrategy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dir := t.TempDir()
	clk := clock.NewManual(time.Date(2026, 7, 30, 9, 0, 0, 0, time.UTC))

	eng1 := New(WithClock(clk), WithJournalSet(openTestJournal(t, dir)))
	if _, err := eng1.EnactSource(strategy, holdStrategy); err != nil {
		t.Fatalf("EnactSource: %v", err)
	}
	r1, _ := eng1.Run("hold-run")
	eventually(t, "canary entered", func() bool { return r1.Status().Current == "canary" })

	// waitJournalClock blocks until a heartbeat (or event) has advanced
	// the journal's crash-time estimate to the current simulated instant.
	waitJournalClock := func(eng *Engine) {
		now := clk.Now()
		eventually(t, "journal clock advanced", func() bool {
			eng.pubMu.Lock()
			defer eng.pubMu.Unlock()
			return !eng.mirror.LastTime.Before(now)
		})
	}

	// Compact right away: the quiet phase that follows produces only
	// boundary-seq heartbeats, which recovery must still honor (the
	// regression was replay dropping them behind the snapshot seq).
	eng1.compact()

	// Ten simulated minutes pass in the checkless 30m phase; heartbeat
	// records are all that advances the journal's clock.
	clk.Advance(10 * time.Minute)
	waitJournalClock(eng1)
	eng1.Suspend()

	// One hour of engine downtime: it must count neither against the
	// phase nor toward the run's active wall time.
	clk.Advance(time.Hour)

	eng2 := New(WithClock(clk), WithJournalSet(openTestJournal(t, dir)))
	rep2, err := eng2.Recover(dsl.Compile)
	if err != nil || len(rep2.Resumed) != 1 {
		t.Fatalf("first Recover: %v, resumed %d (skipped %v)", err, len(rep2.Resumed), rep2.Skipped)
	}
	r2 := rep2.Resumed[0]
	// Wait for the loop to actually re-enter the state (second
	// state_entered) before advancing time: elapsed only accrues while the
	// run is live.
	waitReentries(t, eng2, "hold-run", 2)
	if got := clk.Now().Sub(r2.Status().EnteredAt); got < 9*time.Minute {
		t.Fatalf("first recovered elapsed = %v, want ≈10m", got)
	}

	// Five more minutes, then a second crash — with more downtime behind
	// it: cumulative elapsed must be ≈ 15m, not reset, not inflated.
	clk.Advance(5 * time.Minute)
	waitJournalClock(eng2)
	eng2.Suspend()
	clk.Advance(2 * time.Hour)

	eng3 := New(WithClock(clk), WithJournalSet(openTestJournal(t, dir)))
	defer eng3.Shutdown()
	rep3, err := eng3.Recover(dsl.Compile)
	if err != nil || len(rep3.Resumed) != 1 {
		t.Fatalf("second Recover: %v, resumed %d (skipped %v)", err, len(rep3.Resumed), rep3.Skipped)
	}
	r3 := rep3.Resumed[0]
	waitReentries(t, eng3, "hold-run", 3)
	elapsed := clk.Now().Sub(r3.Status().EnteredAt)
	if elapsed < 13*time.Minute || elapsed > 16*time.Minute {
		t.Fatalf("cumulative elapsed = %v, want ≈15m", elapsed)
	}

	// The remaining ~15m finish the phase; a reset would need 30m more.
	finishDeadline := time.Now().Add(10 * time.Second)
	for !r3.Done() && time.Now().Before(finishDeadline) {
		clk.Advance(30 * time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	if !r3.Done() {
		t.Fatalf("run did not finish within the remaining phase time; status %+v", r3.Status())
	}
	st := r3.Status()
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	// Active wall time ≈ the 30m the run actually executed; the three
	// hours of engine downtime must not count.
	if actual := time.Duration(st.ActualNanos); actual < 29*time.Minute || actual > 45*time.Minute {
		t.Errorf("ActualNanos = %v, want ≈30m (downtime excluded)", actual)
	}
}

// TestReEnactAfterSkippedRecoveryStartsFresh: a name whose journaled run
// could not be resumed (no source) must start a clean history when it is
// re-enacted — not merge into the stale mirror.
func TestReEnactAfterSkippedRecoveryStartsFresh(t *testing.T) {
	dir := t.TempDir()
	eng1 := New(WithJournalSet(openTestJournal(t, dir)))
	old := canaryStrategy(core.ConstEvaluator(true), 50*time.Millisecond, 1000)
	if _, err := eng1.Enact(old); err != nil { // sourceless: unrecoverable
		t.Fatalf("Enact: %v", err)
	}
	eventually(t, "old run produced check events", func() bool {
		for _, ev := range eng1.RunEvents(old.Name, 0) {
			if ev.Type == EventCheckExecuted {
				return true
			}
		}
		return false
	})
	eng1.Suspend()

	eng2 := New(WithJournalSet(openTestJournal(t, dir)))
	defer eng2.Shutdown()
	if report, err := eng2.Recover(dsl.Compile); err != nil || len(report.Skipped) != 1 {
		t.Fatalf("Recover: %v, skipped %v", err, report.Skipped)
	}

	// Re-enact the same name from DSL source.
	src := strings.Replace(holdStrategy, "name: hold-run", "name: "+old.Name, 1)
	strategy, err := dsl.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	run, err := eng2.EnactSource(strategy, src)
	if err != nil {
		t.Fatalf("EnactSource over skipped name: %v", err)
	}
	eventually(t, "new run entered canary", func() bool {
		return run.Status().Current == "canary"
	})

	events := eng2.RunEvents(old.Name, 0)
	var scheduled, checks int
	for _, ev := range events {
		switch ev.Type {
		case EventScheduled:
			scheduled++
		case EventCheckExecuted:
			checks++
		}
	}
	if scheduled != 1 {
		t.Errorf("scheduled events in history = %d, want 1 (fresh enactment)", scheduled)
	}
	if checks != 0 {
		t.Errorf("stale check events leaked into the new enactment's history: %d", checks)
	}
	if p := run.Status().Path; len(p) != 0 {
		t.Errorf("fresh run inherited a path: %+v", p)
	}
}

// TestRemoveSurvivesRestart: a removed run must stay removed after a
// restart, even though its events are still journaled behind the removal.
func TestRemoveSurvivesRestart(t *testing.T) {
	strategy, err := dsl.Compile(holdStrategy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dir := t.TempDir()
	eng1 := New(WithJournalSet(openTestJournal(t, dir)))
	run, err := eng1.EnactSource(strategy, holdStrategy)
	if err != nil {
		t.Fatalf("EnactSource: %v", err)
	}
	eventually(t, "canary entered", func() bool { return run.Status().Current == "canary" })
	if err := eng1.Promote("hold-run", "end"); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	eventually(t, "completed", run.Done)
	if err := eng1.Remove("hold-run"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	eng1.Suspend()

	eng2 := New(WithJournalSet(openTestJournal(t, dir)))
	defer eng2.Shutdown()
	report, err := eng2.Recover(dsl.Compile)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(report.Resumed) != 0 || report.Finished != 0 {
		t.Fatalf("removed run resurrected: %d resumed / %d finished",
			len(report.Resumed), report.Finished)
	}
	if _, ok := eng2.Run("hold-run"); ok {
		t.Fatal("removed run listed after restart")
	}
	if evs := eng2.RunEvents("hold-run", 0); len(evs) != 0 {
		t.Fatalf("removed run's history survived: %d events", len(evs))
	}
}

// TestSimultaneousInterruptsAllObserved is the regression test for the
// interrupt channel: two exception checks fail in the same instant; neither
// runner may block or lose its triggered event, and the state must end.
func TestSimultaneousInterruptsAllObserved(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	var entered sync.WaitGroup
	entered.Add(2)
	release := make(chan struct{})
	go func() {
		entered.Wait()
		close(release)
	}()
	barrierFail := func() core.Evaluator {
		var once sync.Once
		return core.EvaluatorFunc(func(ctx context.Context) (bool, error) {
			once.Do(entered.Done)
			<-release
			return false, nil
		})
	}

	s := &core.Strategy{
		Name:     "double-interrupt",
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "watch",
			Finals: []string{"done", "emergency"},
			States: []core.State{
				{
					ID:       "watch",
					Duration: 30 * time.Second,
					Checks: []core.Check{
						{
							Name: "guard-a", Kind: core.ExceptionCheck,
							Eval: barrierFail(), Interval: time.Millisecond,
							Executions: 2, Fallback: "emergency",
						},
						{
							Name: "guard-b", Kind: core.ExceptionCheck,
							Eval: barrierFail(), Interval: time.Millisecond,
							Executions: 2, Fallback: "emergency",
						},
					},
					Thresholds:  []int{0},
					Transitions: []string{"emergency", "done"},
					Routing:     routeTo(95, 5),
				},
				{ID: "done", Routing: routeTo(0, 100)},
				{ID: "emergency", Routing: routeTo(100, 0)},
			},
		},
	}
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "emergency" {
		t.Fatalf("path = %+v, want watch→emergency", st.Path)
	}

	// Both conclusions must be observable even though only one won the
	// transition: the old capacity-1 channel silently dropped the second.
	eventually(t, "both exception events", func() bool {
		seen := map[string]bool{}
		for _, ev := range eng.RunEvents(s.Name, 0) {
			if ev.Type == EventExceptionTriggered {
				seen[ev.Check] = true
			}
		}
		return seen["guard-a"] && seen["guard-b"]
	})
}

// TestShutdownEnactRaceStress hammers schedule/finish/abort/remove against
// Shutdown under the race detector: no panic, no run escaping Shutdown, no
// journal record after close, and Enact failing cleanly afterwards.
func TestShutdownEnactRaceStress(t *testing.T) {
	eng := New(WithJournalSet(openTestJournal(t, t.TempDir())))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 2)
				s.Name = fmt.Sprintf("stress-%d-%d", g, n)
				r, err := eng.Enact(s)
				if err != nil {
					if errors.Is(err, ErrEngineClosed) {
						return
					}
					continue
				}
				switch n % 3 {
				case 0:
					_ = eng.Abort(s.Name)
				case 1:
					if r.Done() {
						_ = eng.Remove(s.Name)
					}
				}
			}
		}(g)
	}
	time.Sleep(25 * time.Millisecond)
	eng.Shutdown()
	close(stop)
	wg.Wait()

	for _, r := range eng.Runs() {
		if !r.Done() {
			t.Errorf("run %s still live after Shutdown", r.Status().Strategy)
		}
	}
	if _, err := eng.Enact(canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 2)); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Enact after Shutdown = %v, want ErrEngineClosed", err)
	}
}
