package core

import (
	"context"
	"fmt"
	"time"
)

// CheckKind distinguishes the check types: the paper's two (§3.2) plus
// the statistical verdict checks layered on top of them.
type CheckKind int

const (
	// BasicCheck results are aggregated at the end of the state: the
	// check is ⟨f, Ωi, τ, T, Out⟩ and its summed execution results are
	// mapped through thresholds T and output mapping Out.
	BasicCheck CheckKind = iota + 1
	// ExceptionCheck is ⟨f, Ωi, τ, s_fallback⟩: any single failed
	// execution immediately transitions the automaton to the fallback
	// state, without waiting for the end of the state.
	ExceptionCheck
	// CompareCheck runs a two-sample statistical comparison (Welch's
	// t-test) between a baseline and a candidate population on every
	// timer tick; its final verdict contributes to δ like a basic check.
	CompareCheck
	// SequentialCheck is a sequential A/B gate (Wald's SPRT): it
	// accumulates evidence across executions and, once it concludes
	// either way, ends the state early — before the state timer expires.
	SequentialCheck
	// BurnRateCheck watches multi-window SLO error-budget burn rates and,
	// like an exception check, transitions to its fallback state the
	// moment both windows burn too fast (automatic rollback).
	BurnRateCheck
	// ChangePointCheck runs nonparametric change-point detection
	// (E-Divisive means) over a sliding window of a metric's trajectory
	// and, like a sequential check, ends the state early once a
	// distribution shift is significant — "the latency distribution
	// changed" rather than "a threshold was crossed".
	ChangePointCheck
)

// String implements fmt.Stringer.
func (k CheckKind) String() string {
	switch k {
	case BasicCheck:
		return "basic"
	case ExceptionCheck:
		return "exception"
	case CompareCheck:
		return "compare"
	case SequentialCheck:
		return "sequential"
	case BurnRateCheck:
		return "burnrate"
	case ChangePointCheck:
		return "changepoint"
	default:
		return fmt.Sprintf("CheckKind(%d)", int(k))
	}
}

// Statistical reports whether the kind carries a Verdict (its evaluator
// is an Analyzer rather than a boolean Evaluator).
func (k CheckKind) Statistical() bool {
	return k == CompareCheck || k == SequentialCheck || k == BurnRateCheck ||
		k == ChangePointCheck
}

// InterruptOnly reports whether the kind exists purely for its interrupt
// semantics and is excluded from the state's weighted outcome when its
// weight is zero (exception checks in the paper's running example, and
// burn-rate guards which behave the same way).
func (k CheckKind) InterruptOnly() bool {
	return k == ExceptionCheck || k == BurnRateCheck
}

// Evaluator is the metric-evaluating function f_ci : Ωi → {0, 1}. The
// monitoring data Ωi is whatever the implementation consults (typically a
// metrics-provider query); the engine re-executes Evaluate on the check's
// timer τ.
type Evaluator interface {
	// Evaluate returns whether this execution of the check succeeded.
	// An error means the monitoring data was unavailable; the engine
	// counts it as a failed execution and reports it separately.
	Evaluate(ctx context.Context) (bool, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context) (bool, error)

var _ Evaluator = EvaluatorFunc(nil)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(ctx context.Context) (bool, error) { return f(ctx) }

// ConstEvaluator returns an Evaluator that always yields v; useful in tests
// and for wiring placeholder checks.
func ConstEvaluator(v bool) Evaluator {
	return EvaluatorFunc(func(context.Context) (bool, error) { return v, nil })
}

// Check is one check c ∈ C of a state. The timer τ is (Interval,
// Executions): the evaluator runs every Interval, Executions times in
// total, while the state is active.
type Check struct {
	// Name identifies the check in status output ("search_error").
	Name string
	// Kind selects the check's semantics.
	Kind CheckKind
	// Eval is f_ci, the metric-evaluating function of basic and exception
	// checks. Statistical kinds use Analyze instead.
	Eval Evaluator
	// Analyze is the statistical analysis of compare, sequential,
	// burnrate, and changepoint checks, producing a Verdict per execution.
	Analyze Analyzer
	// InconclusivePass controls how a statistical check that is still
	// DecisionContinue when the state ends maps into the outcome: false
	// (the default) maps it to 0 like a failure, true to 1.
	InconclusivePass bool
	// Interval is the re-execution period of τ.
	Interval time.Duration
	// Executions is how many times τ fires (n in the paper's Σ f_j).
	Executions int
	// Weight is w_i in the state's weighted linear combination. Zero is
	// treated as 1.
	Weight float64

	// Thresholds and Outputs define the basic check's output mapping
	// Out_ci: the aggregated success count e is located in the threshold
	// ranges and mapped to Outputs[RangeIndex(e, Thresholds)]. A basic
	// check with no thresholds contributes its raw success count.
	Thresholds []int
	Outputs    []int

	// Fallback is the fallback state s_j of an exception or burnrate
	// check. On a sequential or changepoint check it is optional: when
	// set, a failing early conclusion jumps straight to it instead of
	// going through δ.
	Fallback string
}

// MapOutcome maps the aggregated execution result e (the number of
// successful executions) through the check's output mapping Out_ci.
//
// For the example in §3.2: thresholds ⟨75, 95⟩ with outputs ⟨-5, 4, 5⟩ map
// e ≤ 75 → -5, 75 < e ≤ 95 → 4, e > 95 → 5.
func (c *Check) MapOutcome(e int) (int, error) {
	if len(c.Thresholds) == 0 {
		return e, nil
	}
	if len(c.Outputs) != len(c.Thresholds)+1 {
		return 0, fmt.Errorf("check %q: %d outputs for %d thresholds",
			c.Name, len(c.Outputs), len(c.Thresholds))
	}
	return c.Outputs[RangeIndex(e, c.Thresholds)], nil
}

// ExecutionsOrDefault returns the scheduled execution count, defaulting to
// a single execution for checks that run once at the end of the state.
func (c *Check) ExecutionsOrDefault() int {
	if c.Executions <= 0 {
		return 1
	}
	return c.Executions
}

// TotalDuration is the wall time the check's timer needs to complete all
// scheduled executions. The first execution happens at state entry (t0 in
// the paper's Figure 3), so n executions span (n−1)·Interval.
func (c *Check) TotalDuration() time.Duration {
	return time.Duration(c.ExecutionsOrDefault()-1) * c.Interval
}
