package experiments

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/httpx"
	"bifrost/internal/loadgen"
	"bifrost/internal/metrics"
	"bifrost/internal/proxy"
	"bifrost/internal/shop"
)

// TestCanaryFailureTriggersExceptionRollback exercises the full stack of
// the paper's safety story: a canary version that throws 500s under real
// traffic must be caught by an exception check and rolled back immediately,
// without waiting for the end of the state.
func TestCanaryFailureTriggersExceptionRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	tb, err := NewTestbed(TestbedConfig{WithProxies: true, Products: 10, Users: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// Deploy a broken product version: 60% injected 500s.
	broken := shop.NewProduct(shop.ProductConfig{
		Profile: shop.VariantProfile{
			Version: "productBroken", ErrorRate: 0.6, Seed: 3,
		},
		DBURL:     tb.DB.URL(),
		AuthURL:   tb.Auth.URL(),
		SearchURL: tb.SearchVersions["search"].URL(),
	})
	brokenSrv, err := newServer(t, broken.Handler())
	if err != nil {
		t.Fatal(err)
	}
	tb.Scraper.AddTarget(metrics.Target{
		URL: brokenSrv + "/metrics", Instance: "productBroken:80",
	})

	yaml := fmt.Sprintf(`
name: broken-canary
deployment:
  services:
    - service: product
      proxy: %s
      versions:
        - name: product
          endpoint: %s
        - name: productBroken
          endpoint: %s
providers:
  prometheus: %s
strategy:
  phases:
    - phase: canary
      description: 30%% canary of the broken version
      duration: 30s
      routes:
        - route:
            service: product
            weights: {product: 70, productBroken: 30}
      checks:
        - exception:
            name: error_explosion
            provider: prometheus
            query: shop_request_errors_total{version="productBroken"}
            intervalTime: 400ms
            intervalLimit: 60
            validator: "<3"
            fallback: rollback
      on:
        success: promoted
        failure: rollback
    - phase: promoted
      routes:
        - route:
            service: product
            weights: {productBroken: 100}
    - phase: rollback
      routes:
        - route:
            service: product
            weights: {product: 100}
`, tb.ProductProxySrv.URL(),
		tb.ProductVersions["product"].URL(),
		brokenSrv,
		tb.MetricsSrv.URL())

	strategy, err := dsl.Compile(yaml)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	run, err := tb.Engine.Enact(strategy)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}

	// Drive traffic so the broken canary actually produces errors.
	start := time.Now()
	_, err = loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:    tb.Gateway.URL(),
		RPS:        60,
		Duration:   6 * time.Second,
		Users:      5,
		ProductIDs: tb.ProductIDs,
		Seed:       17,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	if werr := run.Wait(ctx); werr != nil {
		t.Fatalf("run did not finish: %v (status %+v)", werr, run.Status())
	}
	st := run.Status()
	if st.State != engine.RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "rollback" {
		t.Fatalf("path = %+v, want canary→rollback", st.Path)
	}
	// The exception must interrupt well before the 30s state duration.
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("rollback took %v, want immediate interrupt", elapsed)
	}
	// An exception event must have been published.
	sawException := false
	for _, ev := range tb.Engine.RecentEvents(0) {
		if ev.Type == engine.EventExceptionTriggered {
			sawException = true
		}
	}
	if !sawException {
		t.Error("no exception_triggered event")
	}
	// And the proxy must be back on 100% stable.
	cfg := tb.ProductProxy.Config()
	for _, b := range cfg.Backends {
		switch b.Version {
		case "product":
			if b.Weight <= 0 {
				t.Errorf("stable weight = %v after rollback", b.Weight)
			}
		default:
			if b.Weight != 0 {
				t.Errorf("version %s weight = %v after rollback", b.Version, b.Weight)
			}
		}
	}
}

// TestRemoteProxyReconfigurationOverHTTP covers the production wiring: the
// engine reaches proxies via their admin API (HTTPConfigurator), exactly as
// cmd/bifrost-engine and cmd/bifrost-proxy are deployed.
func TestRemoteProxyReconfigurationOverHTTP(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{WithProxies: true, Products: 4, Users: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	before, err := (&proxy.Client{BaseURL: tb.ProductProxySrv.URL()}).GetConfig(context.Background())
	if err != nil {
		t.Fatalf("GetConfig: %v", err)
	}

	yaml := fmt.Sprintf(`
name: remote-wiring
deployment:
  services:
    - service: product
      proxy: %s
      versions:
        - name: product
          endpoint: %s
        - name: productA
          endpoint: %s
providers:
  prometheus: %s
strategy:
  phases:
    - phase: shift
      duration: 300ms
      routes:
        - route:
            service: product
            weights: {product: 50, productA: 50}
      on:
        success: end
    - phase: end
      routes:
        - route:
            service: product
            weights: {productA: 100}
`, tb.ProductProxySrv.URL(),
		tb.ProductVersions["product"].URL(),
		tb.ProductVersions["productA"].URL(),
		tb.MetricsSrv.URL())

	strategy, err := dsl.Compile(yaml)
	if err != nil {
		t.Fatal(err)
	}
	run, err := tb.Engine.Enact(strategy)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := run.Wait(ctx); err != nil {
		t.Fatalf("wait: %v (status %+v)", err, run.Status())
	}
	after := tb.ProductProxy.Config()
	if after.Generation <= before.Generation {
		t.Errorf("generation did not advance: %d → %d", before.Generation, after.Generation)
	}
	for _, b := range after.Backends {
		if b.Version == "productA" && b.Weight != 1 {
			t.Errorf("productA weight = %v, want 1 (normalized 100%%)", b.Weight)
		}
	}
}

func newServer(t *testing.T, h http.Handler) (string, error) {
	t.Helper()
	srv, err := httpx.NewServer("127.0.0.1:0", h)
	if err != nil {
		return "", err
	}
	srv.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv.URL(), nil
}
