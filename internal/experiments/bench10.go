// Hierarchical-rollout macro-bench (BENCH_10.json): wall-time and blast
// radius of the region scheduling shapes a sub-rollout state enables —
// sequential region-after-region (the pre-hierarchy baseline), parallel
// regions gated on all passing, and quorum-parallel promotion that does
// not wait for the slowest region. The event-pipeline figures from
// BENCH_9 are re-measured in the same run so the committed file stays
// comparable against the previous baseline via benchrunner -compare.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/engine"
)

// Bench10Config sizes the hierarchical-rollout benchmarks. The zero value
// is filled with defaults for a committed baseline run.
type Bench10Config struct {
	// Regions is the child-run fan-out of the benchmarked sub-rollout.
	Regions int `json:"regions"`
	// Quorum is the promotion quorum for the quorum-parallel scenario;
	// zero defaults to ceil(2/3 · Regions).
	Quorum int `json:"quorum"`
	// CheckInterval × Executions is one region's gate schedule: every
	// child must collect Executions passing samples CheckInterval apart.
	CheckInterval time.Duration `json:"checkIntervalNs"`
	Executions    int           `json:"executions"`
	// SlowFactor stretches one region's schedule in the quorum scenario
	// (the straggler the quorum must not wait for).
	SlowFactor int `json:"slowFactor"`

	// PipelineEvents/PipelineSubscribers size the re-run of the BENCH_9
	// event-pipeline measurement (same defaults as Bench9Config).
	PipelineEvents      int `json:"pipelineEvents"`
	PipelineSubscribers int `json:"pipelineSubscribers"`
}

func (c Bench10Config) withDefaults() Bench10Config {
	if c.Regions <= 0 {
		c.Regions = 6
	}
	if c.Quorum <= 0 {
		c.Quorum = (2*c.Regions + 2) / 3
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 25 * time.Millisecond
	}
	if c.Executions <= 0 {
		c.Executions = 20
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 4
	}
	if c.PipelineEvents <= 0 {
		c.PipelineEvents = 50_000
	}
	if c.PipelineSubscribers <= 0 {
		c.PipelineSubscribers = 64
	}
	return c
}

// Bench10Result is the committed BENCH_10.json shape. The pipeline block
// reuses BENCH_9's key names so benchrunner -compare lines the two
// baselines up metric for metric.
type Bench10Result struct {
	Config Bench10Config `json:"config"`

	// Region scheduling shapes: wall time to a promoted release across
	// Config.Regions regions, each gated on the same check schedule.
	SequentialWallMs float64 `json:"sequentialWallMs"`
	ParallelWallMs   float64 `json:"parallelWallMs"`
	QuorumWallMs     float64 `json:"quorumWallMs"`
	ParallelSpeedup  float64 `json:"parallelSpeedup"`
	QuorumSpeedup    float64 `json:"quorumSpeedup"`

	// Blast radius: a quorum-parallel rollout with one poisoned region
	// under the fallback policy. The poisoned region must land in its own
	// fallback phase with zero siblings aborted.
	PassedRegions   int `json:"passedRegions"`
	FailedRegions   int `json:"failedRegions"`
	AbortedSiblings int `json:"abortedSiblings"`

	// Event pipeline, re-measured (BENCH_9-comparable keys).
	PipelineEventsPerSec  float64 `json:"pipelineEventsPerSec"`
	PublishEventsPerSec   float64 `json:"publishEventsPerSec"`
	DeliveredFrames       int64   `json:"deliveredFrames"`
	DeliveredFramesPerSec float64 `json:"deliveredFramesPerSec"`
}

// RunBench10 measures the three region-scheduling scenarios and re-runs
// the BENCH_9 pipeline measurement.
func RunBench10(cfg Bench10Config) (*Bench10Result, error) {
	cfg = cfg.withDefaults()
	res := &Bench10Result{Config: cfg}

	seq, err := bench10Sequential(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench10 sequential: %w", err)
	}
	res.SequentialWallMs = seq

	par, err := bench10Parallel(cfg, 0, 1) // quorum 0 = all regions
	if err != nil {
		return nil, fmt.Errorf("bench10 parallel: %w", err)
	}
	res.ParallelWallMs = par

	quo, err := bench10Parallel(cfg, cfg.Quorum, cfg.SlowFactor)
	if err != nil {
		return nil, fmt.Errorf("bench10 quorum: %w", err)
	}
	res.QuorumWallMs = quo
	if par > 0 {
		res.ParallelSpeedup = seq / par
	}
	if quo > 0 {
		res.QuorumSpeedup = seq / quo
	}

	if err := bench10BlastRadius(cfg, res); err != nil {
		return nil, fmt.Errorf("bench10 blast radius: %w", err)
	}

	nine := &Bench9Result{}
	if err := benchPipeline(Bench9Config{
		Events:      cfg.PipelineEvents,
		Subscribers: cfg.PipelineSubscribers,
	}.withDefaults(), nine); err != nil {
		return nil, fmt.Errorf("bench10 pipeline: %w", err)
	}
	res.PipelineEventsPerSec = nine.PipelineEventsPerSec
	res.PublishEventsPerSec = nine.PublishEventsPerSec
	res.DeliveredFrames = nine.DeliveredFrames
	res.DeliveredFramesPerSec = nine.DeliveredFramesPerSec
	return res, nil
}

// bench10Region builds one region's gate strategy: canary → (full |
// fallback) after executions samples of a constant check.
func bench10Region(name string, pass bool, interval time.Duration, executions int) *core.Strategy {
	return &core.Strategy{
		Name: name,
		Services: []core.Service{{
			Name: "svc",
			Versions: []core.Version{
				{Name: "stable", Endpoint: "127.0.0.1:1001"},
				{Name: "canary", Endpoint: "127.0.0.1:1002"},
			},
		}},
		Automaton: core.Automaton{
			Start:  "canary",
			Finals: []string{"full", "fallback"},
			States: []core.State{
				{
					ID: "canary",
					Checks: []core.Check{{
						Name:       "gate",
						Kind:       core.BasicCheck,
						Eval:       core.ConstEvaluator(pass),
						Interval:   interval,
						Executions: executions,
						Weight:     1,
						Thresholds: []int{executions - 1},
						Outputs:    []int{-1, 1},
					}},
					Thresholds:  []int{0},
					Transitions: []string{"fallback", "full"},
				},
				{ID: "full"},
				{ID: "fallback"},
			},
		},
	}
}

// bench10Parent wraps child refs into a quorum-gated parent run.
func bench10Parent(name string, sub *core.SubRollout) *core.Strategy {
	return &core.Strategy{
		Name: name,
		Automaton: core.Automaton{
			Start:  "regions",
			Finals: []string{"done", "holdback"},
			States: []core.State{
				{
					ID:          "regions",
					Sub:         sub,
					Thresholds:  []int{0},
					Transitions: []string{"holdback", "done"},
				},
				{ID: "done"},
				{ID: "holdback"},
			},
		},
	}
}

// bench10Wait polls a run to a terminal state.
func bench10Wait(r *engine.Run, timeout time.Duration) (engine.Status, error) {
	deadline := time.Now().Add(timeout)
	for {
		st := r.Status()
		switch st.State {
		case engine.RunPending, engine.RunRunning, engine.RunPaused:
		default:
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("run %s still %s after %v", st.Strategy, st.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// bench10Sequential enacts the regions one after another — the rollout
// shape a flat strategy forces — and times the full chain.
func bench10Sequential(cfg Bench10Config) (float64, error) {
	eng := engine.New()
	defer eng.Shutdown()
	start := time.Now()
	for i := 0; i < cfg.Regions; i++ {
		s := bench10Region(fmt.Sprintf("seq-r%d", i), true, cfg.CheckInterval, cfg.Executions)
		run, err := eng.Enact(s)
		if err != nil {
			return 0, err
		}
		st, err := bench10Wait(run, time.Minute)
		if err != nil {
			return 0, err
		}
		if st.State != engine.RunCompleted {
			return 0, fmt.Errorf("region %d ended %s", i, st.State)
		}
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

// bench10Parallel enacts one parent fanning out every region at once and
// times it to completion. quorum 0 waits for all regions; slowFactor > 1
// stretches the last region's schedule so a real quorum can show it does
// not wait for the straggler.
func bench10Parallel(cfg Bench10Config, quorum, slowFactor int) (float64, error) {
	eng := engine.New()
	defer eng.Shutdown()
	refs := make([]core.ChildRef, cfg.Regions)
	for i := range refs {
		executions := cfg.Executions
		if slowFactor > 1 && i == cfg.Regions-1 {
			executions *= slowFactor
		}
		s := bench10Region(fmt.Sprintf("par-r%d", i), true, cfg.CheckInterval, executions)
		refs[i] = core.ChildRef{
			Name: s.Name, Region: fmt.Sprintf("r%d", i), SuccessFinal: "full", Strategy: s,
		}
	}
	parent := bench10Parent("par", &core.SubRollout{Children: refs, Quorum: quorum})
	start := time.Now()
	run, err := eng.Enact(parent)
	if err != nil {
		return 0, err
	}
	st, err := bench10Wait(run, time.Minute)
	if err != nil {
		return 0, err
	}
	wall := float64(time.Since(start).Microseconds()) / 1000
	if st.State != engine.RunCompleted || st.Current != "done" {
		return 0, fmt.Errorf("parent ended %s in %q", st.State, st.Current)
	}
	return wall, nil
}

// bench10BlastRadius poisons one region of a quorum-parallel rollout and
// counts the damage: under the fallback policy the poisoned region lands
// in its own fallback phase and no sibling is aborted.
func bench10BlastRadius(cfg Bench10Config, res *Bench10Result) error {
	eng := engine.New()
	defer eng.Shutdown()
	runs := make([]*engine.Run, 0, cfg.Regions)
	refs := make([]core.ChildRef, cfg.Regions)
	for i := range refs {
		s := bench10Region(fmt.Sprintf("blast-r%d", i), i != 0, cfg.CheckInterval, cfg.Executions)
		refs[i] = core.ChildRef{
			Name: s.Name, Region: fmt.Sprintf("r%d", i), SuccessFinal: "full", Strategy: s,
		}
	}
	parent := bench10Parent("blast", &core.SubRollout{
		Children: refs, Quorum: cfg.Quorum, OnChildFail: core.ChildFailFallback,
	})
	run, err := eng.Enact(parent)
	if err != nil {
		return err
	}
	st, err := bench10Wait(run, time.Minute)
	if err != nil {
		return err
	}
	if st.State != engine.RunCompleted || st.Current != "done" {
		return fmt.Errorf("parent ended %s in %q, want quorum promotion", st.State, st.Current)
	}
	// The parent promotes on quorum; wait for every region to settle
	// before measuring the blast radius.
	for i := range refs {
		child, ok := eng.Run(refs[i].Name)
		if !ok {
			return fmt.Errorf("child %s never scheduled", refs[i].Name)
		}
		runs = append(runs, child)
	}
	for _, child := range runs {
		cst, err := bench10Wait(child, time.Minute)
		if err != nil {
			return err
		}
		switch {
		case cst.State == engine.RunAborted:
			res.AbortedSiblings++
		case cst.State == engine.RunCompleted && cst.Current == "full":
			res.PassedRegions++
		default:
			res.FailedRegions++
		}
	}
	return nil
}

// WriteJSON emits the result as indented JSON (the BENCH_10.json format).
func (r *Bench10Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
