package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"bifrost/internal/analysis"
	"bifrost/internal/core"
	"bifrost/internal/httpx"
)

// CompileFunc turns DSL source into an executable strategy. The API takes
// it as a dependency so the engine package does not import the dsl package
// (cmd wiring passes dsl-based compilation in).
type CompileFunc func(src string) (*core.Strategy, error)

// ExpandedStrategy is one concrete run produced from a strategy source:
// template sources (vars/matrix) expand to several, plain sources to one.
// Source is standalone DSL for exactly this run — it is what the engine
// journals, so recovery recompiles the concrete run, never the template.
type ExpandedStrategy struct {
	Strategy *core.Strategy
	Source   string
	// Vars are the template bindings this run was stamped out with (nil
	// for non-templates); surfaced for labeling and debugging.
	Vars map[string]string
}

// ExpandFunc expands DSL source into one or more concrete runs. The API
// takes it as a dependency for the same reason it takes CompileFunc: the
// engine package must not import the dsl package.
type ExpandFunc func(src string) ([]ExpandedStrategy, error)

// API is the engine's REST interface (v2), used by the Bifrost CLI, the
// dashboard, and any release automation (the paper mentions Jenkins jobs
// driving the CLI). Runs are first-class lifecycle resources under
// /api/v2/runs:
//
//	POST   /api/v2/runs                 schedule (body {"yaml": ...}); ?dry-run=true
//	                                    validates and returns the analysis report
//	                                    without enacting
//	GET    /api/v2/runs                 list run statuses
//	GET    /api/v2/runs/{name}          one run status
//	DELETE /api/v2/runs/{name}          abort
//	POST   /api/v2/runs/{name}/pause    suspend at the current state
//	POST   /api/v2/runs/{name}/resume   continue (body {"gen": N} optional)
//	POST   /api/v2/runs/{name}/promote  manual success gate decision (body {"target": ...} optional)
//	POST   /api/v2/runs/{name}/rollback manual failure gate decision
//	GET    /api/v2/runs/{name}/events   per-run event history (?n=)
//	GET    /api/v2/events               recent events across runs (?n=)
//	GET    /api/v2/events/stream        live Server-Sent Events (?strategy=, ?replay=)
//
// Errors are application/problem+json documents with a machine-readable
// "code" field (see httpx.Problem). The v1 routes remain mounted as thin
// aliases of their v2 counterparts for one release.
type API struct {
	eng     *Engine
	compile CompileFunc
	expand  ExpandFunc
}

// NewAPI wraps an engine in the REST API.
func NewAPI(eng *Engine, compile CompileFunc) *API {
	return &API{eng: eng, compile: compile}
}

// WithExpander enables template scheduling: POST /api/v2/runs expands the
// source through fn and schedules every resulting run (a matrix template
// answers with the list of scheduled run statuses). Without an expander,
// scheduling falls back to single-run compilation.
func (a *API) WithExpander(fn ExpandFunc) *API {
	a.expand = fn
	return a
}

// ScheduleRequest is the POST /api/v2/runs payload.
type ScheduleRequest struct {
	// YAML is the strategy in the Bifrost DSL.
	YAML string `json:"yaml"`
}

// DryRunResponse is the result of POST /api/v2/runs?dry-run=true: the
// strategy compiled and analyzed, but not enacted.
type DryRunResponse struct {
	Strategy string           `json:"strategy"`
	Valid    bool             `json:"valid"`
	Analysis *analysis.Report `json:"analysis"`
}

// ResumeRequest is the POST /api/v2/runs/{name}/resume payload. Gen is the
// pause generation from PauseResponse; zero resumes unconditionally.
type ResumeRequest struct {
	Gen int `json:"gen"`
}

// DecisionRequest is the payload of the promote and rollback endpoints.
// Target optionally names the successor state; empty picks the current
// state's success (promote) or failure (rollback) path.
type DecisionRequest struct {
	Target string `json:"target"`
}

// PauseResponse is returned by the pause endpoint.
type PauseResponse struct {
	Strategy string `json:"strategy"`
	PauseGen int    `json:"pauseGen"`
}

// Stable machine-readable error codes of the problem+json contract.
const (
	CodeBadRequest      = "bad_request"
	CodeCompileFailed   = "compile_failed"
	CodeInvalidStrategy = "invalid_strategy"
	CodeAlreadyRunning  = "already_running"
	CodeNotFound        = "not_found"
	CodeRunFinished     = "run_finished"
	CodeNotPaused       = "not_paused"
	CodeAlreadyPaused   = "already_paused"
	CodeStaleResume     = "stale_resume"
	CodeUnknownState    = "unknown_state"
	CodeEngineClosed    = "engine_closed"
	CodeNotImplemented  = "not_implemented"
)

// Handler returns the API handler (v2 routes plus v1 aliases).
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v2/runs", a.handleSchedule)
	mux.HandleFunc("GET /api/v2/runs", a.handleList)
	mux.HandleFunc("GET /api/v2/runs/{name}", a.handleGet)
	mux.HandleFunc("DELETE /api/v2/runs/{name}", a.handleAbort)
	mux.HandleFunc("POST /api/v2/runs/{name}/pause", a.handlePause)
	mux.HandleFunc("POST /api/v2/runs/{name}/resume", a.handleResume)
	mux.HandleFunc("POST /api/v2/runs/{name}/promote", a.handlePromote)
	mux.HandleFunc("POST /api/v2/runs/{name}/rollback", a.handleRollback)
	mux.HandleFunc("GET /api/v2/runs/{name}/events", a.handleRunEvents)
	mux.HandleFunc("GET /api/v2/events", a.handleEvents)
	mux.HandleFunc("GET /api/v2/events/stream", a.handleEventStream)

	// v1 aliases, kept for one release while CLIs migrate.
	mux.HandleFunc("POST /api/v1/strategies", a.handleSchedule)
	mux.HandleFunc("GET /api/v1/strategies", a.handleList)
	mux.HandleFunc("GET /api/v1/strategies/{name}", a.handleGet)
	mux.HandleFunc("DELETE /api/v1/strategies/{name}", a.handleAbort)
	mux.HandleFunc("GET /api/v1/events", a.handleEvents)

	mux.HandleFunc("GET /-/healthy", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// problem writes one typed API error.
func (a *API) problem(w http.ResponseWriter, status int, code, detail string) {
	httpx.WriteProblem(w, httpx.Problem{Status: status, Code: code, Detail: detail})
}

// engineProblem maps a typed engine error onto the problem contract.
func (a *API) engineProblem(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		a.problem(w, http.StatusNotFound, CodeNotFound, err.Error())
	case errors.Is(err, ErrAlreadyRunning):
		a.problem(w, http.StatusConflict, CodeAlreadyRunning, err.Error())
	case errors.Is(err, ErrFinished):
		a.problem(w, http.StatusConflict, CodeRunFinished, err.Error())
	case errors.Is(err, ErrNotPaused):
		a.problem(w, http.StatusConflict, CodeNotPaused, err.Error())
	case errors.Is(err, ErrAlreadyPaused):
		a.problem(w, http.StatusConflict, CodeAlreadyPaused, err.Error())
	case errors.Is(err, ErrStaleResume):
		a.problem(w, http.StatusConflict, CodeStaleResume, err.Error())
	case errors.Is(err, ErrUnknownState):
		a.problem(w, http.StatusUnprocessableEntity, CodeUnknownState, err.Error())
	case errors.Is(err, ErrEngineClosed):
		// The engine is draining for a restart; the strategy itself is
		// fine — clients should retry against the replacement.
		a.problem(w, http.StatusServiceUnavailable, CodeEngineClosed, err.Error())
	default:
		a.problem(w, http.StatusUnprocessableEntity, CodeInvalidStrategy, err.Error())
	}
}

func isDryRun(r *http.Request) bool {
	switch r.URL.Query().Get("dry-run") {
	case "", "0", "false":
		return false
	default:
		return true
	}
}

func (a *API) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if a.compile == nil {
		a.problem(w, http.StatusNotImplemented, CodeNotImplemented,
			"engine has no strategy compiler")
		return
	}
	var req ScheduleRequest
	if err := httpx.ReadJSON(r, &req); err != nil {
		a.problem(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	exps, err := a.expandAll(req.YAML)
	if err != nil {
		a.problem(w, http.StatusUnprocessableEntity, CodeCompileFailed, err.Error())
		return
	}
	if isDryRun(r) {
		reports := make([]DryRunResponse, 0, len(exps))
		for _, ex := range exps {
			report, err := analysis.Analyze(ex.Strategy)
			if err != nil {
				a.problem(w, http.StatusUnprocessableEntity, CodeInvalidStrategy,
					fmt.Sprintf("run %q: %v", ex.Strategy.Name, err))
				return
			}
			reports = append(reports, DryRunResponse{
				Strategy: ex.Strategy.Name, Valid: true, Analysis: report,
			})
		}
		if len(reports) == 1 {
			httpx.WriteJSON(w, http.StatusOK, reports[0])
		} else {
			httpx.WriteJSON(w, http.StatusOK, reports)
		}
		return
	}
	// Each run's own (expanded) source rides into the run journal so a
	// restarted engine can recompile and resume it standalone.
	scheduled := make([]*Run, 0, len(exps))
	for _, ex := range exps {
		run, err := a.eng.EnactSource(ex.Strategy, ex.Source)
		if err != nil {
			// Scheduling a template is atomic: a name clash or shutdown
			// partway through must not leave half the matrix running.
			a.unwind(scheduled)
			if len(scheduled) > 0 {
				err = fmt.Errorf("run %q: %w (%d already-scheduled sibling run(s) aborted)",
					ex.Strategy.Name, err, len(scheduled))
			}
			a.engineProblem(w, err)
			return
		}
		scheduled = append(scheduled, run)
	}
	if len(scheduled) == 1 {
		httpx.WriteJSON(w, http.StatusAccepted, scheduled[0].Status())
		return
	}
	statuses := make([]Status, 0, len(scheduled))
	for _, run := range scheduled {
		statuses = append(statuses, run.Status())
	}
	httpx.WriteJSON(w, http.StatusAccepted, statuses)
}

// expandAll resolves the request source into concrete runs, via the
// expander when one is wired, else single-run compilation.
func (a *API) expandAll(src string) ([]ExpandedStrategy, error) {
	if a.expand != nil {
		exps, err := a.expand(src)
		if err != nil {
			return nil, err
		}
		if len(exps) == 0 {
			return nil, fmt.Errorf("template expanded to no runs")
		}
		return exps, nil
	}
	s, err := a.compile(src)
	if err != nil {
		return nil, err
	}
	return []ExpandedStrategy{{Strategy: s, Source: src}}, nil
}

// unwind aborts and removes runs scheduled by a partially failed template
// schedule, waiting briefly for each abort to land. Best-effort: a run
// that will not die keeps its journal and is reported by list as aborted.
func (a *API) unwind(runs []*Run) {
	for _, run := range runs {
		run.Abort()
	}
	for _, run := range runs {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = run.Wait(ctx)
		cancel()
		_ = a.eng.Remove(run.Status().Strategy)
	}
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	runs := a.eng.Runs()
	statuses := make([]Status, 0, len(runs))
	for _, run := range runs {
		statuses = append(statuses, run.Status())
	}
	httpx.WriteJSON(w, http.StatusOK, statuses)
}

func (a *API) handleGet(w http.ResponseWriter, r *http.Request) {
	run, ok := a.eng.Run(r.PathValue("name"))
	if !ok {
		a.problem(w, http.StatusNotFound, CodeNotFound, "run not found")
		return
	}
	httpx.WriteJSON(w, http.StatusOK, run.Status())
}

func (a *API) handleAbort(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := a.eng.Abort(name); err != nil {
		a.engineProblem(w, err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"aborted": name})
}

func (a *API) handlePause(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	gen, err := a.eng.Pause(name)
	if err != nil {
		a.engineProblem(w, err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, PauseResponse{Strategy: name, PauseGen: gen})
}

func (a *API) handleResume(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req ResumeRequest
	if r.ContentLength != 0 {
		if err := httpx.ReadJSON(r, &req); err != nil {
			a.problem(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
	}
	if err := a.eng.Resume(name, req.Gen); err != nil {
		a.engineProblem(w, err)
		return
	}
	a.writeStatus(w, name)
}

func (a *API) handlePromote(w http.ResponseWriter, r *http.Request) {
	a.handleDecision(w, r, a.eng.Promote)
}

func (a *API) handleRollback(w http.ResponseWriter, r *http.Request) {
	a.handleDecision(w, r, a.eng.Rollback)
}

func (a *API) handleDecision(w http.ResponseWriter, r *http.Request,
	decide func(name, target string) error) {

	name := r.PathValue("name")
	var req DecisionRequest
	if r.ContentLength != 0 {
		if err := httpx.ReadJSON(r, &req); err != nil {
			a.problem(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
	}
	if err := decide(name, req.Target); err != nil {
		a.engineProblem(w, err)
		return
	}
	a.writeStatus(w, name)
}

func (a *API) writeStatus(w http.ResponseWriter, name string) {
	run, ok := a.eng.Run(name)
	if !ok {
		a.problem(w, http.StatusNotFound, CodeNotFound, "run not found")
		return
	}
	httpx.WriteJSON(w, http.StatusOK, run.Status())
}

func queryInt(r *http.Request, key string, def int) int {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return def
	}
	return v
}

func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, a.eng.RecentEvents(queryInt(r, "n", 100)))
}

func (a *API) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := a.eng.Run(name); !ok {
		a.problem(w, http.StatusNotFound, CodeNotFound, "run not found")
		return
	}
	httpx.WriteJSON(w, http.StatusOK, a.eng.RunEvents(name, queryInt(r, "n", 100)))
}

// handleEventStream pushes engine events as Server-Sent Events so clients
// (CLI watch, dashboard) stop polling. ?strategy= filters to one run and
// ?replay=N prefixes up to N buffered events for late joiners. A reconnect
// carrying the standard Last-Event-ID header (sent automatically by
// EventSource and by engine.Client.Watch) resumes from that sequence
// number instead: the gap is replayed from retained history, or an
// explicit events_dropped marker is sent when it exceeds retention.
func (a *API) handleEventStream(w http.ResponseWriter, r *http.Request) {
	a.eng.ServeEventStream(w, r, r.URL.Query().Get("strategy"), queryInt(r, "replay", 0))
}

// lastEventID parses the SSE Last-Event-ID reconnect header (0: none).
func lastEventID(r *http.Request) int64 {
	id, err := strconv.ParseInt(r.Header.Get("Last-Event-ID"), 10, 64)
	if err != nil || id < 0 {
		return 0
	}
	return id
}

// ServeEventStream streams engine events to w as Server-Sent Events until
// the request context ends: subscribe-before-replay with sequence-number
// dedup, so late joiners get up to replay buffered events and never miss or
// repeat one across the replay/live seam. strategy filters to one run (""
// streams everything). Shared by the API's /api/v2/events/stream endpoint
// and the dashboard's /dashboard/events alias.
//
// Every event carries its sequence number as the SSE id, and the stream is
// loss-free end to end: a reconnect with Last-Event-ID resumes from the
// durable history (which survives engine restarts), and gaps introduced by
// the bus dropping on a slow subscriber channel are backfilled from the
// replay ring before newer events are sent. When part of a gap is beyond
// retention, an events_dropped marker makes the loss explicit instead of
// silent.
func (e *Engine) ServeEventStream(w http.ResponseWriter, r *http.Request, strategy string, replay int) {
	// Subscribe on the frame channel: live deliveries arrive as pooled
	// encode-once frames, so every stream shares the same marshaled bytes
	// (SendRaw) instead of re-encoding per subscriber.
	frames, cancel := e.bus.subscribeFrames(256)
	defer cancel()
	// Sequence at subscription: every event fanned to this channel is
	// newer, so any later jump past subSeq+1 in received seqs is a drop.
	subSeq := e.bus.currentSeq()

	sse, err := httpx.NewSSEWriter(w)
	if err != nil {
		httpx.WriteProblem(w, httpx.Problem{
			Status: http.StatusInternalServerError, Detail: err.Error(),
		})
		return
	}

	send := func(ev Event) bool {
		return sse.Send(string(ev.Type), strconv.FormatInt(ev.Seq, 10), ev) == nil
	}
	// sendSince replays retained events after afterSeq (filtered), with an
	// explicit drop marker when the gap reaches beyond retention. Returns
	// the new high-water mark and whether the stream is still writable.
	sendSince := func(afterSeq int64) (int64, bool) {
		history, dropped := e.eventsSince(strategy, afterSeq)
		if dropped {
			first := e.bus.currentSeq()
			if len(history) > 0 {
				first = history[0].Seq - 1
			}
			marker := Event{
				Seq: first, Strategy: strategy, Type: EventEventsDropped,
				Detail: fmt.Sprintf("events after sequence %d are beyond retention and were not replayed", afterSeq),
				Time:   e.clk.Now(),
			}
			if !send(marker) {
				return afterSeq, false
			}
			afterSeq = first
		}
		for _, ev := range history {
			if ev.Seq <= afterSeq {
				continue
			}
			if !send(ev) {
				return afterSeq, false
			}
			afterSeq = ev.Seq
		}
		return afterSeq, true
	}

	// A purely live stream (no resume, no replay) starts at the current
	// sequence: gap backfill then only ever replays events published after
	// the client connected, never historical ones.
	lastSeq := e.bus.currentSeq()
	if id := lastEventID(r); id > 0 {
		if id > e.bus.currentSeq() {
			// The client is ahead of this engine's sequence: the engine
			// restarted without its journal and the numbering reset. Say
			// so explicitly and resume live — silently discarding every
			// event below the stale id would wedge the stream forever.
			marker := Event{
				Seq: lastSeq, Strategy: strategy, Type: EventEventsDropped,
				Detail: fmt.Sprintf("event sequence reset below %d (engine restarted without its journal); resuming live", id),
				Time:   e.clk.Now(),
			}
			if !send(marker) {
				return
			}
		} else {
			// Reconnect: replay exactly what was missed since the
			// client's last received event (Last-Event-ID wins over
			// ?replay).
			var ok bool
			if lastSeq, ok = sendSince(id); !ok {
				return
			}
		}
	} else if replay > 0 {
		var history []Event
		if strategy != "" {
			history = e.RunEvents(strategy, replay)
		} else {
			history = e.RecentEvents(replay)
		}
		for _, ev := range history {
			if !send(ev) {
				return
			}
			lastSeq = ev.Seq
		}
	}
	// lastRecv tracks the newest sequence received from the subscriber
	// channel across all strategies; a jump of more than one means the bus
	// dropped on this channel and the gap must be backfilled from history.
	// It starts at the subscription-time sequence so drops during a slow
	// history replay (before the first channel receive) are detected too.
	lastRecv := subSeq
	for {
		select {
		case f, open := <-frames:
			if !open {
				return
			}
			ev := f.ev
			gap := ev.Seq > lastRecv+1
			lastRecv = ev.Seq
			if ev.Seq <= lastSeq {
				f.release()
				continue
			}
			if gap {
				// The subscriber channel dropped under pressure; recover
				// the lost events from retained history so watchers cannot
				// miss a transition.
				var ok bool
				if lastSeq, ok = sendSince(lastSeq); !ok {
					f.release()
					return
				}
				if ev.Seq <= lastSeq {
					f.release()
					continue
				}
			}
			if strategy != "" && ev.Strategy != strategy {
				f.release()
				continue
			}
			// Live fast path: the frame's encode-once bytes go straight to
			// the socket — no per-subscriber marshal, no per-event
			// allocations.
			err := sse.SendRaw(string(ev.Type), ev.Seq, f.data())
			f.release()
			if err != nil {
				return
			}
			lastSeq = ev.Seq
		case <-r.Context().Done():
			return
		}
	}
}

// Client talks to a remote engine API over /api/v2; the CLI is a thin
// wrapper over it.
type Client struct {
	// BaseURL is the engine root, e.g. "http://127.0.0.1:7000".
	BaseURL string
}

func (c *Client) runURL(name string, parts ...string) string {
	u := c.BaseURL + "/api/v2/runs/" + url.PathEscape(name)
	for _, p := range parts {
		u += "/" + p
	}
	return u
}

// Schedule submits DSL source expected to enact exactly one run. Matrix
// templates that stamp out several must use ScheduleAll.
func (c *Client) Schedule(ctx context.Context, yamlSrc string) (Status, error) {
	sts, err := c.ScheduleAll(ctx, yamlSrc)
	if err != nil {
		return Status{}, err
	}
	if len(sts) != 1 {
		return Status{}, fmt.Errorf("engine: template scheduled %d runs; use ScheduleAll", len(sts))
	}
	return sts[0], nil
}

// ScheduleAll submits DSL source for enactment and returns every
// scheduled run: one for plain strategies, N for matrix templates.
func (c *Client) ScheduleAll(ctx context.Context, yamlSrc string) ([]Status, error) {
	var raw json.RawMessage
	err := httpx.PostJSON(ctx, c.BaseURL+"/api/v2/runs", ScheduleRequest{YAML: yamlSrc}, &raw)
	if err != nil {
		return nil, err
	}
	return decodeOneOrMany[Status](raw)
}

// DryRun validates DSL source on the engine and returns the analysis
// report without enacting anything; templates expanding to several runs
// return the first run's report (use DryRunAll for all of them).
func (c *Client) DryRun(ctx context.Context, yamlSrc string) (DryRunResponse, error) {
	reports, err := c.DryRunAll(ctx, yamlSrc)
	if err != nil {
		return DryRunResponse{}, err
	}
	return reports[0], nil
}

// DryRunAll validates DSL source and returns one analysis report per run
// the source expands to.
func (c *Client) DryRunAll(ctx context.Context, yamlSrc string) ([]DryRunResponse, error) {
	var raw json.RawMessage
	err := httpx.PostJSON(ctx, c.BaseURL+"/api/v2/runs?dry-run=true",
		ScheduleRequest{YAML: yamlSrc}, &raw)
	if err != nil {
		return nil, err
	}
	return decodeOneOrMany[DryRunResponse](raw)
}

// decodeOneOrMany reads the schedule/dry-run wire format, which is a bare
// object for single runs (backwards compatible) and an array for
// templates.
func decodeOneOrMany[T any](raw json.RawMessage) ([]T, error) {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			var many []T
			if err := json.Unmarshal(raw, &many); err != nil {
				return nil, err
			}
			if len(many) == 0 {
				return nil, fmt.Errorf("engine: empty response")
			}
			return many, nil
		}
		break
	}
	var one T
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, err
	}
	return []T{one}, nil
}

// List returns all run statuses.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var out []Status
	err := httpx.GetJSON(ctx, c.BaseURL+"/api/v2/runs", &out)
	return out, err
}

// Get returns one run status.
func (c *Client) Get(ctx context.Context, name string) (Status, error) {
	var st Status
	err := httpx.GetJSON(ctx, c.runURL(name), &st)
	return st, err
}

// Abort stops a running strategy.
func (c *Client) Abort(ctx context.Context, name string) error {
	return httpx.DoJSON(ctx, http.MethodDelete, c.runURL(name), nil, nil)
}

// Pause suspends a run at its current state and returns the pause
// generation to pass to Resume.
func (c *Client) Pause(ctx context.Context, name string) (int, error) {
	var out PauseResponse
	err := httpx.PostJSON(ctx, c.runURL(name, "pause"), struct{}{}, &out)
	return out.PauseGen, err
}

// Resume continues a paused run. gen > 0 must match the generation returned
// by the pause being resumed; gen <= 0 resumes unconditionally.
func (c *Client) Resume(ctx context.Context, name string, gen int) (Status, error) {
	var st Status
	err := httpx.PostJSON(ctx, c.runURL(name, "resume"), ResumeRequest{Gen: gen}, &st)
	return st, err
}

// Promote applies a manual success gate decision on the run's current state.
func (c *Client) Promote(ctx context.Context, name, target string) (Status, error) {
	var st Status
	err := httpx.PostJSON(ctx, c.runURL(name, "promote"), DecisionRequest{Target: target}, &st)
	return st, err
}

// Rollback applies a manual failure gate decision on the run's current state.
func (c *Client) Rollback(ctx context.Context, name, target string) (Status, error) {
	var st Status
	err := httpx.PostJSON(ctx, c.runURL(name, "rollback"), DecisionRequest{Target: target}, &st)
	return st, err
}

// Events fetches recent engine events.
func (c *Client) Events(ctx context.Context, n int) ([]Event, error) {
	var out []Event
	err := httpx.GetJSON(ctx, fmt.Sprintf("%s/api/v2/events?n=%d", c.BaseURL, n), &out)
	return out, err
}

// RunEvents fetches one run's event history.
func (c *Client) RunEvents(ctx context.Context, name string, n int) ([]Event, error) {
	var out []Event
	err := httpx.GetJSON(ctx, fmt.Sprintf("%s?n=%d", c.runURL(name, "events"), n), &out)
	return out, err
}

// Watch subscribes to the engine's live SSE event stream. strategy filters
// to one run ("" streams everything); replay > 0 prefixes buffered history.
// The returned channel closes when the stream ends; the cancel function
// tears the stream down.
//
// Like a browser EventSource, Watch reconnects when the stream breaks —
// sending Last-Event-ID so the engine replays everything missed (sequence
// numbers survive engine restarts via the run journal, so a watcher rides
// through a control-plane restart without losing a transition). It gives up
// after watchMaxRetries consecutive failed connection attempts.
func (c *Client) Watch(ctx context.Context, strategy string, replay int) (<-chan Event, func(), error) {
	q := url.Values{}
	if strategy != "" {
		q.Set("strategy", strategy)
	}
	if replay > 0 {
		q.Set("replay", strconv.Itoa(replay))
	}
	u := c.BaseURL + "/api/v2/events/stream"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	ctx, cancel := context.WithCancel(ctx)
	resp, err := streamRequest(ctx, u, 0)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	ch := make(chan Event, 64)
	go func() {
		defer close(ch)
		var lastID int64
		forward := func(se httpx.SSEEvent) error {
			var ev Event
			if json.Unmarshal(se.Data, &ev) != nil {
				return nil // skip non-event frames (keep-alives)
			}
			select {
			case ch <- ev:
				if ev.Seq > lastID {
					lastID = ev.Seq
				}
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		for {
			_ = httpx.ReadSSE(resp.Body, forward)
			resp.Body.Close()
			if ctx.Err() != nil {
				return
			}
			// The stream broke (engine restart, network blip): reconnect
			// with Last-Event-ID so nothing is missed in between.
			resp = nil
			for attempt := 0; attempt < watchMaxRetries && resp == nil; attempt++ {
				select {
				case <-ctx.Done():
					return
				case <-time.After(watchRetryDelay(attempt)):
				}
				resp, _ = streamRequest(ctx, u, lastID)
			}
			if resp == nil {
				return
			}
		}
	}()
	return ch, cancel, nil
}

// watchMaxRetries bounds consecutive failed reconnect attempts of Watch.
const watchMaxRetries = 10

// watchRetryDelay backs reconnects off to 5s.
func watchRetryDelay(attempt int) time.Duration {
	d := 250 * time.Millisecond << attempt
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// streamRequest opens one SSE connection, optionally resuming after a
// sequence number via the standard Last-Event-ID header.
func streamRequest(ctx context.Context, u string, lastID int64) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := httpx.StreamClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("watch %s: status %d", u, resp.StatusCode)
	}
	return resp, nil
}

// Healthy checks engine liveness.
func (c *Client) Healthy(ctx context.Context) error {
	var out map[string]string
	return httpx.GetJSON(ctx, c.BaseURL+"/-/healthy", &out)
}
