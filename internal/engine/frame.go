package engine

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// frame is one published event together with its single JSON encoding: the
// publish pipeline encodes each event exactly once, under pubMu, and the
// same bytes then feed the run's journal record and every SSE subscriber
// (httpx.SSEWriter.SendRaw). Frames are pooled and reference-counted —
// publish holds one reference, the async journal writer takes one, and the
// bus takes one per subscriber channel it delivers to — so steady-state
// fan-out recycles buffers instead of re-marshaling and re-allocating per
// subscriber.
type frame struct {
	ev   Event
	buf  bytes.Buffer
	enc  *json.Encoder
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return &frame{} }}

// newFrame pools a frame for ev and encodes it once into the frame's reused
// buffer. The caller owns one reference.
func newFrame(ev Event) *frame {
	f := framePool.Get().(*frame)
	f.ev = ev
	f.buf.Reset()
	if f.enc == nil {
		f.enc = json.NewEncoder(&f.buf)
	}
	if err := f.enc.Encode(&f.ev); err != nil {
		panic(err) // engine events are always marshalable
	}
	f.refs.Store(1)
	return f
}

// data returns the event's JSON encoding (without the encoder's trailing
// newline). Valid only while the caller holds a reference.
func (f *frame) data() []byte {
	b := f.buf.Bytes()
	return b[:len(b)-1]
}

// retain takes an additional reference.
func (f *frame) retain() *frame {
	f.refs.Add(1)
	return f
}

// release drops one reference, returning the frame to the pool on the last
// one. Frames stranded in a cancelled subscriber's channel are simply
// collected by the GC (a pool miss, not a leak).
func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		f.ev = Event{}
		framePool.Put(f)
	}
}
