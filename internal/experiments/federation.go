package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"bifrost/internal/metrics"
	"bifrost/internal/sketch"
)

// FederationBenchConfig sizes the federation micro-benchmarks. The zero
// value is filled with defaults sized for a committed baseline run; CI
// smoke passes tiny counts to prove the paths work without burning time.
type FederationBenchConfig struct {
	// IngestSamples is the number of Store.Append calls timed for the
	// ingest throughput figure (spread over IngestSeries series).
	IngestSamples int
	IngestSeries  int
	// MergeSketches sketches of SketchSamples lognormal samples each are
	// folded into one accumulator for the merge throughput figure.
	MergeSketches int
	SketchSamples int
	// Replicas × WindowBuckets federated buckets are loaded through
	// ApplyDelta, then Queries fleet-window p99 queries are timed.
	Replicas      int
	WindowBuckets int
	Queries       int
}

func (c FederationBenchConfig) withDefaults() FederationBenchConfig {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.IngestSamples, 1_000_000)
	def(&c.IngestSeries, 16)
	def(&c.MergeSketches, 2_000)
	def(&c.SketchSamples, 5_000)
	def(&c.Replicas, 8)
	def(&c.WindowBuckets, 120)
	def(&c.Queries, 500)
	return c
}

// FederationBenchResult is the committed BENCH_6.json shape: the three
// federation hot paths measured on this machine.
type FederationBenchResult struct {
	Config FederationBenchConfig `json:"config"`

	// Ingest: raw sample appends per second into the metrics store.
	IngestSamplesPerSec float64 `json:"ingestSamplesPerSec"`

	// Sketch merge: lossless DDSketch merges per second, and the bucket
	// count of the fully merged accumulator (memory bound at work).
	SketchMergesPerSec  float64 `json:"sketchMergesPerSec"`
	MergedSketchBuckets int     `json:"mergedSketchBuckets"`

	// Fleet query: latency of a quantile_over_time merged across every
	// replica's federated sketches.
	FleetQueryMeanMs float64 `json:"fleetQueryMeanMs"`
	FleetQueryP99Ms  float64 `json:"fleetQueryP99Ms"`
	FleetQueryP99    float64 `json:"fleetQueryP99Value"`
}

// RunFederationBench measures the federation subsystem's three hot paths:
// store ingest, sketch merging, and fleet-window quantile queries over
// federated replica series.
func RunFederationBench(cfg FederationBenchConfig) (*FederationBenchResult, error) {
	cfg = cfg.withDefaults()
	res := &FederationBenchResult{Config: cfg}
	rng := rand.New(rand.NewSource(6))

	// --- Ingest throughput: Append across IngestSeries series.
	store := metrics.NewStore()
	labels := make([]metrics.Labels, cfg.IngestSeries)
	for i := range labels {
		labels[i] = metrics.Labels{"replica": fmt.Sprintf("r%d", i)}
	}
	base := time.Now().Add(-time.Hour)
	start := time.Now()
	for i := 0; i < cfg.IngestSamples; i++ {
		at := base.Add(time.Duration(i) * time.Microsecond)
		store.Append("bench_ingest_ms", labels[i%len(labels)], rng.Float64()*100, at)
	}
	elapsed := time.Since(start)
	res.IngestSamplesPerSec = float64(cfg.IngestSamples) / elapsed.Seconds()

	// --- Sketch merge throughput: fold MergeSketches pre-built sketches.
	sketches := make([]*sketch.Sketch, cfg.MergeSketches)
	for i := range sketches {
		sk := sketch.New(sketch.DefaultAlpha)
		for j := 0; j < cfg.SketchSamples; j++ {
			sk.Add(lognormal(rng, 3.0, 0.6))
		}
		sketches[i] = sk
	}
	acc := sketch.New(sketch.DefaultAlpha)
	start = time.Now()
	for _, sk := range sketches {
		if err := acc.Merge(sk); err != nil {
			return nil, err
		}
	}
	elapsed = time.Since(start)
	res.SketchMergesPerSec = float64(cfg.MergeSketches) / elapsed.Seconds()
	res.MergedSketchBuckets = len(acc.Export().PosIdx) + len(acc.Export().NegIdx)

	// --- Fleet-window query latency: Replicas × WindowBuckets federated
	// buckets of 1s width, queried with quantile_over_time across every
	// replica series at once.
	fed := metrics.NewStore()
	width := time.Second
	winStart := base.Truncate(time.Second)
	for r := 0; r < cfg.Replicas; r++ {
		replica := fmt.Sprintf("proxy-%d", r)
		batch := metrics.DeltaBatch{Replica: replica, Incarnation: "bench", Seq: 1}
		for b := 0; b < cfg.WindowBuckets; b++ {
			bs := winStart.Add(time.Duration(b) * width)
			ab := metrics.NewAggBucket(bs.UnixNano(), width.Nanoseconds(), sketch.DefaultAlpha)
			for k := 0; k < 50; k++ {
				ab.Observe(bs.Add(time.Duration(k)*18*time.Millisecond).UnixNano(), lognormal(rng, 3.0, 0.6))
			}
			batch.Buckets = append(batch.Buckets, ab.Export("bench_fleet_ms", metrics.Labels{"service": "shop"}))
		}
		if _, err := fed.ApplyDelta(batch); err != nil {
			return nil, err
		}
	}
	at := winStart.Add(time.Duration(cfg.WindowBuckets) * width)
	window := time.Duration(cfg.WindowBuckets) * width
	lat := make([]float64, cfg.Queries)
	var p99 float64
	for i := 0; i < cfg.Queries; i++ {
		qs := time.Now()
		v, err := fed.WindowAggregate("quantile_over_time", 0.99, "bench_fleet_ms", nil, window, at)
		if err != nil {
			return nil, err
		}
		lat[i] = float64(time.Since(qs).Microseconds()) / 1000.0
		p99 = v
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	res.FleetQueryMeanMs = sum / float64(len(lat))
	res.FleetQueryP99Ms = lat[(len(lat)-1)*99/100]
	res.FleetQueryP99 = p99
	return res, nil
}

// WriteJSON emits the result as indented JSON (the BENCH_6.json format).
func (r *FederationBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}
