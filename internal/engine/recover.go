package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/journal"
)

// RecoveryReport summarizes what Recover found in the journal.
type RecoveryReport struct {
	// Resumed are the unfinished runs whose loops are executing again.
	Resumed []*Run
	// Finished counts runs the journal shows as already terminal; they are
	// registered (visible to the API with their durable history) but not
	// resumed — replaying a finished run must never re-fire its side
	// effects.
	Finished int
	// Skipped maps unfinished-but-unrecoverable runs to the reason (no
	// DSL source journaled, or the source no longer compiles).
	Skipped map[string]string
}

// RunRecovery reports the outcome of recovering one run's partition.
type RunRecovery struct {
	// Run is the registered run: resumed if the partition showed it
	// unfinished, terminal history otherwise. Nil when the partition was
	// empty or the run could not be recovered (see SkipReason).
	Run *Run
	// Resumed reports that the run's loop is executing again.
	Resumed bool
	// SkipReason is non-empty when the run is unfinished but cannot be
	// resumed (no journaled source, or the source no longer compiles).
	SkipReason string
}

// recovered carries a resumed run's journal-derived position into its loop.
type recovered struct {
	// current is the automaton state to re-enter ("" restarts from the
	// automaton's start state: the run was scheduled but never entered one).
	current string
	// routing is the set of routing configurations in force at the crash
	// (latest per service along the executed path). The re-entry applies
	// the ones the re-entered state does not itself declare — routing
	// persists across routeless states, and proxies may have restarted
	// during the downtime.
	routing []core.RoutingConfig
	// elapsed is how long the run had already spent in current before the
	// crash (downtime excluded); the state timer resumes from here instead
	// of restarting the phase.
	elapsed time.Duration
	// paused restores a paused run into its paused wait, with pauseGen as
	// the generation conditional resumes must match.
	paused   bool
	pauseGen int
	// priorActual is the wall time the run had accumulated before the
	// crash, for delay accounting across the restart.
	priorActual time.Duration
}

// Recover replays every journal partition and resumes every unfinished run:
// same automaton state, elapsed-in-state preserved, pause generation and
// path intact, and the last routing configuration re-applied through the
// Configurator (proxies may have restarted too). It must be called once,
// after New and before any Enact. compile recompiles the journaled strategy
// sources (cmd wiring passes dsl.Compile). Clustered engines adopt runs
// one at a time through RecoverRun instead, as their leases are claimed.
func (e *Engine) Recover(compile CompileFunc) (*RecoveryReport, error) {
	if e.journals == nil {
		return nil, errors.New("engine: Recover requires WithJournalSet")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	if len(e.runs) > 0 {
		e.mu.Unlock()
		return nil, errors.New("engine: Recover must run before strategies are enacted")
	}
	e.mu.Unlock()

	names, err := e.journals.List()
	if err != nil {
		return nil, err
	}
	report := &RecoveryReport{Skipped: make(map[string]string)}
	var ring []Event
	var parts []*partitionReplay
	for _, name := range names {
		part, err := e.replayPartition(name, compile, e.fenceFor(name))
		if err != nil {
			report.Skipped[name] = err.Error()
			continue
		}
		if part == nil {
			continue // empty partition: nothing ever flushed
		}
		ring = append(ring, part.events...)
		parts = append(parts, part)
	}
	// Resume hierarchical parents only after every other partition: a
	// parent's loop re-schedules its sub-rollout children on resume, and
	// that must find the children already registered from their own
	// partitions (a no-op re-link), not race their replay with a fresh
	// enactment that would reset them.
	sort.SliceStable(parts, func(a, b int) bool {
		return !strategyHasSub(parts[a].strategy) && strategyHasSub(parts[b].strategy)
	})
	for _, part := range parts {
		rr, err := e.resumePartition(part)
		if err != nil {
			return report, err
		}
		switch {
		case rr.SkipReason != "":
			report.Skipped[part.name] = rr.SkipReason
		case rr.Resumed:
			report.Resumed = append(report.Resumed, rr.Run)
		default:
			report.Finished++
		}
	}
	// Rebuild the global replay ring in sequence order: the partitions were
	// replayed one after another, but their events interleave globally.
	sort.Slice(ring, func(a, b int) bool { return ring[a].Seq < ring[b].Seq })
	for _, ev := range ring {
		e.bus.restore(ev)
	}
	return report, nil
}

// RecoverRun adopts a single run from its journal partition at runtime: the
// HA path a replica takes after claiming the run's lease (its own at
// startup, or a dead replica's after the TTL). The partition is opened
// under the lease's fencing token — registering the new ownership epoch
// before a single record is read, so the previous owner's zombie appends
// are rejected from that point on — then replayed through the exact
// crash-recovery reduction, and the run resumes in-phase with downtime
// excluded. Unlike Recover it may be called at any point in the engine's
// life, concurrently with live runs.
func (e *Engine) RecoverRun(name string, compile CompileFunc, token int64) (*RunRecovery, error) {
	if e.journals == nil {
		return nil, errors.New("engine: RecoverRun requires WithJournalSet")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	if _, exists := e.runs[name]; exists {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAlreadyRunning, name)
	}
	e.mu.Unlock()

	part, err := e.replayPartition(name, compile, token)
	if err != nil {
		return nil, err
	}
	if part == nil {
		return &RunRecovery{}, nil
	}
	return e.resumePartition(part)
}

// partitionReplay is one partition's replayed state, ready to resume.
type partitionReplay struct {
	name     string
	rm       runMirror
	strategy *core.Strategy
	lastTime time.Time
	events   []Event // post-snapshot events, for global ring restore
}

// replayPartition opens run name's partition under the given fencing token,
// replays snapshot plus records into the engine mirror, and fast-forwards
// the event sequence past everything replayed. Returns nil when the
// partition holds no reduction for the run (nothing was ever flushed).
func (e *Engine) replayPartition(name string, compile CompileFunc, token int64) (*partitionReplay, error) {
	j, err := e.journals.Partition(name, token)
	if err != nil {
		return nil, err
	}

	e.pubMu.Lock()
	defer e.pubMu.Unlock()

	part := newEngineMirror()
	snap, snapSeq := j.Snapshot()
	if snap != nil {
		if err := json.Unmarshal(snap, part); err != nil {
			return nil, fmt.Errorf("engine: corrupt snapshot for %s: %w", name, err)
		}
		if part.Runs == nil {
			part.Runs = make(map[string]*runMirror, 1)
		}
	}

	// The strategy recompiles lazily, re-triggered when a newer source
	// record lands mid-replay; nil means unrecoverable.
	var strategy *core.Strategy
	compiled := false
	compileFor := func() *core.Strategy {
		if compiled {
			return strategy
		}
		compiled = true
		if rm, ok := part.Runs[name]; ok && rm.Source != "" && compile != nil {
			if cs, err := compile(rm.Source); err == nil {
				strategy = cs
			}
		}
		return strategy
	}

	maxSeq := snapSeq
	maxGen := part.Generation
	var events []Event
	err = j.Replay(func(rec journal.Record) error {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		switch rec.Type {
		case recHeartbeat:
			// Heartbeats share the newest event's seq, so they may sit on
			// (or behind) the snapshot boundary and are always applied:
			// they only push the crash-time estimate forward.
			if rec.Time.After(part.LastTime) {
				part.LastTime = rec.Time
			}
		case recSource:
			if rec.Seq <= snapSeq {
				return nil // already reduced into the snapshot
			}
			var sr sourceRecord
			if json.Unmarshal(rec.Data, &sr) == nil {
				part.setSource(name, sr.Source)
				compiled = false // compile against the new source
			}
		case recEvent:
			if rec.Seq <= snapSeq {
				return nil // already reduced into the snapshot
			}
			var ev Event
			if json.Unmarshal(rec.Data, &ev) != nil {
				return nil // tolerate unknown/garbled records, like a torn tail
			}
			part.apply(compileFor(), ev)
			events = append(events, ev)
			if ev.Generation > maxGen {
				maxGen = ev.Generation
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rm, ok := part.Runs[name]
	if !ok {
		return nil, nil
	}
	compileFor() // terminal runs too: Run.Strategy() should work on history

	// Retained history may hold routing generations newer than the
	// snapshot counter (snapshot counters only advance at compaction).
	for _, ev := range rm.Events {
		if ev.Generation > maxGen {
			maxGen = ev.Generation
		}
	}
	if maxGen > e.generation.Load() {
		e.generation.Store(maxGen)
	}
	// New events continue past everything this partition had journaled, so
	// a watcher's Last-Event-ID from the previous owner stays behind (or
	// at) the adopted numbering — never ahead of it.
	e.bus.setSeq(maxSeq)

	e.mirror.Runs[name] = rm
	if part.LastTime.After(e.mirror.LastTime) {
		e.mirror.LastTime = part.LastTime
	}
	return &partitionReplay{
		name:     name,
		rm:       *rm,
		strategy: strategy,
		lastTime: part.LastTime,
		events:   events,
	}, nil
}

// resumePartition registers a replayed run: terminal runs as history,
// unfinished ones resumed in-phase with elapsed-in-state preserved and
// downtime excluded (lastTime — the partition's newest record or heartbeat
// — is the best available crash-time estimate).
func (e *Engine) resumePartition(part *partitionReplay) (*RunRecovery, error) {
	st := part.rm.Status
	st.Path = append([]Transition(nil), st.Path...)
	if st.State.terminal() {
		r := newFinishedRun(e, part.strategy, st)
		if !e.registerRun(r) {
			return nil, ErrEngineClosed
		}
		return &RunRecovery{Run: r}, nil
	}
	if part.strategy == nil {
		reason := "no strategy source journaled (enacted programmatically)"
		if part.rm.Source != "" {
			reason = "journaled strategy source no longer compiles"
		}
		return &RunRecovery{SkipReason: reason}, nil
	}
	var elapsed, prior time.Duration
	if !st.EnteredAt.IsZero() && part.lastTime.After(st.EnteredAt) {
		elapsed = part.lastTime.Sub(st.EnteredAt)
	}
	// Active wall time accumulates per life: everything before the
	// last recovery is in PriorActive, plus this life's span up to the
	// newest record — inter-restart downtime never counts.
	anchor, base := st.StartedAt, time.Duration(0)
	if !part.rm.ResumedAt.IsZero() {
		anchor, base = part.rm.ResumedAt, part.rm.PriorActive
	}
	prior = base
	if !anchor.IsZero() && part.lastTime.After(anchor) {
		prior += part.lastTime.Sub(anchor)
	}
	st.Recovered = true
	ctx, cancel := context.WithCancel(context.Background())
	r := &Run{
		engine:   e,
		strategy: part.strategy,
		cancel:   cancel,
		done:     make(chan struct{}),
		evicted:  make(chan struct{}),
		controls: make(chan controlMsg),
		status:   st,
		recov: &recovered{
			current:     st.Current,
			routing:     effectiveRouting(part.strategy, st.Path, st.Current),
			elapsed:     elapsed,
			paused:      st.State == RunPaused,
			pauseGen:    st.PauseGen,
			priorActual: prior,
		},
	}
	if !e.registerRun(r) {
		cancel()
		return nil, ErrEngineClosed
	}
	e.mRecovered.Inc()
	e.mActive.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.mActive.Add(-1)
		r.loop(ctx)
	}()
	return &RunRecovery{Run: r, Resumed: true}, nil
}

// strategyHasSub reports whether any state nests a sub-rollout (the
// strategy is a hierarchical parent).
func strategyHasSub(s *core.Strategy) bool {
	if s == nil {
		return false
	}
	for i := range s.Automaton.States {
		if s.Automaton.States[i].Sub != nil {
			return true
		}
	}
	return false
}

// effectiveRouting returns the routing configurations in force when the
// run sat in current after taking path: for each service, the config of
// the latest visited state that declared one. Routing persists across
// states that declare none, so recovery must re-apply these — the state
// being re-entered may not mention the services at all.
func effectiveRouting(s *core.Strategy, path []Transition, current string) []core.RoutingConfig {
	if s == nil || current == "" {
		return nil
	}
	visited := make([]string, 0, len(path)+1)
	for _, tr := range path {
		visited = append(visited, tr.From)
	}
	visited = append(visited, current)
	var out []core.RoutingConfig
	seen := make(map[string]bool, 2)
	for i := len(visited) - 1; i >= 0; i-- {
		st, ok := s.Automaton.State(visited[i])
		if !ok {
			continue
		}
		// Within a state too, the last declared config per service wins:
		// enterState applies them in order and later pushes carry higher
		// generations, so walking backwards keeps what was live.
		for j := len(st.Routing) - 1; j >= 0; j-- {
			rc := st.Routing[j]
			if !seen[rc.Service] {
				seen[rc.Service] = true
				out = append(out, rc)
			}
		}
	}
	return out
}

// registerRun inserts a run into the registry; for live runs the waitgroup
// slot is taken under e.mu so Shutdown cannot miss it. Reports false once
// the engine closed.
func (e *Engine) registerRun(r *Run) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.runs[r.status.Strategy] = r
	if !r.Done() {
		e.wg.Add(1)
	}
	return true
}

// newFinishedRun materializes a terminal run from its journaled status so a
// restarted engine still lists it and serves its history. It has no loop;
// every control is rejected with ErrFinished.
func newFinishedRun(e *Engine, s *core.Strategy, st Status) *Run {
	done := make(chan struct{})
	close(done)
	return &Run{
		engine:   e,
		strategy: s,
		cancel:   func() {},
		done:     done,
		evicted:  make(chan struct{}),
		controls: make(chan controlMsg),
		status:   st,
	}
}
