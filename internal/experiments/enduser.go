package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"bifrost/internal/engine"
	"bifrost/internal/loadgen"
)

// Variation is one of the three test-run configurations of §5.1.2.
type Variation string

// The paper's three variations.
const (
	// Baseline runs the load test "without the middleware and proxies
	// deployed".
	Baseline Variation = "baseline"
	// Inactive deploys the proxies "but without executing any strategy".
	Inactive Variation = "inactive"
	// Active executes the four-phase release strategy during the test.
	Active Variation = "active"
)

// EndUserConfig parameterizes the Figure 6 / Table 1 reproduction.
type EndUserConfig struct {
	// Plan is the phase timing (QuickPhases or PaperPhases).
	Plan PhasePlan
	// RPS is the steady load (paper: 35 req/s).
	RPS float64
	// RampUp precedes the measurement (paper: 30s; compressed here).
	RampUp time.Duration
	// Users is the synthetic user pool size.
	Users int
	// Window is the moving-average window (paper: 3s).
	Window time.Duration
	// Seed fixes workload randomness.
	Seed int64
}

func (c EndUserConfig) withDefaults() EndUserConfig {
	if c.Plan == (PhasePlan{}) {
		c.Plan = QuickPhases()
	}
	if c.RPS == 0 {
		c.RPS = 35
	}
	if c.RampUp == 0 {
		c.RampUp = 2 * time.Second
	}
	if c.Users == 0 {
		c.Users = 20
	}
	if c.Window == 0 {
		c.Window = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// PhaseStats is one Table-1 cell group: summary statistics of the response
// times observed during one release phase under one variation.
type PhaseStats struct {
	Phase string
	Stats loadgen.Stats
}

// EndUserResult is the outcome of one variation run.
type EndUserResult struct {
	Variation Variation
	// Series is the Figure-6 moving-average curve.
	Series []loadgen.SeriesPoint
	// Phases holds Table-1 statistics, one entry per release phase.
	Phases []PhaseStats
	// Strategy reports the enacted strategy's final status (Active only).
	Strategy *engine.Status
	// Err counts failed requests across the run.
	Errors int
}

// RunEndUser executes one variation of the §5.1 experiment and returns its
// series and per-phase statistics.
func RunEndUser(ctx context.Context, variation Variation, cfg EndUserConfig) (*EndUserResult, error) {
	cfg = cfg.withDefaults()
	tb, err := NewTestbed(TestbedConfig{
		WithProxies: variation != Baseline,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	plan := cfg.Plan
	phaseWindows := phaseWindows(cfg, plan)
	total := cfg.RampUp + plan.Total() + time.Second

	// For the active variation, enact the strategy after the ramp-up.
	var run *engine.Run
	if variation == Active {
		strategy, cerr := CompileReleaseStrategy("product-release", tb, plan)
		if cerr != nil {
			return nil, cerr
		}
		timer := time.AfterFunc(cfg.RampUp, func() {
			r, eerr := tb.Engine.Enact(strategy)
			if eerr == nil {
				run = r
			}
		})
		defer timer.Stop()
	}

	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     tb.Gateway.URL(),
		RPS:         cfg.RPS,
		Duration:    total - cfg.RampUp,
		RampUp:      cfg.RampUp,
		Users:       cfg.Users,
		ProductIDs:  tb.ProductIDs,
		SearchTerms: []string{"tv", "laptop", "phone", "camera"},
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	out := &EndUserResult{
		Variation: variation,
		Series:    res.MovingAverage(cfg.Window),
	}
	for _, pw := range phaseWindows {
		out.Phases = append(out.Phases, PhaseStats{
			Phase: pw.name,
			Stats: res.StatsWindow(pw.from, pw.to),
		})
	}
	out.Errors = loadgen.StatsOf(res.Samples).Errors

	if variation == Active && run != nil {
		waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		_ = run.Wait(waitCtx)
		st := run.Status()
		out.Strategy = &st
	}
	return out, nil
}

type phaseWindow struct {
	name     string
	from, to time.Duration
}

// phaseWindows derives the measurement windows of the four phases from the
// plan; the same wall windows are used for all three variations so Table 1
// compares like with like.
func phaseWindows(cfg EndUserConfig, plan PhasePlan) []phaseWindow {
	start := cfg.RampUp
	canaryEnd := start + plan.Canary
	darkEnd := canaryEnd + plan.Dark
	abEnd := darkEnd + plan.AB
	rolloutEnd := abEnd + time.Duration(int(100/plan.RolloutStepPct))*plan.RolloutStep
	return []phaseWindow{
		{"Canary", start, canaryEnd},
		{"Dark Launch", canaryEnd, darkEnd},
		{"A/B Test", darkEnd, abEnd},
		{"Gradual Rollout", abEnd, rolloutEnd},
	}
}

// Table1 bundles the three variations of the experiment.
type Table1 struct {
	Results map[Variation]*EndUserResult
}

// RunTable1 runs baseline, inactive, and active back to back.
func RunTable1(ctx context.Context, cfg EndUserConfig) (*Table1, error) {
	t := &Table1{Results: make(map[Variation]*EndUserResult, 3)}
	for _, v := range []Variation{Baseline, Inactive, Active} {
		r, err := RunEndUser(ctx, v, cfg)
		if err != nil {
			return nil, fmt.Errorf("variation %s: %w", v, err)
		}
		t.Results[v] = r
	}
	return t, nil
}

// Print renders the paper's Table 1 layout: rows mean/min/max/sd/median,
// grouped per phase × variation.
func (t *Table1) Print(w io.Writer) {
	phases := []string{"Canary", "Dark Launch", "A/B Test", "Gradual Rollout"}
	variations := []Variation{Baseline, Inactive, Active}

	fmt.Fprintf(w, "Table 1: response time statistics (ms) per release phase\n\n")
	for _, phase := range phases {
		fmt.Fprintf(w, "%-16s %10s %10s %10s\n", phase, "baseline", "inactive", "active")
		rows := []struct {
			label string
			pick  func(loadgen.Stats) float64
		}{
			{"mean", func(s loadgen.Stats) float64 { return s.Mean }},
			{"min", func(s loadgen.Stats) float64 { return s.Min }},
			{"max", func(s loadgen.Stats) float64 { return s.Max }},
			{"sd", func(s loadgen.Stats) float64 { return s.SD }},
			{"median", func(s loadgen.Stats) float64 { return s.Median }},
		}
		for _, row := range rows {
			fmt.Fprintf(w, "  %-14s", row.label)
			for _, v := range variations {
				st := t.stats(v, phase)
				fmt.Fprintf(w, " %10.2f", row.pick(st))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

func (t *Table1) stats(v Variation, phase string) loadgen.Stats {
	r, ok := t.Results[v]
	if !ok {
		return loadgen.Stats{}
	}
	for _, p := range r.Phases {
		if p.Phase == phase {
			return p.Stats
		}
	}
	return loadgen.Stats{}
}

// PrintFigure6 renders the moving-average series of every variation as CSV
// (offset_s, baseline_ms, inactive_ms, active_ms), the data behind the
// paper's Figure 6 plot.
func (t *Table1) PrintFigure6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: 3s moving average of response times (CSV)")
	fmt.Fprintln(w, "offset_s,baseline_ms,inactive_ms,active_ms")
	series := map[Variation][]loadgen.SeriesPoint{}
	maxLen := 0
	for v, r := range t.Results {
		series[v] = r.Series
		if len(r.Series) > maxLen {
			maxLen = len(r.Series)
		}
	}
	for i := 0; i < maxLen; i++ {
		var offset float64
		cols := make([]string, 0, 3)
		for _, v := range []Variation{Baseline, Inactive, Active} {
			s := series[v]
			if i < len(s) {
				offset = s[i].OffsetSeconds
				cols = append(cols, fmt.Sprintf("%.2f", s[i].MeanMillis))
			} else {
				cols = append(cols, "")
			}
		}
		fmt.Fprintf(w, "%.0f,%s,%s,%s\n", offset, cols[0], cols[1], cols[2])
	}
}
