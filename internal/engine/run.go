package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// RunState is the lifecycle state of one strategy enactment.
type RunState string

// Run lifecycle states.
const (
	RunPending   RunState = "pending"
	RunRunning   RunState = "running"
	RunPaused    RunState = "paused"
	RunCompleted RunState = "completed"
	RunAborted   RunState = "aborted"
	RunFailed    RunState = "failed"
)

// Run is one executing (or finished) strategy enactment.
type Run struct {
	engine   *Engine
	strategy *core.Strategy
	cancel   context.CancelFunc
	done     chan struct{}
	// evicted is closed by Engine.Evict when this replica loses the run's
	// ownership lease: the loop exits exactly like a suspend — no terminal
	// record — because the run lives on, adopted by another replica.
	evicted   chan struct{}
	evictOnce sync.Once
	// controls carries operator commands (pause, resume, manual gate
	// decisions) into the run loop, which consumes them while a state is
	// executing or paused.
	controls chan controlMsg
	// recov is set on runs rebuilt from the journal: the loop re-enters
	// the recorded state with its elapsed time instead of starting over.
	recov *recovered
	// resumeBackdate, consumed by the next enterState, backdates
	// Status.EnteredAt by the recovered elapsed time so the preserved
	// progress is visible atomically with the re-entry. Loop-local.
	resumeBackdate time.Duration
	// recoveredRouting, consumed by the next enterState, holds the
	// routing configurations in force at the crash: the re-entry applies
	// the ones its state does not itself declare, so routing that
	// persisted across routeless states is restored too (proxies may
	// have restarted during the downtime). Loop-local.
	recoveredRouting []core.RoutingConfig

	mu     sync.Mutex
	status Status
}

// controlKind enumerates operator commands on a run.
type controlKind int

const (
	ctrlPause controlKind = iota
	ctrlResume
	ctrlPromote
	ctrlRollback
)

func (k controlKind) String() string {
	switch k {
	case ctrlPause:
		return "pause"
	case ctrlResume:
		return "resume"
	case ctrlPromote:
		return "promote"
	default:
		return "rollback"
	}
}

// controlMsg is one operator command delivered to the run loop.
type controlMsg struct {
	kind controlKind
	// target optionally names the successor state for promote/rollback.
	target string
	// gen is the pause generation a resume must match (<= 0: unconditional).
	gen   int
	reply chan ctrlReply
}

// ctrlReply is the run loop's verdict on one control message.
type ctrlReply struct {
	err error
	// gen is the pause generation created by the acknowledged pause. It is
	// carried in the reply (not re-read from status afterwards) so a Pause
	// racing another operator's pause/resume cycle still returns its own
	// generation.
	gen int
}

// stepResult is the outcome of executing one automaton state.
type stepResult struct {
	// next is the successor state chosen by δ, an exception fallback, or a
	// manual gate decision.
	next    string
	outcome int
	// cause records how the transition was decided: "" for δ, "exception"
	// for an exception-check interrupt, "burnrate" for an SLO burn-rate
	// rollback, "sequential" for a failing sequential gate with a
	// fallback, "changepoint" for a detected distribution shift,
	// "promote"/"rollback" for manual operator decisions.
	cause string
	// reenter asks the loop to re-enter the current state (after a
	// pause/resume cycle: routing is re-applied and all timers reset).
	reenter bool
}

// Status is a snapshot of a run's progress.
type Status struct {
	Strategy string   `json:"strategy"`
	State    RunState `json:"state"`
	// Current is the automaton state being executed.
	Current string `json:"current,omitempty"`
	// EnteredAt is when Current was entered.
	EnteredAt time.Time `json:"enteredAt,omitempty"`
	// StartedAt / FinishedAt bracket the whole enactment.
	StartedAt  time.Time `json:"startedAt,omitempty"`
	FinishedAt time.Time `json:"finishedAt,omitempty"`
	// PlannedNanos accumulates the specified duration of every state the
	// run entered; ActualNanos is wall time. Their difference is the
	// enactment delay studied in Figures 8 and 10 of the paper.
	PlannedNanos int64 `json:"plannedNanos"`
	ActualNanos  int64 `json:"actualNanos"`
	// Path records every transition taken.
	Path []Transition `json:"path"`
	// Checks reports progress of the current state's checks.
	Checks []CheckStatus `json:"checks,omitempty"`
	// Fleet reports per-service proxy-fleet convergence at the current
	// routing generation (fleet-aware configurators only), maintained by
	// the run's background reconciler.
	Fleet []FleetStatus `json:"fleet,omitempty"`
	// Children mirrors the sub-rollout children of a hierarchical run,
	// reduced from the child-linkage events in the parent's own partition —
	// live and on journal replay alike, so a recovered parent re-links to
	// its still-running children from this very list.
	Children []ChildStatus `json:"children,omitempty"`
	// PauseGen counts completed Pause calls. A Resume carrying a non-zero
	// generation only succeeds while that pause is still the current one.
	PauseGen int `json:"pauseGen,omitempty"`
	// Recovered marks a run rebuilt from the journal after an engine
	// restart: it resumed its recorded state rather than starting fresh.
	Recovered bool `json:"recovered,omitempty"`
	// Error holds the failure cause for RunFailed.
	Error string `json:"error,omitempty"`
}

// Delay returns the enactment delay: wall time beyond the specified
// execution time of the states the run passed through.
func (s Status) Delay() time.Duration {
	return time.Duration(s.ActualNanos - s.PlannedNanos)
}

// Transition is one δ firing.
type Transition struct {
	From    string    `json:"from"`
	To      string    `json:"to"`
	Outcome int       `json:"outcome"`
	At      time.Time `json:"at"`
	// Cause is empty for automatic δ transitions, "exception" for
	// exception-check interrupts, "burnrate" for SLO burn-rate rollbacks,
	// "sequential" for failing sequential gates with a fallback,
	// "changepoint" for detected distribution shifts, and
	// "promote"/"rollback" for manual operator gate decisions.
	Cause string `json:"cause,omitempty"`
}

// ChildStatus is one sub-rollout child's progress as seen by its parent:
// which run state it is in, which automaton state, and — once terminal —
// whether it counted toward the quorum.
type ChildStatus struct {
	Name   string `json:"name"`
	Region string `json:"region,omitempty"`
	// State is the child's run state (running, completed, aborted, ...).
	State string `json:"state,omitempty"`
	// Phase is the automaton state the child is executing.
	Phase  string `json:"phase,omitempty"`
	Passed bool   `json:"passed,omitempty"`
	Failed bool   `json:"failed,omitempty"`
}

// CheckStatus reports one check's progress within the current state.
type CheckStatus struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Executions int    `json:"executions"`
	Successes  int    `json:"successes"`
	Failures   int    `json:"failures"`
	// Inconclusive counts executions of a statistical check that could
	// not conclude (insufficient data in the window, provider errors).
	Inconclusive int    `json:"inconclusive,omitempty"`
	LastError    string `json:"lastError,omitempty"`
	// Verdict is the latest statistical verdict of a compare, sequential,
	// or burnrate check.
	Verdict *core.Verdict `json:"verdict,omitempty"`
}

// Strategy returns the strategy this run enacts.
func (r *Run) Strategy() *core.Strategy { return r.strategy }

// Status snapshots the run.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.status
	st.Path = append([]Transition(nil), r.status.Path...)
	st.Checks = append([]CheckStatus(nil), r.status.Checks...)
	st.Fleet = append([]FleetStatus(nil), r.status.Fleet...)
	st.Children = append([]ChildStatus(nil), r.status.Children...)
	return st
}

// Done reports whether the run has finished.
func (r *Run) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the run finishes or ctx is cancelled.
func (r *Run) Wait(ctx context.Context) error {
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Abort cancels the run.
func (r *Run) Abort() { r.cancel() }

// Pause suspends enactment at the current state: running checks are stopped
// and the automaton holds position until Resume, a manual gate decision, or
// an abort. It returns the new pause generation, which a later Resume can
// pass to guard against racing another operator's pause/resume cycle.
func (r *Run) Pause() (int, error) {
	rep := r.control(controlMsg{kind: ctrlPause})
	return rep.gen, rep.err
}

// Resume continues a paused run by re-entering the current state (routing is
// re-applied, check timers reset). gen > 0 must match the generation returned
// by the Pause being resumed; gen <= 0 resumes unconditionally.
func (r *Run) Resume(gen int) error {
	return r.control(controlMsg{kind: ctrlResume, gen: gen}).err
}

// Promote forces the transition the operator chose instead of waiting for δ:
// the run leaves the current state for target immediately. An empty target
// selects the state's highest-outcome successor (its success path). Promote
// works both while the state is executing and while the run is paused —
// the paper's "release engineer intervenes when checks are ambiguous" case.
func (r *Run) Promote(target string) error {
	return r.control(controlMsg{kind: ctrlPromote, target: target}).err
}

// Rollback is Promote's counterpart for failing a gate manually: an empty
// target selects the state's lowest-outcome successor (its failure path).
func (r *Run) Rollback(target string) error {
	return r.control(controlMsg{kind: ctrlRollback, target: target}).err
}

// control delivers one operator command to the run loop and waits for its
// verdict. Finished runs reject every command.
func (r *Run) control(msg controlMsg) ctrlReply {
	msg.reply = make(chan ctrlReply, 1)
	select {
	case r.controls <- msg:
		// The send completed, so the loop received the command, and every
		// receive path replies (the reply channel is buffered). Waiting on
		// the reply alone avoids mis-reporting ErrFinished when the
		// command itself finished the run (a promote into a final state
		// closes done right after replying).
		return <-msg.reply
	case <-r.done:
		return ctrlReply{err: ErrFinished}
	}
}

func (r *Run) setRunState(s RunState, errMsg string) {
	r.mu.Lock()
	r.status.State = s
	if errMsg != "" {
		r.status.Error = errMsg
	}
	r.mu.Unlock()
}

// publish stamps the run's strategy name onto ev and sends it through the
// engine's publish pipeline (sequencing, subscribers, durable history,
// journal).
func (r *Run) publish(ev Event) {
	ev.Strategy = r.strategy.Name
	r.engine.publish(r.strategy, ev)
}

// loop is the run's main goroutine: it walks the automaton until a final
// state, an abort, or a failure. A recovered run (r.recov set) re-enters
// its journaled state, resuming the state timer from the recorded elapsed
// time; its checks re-arm from zero.
func (r *Run) loop(ctx context.Context) {
	defer close(r.done)
	clk := r.engine.clk
	start := clk.Now()
	rc := r.recov
	var priorActual time.Duration
	if rc != nil {
		priorActual = rc.priorActual
	}

	r.mu.Lock()
	if rc == nil {
		r.status.State = RunRunning
		r.status.StartedAt = start
	} else if !rc.paused {
		// Recovered runs keep their original StartedAt (and, when paused,
		// their paused state and generation).
		r.status.State = RunRunning
	}
	r.mu.Unlock()

	// Fleet-aware configurators get a per-run anti-entropy reconciler: it
	// polls every replica, re-pushes the current generation to lagging or
	// restarted ones, and publishes routing_converged/routing_degraded
	// transitions. It lives for the whole run (routing persists across
	// states that declare none) and is stopped — synchronously, so no
	// convergence event can land after the terminal record — by finish()
	// or, on suspend, by the deferred stop below.
	var fm fleetManager
	stopReconciler := func() {}
	if m, ok := r.engine.configurator.(fleetManager); ok && configuratorTracksFleet(r.engine.configurator, r.strategy) {
		fm = m
		rctx, rcancel := context.WithCancel(ctx)
		rdone := make(chan struct{})
		go func() {
			defer close(rdone)
			r.reconcileLoop(rctx, fm)
		}()
		stopReconciler = func() {
			rcancel()
			<-rdone
		}
		// Defer order matters: forget runs before close(r.done) (LIFO vs
		// the deferred close at the top of loop), and Enact/Remove gate on
		// that channel — so a re-enactment of this strategy name can only
		// register fresh fleet state after this forget has finished, never
		// before it.
		defer fm.forget(r.strategy.Name)
		defer stopReconciler()
	}

	finish := func(state RunState, errMsg string) {
		stopReconciler()
		if state != RunAborted {
			// Completed and failed runs get one last anti-entropy pass;
			// aborted ones skip it — the operator just cancelled the run
			// (Shutdown aborts every run and must not stall on unreachable
			// proxies, nor should routing be re-pushed after an abort).
			r.finalFleetCheck(fm)
		}
		now := clk.Now()
		r.mu.Lock()
		r.status.State = state
		r.status.FinishedAt = now
		r.status.ActualNanos = int64(priorActual + now.Sub(start))
		if errMsg != "" {
			r.status.Error = errMsg
		}
		r.mu.Unlock()
		r.engine.registry.Gauge("engine_enactment_delay_seconds",
			metrics.Labels{"strategy": r.strategy.Name}).
			Set(r.Status().Delay().Seconds())
		switch state {
		case RunCompleted:
			r.publish(Event{Type: EventCompleted, Time: now})
		case RunAborted:
			r.publish(Event{Type: EventAborted, Time: now})
		case RunFailed:
			r.publish(Event{Type: EventError, Detail: errMsg, Time: now})
		}
	}

	current := r.strategy.Automaton.Start
	resuming := rc != nil
	if resuming && rc.current != "" {
		current = rc.current
	}
	// reentered marks a re-entry of the current state after a pause/resume
	// cycle: the state's specified duration was already booked for delay
	// accounting, so executeState must not book it again.
	reentered := false
	for {
		select {
		case <-ctx.Done():
			finish(RunAborted, "")
			return
		case <-r.engine.stopping:
			return // suspended: no terminal record, the journal resumes us
		case <-r.evicted:
			return // lease lost: another replica is adopting this run
		default:
		}

		state, ok := r.strategy.Automaton.State(current)
		if !ok {
			finish(RunFailed, "unknown state "+current)
			return
		}

		if resuming {
			r.publish(Event{
				Type: EventRecovered, State: current,
				Elapsed: rc.elapsed, Active: rc.priorActual,
				Detail: fmt.Sprintf("resumed after restart (%s elapsed in state)",
					rc.elapsed.Round(time.Millisecond)),
				Time: clk.Now(),
			})
			// The re-entry keeps the preserved elapsed time visible: the
			// state was entered before the restart, not just now.
			r.resumeBackdate = rc.elapsed
			r.recoveredRouting = rc.routing
			if rc.paused {
				// Re-assert the pause before re-entering the state: if the
				// engine dies again mid-re-entry (Configure calls proxies
				// that may be down right after an outage), the journal's
				// last word must still be "paused" — an operator's hold is
				// never silently released by a crash loop.
				r.publish(Event{
					Type: EventPaused, State: current, PauseGen: rc.pauseGen,
					Detail: fmt.Sprintf("pause generation %d (restored after restart)", rc.pauseGen),
					Time:   clk.Now(),
				})
			}
		}

		if err := r.enterState(ctx, state); err != nil {
			if ctx.Err() != nil {
				finish(RunAborted, "")
				return
			}
			finish(RunFailed, err.Error())
			return
		}

		if r.strategy.Automaton.IsFinal(state.ID) {
			finish(RunCompleted, "")
			return
		}

		var res stepResult
		var err error
		if state.Sub != nil {
			// A sub-rollout state: the children are its checks and clock.
			// Recovery needs no special entry here — executeSubRollout
			// re-links from the mirror-reduced Status.Children.
			res, err = r.executeSubRollout(ctx, state)
		} else if resuming && rc.paused {
			// The run was paused when the engine went down: hold position
			// again (routing above was re-asserted), same pause generation.
			r.setRunState(RunPaused, "")
			res, err = r.pausedWait(ctx, state, rc.pauseGen)
		} else {
			var elapsed time.Duration
			// A true re-entry (the state was entered before the crash) was
			// already booked and keeps its elapsed time; a run recovered
			// before entering any state starts its first state fresh.
			reentry := resuming && rc.current != ""
			if reentry {
				elapsed = rc.elapsed
			}
			res, err = r.executeState(ctx, state, !reentered && !reentry, elapsed)
		}
		resuming = false
		if err != nil {
			if errors.Is(err, errSuspended) {
				return
			}
			if ctx.Err() != nil {
				finish(RunAborted, "")
				return
			}
			finish(RunFailed, err.Error())
			return
		}
		if res.reenter {
			// Resumed from a pause: re-enter the same state so routing is
			// re-applied and every check timer restarts from zero.
			reentered = true
			continue
		}
		reentered = false

		now := clk.Now()
		r.mu.Lock()
		r.status.Path = append(r.status.Path, Transition{
			From: state.ID, To: res.next, Outcome: res.outcome, At: now, Cause: res.cause,
		})
		r.mu.Unlock()
		r.engine.mTransitions.Inc()
		r.publish(Event{
			Type: EventTransition, State: state.ID,
			Detail: res.next, Outcome: res.outcome, Cause: res.cause, Time: now,
		})
		current = res.next
	}
}

// enterState applies the state's routing configurations and records entry.
func (r *Run) enterState(ctx context.Context, state *core.State) error {
	clk := r.engine.clk
	now := clk.Now()
	entered := now
	if d := r.resumeBackdate; d > 0 {
		entered = now.Add(-d)
		r.resumeBackdate = 0
	}
	r.mu.Lock()
	r.status.Current = state.ID
	r.status.EnteredAt = entered
	if len(state.Checks) > 0 {
		// Keep the previous state's check results visible while passing
		// through checkless states (e.g. final rollout/rollback states).
		r.status.Checks = nil
	}
	r.mu.Unlock()
	r.publish(Event{
		Type: EventStateEntered, State: state.ID,
		Detail: state.Description, Time: now,
	})

	// A recovery re-entry also restores routing that persisted from
	// earlier states (the re-entered state may declare none of it);
	// services the state routes itself are applied from the state alone.
	routing := state.Routing
	if extras := r.recoveredRouting; extras != nil {
		r.recoveredRouting = nil
		covered := make(map[string]bool, len(state.Routing))
		for i := range state.Routing {
			covered[state.Routing[i].Service] = true
		}
		routing = append([]core.RoutingConfig(nil), state.Routing...)
		for _, rc := range extras {
			if !covered[rc.Service] {
				routing = append(routing, rc)
			}
		}
	}
	for i := range routing {
		rc := routing[i]
		gen := r.engine.nextGeneration()
		if err := r.engine.configurator.Configure(ctx, r.strategy, state, rc, gen); err != nil {
			return err
		}
		r.publish(Event{
			Type: EventRoutingApplied, State: state.ID,
			Detail: rc.Service, Generation: gen, Time: clk.Now(),
		})
		// Only now may the reconciler report this fleet: a degraded event
		// for generation gen must never precede its routing_applied.
		if fm, ok := r.engine.configurator.(fleetManager); ok {
			fm.settled(r.strategy.Name, rc.Service)
		}
	}
	return nil
}

// executeState runs the state's checks to completion (or interrupt) and
// returns the successor chosen by δ together with the aggregated outcome.
// While the state executes, the run loop also consumes operator controls:
// pause suspends it, and manual promote/rollback decisions override δ.
// book is false on a pause/resume re-entry, whose specified duration was
// already accounted for. elapsed is the time already spent in this state
// before an engine restart: the state timer runs only for the remainder,
// while checks re-arm their full schedules.
func (r *Run) executeState(ctx context.Context, state *core.State, book bool,
	elapsed time.Duration) (stepResult, error) {

	clk := r.engine.clk

	// Book the state's specified duration for delay accounting.
	if book {
		planned := statePlannedDuration(state)
		r.mu.Lock()
		r.status.PlannedNanos += int64(planned)
		r.mu.Unlock()
	}

	stateCtx, cancelState := context.WithCancel(ctx)
	defer cancelState()

	// One buffer slot per check: every runner fires at most one interrupt
	// (claimFire), so a send can never block or be lost even when several
	// runners conclude simultaneously.
	interrupt := make(chan interruptMsg, max(1, len(state.Checks)))
	runners := make([]*checkRunner, 0, len(state.Checks))
	var wg sync.WaitGroup
	for i := range state.Checks {
		c := &state.Checks[i]
		cr := newCheckRunner(r, c, interrupt)
		runners = append(runners, cr)
		if c.Interval > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cr.runTimed(stateCtx, clk)
			}()
		}
	}

	allDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(allDone)
	}()

	// The state ends when: its explicit duration elapses; otherwise when
	// every timed check finishes; an exception, burnrate, or concluding
	// sequential check interrupts; an operator issues a gate decision or
	// pause; or the run is aborted.
	var timerC <-chan time.Time
	allDoneC := allDone
	if state.Duration > 0 {
		remaining := state.Duration - elapsed
		if remaining < time.Nanosecond {
			// The recorded elapsed time already covers the whole phase; the
			// timer fires immediately and δ decides on the re-armed checks.
			remaining = time.Nanosecond
		}
		timer := clk.NewTimer(remaining)
		defer timer.Stop()
		timerC = timer.C()
		allDoneC = nil // explicit duration governs even if checks finish early
	}

	var intr *interruptMsg
wait:
	for {
		select {
		case <-timerC:
			break wait
		case <-allDoneC:
			break wait
		case msg := <-interrupt:
			intr = &msg
			break wait
		case <-r.engine.stopping:
			cancelState()
			wg.Wait()
			return stepResult{}, errSuspended
		case <-r.evicted:
			cancelState()
			wg.Wait()
			return stepResult{}, errSuspended
		case msg := <-r.controls:
			switch msg.kind {
			case ctrlResume:
				msg.reply <- ctrlReply{err: ErrNotPaused}
			case ctrlPromote, ctrlRollback:
				target, err := r.manualTarget(state, msg)
				if err != nil {
					msg.reply <- ctrlReply{err: err}
					continue
				}
				cancelState()
				wg.Wait()
				r.publishGateDecision(state, msg.kind, target)
				msg.reply <- ctrlReply{}
				return stepResult{next: target, cause: msg.kind.String()}, nil
			case ctrlPause:
				cancelState()
				wg.Wait()
				gen := r.beginPause(state)
				msg.reply <- ctrlReply{gen: gen}
				return r.pausedWait(ctx, state, gen)
			}
		case <-ctx.Done():
			return stepResult{}, ctx.Err()
		}
	}

	// Stop timed checks and wait for them so counts are settled.
	cancelState()
	wg.Wait()

	if intr != nil && intr.target != "" {
		// Exception/burn-rate semantics: jump immediately to the named
		// fallback state. An interrupt without a target (a sequential
		// check concluding early) instead falls through to the normal
		// end-of-state aggregation, just earlier than the timer.
		return stepResult{next: intr.target, cause: intr.cause}, nil
	}

	// Execute end-of-state checks (no timer: run once now), then
	// aggregate the weighted outcome and fire δ. When a sequential check
	// ended the state early, the other outcome-gating statistical checks'
	// schedules were cancelled mid-flight — give each unconcluded one a
	// final fresh execution so the aggregation sees its verdict as of
	// *now* rather than a stale mid-schedule "continue" that would
	// spuriously fail the phase the gate just passed. Interrupt-only
	// kinds (burnrate) are excluded: their interrupt channel is no longer
	// read here, so re-executing them could announce a rollback that
	// never happens.
	earlyConcluded := intr != nil
	results := make([]int, len(state.Checks))
	r.mu.Lock()
	r.status.Checks = r.status.Checks[:0]
	r.mu.Unlock()
	for i, cr := range runners {
		kind := state.Checks[i].Kind
		if state.Checks[i].Interval <= 0 ||
			(earlyConcluded && kind.Statistical() && !kind.InterruptOnly() && !cr.hasConcluded()) {
			cr.runOnce(ctx)
		}
		mapped, err := cr.mappedOutcome()
		if err != nil {
			return stepResult{}, err
		}
		results[i] = mapped
		r.mu.Lock()
		r.status.Checks = append(r.status.Checks, cr.snapshot())
		r.mu.Unlock()
	}

	outcome, err := state.Outcome(results)
	if err != nil {
		return stepResult{}, err
	}
	next, err := state.NextState(outcome)
	if err != nil {
		return stepResult{}, err
	}
	return stepResult{next: next, outcome: outcome}, nil
}

// pausedWait holds the run in the Paused state until an operator resumes it,
// issues a manual gate decision, or aborts the run. gen is the pause
// generation a conditional resume must match.
func (r *Run) pausedWait(ctx context.Context, state *core.State, gen int) (stepResult, error) {
	for {
		select {
		case <-r.engine.stopping:
			return stepResult{}, errSuspended
		case <-r.evicted:
			return stepResult{}, errSuspended
		case msg := <-r.controls:
			switch msg.kind {
			case ctrlPause:
				msg.reply <- ctrlReply{err: ErrAlreadyPaused}
			case ctrlResume:
				if msg.gen > 0 && msg.gen != gen {
					msg.reply <- ctrlReply{err: fmt.Errorf(
						"%w: run is at pause generation %d, resume asked for %d",
						ErrStaleResume, gen, msg.gen)}
					continue
				}
				r.endPause(state, "resumed")
				msg.reply <- ctrlReply{}
				return stepResult{reenter: true}, nil
			case ctrlPromote, ctrlRollback:
				target, err := r.manualTarget(state, msg)
				if err != nil {
					msg.reply <- ctrlReply{err: err}
					continue
				}
				r.endPause(state, msg.kind.String()+" to "+target)
				r.publishGateDecision(state, msg.kind, target)
				msg.reply <- ctrlReply{}
				return stepResult{next: target, cause: msg.kind.String()}, nil
			}
		case <-ctx.Done():
			return stepResult{}, ctx.Err()
		}
	}
}

// manualTarget resolves the successor of a manual gate decision. An explicit
// target must exist in the automaton; without one, promote selects the
// state's highest-outcome successor and rollback its lowest.
func (r *Run) manualTarget(state *core.State, msg controlMsg) (string, error) {
	if msg.target != "" {
		if _, ok := r.strategy.Automaton.State(msg.target); !ok {
			return "", fmt.Errorf("%w: %q", ErrUnknownState, msg.target)
		}
		return msg.target, nil
	}
	if len(state.Transitions) == 0 {
		return "", fmt.Errorf("%w: state %q has no successors; pass an explicit target",
			ErrUnknownState, state.ID)
	}
	if msg.kind == ctrlPromote {
		return state.Transitions[len(state.Transitions)-1], nil
	}
	return state.Transitions[0], nil
}

func (r *Run) beginPause(state *core.State) int {
	now := r.engine.clk.Now()
	r.mu.Lock()
	r.status.State = RunPaused
	r.status.PauseGen++
	gen := r.status.PauseGen
	r.mu.Unlock()
	r.publish(Event{
		Type: EventPaused, State: state.ID, PauseGen: gen,
		Detail: fmt.Sprintf("pause generation %d", gen), Time: now,
	})
	return gen
}

func (r *Run) endPause(state *core.State, detail string) {
	now := r.engine.clk.Now()
	r.mu.Lock()
	r.status.State = RunRunning
	r.mu.Unlock()
	r.publish(Event{
		Type: EventResumed, State: state.ID,
		Detail: detail, Time: now,
	})
}

func (r *Run) publishGateDecision(state *core.State, kind controlKind, target string) {
	r.publish(Event{
		Type: EventGateDecision, State: state.ID, Cause: kind.String(),
		Detail: kind.String() + " to " + target, Time: r.engine.clk.Now(),
	})
}

// strategyHasFleet reports whether any service declares proxy endpoints —
// only then is there a fleet to reconcile.
func strategyHasFleet(s *core.Strategy) bool {
	for _, svc := range s.Services {
		if len(svc.ProxyEndpoints()) > 0 {
			return true
		}
	}
	return false
}

// configuratorTracksFleet reports whether the configurator will actually
// track convergence for this strategy's services. Target-registry
// configurators know per-service which plugin enacts and whether it
// reconciles (tracks); plain fleet configurators track exactly the
// services with proxy endpoints.
func configuratorTracksFleet(c Configurator, s *core.Strategy) bool {
	if t, ok := c.(interface{ tracks(*core.Strategy) bool }); ok {
		return t.tracks(s)
	}
	return strategyHasFleet(s)
}

// reconcileLoop is the run's anti-entropy loop: every reconcile interval
// it polls the strategy's proxy fleets through the fleet manager (which
// re-pushes the current generation to lagging or restarted replicas),
// refreshes Status.Fleet, and publishes routing_degraded /
// routing_converged events on convergence transitions — through the same
// pipeline as every other event, so they reach the journal, the v2 run
// resource, SSE watchers, and the CLI.
func (r *Run) reconcileLoop(ctx context.Context, fm fleetManager) {
	clk := r.engine.clk
	t := clk.NewTicker(fm.reconcileInterval())
	defer t.Stop()
	type convState struct {
		gen       int64
		converged bool
		// lagging fingerprints the lagging replica set: the same
		// generation staying degraded but with a *different* replica down
		// must re-publish, or the journal keeps naming the wrong replica.
		lagging string
	}
	// Seed the transition detector from the run's current fleet status: a
	// recovered run whose journal ends on routing_degraded must emit
	// routing_converged when the first post-restart pass finds the fleet
	// healed, not stay silently unresolved on every watcher.
	last := make(map[string]convState, 2)
	r.mu.Lock()
	for _, f := range r.status.Fleet {
		last[f.Service] = convState{
			gen: f.Generation, converged: f.Converged,
			lagging: strings.Join(f.Lagging, ","),
		}
	}
	r.mu.Unlock()
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.engine.stopping:
			return
		case <-r.evicted:
			return
		case <-t.C():
		}
		reports := fm.reconcile(ctx, r.strategy.Name)
		if ctx.Err() != nil {
			// The run just finished or was aborted: a pass against
			// cancelled contexts sees every replica unreachable and must
			// not publish a parting routing_degraded.
			return
		}
		if len(reports) == 0 {
			continue // nothing configured yet (or everything superseded)
		}
		r.mu.Lock()
		r.status.Fleet = mergeFleet(r.status.Fleet, reports)
		state := r.status.Current
		r.mu.Unlock()
		now := clk.Now()
		for _, rep := range reports {
			fp := strings.Join(rep.Lagging, ",")
			prev, known := last[rep.Service]
			var publish bool
			switch {
			case !rep.Converged && (!known || prev.converged ||
				prev.gen != rep.Generation || prev.lagging != fp):
				// Newly degraded, a new generation that arrived partial,
				// or the same degradation moving to different replicas.
				publish = true
			case rep.Converged && known && !prev.converged:
				publish = true
			}
			if publish {
				// The pass filtered reports against the desired generation,
				// but a state transition can land between that filter and
				// here; withCurrent re-checks under the manager's lock so a
				// superseded report is dropped instead of published. The
				// skipped `last` update leaves the next pass to evaluate
				// the current generation from scratch.
				if !fm.withCurrent(r.strategy.Name, rep.Service, rep.Generation, func() {
					r.publishFleetEvent(rep, state, "", now)
				}) {
					continue
				}
			}
			last[rep.Service] = convState{gen: rep.Generation, converged: rep.Converged, lagging: fp}
		}
	}
}

// finalFleetCheck runs one last anti-entropy pass as the run ends, while
// the desired configs still exist: a reachable replica that missed the
// final state's push (the quorum was satisfied without it) is repaired
// here, and a fleet that still ends degraded is journaled as such right
// before the terminal record — after this the reconciler is gone, so a
// replica that stayed down keeps its last-acked routing until an operator
// re-pushes or the next strategy reconfigures the service.
func (r *Run) finalFleetCheck(fm fleetManager) {
	if fm == nil {
		return
	}
	// The budget is derived from the configured push timeout (one pass's
	// worst case), so a larger -push-timeout cannot starve the pass into
	// the expired-context guard below.
	ctx, cancel := context.WithTimeout(context.Background(), fm.passBudget())
	defer cancel()
	reports := fm.reconcile(ctx, r.strategy.Name)
	if len(reports) == 0 || ctx.Err() != nil {
		// Same hazard reconcileLoop guards: a pass cut short by its
		// deadline sees the unpolled replicas as unreachable and must not
		// journal a false parting routing_degraded over healthy ones.
		return
	}
	r.mu.Lock()
	wasDegraded := make(map[string]bool, len(r.status.Fleet))
	for _, f := range r.status.Fleet {
		wasDegraded[f.Service] = !f.Converged
	}
	r.status.Fleet = mergeFleet(r.status.Fleet, reports)
	state := r.status.Current
	r.mu.Unlock()
	now := r.engine.clk.Now()
	for _, rep := range reports {
		if rep.Converged {
			// A fleet this pass healed must resolve its earlier degradation
			// on the stream — otherwise the journal's last fleet word stays
			// routing_degraded and a restarted engine reports the finished
			// run as degraded over replicas that were repaired.
			if wasDegraded[rep.Service] {
				fm.withCurrent(r.strategy.Name, rep.Service, rep.Generation, func() {
					r.publishFleetEvent(rep, state, "", now)
				})
			}
			continue
		}
		// Same supersede guard as reconcileLoop: the run loop is done, but
		// a concurrent Remove + re-enact of the strategy name could have
		// replaced the desired state this report describes.
		fm.withCurrent(r.strategy.Name, rep.Service, rep.Generation, func() {
			r.publishFleetEvent(rep, state, " as the run ends", now)
		})
	}
}

// mergeFleet folds a reconcile pass's reports into the standing fleet
// status: reported services are replaced, unreported ones (e.g. a fleet
// whose fan-out is still settling and was skipped this pass) keep their
// previous entry instead of vanishing from status. Result sorted by
// service for stable rendering.
func mergeFleet(old, reports []FleetStatus) []FleetStatus {
	merged := append([]FleetStatus(nil), reports...)
	seen := make(map[string]bool, len(reports))
	for _, rep := range reports {
		seen[rep.Service] = true
	}
	for _, f := range old {
		if !seen[f.Service] {
			merged = append(merged, f)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Service < merged[j].Service })
	return merged
}

// publishFleetEvent emits one fleet convergence event for rep:
// routing_converged when the fleet is whole, routing_degraded (with the
// lagging replicas) otherwise. detailSuffix qualifies the degraded text
// (e.g. " as the run ends").
func (r *Run) publishFleetEvent(rep FleetStatus, state, detailSuffix string, now time.Time) {
	ev := Event{
		State: state, Service: rep.Service,
		Generation: rep.Generation, Replicas: rep.Replicas, Acked: rep.Acked,
		Time: now,
	}
	if rep.Converged {
		ev.Type = EventRoutingConverged
		ev.Detail = fmt.Sprintf("%s: all %d replicas at generation %d",
			rep.Service, rep.Replicas, rep.Generation)
	} else {
		ev.Type = EventRoutingDegraded
		ev.Lagging = append([]string(nil), rep.Lagging...)
		ev.Detail = fmt.Sprintf("%s: %d/%d replicas at generation %d%s (lagging: %s)",
			rep.Service, rep.Acked, rep.Replicas, rep.Generation, detailSuffix,
			strings.Join(rep.Lagging, ", "))
	}
	r.publish(ev)
}

// statePlannedDuration is the specified execution time of a state: its
// explicit duration, or the longest check schedule.
func statePlannedDuration(state *core.State) time.Duration {
	if state.Duration > 0 {
		return state.Duration
	}
	var max time.Duration
	for i := range state.Checks {
		if d := state.Checks[i].TotalDuration(); d > max {
			max = d
		}
	}
	return max
}
