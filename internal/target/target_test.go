package target

import (
	"context"
	"reflect"
	"testing"

	"bifrost/internal/core"
)

// nopTarget is the minimal Target for registry tests.
type nopTarget struct{ kind string }

func (n *nopTarget) Apply(context.Context, *core.Strategy, *core.State, core.RoutingConfig, int64) error {
	return nil
}
func (n *nopTarget) Convergence(context.Context, string) []Convergence { return nil }
func (n *nopTarget) Retire(string)                                     {}

func TestRegistryRegisterAndLookup(t *testing.T) {
	reg := NewRegistry()
	proxy := &nopTarget{kind: "proxy"}
	flag := &nopTarget{kind: "flag"}
	if err := reg.Register(KindProxy, proxy); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(KindFlag, flag); err != nil {
		t.Fatal(err)
	}
	got, ok := reg.Lookup(KindProxy)
	if !ok || got != Target(proxy) {
		t.Errorf("Lookup(proxy) = %v, %v", got, ok)
	}
	if _, ok := reg.Lookup("carrier-pigeon"); ok {
		t.Error("Lookup of unregistered kind succeeded")
	}
	if kinds := reg.Kinds(); !reflect.DeepEqual(kinds, []string{"flag", "proxy"}) {
		t.Errorf("Kinds() = %v", kinds)
	}
	all := reg.All()
	if len(all) != 2 || all[0] != Target(flag) || all[1] != Target(proxy) {
		t.Errorf("All() = %v, want [flag proxy] targets in kind order", all)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", &nopTarget{}); err == nil {
		t.Error("empty kind accepted")
	}
	if err := reg.Register(KindProxy, nil); err == nil {
		t.Error("nil target accepted")
	}
	if err := reg.Register(KindProxy, &nopTarget{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(KindProxy, &nopTarget{}); err == nil {
		t.Error("duplicate kind accepted")
	}
}

func TestKindFor(t *testing.T) {
	if k := KindFor(core.Service{Name: "s"}); k != KindProxy {
		t.Errorf("default kind = %q, want proxy", k)
	}
	if k := KindFor(core.Service{Name: "s", Target: "flag"}); k != KindFlag {
		t.Errorf("explicit kind = %q, want flag", k)
	}
}

func TestKnownKindsSorted(t *testing.T) {
	want := []string{KindCommand, KindFlag, KindProxy}
	if got := KnownKinds(); !reflect.DeepEqual(got, want) {
		t.Errorf("KnownKinds() = %v, want %v", got, want)
	}
}
