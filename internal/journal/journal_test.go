package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func rec(seq int64, run, typ string) Record {
	return Record{
		Seq:  seq,
		Time: time.Unix(1700000000+seq, 0).UTC(),
		Type: typ,
		Run:  run,
		Data: json.RawMessage(fmt.Sprintf(`{"n":%d}`, seq)),
	}
}

func replayAll(t *testing.T, j *Journal) []Record {
	t.Helper()
	var out []Record
	if err := j.Replay(func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{FlushInterval: -1})
	for i := int64(1); i <= 10; i++ {
		if err := j.Append(rec(i, "r", "event")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got := replayAll(t, j)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.Seq != int64(i+1) || r.Run != "r" {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: records survive the restart.
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := replayAll(t, j2); len(got) != 10 {
		t.Fatalf("replayed %d records after reopen, want 10", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 256, FlushInterval: -1})
	defer j.Close()
	for i := int64(1); i <= 50; i++ {
		if err := j.Append(rec(i, "r", "event")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to create several segments, got %v", segs)
	}
	if got := replayAll(t, j); len(got) != 50 {
		t.Fatalf("replayed %d records across segments, want 50", len(got))
	}
}

func TestTornFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{FlushInterval: -1})
	for i := int64(1); i <= 5; i++ {
		if err := j.Append(rec(i, "r", "event")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: chop bytes off the tail of the last
	// segment so its final record is torn.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	last := segs[len(segs)-1]
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{FlushInterval: -1})
	defer j2.Close()
	got := replayAll(t, j2)
	if len(got) != 4 {
		t.Fatalf("replayed %d records from torn segment, want 4", len(got))
	}
	// The journal stays appendable after the tear, in a fresh segment.
	if err := j2.Append(rec(6, "r", "event")); err != nil {
		t.Fatalf("Append after tear: %v", err)
	}
	if got := replayAll(t, j2); len(got) != 5 {
		t.Fatalf("replayed %d records after post-tear append, want 5", len(got))
	}
}

// TestTruncationFuzz chops the journal at every possible byte offset and
// requires Open+Replay to succeed with a prefix of the original records —
// never an error, never a corrupt record.
func TestTruncationFuzz(t *testing.T) {
	seed := t.TempDir()
	j := mustOpen(t, seed, Options{FlushInterval: -1})
	for i := int64(1); i <= 8; i++ {
		if err := j.Append(rec(i, "fuzz", "event")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(seed, segPrefix+"*"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(raw); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jj, err := Open(dir, Options{FlushInterval: -1})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		var n int64
		err = jj.Replay(func(r Record) error {
			n++
			if r.Seq != n {
				return fmt.Errorf("cut %d: record %d has seq %d", cut, n, r.Seq)
			}
			return nil
		})
		jj.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n > 8 {
			t.Fatalf("cut %d: replayed %d records from %d-byte prefix", cut, n, cut)
		}
	}
}

func TestCompactionDropsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 256, FlushInterval: -1})
	defer j.Close()
	for i := int64(1); i <= 40; i++ {
		if err := j.Append(rec(i, "r", "event")); err != nil {
			t.Fatal(err)
		}
	}
	snap := []byte(`{"state":"through-30"}`)
	if err := j.Compact(snap, 30); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	gotSnap, seq := j.Snapshot()
	if seq != 30 || string(gotSnap) != string(snap) {
		t.Fatalf("Snapshot = %q @ %d", gotSnap, seq)
	}
	// Replay yields the boundary record too (callers filter stateful
	// records by seq; boundary-seq markers must not be lost).
	got := replayAll(t, j)
	if len(got) != 11 || got[0].Seq != 30 {
		t.Fatalf("post-compact replay = %d records starting %d, want 11 from 30",
			len(got), got[0].Seq)
	}

	// Reopen: snapshot + tail records both survive.
	j.Close()
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	gotSnap, seq = j2.Snapshot()
	if seq != 30 || string(gotSnap) != string(snap) {
		t.Fatalf("reopened Snapshot = %q @ %d", gotSnap, seq)
	}
	got = replayAll(t, j2)
	if len(got) != 11 || got[0].Seq != 30 || got[10].Seq != 40 {
		t.Fatalf("reopened replay = %+v", got)
	}

	// A second compaction covering everything leaves only the boundary
	// record replayable.
	if err := j2.Compact([]byte(`{"state":"through-40"}`), 40); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, j2); len(got) != 1 || got[0].Seq != 40 {
		t.Fatalf("replay after full compaction = %+v, want just the boundary record", got)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"))
	if len(snaps) != 1 {
		t.Fatalf("old snapshots not pruned: %v", snaps)
	}
}

// TestBoundarySeqMarkersSurviveCompaction: records reusing the newest seq
// (the engine's heartbeats) appended after a full compaction must still be
// replayed after a reopen — they carry state the snapshot lacks.
func TestBoundarySeqMarkersSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{FlushInterval: -1})
	for i := int64(1); i <= 5; i++ {
		if err := j.Append(rec(i, "r", "event")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([]byte(`{}`), 5); err != nil {
		t.Fatal(err)
	}
	// Quiet period: only boundary-seq heartbeats land.
	for k := 0; k < 3; k++ {
		if err := j.Append(rec(5, "", "heartbeat")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	var beats int
	if err := j2.Replay(func(r Record) error {
		if r.Type == "heartbeat" {
			beats++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if beats != 3 {
		t.Fatalf("replayed %d boundary heartbeats, want 3", beats)
	}
}

// TestOpenPrunesEmptySegments: every boot rotates to a fresh segment; the
// record-less leftovers must not pile up across restarts.
func TestOpenPrunesEmptySegments(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		j := mustOpen(t, dir, Options{FlushInterval: -1})
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) != 1 {
		t.Fatalf("%d segments after 5 empty restarts, want 1 (the active one): %v",
			len(segs), segs)
	}
}

func TestShouldCompactThreshold(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactBytes: 300, FlushInterval: -1})
	defer j.Close()
	if j.ShouldCompact() {
		t.Fatal("empty journal wants compaction")
	}
	for i := int64(1); i <= 10; i++ {
		if err := j.Append(rec(i, "r", "event")); err != nil {
			t.Fatal(err)
		}
	}
	if !j.ShouldCompact() {
		t.Fatal("journal past threshold does not want compaction")
	}
	if err := j.Compact([]byte(`{}`), 10); err != nil {
		t.Fatal(err)
	}
	if j.ShouldCompact() {
		t.Fatal("freshly compacted journal still wants compaction")
	}
}

func TestBatchedFlushMakesRecordsDurable(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{FlushInterval: 5 * time.Millisecond})
	if err := j.Append(rec(1, "r", "event")); err != nil {
		t.Fatal(err)
	}
	// Within the batching window the bytes may still sit in the buffer;
	// after it they must be on disk even without Close or Sync.
	deadline := time.Now().Add(2 * time.Second)
	for {
		raw, _ := os.ReadFile(filepath.Join(dir, segName(1)))
		if strings.Contains(string(raw), `"seq":1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record not flushed by the batcher")
		}
		time.Sleep(2 * time.Millisecond)
	}
	j.Close()
}

// TestOpenRejectsSecondWriter: one journal, one owner — a rolling deploy's
// second engine must fail loudly, not interleave records with the first.
func TestOpenRejectsSecondWriter(t *testing.T) {
	dir := t.TempDir()
	j1 := mustOpen(t, dir, Options{FlushInterval: -1})
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	j2.Close()
}

func TestClosedJournalRejectsOperations(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{FlushInterval: -1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(1, "r", "event")); err != ErrClosed {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := j.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
	if err := j.Compact(nil, 1); err != ErrClosed {
		t.Fatalf("Compact after close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}
