package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Query evaluates a query expression against the store at the given time.
//
// The expression language is the PromQL subset the Bifrost DSL needs:
//
//	request_errors{instance="search:80"}        latest value (sum over series)
//	sum(http_requests{service="product"})       explicit aggregations:
//	avg(...), min(...), max(...), count(...)    over matching series
//	rate(http_requests{...}[30s])               per-second counter rate
//	increase(http_requests{...}[30s])           counter delta over window
//	avg_over_time(response_ms{...}[1m])         pooled window aggregations:
//	min_over_time, max_over_time,
//	sum_over_time, count_over_time,
//	stddev_over_time, var_over_time
//	quantile_over_time(0.95, response_ms{...}[1m])
//	scalar arithmetic: a / b, a + b, a - b, a * b, parentheses, numbers
//
// Window functions are answered from the per-series pre-aggregated bucket
// summaries where possible (see summary.go); wide-window quantiles stream
// through a P² estimator instead of sorting a copy of the window.
//
// A query that matches no fresh data returns ErrNoData.
func (s *Store) Query(expr string, at time.Time) (float64, error) {
	p := &queryParser{input: expr}
	node, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return 0, fmt.Errorf("metrics: trailing input at %d in %q", p.pos, expr)
	}
	return node.eval(s, at)
}

// QueryNow evaluates expr at the store clock's current time.
func (s *Store) QueryNow(expr string) (float64, error) {
	return s.Query(expr, s.clk.Now())
}

type queryNode interface {
	eval(s *Store, at time.Time) (float64, error)
}

type numberNode float64

func (n numberNode) eval(*Store, time.Time) (float64, error) { return float64(n), nil }

type binaryNode struct {
	op          byte
	left, right queryNode
}

func (b *binaryNode) eval(s *Store, at time.Time) (float64, error) {
	l, err := b.left.eval(s, at)
	if err != nil {
		return 0, err
	}
	r, err := b.right.eval(s, at)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return math.NaN(), nil
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("metrics: unknown operator %q", string(b.op))
}

type instantNode struct {
	name     string
	selector []LabelMatch
	agg      string // "", sum, avg, min, max, count
}

func (n *instantNode) eval(s *Store, at time.Time) (float64, error) {
	return s.InstantValue(n.name, n.selector, n.agg, at)
}

type rangeNode struct {
	fn       string // rate, increase, *_over_time, quantile_over_time
	q        float64
	name     string
	selector []LabelMatch
	window   time.Duration
}

func (n *rangeNode) eval(s *Store, at time.Time) (float64, error) {
	if !rangeFuncs[n.fn] {
		return 0, errUnknownRangeFn(n.fn)
	}
	return s.WindowAggregate(n.fn, n.q, n.name, n.selector, n.window, at)
}

var errZeroWindow = fmt.Errorf("metrics: zero range window")

func errUnknownRangeFn(fn string) error {
	return fmt.Errorf("metrics: unknown range function %q", fn)
}

// counterIncrease computes the increase of a counter over its samples,
// tolerating counter resets (any decrease starts a new segment, as in
// Prometheus).
func counterIncrease(samples []Sample) float64 {
	if len(samples) < 2 {
		return 0
	}
	var inc float64
	prev := samples[0].V
	for _, sm := range samples[1:] {
		if sm.V >= prev {
			inc += sm.V - prev
		} else {
			inc += sm.V // reset: count from zero
		}
		prev = sm.V
	}
	return inc
}

func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

var rangeFuncs = map[string]bool{
	"rate":               true,
	"increase":           true,
	"avg_over_time":      true,
	"min_over_time":      true,
	"max_over_time":      true,
	"sum_over_time":      true,
	"count_over_time":    true,
	"stddev_over_time":   true,
	"var_over_time":      true,
	"quantile_over_time": true,
}

var aggFuncs = map[string]bool{
	"sum": true, "avg": true, "min": true, "max": true, "count": true,
}

type queryParser struct {
	input string
	pos   int
}

func (p *queryParser) errf(format string, args ...any) error {
	return fmt.Errorf("metrics: query error at %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *queryParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *queryParser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *queryParser) consume(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

// parseExpr handles + and - (lowest precedence).
func (p *queryParser) parseExpr() (queryNode, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		c := p.peek()
		if c != '+' && c != '-' {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: c, left: left, right: right}
	}
}

// parseTerm handles * and /.
func (p *queryParser) parseTerm() (queryNode, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		c := p.peek()
		if c != '*' && c != '/' {
			return left, nil
		}
		p.pos++
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: c, left: left, right: right}
	}
}

func (p *queryParser) parseAtom() (queryNode, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.consume(')'); err != nil {
			return nil, err
		}
		return inner, nil
	case c == '-' || c == '.' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	case isIdentStart(c):
		return p.parseIdentExpr()
	default:
		return nil, p.errf("unexpected character %q", string(c))
	}
}

func (p *queryParser) parseNumber() (queryNode, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
			((c == '+' || c == '-') && p.pos > start && (p.input[p.pos-1] == 'e' || p.input[p.pos-1] == 'E')) {
			p.pos++
			continue
		}
		break
	}
	f, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return nil, p.errf("bad number %q", p.input[start:p.pos])
	}
	return numberNode(f), nil
}

func (p *queryParser) parseIdentExpr() (queryNode, error) {
	name := p.parseIdent()
	p.skipSpace()
	if p.peek() == '(' && (rangeFuncs[name] || aggFuncs[name]) {
		return p.parseCall(name)
	}
	return p.parseSelectorTail(name, "")
}

func (p *queryParser) parseCall(fn string) (queryNode, error) {
	if err := p.consume('('); err != nil {
		return nil, err
	}
	var q float64
	if fn == "quantile_over_time" {
		p.skipSpace()
		numNode, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		q = float64(numNode.(numberNode))
		if err := p.consume(','); err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if !isIdentStart(p.peek()) {
		return nil, p.errf("expected metric name in %s()", fn)
	}
	name := p.parseIdent()
	node, err := p.parseSelectorTail(name, fn)
	if err != nil {
		return nil, err
	}
	if rn, ok := node.(*rangeNode); ok {
		rn.q = q
		if !rangeFuncs[fn] {
			return nil, p.errf("%s() does not take a range selector", fn)
		}
	} else if in, ok := node.(*instantNode); ok {
		if rangeFuncs[fn] {
			return nil, p.errf("%s() requires a range selector like m[30s]", fn)
		}
		in.agg = fn
	}
	if err := p.consume(')'); err != nil {
		return nil, err
	}
	return node, nil
}

// parseSelectorTail parses the optional {selector} and [window] after a
// metric name; fn is the surrounding function, if any.
func (p *queryParser) parseSelectorTail(name, fn string) (queryNode, error) {
	var selector []LabelMatch
	p.skipSpace()
	if p.peek() == '{' {
		var err error
		selector, err = p.parseSelector()
		if err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if p.peek() == '[' {
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] != ']' {
			p.pos++
		}
		if p.pos >= len(p.input) {
			return nil, p.errf("unterminated range window")
		}
		d, err := time.ParseDuration(p.input[start:p.pos])
		if err != nil {
			return nil, p.errf("bad window %q: %v", p.input[start:p.pos], err)
		}
		p.pos++ // ']'
		return &rangeNode{fn: fn, name: name, selector: selector, window: d}, nil
	}
	return &instantNode{name: name, selector: selector}, nil
}

func (p *queryParser) parseSelector() ([]LabelMatch, error) {
	if err := p.consume('{'); err != nil {
		return nil, err
	}
	var out []LabelMatch
	p.skipSpace()
	if p.peek() == '}' {
		p.pos++
		return out, nil
	}
	for {
		p.skipSpace()
		if !isIdentStart(p.peek()) {
			return nil, p.errf("expected label name")
		}
		label := p.parseIdent()
		p.skipSpace()
		var op MatchOp
		switch {
		case strings.HasPrefix(p.input[p.pos:], "!="):
			op = MatchNotEqual
			p.pos += 2
		case strings.HasPrefix(p.input[p.pos:], "=~"):
			op = MatchPrefix
			p.pos += 2
		case p.peek() == '=':
			op = MatchEqual
			p.pos++
		default:
			return nil, p.errf("expected =, != or =~ after label %q", label)
		}
		p.skipSpace()
		if p.peek() != '"' {
			return nil, p.errf("expected quoted label value")
		}
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] != '"' {
			p.pos++
		}
		if p.pos >= len(p.input) {
			return nil, p.errf("unterminated label value")
		}
		out = append(out, LabelMatch{Name: label, Op: op, Value: p.input[start:p.pos]})
		p.pos++ // closing quote
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
			continue
		case '}':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected ',' or '}' in selector")
		}
	}
}

func (p *queryParser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.input) && isIdentPart(p.input[p.pos]) {
		p.pos++
	}
	return p.input[start:p.pos]
}

// ParseRangeSelector parses a bare range-vector selector such as
// `response_ms{version="candidate"}[30s]` into its metric name, label
// matches, and window. The moments API and the DSL's compare checks use
// it to address one population window.
func ParseRangeSelector(expr string) (name string, selector []LabelMatch, window time.Duration, err error) {
	p := &queryParser{input: expr}
	p.skipSpace()
	if !isIdentStart(p.peek()) {
		return "", nil, 0, p.errf("expected metric name in range selector %q", expr)
	}
	node, err := p.parseSelectorTail(p.parseIdent(), "")
	if err != nil {
		return "", nil, 0, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return "", nil, 0, p.errf("trailing input in range selector %q", expr)
	}
	rn, ok := node.(*rangeNode)
	if !ok {
		return "", nil, 0, fmt.Errorf("metrics: %q has no range window (expected m{...}[30s])", expr)
	}
	return rn.name, rn.selector, rn.window, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == ':'
}
