package bifrost_test

import (
	"fmt"
	"log"
	"time"

	"bifrost"
)

// ExampleCompileStrategy compiles a strategy written in the Bifrost DSL and
// inspects the automaton the compiler produced.
func ExampleCompileStrategy() {
	strategy, err := bifrost.CompileStrategy(`
name: docs-demo
deployment:
  services:
    - service: api
      versions:
        - name: v1
          endpoint: 10.0.0.1:80
        - name: v2
          endpoint: 10.0.0.2:80
strategy:
  phases:
    - phase: canary
      duration: 1h
      routes:
        - route:
            service: api
            weights: {v1: 95, v2: 5}
      on:
        success: full
        failure: revert
    - phase: full
      routes:
        - route: {service: api, weights: {v2: 100}}
    - phase: revert
      routes:
        - route: {service: api, weights: {v1: 100}}
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("name:", strategy.Name)
	fmt.Println("states:", len(strategy.Automaton.States))
	fmt.Println("start:", strategy.Automaton.Start)
	fmt.Println("finals:", strategy.Automaton.Finals)
	// Output:
	// name: docs-demo
	// states: 3
	// start: canary
	// finals: [full revert]
}

// ExampleAnalyze reasons about a strategy before enacting it: duration
// bounds and the expected rollout time under uniform outcomes.
func ExampleAnalyze() {
	strategy, err := bifrost.CompileStrategy(`
name: analysis-demo
deployment:
  services:
    - service: api
      versions:
        - name: v1
          endpoint: h:1
        - name: v2
          endpoint: h:2
strategy:
  phases:
    - phase: canary
      duration: 2h
      routes:
        - route: {service: api, weights: {v1: 95, v2: 5}}
      on: {success: rollout}
    - phase: rollout
      gradual:
        service: api
        stable: v1
        candidate: v2
        from: 25
        to: 100
        step: 25
        interval: 1h
      on: {success: done}
    - phase: done
      routes:
        - route: {service: api, weights: {v2: 100}}
`)
	if err != nil {
		log.Fatal(err)
	}
	report, err := bifrost.Analyze(strategy)
	if err != nil {
		log.Fatal(err)
	}
	// Without failure branches the single path takes 2h + 4×1h.
	fmt.Println("fastest:", report.MinDuration)
	fmt.Println("slowest:", report.MaxDuration)
	expected, err := bifrost.ExpectedDuration(strategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("expected ≤ slowest:", expected <= report.MaxDuration)
	// Output:
	// fastest: 6h0m0s
	// slowest: 6h0m0s
	// expected ≤ slowest: true
}

// ExampleValidate shows the aggregated error report for a broken strategy.
func ExampleValidate() {
	broken := &bifrost.Strategy{Name: "broken"}
	err := bifrost.Validate(broken)
	fmt.Println(err != nil)
	// Output:
	// true
}

var _ = time.Second // keep time imported for doc snippets above
