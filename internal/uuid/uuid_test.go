package uuid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewV4Format(t *testing.T) {
	u, err := NewV4()
	if err != nil {
		t.Fatalf("NewV4: %v", err)
	}
	s := u.String()
	if len(s) != 36 {
		t.Fatalf("length = %d, want 36 (%q)", len(s), s)
	}
	if u.Version() != 4 {
		t.Errorf("version = %d, want 4", u.Version())
	}
	if v := u[8] >> 6; v != 0b10 {
		t.Errorf("variant bits = %02b, want 10", v)
	}
	for _, pos := range []int{8, 13, 18, 23} {
		if s[pos] != '-' {
			t.Errorf("s[%d] = %c, want '-'", pos, s[pos])
		}
	}
	if s != strings.ToLower(s) {
		t.Errorf("String not lowercase: %q", s)
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		u := UUID(raw)
		got, err := Parse(u.String())
		return err == nil && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-a-uuid",
		"00000000-0000-0000-0000-00000000000",   // too short
		"00000000-0000-0000-0000-0000000000000", // too long
		"00000000x0000-0000-0000-000000000000",  // bad dash
		"0000000g-0000-0000-0000-000000000000",  // bad hex
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
		if Valid(c) {
			t.Errorf("Valid(%q) = true, want false", c)
		}
	}
}

func TestParseAcceptsUppercase(t *testing.T) {
	u := MustNewV4()
	got, err := Parse(strings.ToUpper(u.String()))
	if err != nil {
		t.Fatalf("Parse(upper): %v", err)
	}
	if got != u {
		t.Errorf("got %v, want %v", got, u)
	}
}

func TestUniqueness(t *testing.T) {
	const n = 4096
	seen := make(map[UUID]bool, n)
	for i := 0; i < n; i++ {
		u := MustNewV4()
		if seen[u] {
			t.Fatalf("duplicate UUID after %d draws: %v", i, u)
		}
		seen[u] = true
	}
}

func BenchmarkNewV4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewV4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkString(b *testing.B) {
	u := MustNewV4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.String()
	}
}
