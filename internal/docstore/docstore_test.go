package docstore

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"bifrost/internal/httpx"
)

func TestInsertGetRoundTrip(t *testing.T) {
	s := New()
	id, err := s.Insert("products", Document{"name": "TV", "price": 499.0})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	doc, err := s.Get("products", id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if doc["name"] != "TV" || doc["price"] != 499.0 || doc["_id"] != id {
		t.Errorf("doc = %v", doc)
	}
}

func TestInsertExplicitAndDuplicateID(t *testing.T) {
	s := New()
	if _, err := s.Insert("c", Document{"_id": "x", "v": 1}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Insert("c", Document{"_id": "x", "v": 2})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestInsertDoesNotAliasCallerDoc(t *testing.T) {
	s := New()
	doc := Document{"name": "radio"}
	id, _ := s.Insert("c", doc)
	doc["name"] = "mutated"
	got, _ := s.Get("c", id)
	if got["name"] != "radio" {
		t.Error("store aliased caller document")
	}
	// Get must also return a copy.
	got["name"] = "mutated-again"
	got2, _ := s.Get("c", id)
	if got2["name"] != "radio" {
		t.Error("Get returned aliased document")
	}
}

func TestFindFilters(t *testing.T) {
	s := New()
	for i, name := range []string{"TV", "Laptop", "Phone", "Tablet"} {
		_, err := s.Insert("products", Document{
			"name": name, "price": float64(100 * (i + 1)), "category": "electronics",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	_, _ = s.Insert("products", Document{"name": "Sofa", "price": 999.0, "category": "furniture"})

	all, err := s.Find("products", nil, 0)
	if err != nil || len(all) != 5 {
		t.Fatalf("all = %d, %v", len(all), err)
	}
	cheap, err := s.Find("products", &Filter{Ops: []FilterOp{{Field: "price", Op: "<=", Value: 200}}}, 0)
	if err != nil || len(cheap) != 2 {
		t.Fatalf("cheap = %d, %v", len(cheap), err)
	}
	elec, err := s.Find("products", &Filter{Equals: map[string]any{"category": "electronics"}}, 0)
	if err != nil || len(elec) != 4 {
		t.Fatalf("electronics = %d, %v", len(elec), err)
	}
	search, err := s.Find("products", &Filter{Ops: []FilterOp{{Field: "name", Op: "contains", Value: "ta"}}}, 0)
	if err != nil || len(search) != 1 || search[0]["name"] != "Tablet" {
		t.Fatalf("contains = %v, %v", search, err)
	}
	prefix, err := s.Find("products", &Filter{Ops: []FilterOp{{Field: "name", Op: "prefix", Value: "t"}}}, 0)
	if err != nil || len(prefix) != 2 { // TV, Tablet
		t.Fatalf("prefix = %v, %v", prefix, err)
	}
	ne, err := s.Find("products", &Filter{Ops: []FilterOp{{Field: "category", Op: "!=", Value: "furniture"}}}, 0)
	if err != nil || len(ne) != 4 {
		t.Fatalf("!= = %d, %v", len(ne), err)
	}
	limited, err := s.Find("products", nil, 2)
	if err != nil || len(limited) != 2 {
		t.Fatalf("limit = %d, %v", len(limited), err)
	}
	if _, err := s.Find("products", &Filter{Ops: []FilterOp{{Field: "x", Op: "~~", Value: 1}}}, 0); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestFindOneAndCount(t *testing.T) {
	s := New()
	_, _ = s.Insert("users", Document{"email": "a@example.com"})
	_, _ = s.Insert("users", Document{"email": "b@example.com"})
	doc, err := s.FindOne("users", &Filter{Equals: map[string]any{"email": "b@example.com"}})
	if err != nil || doc["email"] != "b@example.com" {
		t.Fatalf("FindOne = %v, %v", doc, err)
	}
	if _, err := s.FindOne("users", &Filter{Equals: map[string]any{"email": "z@x"}}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing FindOne err = %v", err)
	}
	n, err := s.Count("users", nil)
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	s := New()
	id, _ := s.Insert("c", Document{"v": 1})
	if err := s.Update("c", id, Document{"v": 2, "_id": "ignored"}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	doc, _ := s.Get("c", id)
	if doc["v"] != 2 || doc["_id"] != id {
		t.Errorf("doc = %v", doc)
	}
	if err := s.Delete("c", id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("c", id); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v", err)
	}
	if err := s.Delete("c", id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	if err := s.Update("c", "ghost", Document{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update ghost = %v", err)
	}
}

func TestUniqueIndex(t *testing.T) {
	s := New()
	if err := s.EnsureUniqueIndex("users", "email"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("users", Document{"email": "a@example.com"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("users", Document{"email": "a@example.com"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate email accepted: %v", err)
	}
	// Deleting frees the key.
	doc, _ := s.FindOne("users", nil)
	if err := s.Delete("users", doc["_id"].(string)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("users", Document{"email": "a@example.com"}); err != nil {
		t.Fatalf("reinsert after delete: %v", err)
	}
	// Index creation over existing duplicates fails.
	s2 := New()
	_, _ = s2.Insert("u", Document{"email": "x"})
	_, _ = s2.Insert("u", Document{"email": "x"})
	if err := s2.EnsureUniqueIndex("u", "email"); err == nil {
		t.Error("index created over duplicates")
	}
}

// Property: every inserted document is findable by its id and by equality
// on any of its string fields.
func TestInsertFindProperty(t *testing.T) {
	f := func(names [8]string) bool {
		s := New()
		ids := make([]string, 0, len(names))
		for i, n := range names {
			id, err := s.Insert("c", Document{"name": n, "rank": float64(i)})
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		for i, id := range ids {
			doc, err := s.Get("c", id)
			if err != nil || doc["name"] != names[i] {
				return false
			}
			found, err := s.Find("c", &Filter{Equals: map[string]any{"rank": float64(i)}}, 0)
			if err != nil || len(found) != 1 || found[0]["_id"] != id {
				return false
			}
		}
		n, err := s.Count("c", nil)
		return err == nil && n == len(names)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHTTPFacade(t *testing.T) {
	s := New()
	ts := httptest.NewServer(NewServer(s).Handler())
	defer ts.Close()
	ctx := context.Background()

	var ins map[string]string
	err := httpx.PostJSON(ctx, ts.URL+"/db/products", Document{"name": "TV", "price": 499}, &ins)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	id := ins["_id"]
	if id == "" {
		t.Fatal("no id returned")
	}

	var doc Document
	if err := httpx.GetJSON(ctx, ts.URL+"/db/products/"+id, &doc); err != nil {
		t.Fatalf("get: %v", err)
	}
	if doc["name"] != "TV" {
		t.Errorf("doc = %v", doc)
	}

	var found []Document
	err = httpx.PostJSON(ctx, ts.URL+"/db/products/find", FindRequest{
		Ops: []OpRequest{{Field: "price", Op: ">=", Value: 100}},
	}, &found)
	if err != nil || len(found) != 1 {
		t.Fatalf("find = %v, %v", found, err)
	}

	// Update via PATCH.
	req := httptest.NewRequest("PATCH", "/db/products/"+id, nil)
	_ = req
	if err := patchJSON(ctx, ts.URL+"/db/products/"+id, Document{"price": 399}); err != nil {
		t.Fatalf("patch: %v", err)
	}
	if err := httpx.GetJSON(ctx, ts.URL+"/db/products/"+id, &doc); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(doc["price"]) != "399" {
		t.Errorf("price = %v", doc["price"])
	}

	if err := httpx.GetJSON(ctx, ts.URL+"/db/products/ghost", &doc); err == nil {
		t.Error("get ghost succeeded")
	}
	var health map[string]string
	if err := httpx.GetJSON(ctx, ts.URL+"/-/healthy", &health); err != nil {
		t.Errorf("health: %v", err)
	}
}

func patchJSON(ctx context.Context, url string, body any) error {
	// httpx has no PATCH helper; reuse its machinery via a manual request.
	return httpx.DoJSON(ctx, "PATCH", url, body, nil)
}
