// Engine event-pipeline macro-bench (BENCH_9.json): the three ROADMAP
// trajectory metrics measured against the real stack on the committing
// machine — engine publish→mirror→journal→SSE throughput with a fan-out of
// live HTTP subscribers, proxy RPS and coordinated-omission-corrected p99
// under live reconfiguration, and raw metrics-store ingest.

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bifrost/internal/engine"
	"bifrost/internal/httpx"
	"bifrost/internal/journal"
	"bifrost/internal/loadgen"
	"bifrost/internal/metrics"
	"bifrost/internal/proxy"
)

// Bench9Config sizes the event-pipeline macro-benchmarks. The zero value is
// filled with defaults for a committed baseline run; CI smoke passes tiny
// counts through benchrunner -bench-scale.
type Bench9Config struct {
	// Events is the number of events pushed through the full publish
	// pipeline (journaled engine, fanned out over SSE).
	Events int `json:"events"`
	// Subscribers is the number of concurrent HTTP SSE subscribers the
	// pipeline fans out to (the ROADMAP metric fixes 64).
	Subscribers int `json:"subscribers"`

	// ProxyRPS/ProxyDuration drive the load test against a live proxy;
	// ReconfigEvery is the cadence of SetConfig weight flips during it.
	ProxyRPS      float64       `json:"proxyRps"`
	ProxyDuration time.Duration `json:"proxyDurationNs"`
	ReconfigEvery time.Duration `json:"reconfigEveryNs"`

	// IngestSamples Store.Append calls are timed across IngestSeries
	// series for the metrics ingest figure.
	IngestSamples int `json:"ingestSamples"`
	IngestSeries  int `json:"ingestSeries"`
}

func (c Bench9Config) withDefaults() Bench9Config {
	if c.Events <= 0 {
		c.Events = 50_000
	}
	if c.Subscribers <= 0 {
		c.Subscribers = 64
	}
	if c.ProxyRPS <= 0 {
		c.ProxyRPS = 300
	}
	if c.ProxyDuration <= 0 {
		c.ProxyDuration = 8 * time.Second
	}
	if c.ReconfigEvery <= 0 {
		c.ReconfigEvery = 100 * time.Millisecond
	}
	if c.IngestSamples <= 0 {
		c.IngestSamples = 1_000_000
	}
	if c.IngestSeries <= 0 {
		c.IngestSeries = 16
	}
	return c
}

// Bench9Result is the committed BENCH_9.json shape.
type Bench9Result struct {
	Config Bench9Config `json:"config"`

	// Event pipeline: events/s through publish→mirror→journal→SSE, timed
	// from the first publish until every subscriber has observed the
	// terminal event. PublishEventsPerSec isolates the publisher side (the
	// pubMu critical path plus journaling); DeliveredFrames counts the SSE
	// frames actually written across all subscribers (the bus drops on
	// slow channels and backfills from history, so this is the real
	// fan-out volume, not Events × Subscribers by definition).
	PipelineEventsPerSec  float64 `json:"pipelineEventsPerSec"`
	PublishEventsPerSec   float64 `json:"publishEventsPerSec"`
	DeliveredFrames       int64   `json:"deliveredFrames"`
	DeliveredFramesPerSec float64 `json:"deliveredFramesPerSec"`

	// Proxy under live reconfiguration: achieved request rate and latency
	// tails while SetConfig flips traffic weights every ReconfigEvery.
	// ProxyP99Ms is coordinated-omission-corrected (latency from each
	// request's intended start); ProxyServiceP99Ms is the raw service time.
	ProxyRPS          float64 `json:"proxyRps"`
	ProxyP99Ms        float64 `json:"proxyP99Ms"`
	ProxyServiceP99Ms float64 `json:"proxyServiceP99Ms"`
	ProxyErrors       int     `json:"proxyErrors"`
	Reconfigs         int     `json:"reconfigs"`

	// Ingest: raw sample appends per second into the metrics store.
	IngestSamplesPerSec float64 `json:"ingestSamplesPerSec"`
}

// RunBench9 measures the three trajectory metrics in sequence.
func RunBench9(cfg Bench9Config) (*Bench9Result, error) {
	cfg = cfg.withDefaults()
	res := &Bench9Result{Config: cfg}
	if err := benchPipeline(cfg, res); err != nil {
		return nil, fmt.Errorf("bench9 pipeline: %w", err)
	}
	if err := benchProxyReconfig(cfg, res); err != nil {
		return nil, fmt.Errorf("bench9 proxy: %w", err)
	}
	benchIngest(cfg, res)
	return res, nil
}

// benchPipeline drives the engine's full publish pipeline — journaled
// engine, REST API server, Subscribers live SSE connections — and times
// Events check events from first publish until every subscriber has seen
// the terminal completed event.
func benchPipeline(cfg Bench9Config, res *Bench9Result) error {
	dir, err := os.MkdirTemp("", "bench9-journal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	js, err := engine.OpenJournal(dir, journal.Options{})
	if err != nil {
		return err
	}
	eng := engine.New(engine.WithJournalSet(js))
	defer eng.Shutdown()

	srv, err := httpx.NewServer("127.0.0.1:0", engine.NewAPI(eng, nil).Handler())
	if err != nil {
		return err
	}
	srv.Start()
	defer shutdownServer(srv)

	// Dedicated transport: Subscribers long-lived streams at once.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: cfg.Subscribers + 4,
	}}
	defer client.CloseIdleConnections()
	streamURL := srv.URL() + "/api/v2/events/stream?strategy=bench9"

	var frames atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Subscribers)
	ready := make(chan struct{}, cfg.Subscribers)
	for i := 0; i < cfg.Subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(streamURL)
			if err != nil {
				errs <- err
				ready <- struct{}{}
				return
			}
			defer resp.Body.Close()
			// Headers received means ServeEventStream has subscribed this
			// connection to the bus: events published from here on reach it.
			ready <- struct{}{}
			err = httpx.ReadSSE(resp.Body, func(se httpx.SSEEvent) error {
				frames.Add(1)
				if se.Name == string(engine.EventCompleted) {
					return errStreamDone
				}
				return nil
			})
			if err != nil && err != errStreamDone {
				errs <- err
			}
		}()
	}
	for i := 0; i < cfg.Subscribers; i++ {
		<-ready
	}
	select {
	case err := <-errs:
		return err
	default:
	}

	now := time.Now()
	ev := engine.Event{
		Strategy: "bench9", Type: engine.EventCheckExecuted,
		State: "canary", Check: "latency", Outcome: 1, Time: now,
	}
	start := time.Now()
	for i := 0; i < cfg.Events; i++ {
		eng.PublishBench(ev)
	}
	publishElapsed := time.Since(start)
	eng.PublishBench(engine.Event{
		Strategy: "bench9", Type: engine.EventCompleted, Time: time.Now(),
	})

	// The bus drops on full subscriber channels, and a dropped terminal
	// event is only recovered when a later event exposes the gap — so keep
	// ticking until every subscriber has caught up and seen it.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	deadline := time.After(5 * time.Minute)
	for {
		select {
		case <-done:
			elapsed := time.Since(start)
			select {
			case err := <-errs:
				return err
			default:
			}
			res.PipelineEventsPerSec = float64(cfg.Events) / elapsed.Seconds()
			res.PublishEventsPerSec = float64(cfg.Events) / publishElapsed.Seconds()
			res.DeliveredFrames = frames.Load()
			res.DeliveredFramesPerSec = float64(frames.Load()) / elapsed.Seconds()
			return nil
		case <-tick.C:
			eng.PublishBench(engine.Event{
				Strategy: "bench9", Type: engine.EventCheckExecuted,
				State: "canary", Check: "drain", Time: time.Now(),
			})
		case <-deadline:
			return fmt.Errorf("subscribers did not observe the terminal event within 5m")
		}
	}
}

// errStreamDone is the subscriber's sentinel for a cleanly finished stream.
var errStreamDone = fmt.Errorf("bench9: stream done")

// benchProxyReconfig load-tests a live proxy while a goroutine flips the
// stable/canary traffic split every ReconfigEvery — the "p99 under live
// reconfiguration" trajectory metric.
func benchProxyReconfig(cfg Bench9Config, res *Bench9Result) error {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /auth/login", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"token": "tok"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	})
	stable, err := httpx.NewServer("127.0.0.1:0", mux)
	if err != nil {
		return err
	}
	stable.Start()
	defer shutdownServer(stable)
	canary, err := httpx.NewServer("127.0.0.1:0", mux)
	if err != nil {
		return err
	}
	canary.Start()
	defer shutdownServer(canary)

	configAt := func(gen int64, canaryWeight float64) proxy.Config {
		return proxy.Config{
			Service: "shop", Generation: gen,
			Backends: []proxy.Backend{
				{Version: "stable", URL: stable.URL(), Weight: 1 - canaryWeight},
				{Version: "canary", URL: canary.URL(), Weight: canaryWeight},
			},
		}
	}
	p, err := proxy.New("shop", configAt(1, 0.1), proxy.WithSeed(9))
	if err != nil {
		return err
	}
	defer p.Close()
	proxySrv, err := httpx.NewServer("127.0.0.1:0", p)
	if err != nil {
		return err
	}
	proxySrv.Start()
	defer shutdownServer(proxySrv)

	// Reconfigure continuously while the load test runs: alternate the
	// canary share between 10% and 50%, each flip a new generation.
	stop := make(chan struct{})
	var reconfigs int
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		t := time.NewTicker(cfg.ReconfigEvery)
		defer t.Stop()
		gen := int64(2)
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w := 0.1
				if gen%2 == 0 {
					w = 0.5
				}
				if p.SetConfig(configAt(gen, w)) == nil {
					reconfigs++
				}
				gen++
			}
		}
	}()

	lr, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     proxySrv.URL(),
		RPS:         cfg.ProxyRPS,
		Duration:    cfg.ProxyDuration,
		Users:       8,
		Seed:        9,
		MaxInFlight: 128,
	})
	close(stop)
	rwg.Wait()
	if err != nil {
		return err
	}
	st := loadgen.StatsOf(lr.Samples)
	res.ProxyRPS = float64(len(lr.Samples)) / cfg.ProxyDuration.Seconds()
	res.ProxyP99Ms = float64(lr.CorrectedHist.Quantile(0.99).Microseconds()) / 1000
	res.ProxyServiceP99Ms = st.P99
	res.ProxyErrors = st.Errors
	res.Reconfigs = reconfigs
	return nil
}

// benchIngest times raw Store.Append throughput, the same figure the
// federation bench tracks (kept here so BENCH_9.json carries all three
// trajectory metrics in one file).
func benchIngest(cfg Bench9Config, res *Bench9Result) {
	rng := rand.New(rand.NewSource(9))
	store := metrics.NewStore()
	labels := make([]metrics.Labels, cfg.IngestSeries)
	for i := range labels {
		labels[i] = metrics.Labels{"replica": fmt.Sprintf("r%d", i)}
	}
	base := time.Now().Add(-time.Hour)
	start := time.Now()
	for i := 0; i < cfg.IngestSamples; i++ {
		at := base.Add(time.Duration(i) * time.Microsecond)
		store.Append("bench_ingest_ms", labels[i%len(labels)], rng.Float64()*100, at)
	}
	res.IngestSamplesPerSec = float64(cfg.IngestSamples) / time.Since(start).Seconds()
}

// WriteJSON emits the result as indented JSON (the BENCH_9.json format).
func (r *Bench9Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
