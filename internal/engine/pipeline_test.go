package engine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bifrost/internal/journal"
)

// readPartitionRecords parses every record in a run's partition directly
// from its segment files — what a crash at this instant would leave behind.
func readPartitionRecords(t *testing.T, root, run string) []journal.Record {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(root, "runs", run, "seg-*"))
	if err != nil {
		t.Fatal(err)
	}
	var out []journal.Record
	for _, seg := range segs {
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if line == "" {
				continue
			}
			var rec journal.Record
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("corrupt record %q: %v", line, err)
			}
			out = append(out, rec)
		}
	}
	return out
}

// With buffered flushing the async journal writer owns the appends. A
// terminal publish must still be a durability point: when publish returns,
// every record of that run enqueued before it — and the terminal record
// itself — is on disk in publish order, even though nothing was closed and
// the flush interval is far in the future.
func TestAsyncWriterTerminalDurabilityAndOrder(t *testing.T) {
	dir := t.TempDir()
	js, err := OpenJournal(dir, journal.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithJournalSet(js))
	defer e.Shutdown()
	if e.jw == nil {
		t.Fatal("buffered journal must use the async writer")
	}

	now := time.Now()
	for i := 0; i < 100; i++ {
		e.publish(nil, Event{Strategy: "a", Type: EventCheckExecuted, Time: now})
		e.publish(nil, Event{Strategy: "b", Type: EventCheckExecuted, Time: now})
	}
	e.publish(nil, Event{Strategy: "a", Type: EventCompleted, Time: now})

	recs := readPartitionRecords(t, dir, "a")
	if len(recs) != 101 {
		t.Fatalf("run a has %d records on disk after terminal publish, want 101", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("records out of publish order: seq %d after %d", recs[i].Seq, recs[i-1].Seq)
		}
	}
	last := recs[len(recs)-1]
	var ev Event
	if err := json.Unmarshal(last.Data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventCompleted {
		t.Fatalf("last durable record is %q, want completed", ev.Type)
	}
	if ev.Seq != last.Seq {
		t.Fatalf("encode-once payload seq %d disagrees with record seq %d", ev.Seq, last.Seq)
	}
}

// Suspend must drain the writer before closing the set: every queued record
// survives into the reopened journal, and replay observes the same publish
// order (heartbeat-free check: non-terminal run, long flush interval, no
// explicit sync anywhere).
func TestAsyncWriterDrainsOnSuspend(t *testing.T) {
	dir := t.TempDir()
	js, err := OpenJournal(dir, journal.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithJournalSet(js))
	now := time.Now()
	for i := 0; i < 50; i++ {
		e.publish(nil, Event{Strategy: "r", Type: EventCheckExecuted, Time: now})
	}
	e.Suspend()

	recs := readPartitionRecords(t, dir, "r")
	// The final close-time snapshot compacts the partition; whatever
	// segments remain must contain no gaps relative to what they retain,
	// and the set must reopen cleanly with the records replayable.
	js2, err := OpenJournal(dir, journal.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer js2.Close()
	j, err := js2.Partition("r", 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := j.Replay(func(rec journal.Record) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 && len(recs) == 0 {
		t.Fatal("suspend lost every queued record")
	}
}

// Remove's barrier: records still queued in the async writer must not
// re-create a removed run's partition directory.
func TestRemoveAfterAsyncAppendsLeavesNoPartition(t *testing.T) {
	dir := t.TempDir()
	js, err := OpenJournal(dir, journal.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithJournalSet(js))
	defer e.Shutdown()
	now := time.Now()
	for i := 0; i < 20; i++ {
		e.publish(nil, Event{Strategy: "gone", Type: EventCheckExecuted, Time: now})
	}
	e.publish(nil, Event{Strategy: "gone", Type: EventCompleted, Time: now})
	if err := e.Remove("gone"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runs", "gone")); !os.IsNotExist(err) {
		t.Fatalf("partition directory survived removal (stat err=%v)", err)
	}
}
