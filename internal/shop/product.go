package shop

import (
	"net/http"
	"net/url"
	"time"

	"bifrost/internal/docstore"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
)

// ProductConfig wires one product-service version.
type ProductConfig struct {
	// Profile shapes the variant's behaviour and labels its metrics.
	Profile VariantProfile
	// DBURL is the document store HTTP endpoint.
	DBURL string
	// AuthURL is the auth service (or its proxy).
	AuthURL string
	// SearchURL is the search service (or its Bifrost proxy, so search
	// traffic participates in live testing).
	SearchURL string
	// Registry collects the service's metrics.
	Registry *metrics.Registry
	// BaseConversion is the probability a Buy request records a sale
	// (default 0.6); variants scale it by ConversionBoost.
	BaseConversion float64
}

// Product implements the product service: catalog browsing, buying, and
// delegated search — the four request types of the JMeter test suite (Buy,
// Details, Products, Search).
type Product struct {
	cfg  ProductConfig
	gate *variantGate
}

// NewProduct creates a product-service version.
func NewProduct(cfg ProductConfig) *Product {
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.BaseConversion == 0 {
		cfg.BaseConversion = 0.6
	}
	p := &Product{cfg: cfg, gate: newVariantGate(cfg.Profile)}
	// Pre-register the series live-testing checks query, so a version that
	// has not yet failed (or sold) exposes an explicit zero instead of no
	// data at all.
	labels := p.labels()
	cfg.Registry.Counter("shop_request_errors_total", labels)
	cfg.Registry.Counter("shop_sales_total", labels)
	cfg.Registry.Counter("shop_revenue_total", labels)
	return p
}

// Registry exposes the service's metrics.
func (p *Product) Registry() *metrics.Registry { return p.cfg.Registry }

// Handler returns the HTTP interface.
func (p *Product) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /products/buy", p.instrumented("buy", p.handleBuy))
	mux.HandleFunc("GET /products/search", p.instrumented("search", p.handleSearch))
	mux.HandleFunc("GET /products/{id}", p.instrumented("details", p.handleDetails))
	mux.HandleFunc("GET /products", p.instrumented("products", p.handleList))
	mux.HandleFunc("GET /-/healthy", healthy("product"))
	mux.Handle("GET /metrics", p.cfg.Registry.Handler())
	return mux
}

func (p *Product) labels() metrics.Labels {
	return metrics.Labels{"service": "product", "version": p.cfg.Profile.Version}
}

// instrumented wraps a handler with auth validation, variant behaviour
// injection and metrics.
func (p *Product) instrumented(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		labels := p.labels()
		opLabels := labels.Merge(metrics.Labels{"op": op})
		p.cfg.Registry.Counter("shop_requests_total", opLabels).Inc()

		if err := validateWith(r.Context(), p.cfg.AuthURL, r); err != nil {
			p.cfg.Registry.Counter("shop_auth_denied_total", labels).Inc()
			httpx.WriteError(w, http.StatusUnauthorized, err.Error())
			return
		}
		if !p.gate.pass(w) {
			p.cfg.Registry.Counter("shop_request_errors_total", labels).Inc()
			return
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		if rec.code >= 500 {
			p.cfg.Registry.Counter("shop_request_errors_total", labels).Inc()
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		p.cfg.Registry.Counter("shop_processing_ms_sum", opLabels).Add(ms)
		p.cfg.Registry.Counter("shop_processing_ms_count", opLabels).Inc()
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

type buyRequest struct {
	ProductID string `json:"productId"`
}

func (p *Product) handleBuy(w http.ResponseWriter, r *http.Request) {
	var req buyRequest
	if err := httpx.ReadJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Look the product up, then write the order — both via the DB service.
	var product docstore.Document
	err := httpx.GetJSON(r.Context(), p.cfg.DBURL+"/db/products/"+url.PathEscape(req.ProductID), &product)
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, "product lookup: "+err.Error())
		return
	}
	var ins map[string]string
	err = httpx.PostJSON(r.Context(), p.cfg.DBURL+"/db/orders", docstore.Document{
		"productId": req.ProductID,
		"version":   p.cfg.Profile.Version,
		"price":     product["price"],
	}, &ins)
	if err != nil {
		httpx.WriteError(w, http.StatusBadGateway, "order write: "+err.Error())
		return
	}
	labels := p.labels()
	if p.gate.converts(p.cfg.BaseConversion) {
		p.cfg.Registry.Counter("shop_sales_total", labels).Inc()
		if price, ok := product["price"].(float64); ok {
			p.cfg.Registry.Counter("shop_revenue_total", labels).Add(price)
		}
	}
	// The paper's Buy request sends no response body back.
	w.WriteHeader(http.StatusNoContent)
}

func (p *Product) handleDetails(w http.ResponseWriter, r *http.Request) {
	var product docstore.Document
	err := httpx.GetJSON(r.Context(), p.cfg.DBURL+"/db/products/"+url.PathEscape(r.PathValue("id")), &product)
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusOK, product)
}

func (p *Product) handleList(w http.ResponseWriter, r *http.Request) {
	// Returns the full catalog including buyers: the "large response
	// body" request of the test suite.
	var products []docstore.Document
	err := httpx.PostJSON(r.Context(), p.cfg.DBURL+"/db/products/find",
		docstore.FindRequest{}, &products)
	if err != nil {
		httpx.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	var orders []docstore.Document
	err = httpx.PostJSON(r.Context(), p.cfg.DBURL+"/db/orders/find",
		docstore.FindRequest{}, &orders)
	if err != nil {
		httpx.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	buyers := make(map[string]int, len(orders))
	for _, o := range orders {
		if id, ok := o["productId"].(string); ok {
			buyers[id]++
		}
	}
	for _, prod := range products {
		if id, ok := prod["_id"].(string); ok {
			prod["buyers"] = buyers[id]
		}
	}
	httpx.WriteJSON(w, http.StatusOK, products)
}

func (p *Product) handleSearch(w http.ResponseWriter, r *http.Request) {
	// Delegate to the search service, forwarding auth and query.
	u := p.cfg.SearchURL + "/search?q=" + url.QueryEscape(r.URL.Query().Get("q"))
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		httpx.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	req.Header.Set("Authorization", r.Header.Get("Authorization"))
	// Forward the routing cookie so sticky search sessions survive the
	// product-service hop.
	if c, cerr := r.Cookie("bifrost-id"); cerr == nil {
		req.AddCookie(c)
	}
	resp, err := httpx.Client.Do(req)
	if err != nil {
		httpx.WriteError(w, http.StatusBadGateway, "search unreachable: "+err.Error())
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	copyBody(w, resp)
}
