package core

import "time"

// RunningExample builds the paper's running example (Figures 1 and 2): the
// fastSearch canary + gradual release + A/B test strategy with states a–g.
// Check evaluators are placeholders (always succeeding); the dsl and engine
// packages attach real metric evaluators. The durations follow the paper
// (one day per rollout step, five days of A/B testing) scaled by unit, so
// tests can pass unit = time.Millisecond and examples unit = time.Second.
func RunningExample(unit time.Duration) *Strategy {
	day := 24 * unit

	searchVersions := []Version{
		{Name: "search", Endpoint: "search:80"},
		{Name: "fastSearch", Endpoint: "fastsearch:80"},
	}

	routing := func(searchPct, fastPct float64) []RoutingConfig {
		return []RoutingConfig{{
			Service: "search",
			Weights: map[string]float64{"search": searchPct, "fastSearch": fastPct},
			Sticky:  false,
			Mode:    RouteCookie,
		}}
	}

	// 96 executions every quarter-unit fill the state's one-day duration,
	// matching the paper's "executed 100 times in intervals of 10 minutes"
	// cadence scaled to the chosen unit.
	mkChecks := func(withException bool) []Check {
		checks := []Check{{
			Name:       "response_time",
			Kind:       BasicCheck,
			Eval:       ConstEvaluator(true),
			Interval:   unit / 4,
			Executions: 96,
			Weight:     1,
			Thresholds: []int{75, 95},
			Outputs:    []int{-5, 4, 5},
		}}
		if withException {
			checks = append(checks, Check{
				Name:       "error_explosion",
				Kind:       ExceptionCheck,
				Eval:       ConstEvaluator(true),
				Interval:   unit / 4,
				Executions: 96,
				Fallback:   "g",
			})
		}
		return checks
	}

	return &Strategy{
		Name: "fastsearch-rollout",
		Services: []Service{{
			Name:     "search",
			Versions: searchVersions,
		}},
		Automaton: Automaton{
			Start:  "a",
			Finals: []string{"f", "g"},
			States: []State{
				{
					ID: "a", Description: "canary 1%", Duration: day,
					Checks:      mkChecks(true),
					Thresholds:  []int{3},
					Transitions: []string{"g", "b"},
					Routing:     routing(99, 1),
				},
				{
					ID: "b", Description: "canary 5%", Duration: day,
					Checks:      mkChecks(false),
					Thresholds:  []int{3, 4},
					Transitions: []string{"g", "c", "d"},
					Routing:     routing(95, 5),
				},
				{
					ID: "c", Description: "canary 10%", Duration: day,
					Checks:      mkChecks(false),
					Thresholds:  []int{3},
					Transitions: []string{"g", "d"},
					Routing:     routing(90, 10),
				},
				{
					ID: "d", Description: "canary 20%", Duration: day,
					Checks:      mkChecks(false),
					Thresholds:  []int{3},
					Transitions: []string{"g", "e"},
					Routing:     routing(80, 20),
				},
				{
					ID: "e", Description: "A/B test 50/50", Duration: 5 * day,
					Checks: []Check{{
						Name:       "ab_sales",
						Kind:       BasicCheck,
						Eval:       ConstEvaluator(true),
						Interval:   day,
						Executions: 5,
						Weight:     4,
						Thresholds: []int{3},
						Outputs:    []int{2, 4},
					}},
					Thresholds:  []int{14},
					Transitions: []string{"g", "f"},
					Routing: []RoutingConfig{{
						Service: "search",
						Weights: map[string]float64{"search": 50, "fastSearch": 50},
						Sticky:  true,
						Mode:    RouteCookie,
					}},
				},
				{
					ID: "f", Description: "full rollout fastSearch",
					Routing: routing(0, 100),
				},
				{
					ID: "g", Description: "rollback to search",
					Routing: routing(100, 0),
				},
			},
		},
	}
}
