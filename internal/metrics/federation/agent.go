// Package federation is the per-replica half of Bifrost's fleet metrics:
// an aggregation agent that rides inside each proxy process, folds every
// observation into local per-second bucket summaries plus a mergeable
// quantile sketch, and ships the closed buckets as compact, sequence-
// numbered deltas to one federating metrics store.
//
// The agent is built for a lossy fleet. Deltas are delivered at least
// once: a batch that fails to ship stays queued and is retried with
// exponential backoff; a batch whose acknowledgement was lost is shipped
// again and deduplicated by the store's (replica, incarnation, seq)
// cursor; a restarted agent draws a fresh incarnation so its new sequence
// numbers cannot collide with the old process's. Under every schedule of
// drops, duplicates, and reorderings the federated totals converge to the
// clean-delivery values — the property internal/metrics's fault-injection
// tests pin.
//
// The wire unit is metrics.BucketDelta — the same summary bucket the
// store maintains for local series — so the federating store needs no
// translation layer: shipped buckets land as summary-only "remote"
// series, and fleet-wide window queries merge them with everything else.
package federation

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/metrics"
	"bifrost/internal/sketch"
)

// DeltaSink is where an agent ships its batches — an HTTPSink against a
// federating store in production, a fake with injected faults in tests.
type DeltaSink interface {
	ShipDelta(ctx context.Context, batch metrics.DeltaBatch) error
}

// HTTPSink ships batches to a metrics server's /api/v1/federate endpoint.
type HTTPSink struct {
	Client metrics.Client
}

// ShipDelta implements DeltaSink. A duplicate acknowledgement (applied =
// false) is success: the store already has the batch.
func (h HTTPSink) ShipDelta(ctx context.Context, batch metrics.DeltaBatch) error {
	_, err := h.Client.PushDelta(ctx, batch)
	return err
}

// Defaults for the shipping loop.
const (
	DefaultBucketWidth  = time.Second
	DefaultShipInterval = 2 * time.Second
	DefaultMaxPending   = 512
	defaultBackoffMin   = 250 * time.Millisecond
	defaultBackoffMax   = 10 * time.Second
)

// Agent is one replica's aggregation agent. Observations fold into open
// buckets keyed by (series, bucket start); each flush closes every bucket
// whose interval has fully elapsed, wraps the closed buckets in a
// sequence-numbered batch, and drains the pending queue to the sink in
// order. Safe for concurrent use.
type Agent struct {
	replica     string
	incarnation string
	sink        DeltaSink
	clk         clock.Clock
	width       time.Duration
	interval    time.Duration
	alpha       float64
	registry    *metrics.Registry
	maxPending  int
	backoffMin  time.Duration
	backoffMax  time.Duration

	mu      sync.Mutex
	open    map[string]*openSeries
	pending []metrics.DeltaBatch
	seq     uint64
	// failures counts consecutive ship failures; nextAttempt gates the
	// next try (exponential backoff, reset on success).
	failures    int
	nextAttempt time.Time
	dropped     uint64 // batches evicted from a full pending queue
	// shipping serializes queue drains: concurrent Flush calls must not
	// both pop the front of the queue or batches could be lost locally.
	shipping bool

	stop chan struct{}
	done chan struct{}
}

// openSeries is one instrumented series' open (still-filling) buckets.
type openSeries struct {
	name    string
	labels  metrics.Labels
	buckets map[int64]*metrics.AggBucket
	// counter marks registry-gathered cumulative series: their buckets
	// hold one sample and carry no sketch (quantiles over cumulative
	// counters are meaningless).
	counter bool
}

// Option configures an Agent.
type Option func(*Agent)

// WithBucketWidth sets the aggregation bucket width (default 1s). It
// should match the federating store's summary bucket width.
func WithBucketWidth(d time.Duration) Option {
	return func(a *Agent) {
		if d > 0 {
			a.width = d
		}
	}
}

// WithShipInterval sets how often the Start loop flushes (default 2s).
func WithShipInterval(d time.Duration) Option {
	return func(a *Agent) {
		if d > 0 {
			a.interval = d
		}
	}
}

// WithAlpha sets the quantile sketches' relative accuracy (default
// sketch.DefaultAlpha). Zero disables sketches entirely.
func WithAlpha(alpha float64) Option {
	return func(a *Agent) { a.alpha = alpha }
}

// WithClock injects the clock (Manual in tests).
func WithClock(c clock.Clock) Option {
	return func(a *Agent) {
		if c != nil {
			a.clk = c
		}
	}
}

// WithRegistry attaches a registry whose counters and gauges are gathered
// on every flush and shipped as single-sample buckets — how the proxy's
// existing request/error counters reach the fleet store without a scraper
// reaching into every replica.
func WithRegistry(r *metrics.Registry) Option {
	return func(a *Agent) { a.registry = r }
}

// WithMaxPending bounds the unshipped batch queue (default 512). When the
// store is unreachable long enough to fill it, the oldest batches are
// dropped — bounded memory beats unbounded staleness.
func WithMaxPending(n int) Option {
	return func(a *Agent) {
		if n > 0 {
			a.maxPending = n
		}
	}
}

// WithBackoff sets the retry backoff range (defaults 250ms..10s).
func WithBackoff(min, max time.Duration) Option {
	return func(a *Agent) {
		if min > 0 && max >= min {
			a.backoffMin, a.backoffMax = min, max
		}
	}
}

// New creates an agent for the given replica identity. Every New call
// draws a fresh incarnation, so restarting a replica's process naturally
// restarts its sequence space.
func New(replica string, sink DeltaSink, opts ...Option) *Agent {
	a := &Agent{
		replica:     replica,
		incarnation: newIncarnation(),
		sink:        sink,
		clk:         clock.Real{},
		width:       DefaultBucketWidth,
		interval:    DefaultShipInterval,
		alpha:       sketch.DefaultAlpha,
		maxPending:  DefaultMaxPending,
		backoffMin:  defaultBackoffMin,
		backoffMax:  defaultBackoffMax,
		open:        make(map[string]*openSeries),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

func newIncarnation() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a constant that still changes across deploys via the replica id.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// Incarnation returns the agent's incarnation id (for tests and logs).
func (a *Agent) Incarnation() string { return a.incarnation }

// Observe folds one observation into the replica's open buckets at the
// agent clock's current time.
func (a *Agent) Observe(name string, labels metrics.Labels, v float64) {
	now := a.clk.Now()
	a.mu.Lock()
	a.observeLocked(name, labels, v, now, false)
	a.mu.Unlock()
}

func (a *Agent) observeLocked(name string, labels metrics.Labels, v float64, t time.Time, counter bool) {
	key := name + "\x00" + labels.Key()
	os, ok := a.open[key]
	if !ok {
		os = &openSeries{
			name:    name,
			labels:  labels.Clone(),
			buckets: make(map[int64]*metrics.AggBucket, 2),
			counter: counter,
		}
		a.open[key] = os
	}
	start := metrics.BucketStart(t, a.width)
	b, ok := os.buckets[start]
	if !ok {
		alpha := a.alpha
		if counter {
			alpha = 0
		}
		b = metrics.NewAggBucket(start, int64(a.width), alpha)
		os.buckets[start] = b
	}
	b.Observe(t.UnixNano(), v)
}

// Start launches the shipping loop; Stop flushes once more and waits for
// the loop to exit.
func (a *Agent) Start() {
	go func() {
		defer close(a.done)
		ticker := a.clk.NewTicker(a.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C():
				a.Flush(context.Background())
			case <-a.stop:
				return
			}
		}
	}()
}

// Stop halts the loop and attempts one final flush of everything,
// including still-open buckets, so a graceful shutdown loses nothing.
func (a *Agent) Stop(ctx context.Context) {
	close(a.stop)
	<-a.done
	a.flush(ctx, true)
}

// Flush closes every elapsed bucket into one batch, queues it, and drains
// the pending queue to the sink (respecting backoff). It returns the
// number of batches still pending afterwards.
func (a *Agent) Flush(ctx context.Context) int {
	return a.flush(ctx, false)
}

func (a *Agent) flush(ctx context.Context, final bool) int {
	now := a.clk.Now()
	a.mu.Lock()
	if a.registry != nil {
		for _, p := range a.registry.Gather() {
			a.observeLocked(p.Name, p.Labels, p.Value, now, p.Type == "counter")
		}
	}
	var deltas []metrics.BucketDelta
	cutoff := now.UnixNano() - int64(a.width)
	for key, os := range a.open {
		for start, b := range os.buckets {
			// A bucket closes once its interval [start, start+width) has
			// fully elapsed — or unconditionally on the final flush.
			if !final && start > cutoff {
				continue
			}
			if b.Count() > 0 {
				deltas = append(deltas, b.Export(os.name, os.labels))
			}
			delete(os.buckets, start)
		}
		if len(os.buckets) == 0 {
			delete(a.open, key)
		}
	}
	if len(deltas) > 0 {
		// Deterministic order inside the batch: by series then start.
		sort.Slice(deltas, func(i, j int) bool {
			if deltas[i].Name != deltas[j].Name {
				return deltas[i].Name < deltas[j].Name
			}
			return deltas[i].Start < deltas[j].Start
		})
		a.seq++
		a.pending = append(a.pending, metrics.DeltaBatch{
			Replica:     a.replica,
			Incarnation: a.incarnation,
			Seq:         a.seq,
			Buckets:     deltas,
		})
		if over := len(a.pending) - a.maxPending; over > 0 {
			a.pending = append(a.pending[:0:0], a.pending[over:]...)
			a.dropped += uint64(over)
		}
	}
	a.mu.Unlock()
	return a.ship(ctx, now)
}

// ship drains the pending queue in sequence order until it empties or a
// delivery fails; a failure arms exponential backoff so a down store is
// not hammered every interval.
func (a *Agent) ship(ctx context.Context, now time.Time) int {
	a.mu.Lock()
	if a.shipping || len(a.pending) == 0 || now.Before(a.nextAttempt) {
		n := len(a.pending)
		a.mu.Unlock()
		return n
	}
	a.shipping = true
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.shipping = false
		a.mu.Unlock()
	}()

	for {
		a.mu.Lock()
		if len(a.pending) == 0 {
			a.mu.Unlock()
			return 0
		}
		batch := a.pending[0]
		a.mu.Unlock()

		err := a.sink.ShipDelta(ctx, batch)

		a.mu.Lock()
		if err != nil {
			a.failures++
			backoff := a.backoffMin << (a.failures - 1)
			if backoff > a.backoffMax || backoff <= 0 {
				backoff = a.backoffMax
			}
			a.nextAttempt = a.clk.Now().Add(backoff)
			n := len(a.pending)
			a.mu.Unlock()
			return n
		}
		a.failures = 0
		a.nextAttempt = time.Time{}
		// Only this (single) drainer pops the front; a full queue may have
		// evicted our batch while we were shipping, so re-check identity.
		if len(a.pending) > 0 && a.pending[0].Seq == batch.Seq &&
			a.pending[0].Incarnation == batch.Incarnation {
			a.pending = a.pending[1:]
		}
		a.mu.Unlock()
	}
}

// Pending returns the number of queued, unshipped batches.
func (a *Agent) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// Dropped returns how many batches were evicted from a full queue.
func (a *Agent) Dropped() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}
