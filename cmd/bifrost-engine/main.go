// Command bifrost-engine runs the Bifrost engine daemon: the REST API the
// CLI talks to, the live dashboard, and the engine's own /metrics endpoint.
//
// Usage:
//
//	bifrost-engine -listen 127.0.0.1:7000
//
// Strategies are scheduled via the API (see cmd/bifrost) as YAML documents
// in the Bifrost DSL; routing updates are pushed over HTTP to the proxies
// named in each strategy's deployment section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bifrost/internal/dashboard"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
	"bifrost/internal/sysmon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost-engine:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7000", "address to serve the API and dashboard on")
	sampleEvery := flag.Duration("sysmon-interval", 5*time.Second, "resource sampling period (0 disables)")
	flag.Parse()

	registry := metrics.NewRegistry()
	eng := engine.New(
		engine.WithConfigurator(engine.HTTPConfigurator{}),
		engine.WithRegistry(registry),
	)
	defer eng.Shutdown()

	if *sampleEvery > 0 {
		sampler := sysmon.New(registry, "engine", *sampleEvery, nil)
		sampler.Start()
		defer sampler.Stop()
	}

	// The API serves /api/v2 (run lifecycle resources, SSE event stream)
	// plus the /api/v1 aliases; the dashboard's page drives the v2 API.
	api := engine.NewAPI(eng, dsl.Compile).Handler()
	dash := dashboard.New(eng).Handler()
	mux := http.NewServeMux()
	mux.Handle("/api/", api)
	mux.Handle("/-/healthy", api)
	mux.Handle("/dashboard", dash)
	mux.Handle("/dashboard/", dash)
	mux.Handle("/metrics", registry.Handler())

	srv, err := httpx.NewServer(*listen, mux)
	if err != nil {
		return err
	}
	srv.Start()
	log.Printf("bifrost-engine listening on %s (dashboard at %s/dashboard)", srv.Addr(), srv.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
