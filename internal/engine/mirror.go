package engine

import (
	"encoding/json"
	"time"

	"bifrost/internal/core"
)

// maxMirrorEvents bounds the per-run durable event history kept in memory
// (and in journal snapshots). Older events are trimmed; DroppedBefore
// records the trim point so SSE resume can report an explicit gap instead
// of silently skipping.
const maxMirrorEvents = 1024

// maxFinishedEvents is the smaller history tail kept once a run finishes:
// finished runs linger until Remove, and a long-lived engine enacting many
// short strategies must not accumulate a kilobuffer per run forever.
const maxFinishedEvents = 256

// runMirror is the journal's view of one run, reduced purely from the event
// stream. It is maintained incrementally on every publish and rebuilt by
// replaying the journal on recovery — the same reduction both times, so
// what the engine snapshots is exactly what a restart reconstructs.
type runMirror struct {
	// Source is the strategy's DSL source, recorded at schedule time;
	// recovery recompiles it. Empty for strategies enacted programmatically
	// (those cannot be resumed after a restart).
	Source string `json:"source,omitempty"`
	// Status is the run status as reduced from events (not a copy of the
	// live Run's status).
	Status Status `json:"status"`
	// Events is the bounded per-run history, oldest first.
	Events []Event `json:"events,omitempty"`
	// DroppedBefore is the seq of the newest trimmed-away event (0: none).
	DroppedBefore int64 `json:"droppedBefore,omitempty"`

	// NoBookState names a state whose next state_entered must not book its
	// planned duration again: the entry re-enters a state that was already
	// booked (resume after pause, recovery after restart). A gate decision
	// issued from a pause enters a *different* state, which books normally.
	// Persisted: a snapshot can land between the resumed/recovered event
	// and the re-entry.
	NoBookState string `json:"noBookState,omitempty"`
	// Reenter marks the next state_entered as a recovery re-entry of the
	// current state: EnteredAt is then backdated by ResumeElapsed — the
	// elapsed time the recovered event preserved — so a second restart
	// still sees the cumulative elapsed-in-state (downtime excluded each
	// time).
	Reenter       bool          `json:"reenter,omitempty"`
	ResumeElapsed time.Duration `json:"resumeElapsed,omitempty"`
	// PriorActive and ResumedAt anchor delay accounting across restarts:
	// the run had accumulated PriorActive of active wall time when its
	// current life began at ResumedAt. Zero ResumedAt means the first
	// life, anchored at Status.StartedAt.
	PriorActive time.Duration `json:"priorActive,omitempty"`
	ResumedAt   time.Time     `json:"resumedAt,omitempty"`
}

// engineMirror is the reduced journal state across runs: the payload of
// snapshot compaction and the backing store of per-run event history.
type engineMirror struct {
	// LastTime is the timestamp of the newest reduced event — the best
	// available "crash time" when recovering from this state, used to
	// compute elapsed-in-state without counting downtime.
	LastTime time.Time `json:"lastTime,omitempty"`
	// Generation is the engine's routing-generation counter at snapshot
	// time; recovery restores it so re-applied configs outrank the ones
	// surviving proxies already hold.
	Generation int64                 `json:"generation,omitempty"`
	Runs       map[string]*runMirror `json:"runs"`
}

func newEngineMirror() *engineMirror {
	return &engineMirror{Runs: make(map[string]*runMirror, 8)}
}

func (m *engineMirror) run(name string) *runMirror {
	rm, ok := m.Runs[name]
	if !ok {
		rm = &runMirror{Status: Status{Strategy: name, State: RunPending}}
		m.Runs[name] = rm
	}
	return rm
}

// setSource records the DSL source of a scheduled strategy. It is applied
// right after the scheduled event's reduction, which reset the mirror.
func (m *engineMirror) setSource(name, source string) {
	m.run(name).Source = source
}

// terminal reports whether a run state is final.
func (s RunState) terminal() bool {
	return s == RunCompleted || s == RunAborted || s == RunFailed
}

// apply reduces one event into the mirror. strategy may be nil (planned
// duration booking is then skipped); it is needed only for state_entered.
func (m *engineMirror) apply(strategy *core.Strategy, ev Event) {
	if ev.Time.After(m.LastTime) {
		m.LastTime = ev.Time
	}
	if ev.Type == EventRemoved {
		// The run was forgotten; its reduction (and history) goes with it.
		delete(m.Runs, ev.Strategy)
		return
	}
	rm := m.run(ev.Strategy)
	st := &rm.Status

	switch ev.Type {
	case EventScheduled:
		// Every schedule starts a fresh enactment: drop any previous
		// reduction under this name, finished or not (a run Recover had to
		// skip leaves a non-terminal mirror behind; its history must not
		// merge into the replacement). The source record that follows the
		// scheduled event re-establishes Source.
		*rm = runMirror{Status: Status{Strategy: ev.Strategy, State: RunPending}}
		st = &rm.Status
		st.StartedAt = ev.Time
	case EventStateEntered:
		// A recovery re-entry of a paused run stays paused (the restored
		// pause was re-asserted just before); every other entry runs.
		if !(rm.Reenter && st.State == RunPaused) {
			st.State = RunRunning
		}
		st.Current = ev.State
		st.EnteredAt = ev.Time
		if rm.Reenter {
			st.EnteredAt = ev.Time.Add(-rm.ResumeElapsed)
			rm.Reenter, rm.ResumeElapsed = false, 0
		}
		skipBook := rm.NoBookState != "" && rm.NoBookState == ev.State
		rm.NoBookState = ""
		if !skipBook && strategy != nil && !strategy.Automaton.IsFinal(ev.State) {
			// Final states are never executed (the live loop finishes on
			// entry without booking them), so the reduction must not book
			// them either.
			if state, ok := strategy.Automaton.State(ev.State); ok {
				st.PlannedNanos += int64(statePlannedDuration(state))
			}
		}
	case EventPaused:
		st.State = RunPaused
		if ev.PauseGen > 0 {
			st.PauseGen = ev.PauseGen
		} else {
			st.PauseGen++
		}
	case EventResumed:
		// A pause/resume re-entry restarts the phase in full (checks and
		// state timer reset), so EnteredAt is not backdated here.
		st.State = RunRunning
		rm.NoBookState = ev.State
	case EventRecovered:
		st.Recovered = true
		rm.PriorActive = ev.Active
		rm.ResumedAt = ev.Time
		// Only an actual re-entry skips booking and backdates; a run that
		// crashed before entering any state starts its first state fresh.
		if st.Current != "" && ev.State == st.Current {
			rm.NoBookState = ev.State
			rm.Reenter = true
			rm.ResumeElapsed = ev.Elapsed
			// Re-anchor immediately, not just at the re-entry: a crash
			// between this event and state_entered (a crash loop during
			// Configure) must not count the downtime as in-state time.
			st.EnteredAt = ev.Time.Add(-ev.Elapsed)
		}
	case EventRoutingConverged, EventRoutingDegraded:
		// Reduce fleet convergence into Status.Fleet so a recovered run's
		// status shows the last known fleet state until its own
		// reconciler reports fresh numbers.
		fs := FleetStatus{
			Service: ev.Service, Generation: ev.Generation,
			Replicas: ev.Replicas, Acked: ev.Acked,
			Lagging:   append([]string(nil), ev.Lagging...),
			Converged: ev.Type == EventRoutingConverged,
		}
		replaced := false
		for i := range st.Fleet {
			if st.Fleet[i].Service == ev.Service {
				st.Fleet[i] = fs
				replaced = true
				break
			}
		}
		if !replaced {
			st.Fleet = append(st.Fleet, fs)
		}
	case EventChildScheduled, EventChildUpdate, EventChildTerminal:
		// Reduce the parent's view of its sub-rollout children so recovery
		// rebuilds the region tree — and the re-link seed — for free.
		cs := ChildStatus{
			Name: ev.Child, Region: ev.Region,
			State: ev.ChildState, Phase: ev.ChildPhase,
		}
		if ev.Type == EventChildTerminal {
			cs.Passed = ev.Outcome == 1
			cs.Failed = !cs.Passed
		}
		replaced := false
		for i := range st.Children {
			if st.Children[i].Name == ev.Child {
				st.Children[i] = cs
				replaced = true
				break
			}
		}
		if !replaced {
			st.Children = append(st.Children, cs)
		}
	case EventTransition:
		st.Path = append(st.Path, Transition{
			From: ev.State, To: ev.Detail, Outcome: ev.Outcome,
			At: ev.Time, Cause: ev.Cause,
		})
	case EventCompleted:
		st.State = RunCompleted
		st.FinishedAt = ev.Time
	case EventAborted:
		st.State = RunAborted
		st.FinishedAt = ev.Time
	case EventError:
		st.State = RunFailed
		st.FinishedAt = ev.Time
		st.Error = ev.Detail
	}

	rm.Events = append(rm.Events, ev)
	limit := maxMirrorEvents
	if st.State.terminal() {
		limit = maxFinishedEvents
	}
	if len(rm.Events) > limit {
		// Trim a quarter past the limit at once so the copy amortizes to
		// O(1) per event instead of an O(limit) memmove on every publish
		// of a capped run (this runs under pubMu, the engine-wide publish
		// pipeline).
		keep := limit - limit/4
		cut := len(rm.Events) - keep
		rm.DroppedBefore = rm.Events[cut-1].Seq
		rm.Events = append(rm.Events[:0], rm.Events[cut:]...)
	}
}

// clone deep-copies the mirror so snapshot marshaling can happen outside
// pubMu: struct copies plus fresh slices (shared Verdict pointers are safe,
// they are never mutated after publish).
func (m *engineMirror) clone() *engineMirror {
	c := &engineMirror{
		LastTime:   m.LastTime,
		Generation: m.Generation,
		Runs:       make(map[string]*runMirror, len(m.Runs)),
	}
	for name, rm := range m.Runs {
		cp := *rm
		cp.Events = append([]Event(nil), rm.Events...)
		cp.Status.Path = append([]Transition(nil), rm.Status.Path...)
		cp.Status.Checks = append([]CheckStatus(nil), rm.Status.Checks...)
		cp.Status.Fleet = append([]FleetStatus(nil), rm.Status.Fleet...)
		cp.Status.Children = append([]ChildStatus(nil), rm.Status.Children...)
		c.Runs[name] = &cp
	}
	return c
}

// cloneRun deep-copies a single run's reduction into a standalone mirror —
// the snapshot payload of that run's journal partition. Nil if the run has
// no reduction (already removed).
func (m *engineMirror) cloneRun(name string) *engineMirror {
	rm, ok := m.Runs[name]
	if !ok {
		return nil
	}
	cp := *rm
	cp.Events = append([]Event(nil), rm.Events...)
	cp.Status.Path = append([]Transition(nil), rm.Status.Path...)
	cp.Status.Checks = append([]CheckStatus(nil), rm.Status.Checks...)
	cp.Status.Fleet = append([]FleetStatus(nil), rm.Status.Fleet...)
	cp.Status.Children = append([]ChildStatus(nil), rm.Status.Children...)
	return &engineMirror{
		LastTime:   m.LastTime,
		Generation: m.Generation,
		Runs:       map[string]*runMirror{name: &cp},
	}
}

// splitMirrorSnapshot breaks a legacy engine-wide snapshot into one
// single-run snapshot per run, for the journal's partition migration. Each
// per-run payload is a full engineMirror holding just that run, so
// partition recovery reuses the exact same decoding path as before.
func splitMirrorSnapshot(snapshot []byte) (map[string][]byte, error) {
	var m engineMirror
	if err := json.Unmarshal(snapshot, &m); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(m.Runs))
	for name := range m.Runs {
		part := engineMirror{
			LastTime:   m.LastTime,
			Generation: m.Generation,
			Runs:       map[string]*runMirror{name: m.Runs[name]},
		}
		raw, err := json.Marshal(&part)
		if err != nil {
			return nil, err
		}
		out[name] = raw
	}
	return out, nil
}

// events returns up to n of a run's retained events, oldest first (n <= 0:
// all of them).
func (m *engineMirror) events(name string, n int) []Event {
	rm, ok := m.Runs[name]
	if !ok {
		return nil
	}
	evs := rm.Events
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return append([]Event(nil), evs...)
}

// eventsSince returns a run's retained events with Seq > afterSeq, oldest
// first, and whether events in that range were already trimmed.
func (m *engineMirror) eventsSince(name string, afterSeq int64) ([]Event, bool) {
	rm, ok := m.Runs[name]
	if !ok {
		return nil, false
	}
	var out []Event
	for _, ev := range rm.Events {
		if ev.Seq > afterSeq {
			out = append(out, ev)
		}
	}
	return out, afterSeq < rm.DroppedBefore
}
