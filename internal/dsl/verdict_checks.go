package dsl

import (
	"context"
	"fmt"
	"math"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
	"bifrost/internal/stats"
)

// MomentsQuerier is the richer provider interface the `compare` check
// needs: pooled window moments (count/mean/variance) of a population
// addressed by a range selector such as `response_ms{version="b"}[30s]`.
// *metrics.Client and metrics.StoreQuerier implement it.
type MomentsQuerier interface {
	Moments(ctx context.Context, rangeExpr string) (metrics.Moments, error)
}

var (
	_ MomentsQuerier = (*metrics.Client)(nil)
	_ MomentsQuerier = metrics.StoreQuerier{}
)

// KnownCheckKinds lists every check element the DSL compiles, in the
// order they are documented. docs/strategy-authoring.md must describe
// exactly these kinds; internal/dsl/docs_test.go enforces that.
func KnownCheckKinds() []string {
	return []string{"metric", "exception", "compare", "sequential", "burnrate", "changepoint"}
}

// compileVerdictCheck dispatches the statistical check elements.
func (pc *phaseCompiler) compileVerdictCheck(kind string, m map[string]any, ctx string) (core.Check, bool) {
	switch kind {
	case "compare":
		return pc.compileCompareCheck(m, ctx)
	case "sequential":
		return pc.compileSequentialCheck(m, ctx)
	case "burnrate":
		return pc.compileBurnRateCheck(m, ctx)
	case "changepoint":
		return pc.compileChangePointCheck(m, ctx)
	}
	return core.Check{}, false
}

// commonVerdictFields decodes the fields every statistical check shares.
func (pc *phaseCompiler) commonVerdictFields(m map[string]any, ctx string, kind core.CheckKind) (core.Check, Querier, bool) {
	d := pc.d
	c := core.Check{
		Name:       d.requireString(m, "name", ctx),
		Kind:       kind,
		Interval:   d.getDuration(m, "intervalTime", ctx),
		Executions: d.getInt(m, "intervalLimit", ctx, 1),
		Weight:     d.getFloat(m, "weight", ctx, 0),
	}
	switch v := d.getString(m, "onInconclusive", ctx); v {
	case "", "fail":
	case "pass":
		c.InconclusivePass = true
	default:
		d.errf("%s: onInconclusive must be pass or fail, got %q", ctx, v)
	}
	providerName := d.getString(m, "provider", ctx)
	if providerName == "" {
		providerName = pc.defaultProvider
	}
	querier, ok := pc.providers[providerName]
	if !ok {
		d.errf("%s: unknown metric provider %q", ctx, providerName)
		return c, nil, false
	}
	return c, querier, c.Name != ""
}

// instantSelector validates that expr is a bare instant vector selector
// (metric name plus optional label matchers), the form the statistical
// checks window themselves.
func (d *decoder) instantSelector(m map[string]any, key, ctx string) string {
	sel := d.requireString(m, key, ctx)
	if sel == "" {
		return ""
	}
	if _, _, _, err := metrics.ParseRangeSelector(sel + "[1s]"); err != nil {
		d.errf("%s: %q must be a selector like metric{label=\"v\"}: %v", ctx, key, err)
		return ""
	}
	return sel
}

// compileCompareCheck builds a `compare` element: a baseline-vs-candidate
// two-sample Welch t-test on windowed means.
func (pc *phaseCompiler) compileCompareCheck(m map[string]any, ctx string) (core.Check, bool) {
	d := pc.d
	d.unknownKeys(m, ctx, "name", "provider", "baseline", "candidate", "window",
		"confidence", "direction", "minSamples", "intervalTime", "intervalLimit",
		"weight", "onInconclusive")

	c, querier, ok := pc.commonVerdictFields(m, ctx, core.CompareCheck)
	if !ok {
		return core.Check{}, false
	}
	baseline := d.instantSelector(m, "baseline", ctx)
	candidate := d.instantSelector(m, "candidate", ctx)
	window := d.getDuration(m, "window", ctx)
	if window <= 0 {
		d.errf("%s: missing required field %q", ctx, "window")
	}
	confidence := d.getFloat(m, "confidence", ctx, 0.95)
	if confidence <= 0 || confidence >= 1 {
		d.errf("%s: confidence must be in (0,1), got %v", ctx, confidence)
	}
	direction := d.getString(m, "direction", ctx)
	switch direction {
	case "":
		direction = "<"
	case "<", ">":
	default:
		d.errf("%s: direction must be \"<\" (lower is better) or \">\", got %q", ctx, direction)
	}
	minSamples := d.getInt(m, "minSamples", ctx, 5)
	if minSamples < 2 {
		d.errf("%s: minSamples must be ≥ 2 (variance needs two samples), got %d", ctx, minSamples)
	}
	mq, hasMoments := querier.(MomentsQuerier)
	if !hasMoments {
		d.errf("%s: provider does not support moments queries (needed by compare checks)", ctx)
	}
	if len(d.problems) > 0 || baseline == "" || candidate == "" || !hasMoments {
		return core.Check{}, false
	}
	c.Analyze = &compareAnalyzer{
		querier:    mq,
		baseline:   baseline + "[" + window.String() + "]",
		candidate:  candidate + "[" + window.String() + "]",
		window:     window,
		alpha:      1 - confidence,
		direction:  direction,
		minSamples: minSamples,
	}
	return c, true
}

// compareAnalyzer is the compare check's analysis: pull both populations'
// window moments and run Welch's t-test for a significant degradation.
type compareAnalyzer struct {
	querier    MomentsQuerier
	baseline   string
	candidate  string
	window     time.Duration
	alpha      float64
	direction  string // "<": candidate should not be greater; ">": not lower
	minSamples int
}

var _ core.Analyzer = (*compareAnalyzer)(nil)

// Analyze implements core.Analyzer.
func (a *compareAnalyzer) Analyze(ctx context.Context) (core.Verdict, error) {
	base, err := a.querier.Moments(ctx, a.baseline)
	if err != nil {
		return core.Verdict{Decision: core.DecisionContinue,
			Err: fmt.Sprintf("baseline %s: %v", a.baseline, err)}, nil
	}
	cand, err := a.querier.Moments(ctx, a.candidate)
	if err != nil {
		return core.Verdict{Decision: core.DecisionContinue,
			Err: fmt.Sprintf("candidate %s: %v", a.candidate, err)}, nil
	}
	v := core.Verdict{Windows: []core.WindowStat{
		{Name: "baseline", Window: a.window, Count: float64(base.Count), Value: base.Mean},
		{Name: "candidate", Window: a.window, Count: float64(cand.Count), Value: cand.Mean},
	}}
	if base.Count < a.minSamples || cand.Count < a.minSamples {
		v.Decision = core.DecisionContinue
		v.Detail = fmt.Sprintf("need ≥ %d samples per arm (baseline %d, candidate %d)",
			a.minSamples, base.Count, cand.Count)
		return v, nil
	}
	// Order the arms so a positive statistic always means "candidate is
	// worse" in the configured direction.
	var res stats.TTest
	if a.direction == "<" {
		res, err = stats.Welch(cand.Count, cand.Mean, cand.Variance,
			base.Count, base.Mean, base.Variance)
	} else {
		res, err = stats.Welch(base.Count, base.Mean, base.Variance,
			cand.Count, cand.Mean, cand.Variance)
	}
	if err != nil {
		return core.Verdict{Decision: core.DecisionContinue, Windows: v.Windows,
			Err: err.Error()}, nil
	}
	v.Statistic = res.T
	v.PValue = res.P
	if res.P <= a.alpha {
		v.Decision = core.DecisionFail
		v.Detail = fmt.Sprintf("candidate significantly worse (t=%.3f, p=%.4f ≤ α=%.4f)",
			res.T, res.P, a.alpha)
	} else {
		v.Decision = core.DecisionPass
		v.Detail = fmt.Sprintf("no significant degradation (t=%.3f, p=%.4f)", res.T, res.P)
	}
	return v, nil
}

// compileSequentialCheck builds a `sequential` element: an SPRT gate on a
// candidate's failure rate that can conclude before the state timer.
func (pc *phaseCompiler) compileSequentialCheck(m map[string]any, ctx string) (core.Check, bool) {
	d := pc.d
	d.unknownKeys(m, ctx, "name", "provider", "errors", "total",
		"p0", "p1", "effect", "alpha", "beta", "intervalTime", "intervalLimit",
		"weight", "fallback", "onInconclusive")

	c, querier, ok := pc.commonVerdictFields(m, ctx, core.SequentialCheck)
	if !ok {
		return core.Check{}, false
	}
	c.Fallback = d.getString(m, "fallback", ctx)
	errSel := d.instantSelector(m, "errors", ctx)
	totSel := d.instantSelector(m, "total", ctx)
	p0 := d.getFloat(m, "p0", ctx, 0.01)
	p1 := d.getFloat(m, "p1", ctx, 0)
	if p1 == 0 {
		p1 = p0 * d.getFloat(m, "effect", ctx, 2)
	}
	alpha := d.getFloat(m, "alpha", ctx, 0.05)
	beta := d.getFloat(m, "beta", ctx, 0.10)
	sprt, err := stats.NewSPRT(p0, p1, alpha, beta)
	if err != nil {
		d.errf("%s: %v", ctx, err)
	}
	if len(d.problems) > 0 || errSel == "" || totSel == "" || sprt == nil {
		return core.Check{}, false
	}
	c.Analyze = &sequentialAnalyzer{
		querier:  querier,
		errSel:   errSel,
		totSel:   totSel,
		interval: c.Interval,
		sprt:     sprt,
	}
	return c, true
}

// sequentialAnalyzer accumulates failure/trial counts into an SPRT until
// it concludes. Each execution reads the cumulative counters and feeds
// the delta since the previous execution into the test, so every request
// is counted exactly once regardless of the execution cadence — windowed
// queries would double-count overlapping windows and void the SPRT's
// α/β guarantees. It implements core.ResettableAnalyzer so the engine
// clears the accumulated evidence on state (re-)entry.
type sequentialAnalyzer struct {
	querier  Querier
	errSel   string
	totSel   string
	interval time.Duration
	sprt     *stats.SPRT

	// baselined marks that the cumulative counters have been read once;
	// prevErr/prevTot are their values at the previous execution.
	baselined bool
	prevErr   float64
	prevTot   float64
}

var _ core.ResettableAnalyzer = (*sequentialAnalyzer)(nil)

// Reset implements core.ResettableAnalyzer.
func (a *sequentialAnalyzer) Reset() {
	a.sprt.Reset()
	a.baselined = false
	a.prevErr, a.prevTot = 0, 0
}

// Analyze implements core.Analyzer.
func (a *sequentialAnalyzer) Analyze(ctx context.Context) (core.Verdict, error) {
	errNow, err := a.querier.Query(ctx, a.errSel)
	if err != nil {
		return a.verdict(core.DecisionContinue,
			fmt.Sprintf("%s: %v", a.errSel, err)), nil
	}
	totNow, err := a.querier.Query(ctx, a.totSel)
	if err != nil {
		return a.verdict(core.DecisionContinue,
			fmt.Sprintf("%s: %v", a.totSel, err)), nil
	}
	if !a.baselined || errNow < a.prevErr || totNow < a.prevTot {
		// First execution, or a counter reset: record the baseline and
		// start observing from here.
		a.baselined = true
		a.prevErr, a.prevTot = errNow, totNow
		v := a.verdict(core.DecisionContinue, "")
		v.Detail = "baselined counters"
		return v, nil
	}
	failures := int(math.Round(errNow - a.prevErr))
	trials := int(math.Round(totNow - a.prevTot))
	a.prevErr, a.prevTot = errNow, totNow
	if trials <= 0 {
		v := a.verdict(core.DecisionContinue, "")
		v.Detail = "no traffic since last observation"
		return v, nil
	}
	switch a.sprt.Observe(failures, trials) {
	case stats.AcceptH0:
		v := a.verdict(core.DecisionPass, "")
		v.Detail = fmt.Sprintf("accepted H0 (healthy): llr %.3f ≤ %.3f", a.sprt.LLR(), a.sprt.Lower)
		return v, nil
	case stats.AcceptH1:
		v := a.verdict(core.DecisionFail, "")
		v.Detail = fmt.Sprintf("accepted H1 (degraded): llr %.3f ≥ %.3f", a.sprt.LLR(), a.sprt.Upper)
		return v, nil
	}
	v := a.verdict(core.DecisionContinue, "")
	v.Detail = fmt.Sprintf("undecided: llr %.3f in (%.3f, %.3f)", a.sprt.LLR(), a.sprt.Lower, a.sprt.Upper)
	return v, nil
}

// verdict snapshots the SPRT's accumulated evidence into a Verdict.
func (a *sequentialAnalyzer) verdict(d core.Decision, errMsg string) core.Verdict {
	totalFailures, totalTrials := a.sprt.Totals()
	ratio := 0.0
	if totalTrials > 0 {
		ratio = float64(totalFailures) / float64(totalTrials)
	}
	return core.Verdict{
		Decision:  d,
		Statistic: a.sprt.LLR(),
		LLR:       a.sprt.LLR(),
		Err:       errMsg,
		Windows: []core.WindowStat{{
			Name: "candidate", Window: a.interval,
			Count: float64(totalTrials), Value: ratio,
		}},
	}
}

// compileBurnRateCheck builds a `burnrate` element: the multi-window SLO
// error-budget burn-rate alert of SRE practice, wired to an automatic
// rollback.
func (pc *phaseCompiler) compileBurnRateCheck(m map[string]any, ctx string) (core.Check, bool) {
	d := pc.d
	d.unknownKeys(m, ctx, "name", "provider", "errors", "total", "slo",
		"shortWindow", "longWindow", "factor", "intervalTime", "intervalLimit",
		"weight", "fallback", "onInconclusive")

	c, querier, ok := pc.commonVerdictFields(m, ctx, core.BurnRateCheck)
	if !ok {
		return core.Check{}, false
	}
	c.Fallback = d.requireString(m, "fallback", ctx)
	errSel := d.instantSelector(m, "errors", ctx)
	totSel := d.instantSelector(m, "total", ctx)
	slo := d.getFloat(m, "slo", ctx, 0)
	if slo <= 0 || slo >= 100 {
		d.errf("%s: slo must be a success percentage in (0,100), got %v", ctx, slo)
	}
	short := d.getDuration(m, "shortWindow", ctx)
	long := d.getDuration(m, "longWindow", ctx)
	if short <= 0 {
		short = 5 * time.Minute
	}
	if long <= 0 {
		long = 12 * short
	}
	if long <= short {
		d.errf("%s: longWindow %v must exceed shortWindow %v", ctx, long, short)
	}
	factor := d.getFloat(m, "factor", ctx, 14.4)
	if factor <= 0 {
		d.errf("%s: factor must be positive, got %v", ctx, factor)
	}
	if len(d.problems) > 0 || errSel == "" || totSel == "" || c.Fallback == "" {
		return core.Check{}, false
	}
	c.Analyze = &burnRateAnalyzer{
		querier: querier,
		errSel:  errSel,
		totSel:  totSel,
		budget:  1 - slo/100,
		short:   short,
		long:    long,
		factor:  factor,
	}
	return c, true
}

// burnRateAnalyzer evaluates the two-window burn rate: the error budget
// consumption speed over a short and a long window. Only when both burn
// faster than `factor` does it fail — the short window makes detection
// fast, the long window keeps a brief spike from triggering rollback.
type burnRateAnalyzer struct {
	querier Querier
	errSel  string
	totSel  string
	budget  float64
	short   time.Duration
	long    time.Duration
	factor  float64
}

var _ core.Analyzer = (*burnRateAnalyzer)(nil)

// Analyze implements core.Analyzer.
func (a *burnRateAnalyzer) Analyze(ctx context.Context) (core.Verdict, error) {
	shortBurn, shortN, err := a.burn(ctx, a.short)
	if err != nil {
		return core.Verdict{Decision: core.DecisionContinue, Err: err.Error()}, nil
	}
	longBurn, longN, err := a.burn(ctx, a.long)
	if err != nil {
		return core.Verdict{Decision: core.DecisionContinue, Err: err.Error()}, nil
	}
	v := core.Verdict{
		Statistic: math.Min(shortBurn, longBurn),
		Windows: []core.WindowStat{
			{Name: "short", Window: a.short, Count: shortN, Value: shortBurn},
			{Name: "long", Window: a.long, Count: longN, Value: longBurn},
		},
	}
	if shortN <= 0 || longN <= 0 {
		v.Decision = core.DecisionContinue
		v.Detail = "no traffic in window"
		return v, nil
	}
	if shortBurn >= a.factor && longBurn >= a.factor {
		v.Decision = core.DecisionFail
		v.Detail = fmt.Sprintf("error budget burning %.1f×/%.1f× (short/long) ≥ %.1f×",
			shortBurn, longBurn, a.factor)
	} else {
		v.Decision = core.DecisionPass
		v.Detail = fmt.Sprintf("burn %.2f×/%.2f× (short/long) below %.1f×",
			shortBurn, longBurn, a.factor)
	}
	return v, nil
}

// compileChangePointCheck builds a `changepoint` element: E-Divisive means
// change-point detection over a sliding window of a query's trajectory,
// concluding the phase the moment the metric's distribution shifts.
func (pc *phaseCompiler) compileChangePointCheck(m map[string]any, ctx string) (core.Check, bool) {
	d := pc.d
	d.unknownKeys(m, ctx, "name", "provider", "query", "minPoints", "maxPoints",
		"permutations", "confidence", "minSegment", "seed", "intervalTime",
		"intervalLimit", "weight", "fallback", "onInconclusive")

	c, querier, ok := pc.commonVerdictFields(m, ctx, core.ChangePointCheck)
	if !ok {
		return core.Check{}, false
	}
	// A changepoint check that never detects a shift has seen stationary
	// traffic — evidence of health, not of failure. Unlike the other
	// statistical checks, inconclusive therefore defaults to pass; an
	// explicit onInconclusive still overrides.
	if _, set := m["onInconclusive"]; !set {
		c.InconclusivePass = true
	}
	c.Fallback = d.getString(m, "fallback", ctx)
	query := d.requireString(m, "query", ctx)

	minSegment := d.getInt(m, "minSegment", ctx, 5)
	if minSegment < 2 {
		d.errf("%s: minSegment must be ≥ 2, got %d", ctx, minSegment)
	}
	minPoints := d.getInt(m, "minPoints", ctx, 12)
	if minPoints < 2*minSegment {
		d.errf("%s: minPoints must be ≥ 2·minSegment (= %d), got %d", ctx, 2*minSegment, minPoints)
	}
	maxPoints := d.getInt(m, "maxPoints", ctx, 200)
	if maxPoints < minPoints {
		d.errf("%s: maxPoints %d must be ≥ minPoints %d", ctx, maxPoints, minPoints)
	}
	permutations := d.getInt(m, "permutations", ctx, 199)
	if permutations < 1 {
		d.errf("%s: permutations must be ≥ 1, got %d", ctx, permutations)
	}
	confidence := d.getFloat(m, "confidence", ctx, 0.95)
	if confidence <= 0 || confidence >= 1 {
		d.errf("%s: confidence must be in (0,1), got %v", ctx, confidence)
	}
	seed := d.getInt(m, "seed", ctx, 1)
	if len(d.problems) > 0 || query == "" {
		return core.Check{}, false
	}
	c.Analyze = &changePointAnalyzer{
		querier:      querier,
		query:        query,
		minPoints:    minPoints,
		maxPoints:    maxPoints,
		permutations: permutations,
		alpha:        1 - confidence,
		minSegment:   minSegment,
		seed:         int64(seed),
		interval:     c.Interval,
	}
	return c, true
}

// changePointAnalyzer accumulates the query's value at every execution
// into a sliding trajectory and scans it with E-Divisive means. Only a
// significant distribution shift concludes (DecisionFail); a stationary
// trajectory stays DecisionContinue for the whole state, so the check's
// weight resolves through onInconclusive (default pass). The conclusion
// is sticky, and the trajectory resets on state (re-)entry.
type changePointAnalyzer struct {
	querier      Querier
	query        string
	minPoints    int
	maxPoints    int
	permutations int
	alpha        float64
	minSegment   int
	seed         int64
	interval     time.Duration

	series    []float64
	concluded bool
	final     core.Verdict
}

var _ core.ResettableAnalyzer = (*changePointAnalyzer)(nil)

// Reset implements core.ResettableAnalyzer.
func (a *changePointAnalyzer) Reset() {
	a.series = a.series[:0]
	a.concluded = false
	a.final = core.Verdict{}
}

// Analyze implements core.Analyzer.
func (a *changePointAnalyzer) Analyze(ctx context.Context) (core.Verdict, error) {
	if a.concluded {
		return a.final, nil
	}
	v, err := a.querier.Query(ctx, a.query)
	if err != nil {
		// Keep the trajectory intact; a transient provider error must not
		// punch a hole in the series.
		return core.Verdict{Decision: core.DecisionContinue,
			Err: fmt.Sprintf("%s: %v", a.query, err)}, nil
	}
	a.series = append(a.series, v)
	if len(a.series) > a.maxPoints {
		a.series = a.series[len(a.series)-a.maxPoints:]
	}
	n := len(a.series)
	out := core.Verdict{Decision: core.DecisionContinue, Windows: []core.WindowStat{{
		Name: "trajectory", Window: a.interval, Count: float64(n), Value: v,
	}}}
	if n < a.minPoints {
		out.Detail = fmt.Sprintf("accumulating trajectory (%d/%d points)", n, a.minPoints)
		return out, nil
	}
	cp, err := stats.EDivisive(a.series, a.minSegment, a.permutations, a.seed)
	if err != nil {
		out.Err = err.Error()
		return out, nil
	}
	out.Statistic = cp.Stat
	out.PValue = cp.P
	if cp.P <= a.alpha {
		out.Decision = core.DecisionFail
		out.Detail = fmt.Sprintf("distribution shift at point %d/%d (Q=%.3f, p=%.4f ≤ α=%.4f)",
			cp.Index, n, cp.Stat, cp.P, a.alpha)
		a.concluded = true
		a.final = out
		return out, nil
	}
	out.Detail = fmt.Sprintf("no shift detected over %d points (Q=%.3f, p=%.4f)", n, cp.Stat, cp.P)
	return out, nil
}

// burn computes the burn-rate factor over one window: the observed error
// ratio divided by the SLO's error budget. It also returns the window's
// request count so callers can tell "no traffic" from "no errors".
func (a *burnRateAnalyzer) burn(ctx context.Context, window time.Duration) (float64, float64, error) {
	w := window.String()
	errInc, err := a.querier.Query(ctx, "increase("+a.errSel+"["+w+"])")
	if err != nil {
		return 0, 0, fmt.Errorf("errors over %s: %w", w, err)
	}
	totInc, err := a.querier.Query(ctx, "increase("+a.totSel+"["+w+"])")
	if err != nil {
		return 0, 0, fmt.Errorf("total over %s: %w", w, err)
	}
	if totInc <= 0 {
		return 0, 0, nil
	}
	return (errInc / totInc) / a.budget, totInc, nil
}
