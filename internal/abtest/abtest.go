// Package abtest provides the statistical machinery for deciding A/B test
// outcomes, following the practice the paper references (Kohavi et al.,
// "Online Controlled Experiments at Large Scale"): two-proportion z-tests
// for conversion-style metrics and Welch's t-test for continuous metrics,
// with two-sided p-values from the normal approximation.
package abtest

import (
	"errors"
	"fmt"
	"math"
)

// ErrInsufficientData is returned when a test lacks the samples to reason.
var ErrInsufficientData = errors.New("abtest: insufficient data")

// Verdict summarizes a significance test.
type Verdict struct {
	// Winner is "A", "B", or "" when not significant.
	Winner string
	// Statistic is the z or t statistic.
	Statistic float64
	// PValue is the two-sided p-value.
	PValue float64
	// Significant reports PValue < alpha.
	Significant bool
	// Effect is the observed difference (A − B) in the tested quantity.
	Effect float64
}

// String renders the verdict for status output.
func (v Verdict) String() string {
	if !v.Significant {
		return fmt.Sprintf("no significant difference (p=%.4f)", v.PValue)
	}
	return fmt.Sprintf("%s wins (p=%.4f, effect=%+.4f)", v.Winner, v.PValue, v.Effect)
}

// Proportions compares conversion counts: successesA of trialsA vs
// successesB of trialsB, at significance level alpha (e.g. 0.05), using the
// pooled two-proportion z-test.
func Proportions(successesA, trialsA, successesB, trialsB int, alpha float64) (Verdict, error) {
	if trialsA <= 0 || trialsB <= 0 ||
		successesA < 0 || successesB < 0 ||
		successesA > trialsA || successesB > trialsB {
		return Verdict{}, fmt.Errorf("%w: counts A=%d/%d B=%d/%d",
			ErrInsufficientData, successesA, trialsA, successesB, trialsB)
	}
	pA := float64(successesA) / float64(trialsA)
	pB := float64(successesB) / float64(trialsB)
	pooled := float64(successesA+successesB) / float64(trialsA+trialsB)
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(trialsA) + 1/float64(trialsB)))
	if se == 0 {
		// Identical all-or-nothing outcomes: no evidence of difference.
		return Verdict{PValue: 1, Effect: pA - pB}, nil
	}
	z := (pA - pB) / se
	return verdictFromStat(z, pA-pB, alpha), nil
}

// Summary holds the sufficient statistics of one variant's continuous
// metric (e.g. basket value, response time).
type Summary struct {
	N    int
	Mean float64
	// Var is the sample variance (n−1 denominator).
	Var float64
}

// Welch compares two continuous metrics with Welch's unequal-variance
// t-test, using the normal approximation for the p-value (fine for the
// sample sizes live testing produces).
func Welch(a, b Summary, alpha float64) (Verdict, error) {
	if a.N < 2 || b.N < 2 {
		return Verdict{}, fmt.Errorf("%w: n_A=%d n_B=%d", ErrInsufficientData, a.N, b.N)
	}
	if a.Var < 0 || b.Var < 0 {
		return Verdict{}, fmt.Errorf("abtest: negative variance")
	}
	se := math.Sqrt(a.Var/float64(a.N) + b.Var/float64(b.N))
	diff := a.Mean - b.Mean
	if se == 0 {
		if diff == 0 {
			return Verdict{PValue: 1}, nil
		}
		winner := "A"
		if diff < 0 {
			winner = "B"
		}
		return Verdict{Winner: winner, Statistic: math.Inf(sign(diff)),
			PValue: 0, Significant: true, Effect: diff}, nil
	}
	t := diff / se
	return verdictFromStat(t, diff, alpha), nil
}

// Summarize computes a Summary from raw samples.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	return Summary{N: n, Mean: mean, Var: ss / float64(n-1)}
}

func verdictFromStat(stat, effect, alpha float64) Verdict {
	p := 2 * (1 - normalCDF(math.Abs(stat)))
	v := Verdict{
		Statistic:   stat,
		PValue:      p,
		Significant: p < alpha,
		Effect:      effect,
	}
	if v.Significant {
		if effect > 0 {
			v.Winner = "A"
		} else {
			v.Winner = "B"
		}
	}
	return v
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

func sign(f float64) int {
	if f < 0 {
		return -1
	}
	return 1
}
