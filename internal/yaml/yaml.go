// Package yaml implements the YAML subset that hosts the Bifrost DSL.
//
// The paper (§4.2.2) builds the strategy language as an internal DSL "on top
// of YAML as a host language". Since this repository is standard-library
// only, the host language is implemented from scratch. The subset covers
// everything release strategies need:
//
//   - block mappings and block sequences with indentation structure,
//     including "- key:"-style mapping items inside sequences
//   - plain, single-quoted and double-quoted scalars
//   - scalar type inference (bool, int, float, null) with strings otherwise
//   - flow sequences [a, b] and flow mappings {a: b} (nested)
//   - literal (|) and folded (>) block scalars
//   - comments, blank lines, and an optional leading document marker (---)
//
// Values decode into untyped Go data: map[string]any, []any, string, int64,
// float64, bool, and nil. Encode renders the same shapes back into block
// YAML; Parse(Encode(v)) round-trips for all canonical values (see tests).
//
// Anchors, aliases, tags, multi-document streams and tab indentation are
// intentionally unsupported and produce errors.
package yaml

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SyntaxError reports a parse failure with a 1-based line number.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("yaml: line %d: %s", e.Line, e.Msg)
}

func errAt(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse decodes a YAML document into untyped Go data.
func Parse(src string) (any, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, nil
	}
	p := &parser{lines: lines}
	v, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, errAt(p.lines[p.pos].num, "unexpected content at indent %d", p.lines[p.pos].indent)
	}
	return v, nil
}

// ParseMap decodes a YAML document and requires the top level to be a
// mapping, which is what every Bifrost strategy file is.
func ParseMap(src string) (map[string]any, error) {
	v, err := Parse(src)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("yaml: document root is %T, want mapping", v)
	}
	return m, nil
}

type line struct {
	num     int // 1-based source line
	indent  int
	content string // comment-stripped, right-trimmed, non-empty
}

// splitLines preprocesses the source: strips comments (respecting quotes),
// drops blank lines and the leading document marker, rejects tab indents.
func splitLines(src string) ([]line, error) {
	raw := strings.Split(src, "\n")
	out := make([]line, 0, len(raw))
	for i, l := range raw {
		num := i + 1
		indent := 0
		for indent < len(l) && l[indent] == ' ' {
			indent++
		}
		if indent < len(l) && l[indent] == '\t' {
			return nil, errAt(num, "tab character in indentation")
		}
		content := stripComment(l[indent:])
		content = strings.TrimRight(content, " \r")
		if content == "" {
			continue
		}
		if content == "---" && len(out) == 0 {
			continue
		}
		out = append(out, line{num: num, indent: indent, content: content})
	}
	return out, nil
}

// stripComment removes a trailing "#"-comment that is outside quotes and at
// the start of the content or preceded by whitespace.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if !inDouble || !isEscaped(s, i) {
				inDouble = !inDouble
			}
		case c == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

func isEscaped(s string, i int) bool {
	backslashes := 0
	for j := i - 1; j >= 0 && s[j] == '\\'; j-- {
		backslashes++
	}
	return backslashes%2 == 1
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) cur() line { return p.lines[p.pos] }

func (p *parser) atEnd() bool { return p.pos >= len(p.lines) }

// parseBlock parses the value beginning at the current line, whose indent
// must be >= minIndent. The block's own indent is the first line's indent.
func (p *parser) parseBlock(minIndent int) (any, error) {
	if p.atEnd() {
		return nil, nil
	}
	l := p.cur()
	if l.indent < minIndent {
		return nil, nil
	}
	if l.content == "-" || strings.HasPrefix(l.content, "- ") {
		return p.parseSequence(l.indent)
	}
	if keyEnd, ok := findKeyColon(l.content); ok {
		return p.parseMapping(l.indent, keyEnd)
	}
	// Bare scalar document (or scalar block member).
	p.pos++
	return parseScalar(l.content, l.num)
}

// parseSequence parses "- item" lines at exactly indent.
func (p *parser) parseSequence(indent int) (any, error) {
	items := make([]any, 0, 4)
	for !p.atEnd() {
		l := p.cur()
		if l.indent != indent || (l.content != "-" && !strings.HasPrefix(l.content, "- ")) {
			if l.indent > indent {
				return nil, errAt(l.num, "unexpected indent inside sequence")
			}
			break
		}
		if l.content == "-" {
			// Value is the nested block on following lines.
			p.pos++
			v, err := p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
			continue
		}
		// Rewrite "- rest" as a virtual line indented past the dash, then
		// parse a block that may continue on following deeper lines.
		rest := strings.TrimLeft(l.content[1:], " ")
		dashOffset := len(l.content) - len(rest)
		p.lines[p.pos] = line{num: l.num, indent: l.indent + dashOffset, content: rest}
		v, err := p.parseBlock(indent + 1)
		if err != nil {
			return nil, err
		}
		items = append(items, v)
	}
	return items, nil
}

// parseMapping parses "key: value" lines at exactly indent. firstKeyEnd is
// the colon index in the current line, already located by the caller.
func (p *parser) parseMapping(indent, firstKeyEnd int) (any, error) {
	m := make(map[string]any, 8)
	keyEnd := firstKeyEnd
	first := true
	for !p.atEnd() {
		l := p.cur()
		if l.indent != indent {
			if l.indent > indent {
				return nil, errAt(l.num, "unexpected indent inside mapping")
			}
			break
		}
		if !first {
			var ok bool
			keyEnd, ok = findKeyColon(l.content)
			if !ok {
				return nil, errAt(l.num, "expected \"key:\" in mapping, got %q", l.content)
			}
		}
		first = false
		key, err := parseKey(l.content[:keyEnd], l.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, errAt(l.num, "duplicate mapping key %q", key)
		}
		rest := strings.TrimLeft(l.content[keyEnd+1:], " ")
		switch {
		case rest == "":
			p.pos++
			v, err := p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		case rest == "|" || rest == ">":
			p.pos++
			v, err := p.parseBlockScalar(indent, rest == "|")
			if err != nil {
				return nil, err
			}
			m[key] = v
		default:
			p.pos++
			v, err := parseScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
	}
	return m, nil
}

// parseBlockScalar consumes the indented lines of a literal (|) or folded
// (>) scalar whose introducing key sat at parentIndent.
func (p *parser) parseBlockScalar(parentIndent int, literal bool) (string, error) {
	var parts []string
	blockIndent := -1
	for !p.atEnd() {
		l := p.cur()
		if l.indent <= parentIndent {
			break
		}
		if blockIndent == -1 {
			blockIndent = l.indent
		}
		if l.indent < blockIndent {
			return "", errAt(l.num, "inconsistent indentation in block scalar")
		}
		parts = append(parts, strings.Repeat(" ", l.indent-blockIndent)+l.content)
		p.pos++
	}
	if literal {
		return strings.Join(parts, "\n"), nil
	}
	return strings.Join(parts, " "), nil
}

// findKeyColon locates the colon terminating a mapping key: the first
// unquoted ':' that is at end-of-line or followed by a space.
func findKeyColon(s string) (int, bool) {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if !inDouble || !isEscaped(s, i) {
				inDouble = !inDouble
			}
		case c == ':' && !inSingle && !inDouble:
			if i == len(s)-1 || s[i+1] == ' ' {
				return i, true
			}
		}
	}
	return 0, false
}

func parseKey(s string, num int) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		v, rest, err := parseQuoted(s, num)
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(rest) != "" {
			return "", errAt(num, "trailing characters after quoted key")
		}
		return v, nil
	}
	if s == "" {
		return "", errAt(num, "empty mapping key")
	}
	return s, nil
}

// parseScalar parses a flow value: quoted string, flow collection, or plain
// scalar with type inference.
func parseScalar(s string, num int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '"' || s[0] == '\'':
		v, rest, err := parseQuoted(s, num)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, errAt(num, "trailing characters after quoted scalar")
		}
		return v, nil
	case s[0] == '[':
		v, rest, err := parseFlow(s, num)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, errAt(num, "trailing characters after flow sequence")
		}
		return v, nil
	case s[0] == '{':
		v, rest, err := parseFlow(s, num)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, errAt(num, "trailing characters after flow mapping")
		}
		return v, nil
	case s[0] == '&' || s[0] == '*' || s[0] == '!':
		return nil, errAt(num, "anchors, aliases and tags are not supported")
	default:
		return inferScalar(s), nil
	}
}

// parseQuoted parses a leading quoted string and returns the remainder.
func parseQuoted(s string, num int) (string, string, error) {
	quote := s[0]
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch {
		case quote == '\'' && c == '\'':
			if i+1 < len(s) && s[i+1] == '\'' { // escaped quote
				b.WriteByte('\'')
				i += 2
				continue
			}
			return b.String(), s[i+1:], nil
		case quote == '"' && c == '\\':
			if i+1 >= len(s) {
				return "", "", errAt(num, "dangling escape in double-quoted string")
			}
			esc, width, err := decodeEscape(s[i+1:], num)
			if err != nil {
				return "", "", err
			}
			b.WriteString(esc)
			i += 1 + width
		case quote == '"' && c == '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", errAt(num, "unterminated quoted string")
}

func decodeEscape(s string, num int) (string, int, error) {
	switch s[0] {
	case 'n':
		return "\n", 1, nil
	case 't':
		return "\t", 1, nil
	case 'r':
		return "\r", 1, nil
	case '0':
		return "\x00", 1, nil
	case '\\':
		return "\\", 1, nil
	case '"':
		return "\"", 1, nil
	case 'u':
		if len(s) < 5 {
			return "", 0, errAt(num, "truncated \\u escape")
		}
		code, err := strconv.ParseUint(s[1:5], 16, 32)
		if err != nil {
			return "", 0, errAt(num, "invalid \\u escape %q", s[1:5])
		}
		return string(rune(code)), 5, nil
	default:
		return "", 0, errAt(num, "unsupported escape \\%c", s[0])
	}
}

// parseFlow parses a flow collection starting at s[0] ('[' or '{').
func parseFlow(s string, num int) (any, string, error) {
	if s[0] == '[' {
		items := make([]any, 0, 4)
		rest := strings.TrimLeft(s[1:], " ")
		if strings.HasPrefix(rest, "]") {
			return items, rest[1:], nil
		}
		for {
			v, r, err := parseFlowValue(rest, num)
			if err != nil {
				return nil, "", err
			}
			items = append(items, v)
			rest = strings.TrimLeft(r, " ")
			switch {
			case strings.HasPrefix(rest, ","):
				rest = strings.TrimLeft(rest[1:], " ")
			case strings.HasPrefix(rest, "]"):
				return items, rest[1:], nil
			default:
				return nil, "", errAt(num, "expected ',' or ']' in flow sequence")
			}
		}
	}
	// Flow mapping.
	m := make(map[string]any, 4)
	rest := strings.TrimLeft(s[1:], " ")
	if strings.HasPrefix(rest, "}") {
		return m, rest[1:], nil
	}
	for {
		colon := strings.Index(rest, ":")
		if colon < 0 {
			return nil, "", errAt(num, "expected ':' in flow mapping")
		}
		key, err := parseKey(rest[:colon], num)
		if err != nil {
			return nil, "", err
		}
		v, r, err := parseFlowValue(strings.TrimLeft(rest[colon+1:], " "), num)
		if err != nil {
			return nil, "", err
		}
		m[key] = v
		rest = strings.TrimLeft(r, " ")
		switch {
		case strings.HasPrefix(rest, ","):
			rest = strings.TrimLeft(rest[1:], " ")
		case strings.HasPrefix(rest, "}"):
			return m, rest[1:], nil
		default:
			return nil, "", errAt(num, "expected ',' or '}' in flow mapping")
		}
	}
}

func parseFlowValue(s string, num int) (any, string, error) {
	if s == "" {
		return nil, "", errAt(num, "missing value in flow collection")
	}
	switch s[0] {
	case '[', '{':
		return parseFlow(s, num)
	case '"', '\'':
		v, rest, err := parseQuoted(s, num)
		return v, rest, err
	default:
		end := strings.IndexAny(s, ",]}")
		if end < 0 {
			end = len(s)
		}
		return inferScalar(strings.TrimSpace(s[:end])), s[end:], nil
	}
}

// inferScalar applies YAML-style type inference to a plain scalar.
func inferScalar(s string) any {
	switch s {
	case "null", "Null", "NULL", "~":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		if i, err := strconv.ParseInt(s[2:], 16, 64); err == nil {
			return i
		}
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil &&
		strings.ContainsAny(s, ".eE") && !strings.ContainsAny(s, " ") {
		return f
	}
	return s
}

// Encode renders v as a block-style YAML document.
// Supported value types are the ones Parse produces; unsupported types
// return an error.
func Encode(v any) (string, error) {
	var b strings.Builder
	if err := encodeValue(&b, v, 0, false); err != nil {
		return "", err
	}
	return b.String(), nil
}

var errUnsupported = errors.New("yaml: unsupported value type")

func encodeValue(b *strings.Builder, v any, indent int, inline bool) error {
	switch t := v.(type) {
	case nil:
		b.WriteString("null\n")
	case bool:
		b.WriteString(strconv.FormatBool(t))
		b.WriteByte('\n')
	case int:
		b.WriteString(strconv.Itoa(t))
		b.WriteByte('\n')
	case int64:
		b.WriteString(strconv.FormatInt(t, 10))
		b.WriteByte('\n')
	case float64:
		b.WriteString(formatFloat(t))
		b.WriteByte('\n')
	case string:
		b.WriteString(quoteIfNeeded(t))
		b.WriteByte('\n')
	case []any:
		if len(t) == 0 {
			b.WriteString("[]\n")
			return nil
		}
		if inline {
			b.WriteByte('\n')
		}
		for _, item := range t {
			pad(b, indent)
			b.WriteString("- ")
			if isComposite(item) {
				// Render the composite starting on the same line.
				if err := encodeInlineComposite(b, item, indent+2); err != nil {
					return err
				}
				continue
			}
			if err := encodeValue(b, item, indent+2, false); err != nil {
				return err
			}
		}
	case map[string]any:
		if len(t) == 0 {
			b.WriteString("{}\n")
			return nil
		}
		if inline {
			b.WriteByte('\n')
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pad(b, indent)
			b.WriteString(quoteIfNeeded(k))
			b.WriteByte(':')
			val := t[k]
			if isComposite(val) && !isEmptyComposite(val) {
				b.WriteByte('\n')
				if err := encodeValue(b, val, indent+2, false); err != nil {
					return err
				}
				continue
			}
			b.WriteByte(' ')
			if err := encodeValue(b, val, indent+2, false); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: %T", errUnsupported, v)
	}
	return nil
}

// encodeInlineComposite writes a composite value whose first line shares the
// "- " prefix already emitted by the caller.
func encodeInlineComposite(b *strings.Builder, v any, indent int) error {
	switch t := v.(type) {
	case map[string]any:
		if len(t) == 0 {
			b.WriteString("{}\n")
			return nil
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				pad(b, indent)
			}
			b.WriteString(quoteIfNeeded(k))
			b.WriteByte(':')
			val := t[k]
			if isComposite(val) && !isEmptyComposite(val) {
				b.WriteByte('\n')
				if err := encodeValue(b, val, indent+2, false); err != nil {
					return err
				}
				continue
			}
			b.WriteByte(' ')
			if err := encodeValue(b, val, indent+2, false); err != nil {
				return err
			}
		}
		return nil
	case []any:
		if len(t) == 0 {
			b.WriteString("[]\n")
			return nil
		}
		for i, item := range t {
			if i > 0 {
				pad(b, indent)
			}
			b.WriteString("- ")
			if isComposite(item) {
				if err := encodeInlineComposite(b, item, indent+2); err != nil {
					return err
				}
				continue
			}
			if err := encodeValue(b, item, indent+2, false); err != nil {
				return err
			}
		}
		return nil
	default:
		return encodeValue(b, v, indent, false)
	}
}

func isComposite(v any) bool {
	switch v.(type) {
	case map[string]any, []any:
		return true
	}
	return false
}

func isEmptyComposite(v any) bool {
	switch t := v.(type) {
	case map[string]any:
		return len(t) == 0
	case []any:
		return len(t) == 0
	}
	return false
}

func pad(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteByte(' ')
	}
}

func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Force a float marker so Parse round-trips the type.
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

// quoteIfNeeded quotes strings that would otherwise be re-typed or
// structurally misread by Parse.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if _, isPlain := inferScalar(s).(string); !isPlain {
		return strconv.Quote(s)
	}
	if strings.ContainsAny(s, "\n\t\"'#") || findNeedsQuote(s) {
		return strconv.Quote(s)
	}
	if s != strings.TrimSpace(s) {
		return strconv.Quote(s)
	}
	return s
}

func findNeedsQuote(s string) bool {
	if idx, ok := findKeyColon(s); ok && idx >= 0 {
		return true
	}
	switch s[0] {
	case '[', '{', ']', '}', '&', '*', '!', '-', '>', '|', '%', '@', ',':
		return true
	}
	return strings.HasPrefix(s, "- ")
}
