// Package stats implements the statistical machinery behind Bifrost's
// verdict checks: Welch's two-sample t-test (the `compare` check), Wald's
// sequential probability ratio test (the `sequential` A/B gate),
// E-Divisive means change-point detection with permutation significance
// (the `changepoint` check), and the P² streaming quantile estimator used
// by windowed quantile queries in the metrics store.
//
// Everything here is pure math on float64s — no I/O, no clocks — so the
// dsl and metrics packages can compose it freely and tests can pin exact
// numerical behavior.
package stats

import (
	"fmt"
	"math"
)

// TTest is the result of a two-sample Welch t-test.
type TTest struct {
	// T is the test statistic (mean1 − mean2 over the pooled standard
	// error). Positive means sample 1's mean is larger.
	T float64
	// DF is the Welch–Satterthwaite effective degrees of freedom.
	DF float64
	// P is the one-sided p-value for the alternative "mean1 > mean2":
	// the probability of observing a statistic at least as large as T
	// under the null hypothesis of equal means.
	P float64
}

// Welch computes Welch's unequal-variance t-test from summary statistics
// of two samples: sizes n1/n2, means, and (unbiased) sample variances.
// Both samples need at least two observations and a finite, non-negative
// variance; otherwise an error is returned.
func Welch(n1 int, mean1, var1 float64, n2 int, mean2, var2 float64) (TTest, error) {
	if n1 < 2 || n2 < 2 {
		return TTest{}, fmt.Errorf("stats: welch needs ≥ 2 samples per arm (got %d, %d)", n1, n2)
	}
	if var1 < 0 || var2 < 0 || math.IsNaN(var1) || math.IsNaN(var2) {
		return TTest{}, fmt.Errorf("stats: welch needs non-negative variances (got %v, %v)", var1, var2)
	}
	se1 := var1 / float64(n1)
	se2 := var2 / float64(n2)
	se := se1 + se2
	if se == 0 {
		// Both samples are constant. Equal means → no evidence either
		// way (p = 0.5); unequal constant means → certain difference.
		t := TTest{DF: float64(n1 + n2 - 2)}
		switch {
		case mean1 > mean2:
			t.T, t.P = math.Inf(1), 0
		case mean1 < mean2:
			t.T, t.P = math.Inf(-1), 1
		default:
			t.P = 0.5
		}
		return t, nil
	}
	t := (mean1 - mean2) / math.Sqrt(se)
	// Welch–Satterthwaite approximation.
	df := se * se / (se1*se1/float64(n1-1) + se2*se2/float64(n2-1))
	return TTest{T: t, DF: df, P: 1 - StudentTCDF(t, df)}, nil
}

// StudentTCDF is the cumulative distribution function of Student's t
// distribution with df degrees of freedom, evaluated at t.
func StudentTCDF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	// P(T ≤ t) via the regularized incomplete beta function:
	// for t ≥ 0, P = 1 − ½·I_x(df/2, ½) with x = df/(df+t²).
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t >= 0 {
		return 1 - p
	}
	return p
}

// RegIncBeta is the regularized incomplete beta function I_x(a, b),
// computed with the continued-fraction expansion (Numerical Recipes §6.4,
// modified Lentz's method).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	// The continued fraction converges fastest for x < (a+1)/(a+b+2);
	// otherwise use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz's method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
