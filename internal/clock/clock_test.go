package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)

func TestManualNowAdvance(t *testing.T) {
	m := NewManual(epoch)
	if !m.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", m.Now(), epoch)
	}
	m.Advance(90 * time.Second)
	want := epoch.Add(90 * time.Second)
	if !m.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", m.Now(), want)
	}
}

func TestManualTimerFiresOnce(t *testing.T) {
	m := NewManual(epoch)
	tm := m.NewTimer(10 * time.Second)
	m.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	m.Advance(2 * time.Second)
	select {
	case at := <-tm.C():
		if want := epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Errorf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire")
	}
	m.Advance(time.Minute)
	select {
	case <-tm.C():
		t.Fatal("one-shot timer fired twice")
	default:
	}
}

func TestManualTimerStop(t *testing.T) {
	m := NewManual(epoch)
	tm := m.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on live timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	m.Advance(time.Minute)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestManualTickerPeriodic(t *testing.T) {
	m := NewManual(epoch)
	tk := m.NewTicker(5 * time.Second)
	defer tk.Stop()

	fired := 0
	for i := 0; i < 3; i++ {
		m.Advance(5 * time.Second)
		select {
		case <-tk.C():
			fired++
		default:
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestManualTickerDropsWhenNotDrained(t *testing.T) {
	m := NewManual(epoch)
	tk := m.NewTicker(time.Second)
	defer tk.Stop()
	// Three periods elapse without the receiver draining; like time.Ticker,
	// only one tick must be buffered.
	m.Advance(3 * time.Second)
	got := 0
	for {
		select {
		case <-tk.C():
			got++
			continue
		default:
		}
		break
	}
	if got != 1 {
		t.Fatalf("buffered ticks = %d, want 1", got)
	}
}

func TestManualFiresInChronologicalOrder(t *testing.T) {
	m := NewManual(epoch)
	late := m.NewTimer(20 * time.Second)
	early := m.NewTimer(10 * time.Second)
	m.Advance(30 * time.Second)

	at1 := <-early.C()
	at2 := <-late.C()
	if !at1.Before(at2) {
		t.Fatalf("fire order wrong: early=%v late=%v", at1, at2)
	}
}

func TestManualAfter(t *testing.T) {
	m := NewManual(epoch)
	ch := m.After(time.Minute)
	m.Advance(time.Minute)
	select {
	case <-ch:
	default:
		t.Fatal("After channel did not fire")
	}
}

func TestManualSince(t *testing.T) {
	m := NewManual(epoch)
	start := m.Now()
	m.Advance(42 * time.Second)
	if got := m.Since(start); got != 42*time.Second {
		t.Fatalf("Since = %v, want 42s", got)
	}
}

func TestManualAdvanceUntilIdle(t *testing.T) {
	m := NewManual(epoch)
	tm := m.NewTimer(3 * time.Second)
	steps := m.AdvanceUntilIdle(time.Second, 100)
	if steps == 0 || steps == 100 {
		t.Fatalf("steps = %d, want a small positive number", steps)
	}
	select {
	case <-tm.C():
	default:
		t.Fatal("timer never fired during AdvanceUntilIdle")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Real
	start := c.Now()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	if c.Since(start) <= 0 {
		t.Fatal("Since returned non-positive duration")
	}
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real ticker did not fire")
	}
	tk.Stop()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("After did not fire")
	}
}
