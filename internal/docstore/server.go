package docstore

import (
	"errors"
	"net/http"

	"bifrost/internal/httpx"
)

// Server exposes the store over HTTP so it behaves like the MongoDB
// container in the paper's deployment: another web-based service that can
// sit behind a Bifrost proxy and receive shadowed traffic.
//
//	POST   /db/{collection}            insert document
//	GET    /db/{collection}/{id}       fetch by id
//	POST   /db/{collection}/find       query (JSON filter body)
//	PATCH  /db/{collection}/{id}       merge fields
//	DELETE /db/{collection}/{id}       delete
//	GET    /-/healthy                  liveness
type Server struct {
	store *Store
}

// NewServer wraps a store.
func NewServer(store *Store) *Server { return &Server{store: store} }

// FindRequest is the query body of POST /db/{collection}/find.
type FindRequest struct {
	Equals map[string]any `json:"equals,omitempty"`
	Ops    []OpRequest    `json:"ops,omitempty"`
	Limit  int            `json:"limit,omitempty"`
}

// OpRequest is one comparison in a FindRequest.
type OpRequest struct {
	Field string `json:"field"`
	Op    string `json:"op"`
	Value any    `json:"value"`
}

// Handler returns the HTTP facade.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /db/{collection}/find", s.handleFind)
	mux.HandleFunc("POST /db/{collection}", s.handleInsert)
	mux.HandleFunc("GET /db/{collection}/{id}", s.handleGet)
	mux.HandleFunc("PATCH /db/{collection}/{id}", s.handleUpdate)
	mux.HandleFunc("DELETE /db/{collection}/{id}", s.handleDelete)
	mux.HandleFunc("GET /-/healthy", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var doc Document
	if err := httpx.ReadJSON(r, &doc); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := s.store.Insert(r.PathValue("collection"), doc)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrDuplicateID) {
			status = http.StatusConflict
		}
		httpx.WriteError(w, status, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, map[string]string{"_id": id})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	doc, err := s.store.Get(r.PathValue("collection"), r.PathValue("id"))
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusOK, doc)
}

func (s *Server) handleFind(w http.ResponseWriter, r *http.Request) {
	var req FindRequest
	if err := httpx.ReadJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	f := &Filter{Equals: req.Equals}
	for _, op := range req.Ops {
		f.Ops = append(f.Ops, FilterOp(op))
	}
	docs, err := s.store.Find(r.PathValue("collection"), f, req.Limit)
	if err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if docs == nil {
		docs = []Document{}
	}
	httpx.WriteJSON(w, http.StatusOK, docs)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var fields Document
	if err := httpx.ReadJSON(r, &fields); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	err := s.store.Update(r.PathValue("collection"), r.PathValue("id"), fields)
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"updated": r.PathValue("id")})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	err := s.store.Delete(r.PathValue("collection"), r.PathValue("id"))
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}
