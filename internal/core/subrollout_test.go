package core

import (
	"strings"
	"testing"
	"time"
)

// flatChild builds a minimal valid flat strategy usable as a sub-rollout
// child.
func flatChild(name string) *Strategy {
	return &Strategy{
		Name: name,
		Services: []Service{{
			Name:     "svc",
			Versions: []Version{{Name: "stable"}, {Name: "canary"}},
		}},
		Automaton: Automaton{
			Start: "canary",
			States: []State{
				{
					ID:          "canary",
					Duration:    time.Minute,
					Thresholds:  []int{0},
					Transitions: []string{"fallback", "full"},
				},
				{ID: "full"},
				{ID: "fallback"},
			},
			Finals: []string{"full", "fallback"},
		},
	}
}

// hierParent wraps children into a parent with one sub-rollout state.
func hierParent(name string, sub *SubRollout) *Strategy {
	return &Strategy{
		Name: name,
		Services: []Service{{
			Name:     "svc",
			Versions: []Version{{Name: "stable"}, {Name: "canary"}},
		}},
		Automaton: Automaton{
			Start: "regions",
			States: []State{
				{
					ID:          "regions",
					Sub:         sub,
					Thresholds:  []int{0},
					Transitions: []string{"holdback", "done"},
				},
				{ID: "done"},
				{ID: "holdback"},
			},
			Finals: []string{"done", "holdback"},
		},
	}
}

func TestSubRolloutValidates(t *testing.T) {
	s := hierParent("multi", &SubRollout{
		Children: []ChildRef{
			{Name: "multi-eu", Region: "eu", SuccessFinal: "full", Strategy: flatChild("multi-eu")},
			{Name: "multi-us", Region: "us", SuccessFinal: "full", Strategy: flatChild("multi-us")},
			{Name: "multi-ap", Region: "ap", SuccessFinal: "full", Strategy: flatChild("multi-ap")},
		},
		Quorum:      2,
		OnChildFail: ChildFailFallback,
	})
	if err := s.Validate(); err != nil {
		t.Fatalf("valid hierarchical strategy rejected: %v", err)
	}

	reach := s.ReachableStates()
	for _, id := range []string{"regions", "done", "holdback",
		"multi-eu/canary", "multi-eu/full", "multi-eu/fallback", "multi-ap/canary"} {
		if !reach[id] {
			t.Errorf("ReachableStates missing %q: %v", id, reach)
		}
	}
}

func TestSubRolloutValidationProblems(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Strategy)
		want string
	}{
		{"empty children", func(s *Strategy) {
			s.Automaton.States[0].Sub.Children = nil
		}, "no children"},
		{"quorum too high", func(s *Strategy) {
			s.Automaton.States[0].Sub.Quorum = 5
		}, "quorum 5 out of range"},
		{"bad policy", func(s *Strategy) {
			s.Automaton.States[0].Sub.OnChildFail = "explode"
		}, "not fallback|abort|continue"},
		{"checks forbidden", func(s *Strategy) {
			s.Automaton.States[0].Checks = []Check{{Name: "x", Kind: BasicCheck, Eval: ConstEvaluator(true)}}
		}, "cannot have checks"},
		{"duration forbidden", func(s *Strategy) {
			s.Automaton.States[0].Duration = time.Minute
		}, "cannot have a duration"},
		{"duplicate child", func(s *Strategy) {
			s.Automaton.States[0].Sub.Children[1] = s.Automaton.States[0].Sub.Children[0]
		}, "duplicate sub-rollout child"},
		{"cycle to parent", func(s *Strategy) {
			s.Automaton.States[0].Sub.Children[0].Name = "multi"
		}, "cycles back to an ancestor"},
		{"missing child strategy", func(s *Strategy) {
			s.Automaton.States[0].Sub.Children[0].Strategy = nil
		}, "has no strategy"},
		{"bad success final", func(s *Strategy) {
			s.Automaton.States[0].Sub.Children[0].SuccessFinal = "nope"
		}, "is not a final state"},
		{"invalid child bubbles up", func(s *Strategy) {
			s.Automaton.States[0].Sub.Children[0].Strategy.Automaton.Start = "missing"
		}, `child "multi-eu"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := hierParent("multi", &SubRollout{
				Children: []ChildRef{
					{Name: "multi-eu", SuccessFinal: "full", Strategy: flatChild("multi-eu")},
					{Name: "multi-us", SuccessFinal: "full", Strategy: flatChild("multi-us")},
				},
				Quorum: 1,
			})
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("want validation error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSubRolloutDepthLimit(t *testing.T) {
	// A child that itself contains a sub-rollout makes the nesting three
	// levels deep — over MaxSubRolloutDepth.
	grand := flatChild("grand")
	mid := hierParent("mid", &SubRollout{
		Children: []ChildRef{{Name: "grand", SuccessFinal: "full", Strategy: grand}},
	})
	top := hierParent("top", &SubRollout{
		Children: []ChildRef{{Name: "mid", SuccessFinal: "done", Strategy: mid}},
	})
	err := top.Validate()
	if err == nil {
		t.Fatal("depth-3 nesting accepted")
	}
	if !strings.Contains(err.Error(), "nested deeper than 2") {
		t.Errorf("error %q does not mention the depth limit", err)
	}

	// Two levels (top containing flat children) stay legal.
	if err := mid.Validate(); err != nil {
		t.Errorf("depth-2 nesting rejected: %v", err)
	}
}

func TestSubRolloutDefaults(t *testing.T) {
	sr := &SubRollout{Children: []ChildRef{{Name: "a"}, {Name: "b"}, {Name: "c"}}}
	if got := sr.QuorumOrAll(); got != 3 {
		t.Errorf("QuorumOrAll = %d, want 3 (all)", got)
	}
	sr.Quorum = 2
	if got := sr.QuorumOrAll(); got != 2 {
		t.Errorf("QuorumOrAll = %d, want 2", got)
	}
	if got := sr.FailPolicy(); got != ChildFailFallback {
		t.Errorf("FailPolicy = %q, want fallback default", got)
	}
	c := &ChildRef{Name: "rollout-eu"}
	if c.RegionOrName() != "rollout-eu" {
		t.Errorf("RegionOrName fallback = %q", c.RegionOrName())
	}
	c.Region = "eu"
	if c.RegionOrName() != "eu" {
		t.Errorf("RegionOrName = %q, want eu", c.RegionOrName())
	}
}
