// Package lease implements file-backed run-ownership leases for the HA
// engine: each run is owned by at most one engine replica at a time, the
// owner renews its lease ahead of the TTL, and a dead owner's expired lease
// can be stolen by a survivor. Every successful acquisition — first claim,
// steal, or re-claim by a restarted owner — increments the lease's fencing
// token, which the journal partition uses to reject appends from the
// previous owner's zombie process (journal.ErrFenced).
//
// The store is deliberately primitive: one JSON file per run under a shared
// directory, mutations serialized by a flock on the directory's lock file
// and made atomic with tmp+rename. That matches the rest of Bifrost's
// durability toolbox (no external coordination service) and is exactly as
// available as the shared journal directory the replicas already need.
package lease

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"bifrost/internal/clock"
)

// Record is one run's lease: who owns it, until when, and the fencing token
// of the current ownership epoch.
type Record struct {
	Run     string    `json:"run"`
	Holder  string    `json:"holder"`
	Token   int64     `json:"token"`
	Expires time.Time `json:"expires"`
}

// Expired reports whether the lease has lapsed at time now.
func (r Record) Expired(now time.Time) bool { return !now.Before(r.Expires) }

var (
	// ErrHeld is returned by Acquire when another holder's live lease covers
	// the run.
	ErrHeld = errors.New("lease: held by another replica")
	// ErrLost is returned by Renew and Release when the caller's
	// holder/token pair no longer matches the stored lease: ownership moved
	// on and the caller must stop acting on the run.
	ErrLost = errors.New("lease: lost")
)

// Store reads and writes lease records under one directory.
type Store struct {
	dir string
	clk clock.Clock
}

// Option configures a Store.
type Option func(*Store)

// WithClock injects the clock used for TTL arithmetic (tests use
// clock.Manual).
func WithClock(c clock.Clock) Option {
	return func(s *Store) { s.clk = c }
}

// Open opens (or creates) the lease directory.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: %w", err)
	}
	s := &Store{dir: dir, clk: clock.Real{}}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Acquire claims run for holder with the given TTL. It succeeds when the
// run has no lease, the existing lease expired, or holder already owns it
// (a restarted owner re-claiming its shard). Every success installs a new
// ownership epoch: the returned record's Token is strictly greater than any
// token previously issued for the run, so journal fencing can distinguish
// the new owner from its predecessor — including a predecessor incarnation
// of the same holder.
func (s *Store) Acquire(run, holder string, ttl time.Duration) (Record, error) {
	var out Record
	err := s.withLock(func() error {
		cur, ok, err := s.read(run)
		if err != nil {
			return err
		}
		now := s.clk.Now()
		if ok && cur.Holder != holder && !cur.Expired(now) {
			return fmt.Errorf("%w: %s owned by %s until %s", ErrHeld, run, cur.Holder, cur.Expires.Format(time.RFC3339))
		}
		out = Record{Run: run, Holder: holder, Token: cur.Token + 1, Expires: now.Add(ttl)}
		return s.write(out)
	})
	return out, err
}

// Renew extends holder's lease on run. The stored lease must still carry
// the caller's holder and token — if another replica stole the run (or the
// caller's own restart re-acquired it under a new token), Renew fails with
// ErrLost and the caller must drop the run.
func (s *Store) Renew(run, holder string, token int64, ttl time.Duration) (Record, error) {
	var out Record
	err := s.withLock(func() error {
		cur, ok, err := s.read(run)
		if err != nil {
			return err
		}
		if !ok || cur.Holder != holder || cur.Token != token {
			return fmt.Errorf("%w: %s", ErrLost, run)
		}
		out = Record{Run: run, Holder: holder, Token: token, Expires: s.clk.Now().Add(ttl)}
		return s.write(out)
	})
	return out, err
}

// Release drops holder's lease on run so another replica can claim it
// without waiting out the TTL. Releasing a lease that already moved on
// fails with ErrLost; releasing a missing lease is a no-op.
func (s *Store) Release(run, holder string, token int64) error {
	return s.withLock(func() error {
		cur, ok, err := s.read(run)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if cur.Holder != holder || cur.Token != token {
			return fmt.Errorf("%w: %s", ErrLost, run)
		}
		// Expire in place rather than deleting: the token sequence must
		// survive the release so the next acquisition still fences this
		// epoch's writer.
		cur.Expires = s.clk.Now()
		return s.write(cur)
	})
}

// Get returns run's lease record, if one exists (expired or not).
func (s *Store) Get(run string) (Record, bool, error) {
	var (
		out Record
		ok  bool
	)
	err := s.withLock(func() error {
		var err error
		out, ok, err = s.read(run)
		return err
	})
	return out, ok, err
}

// List returns every lease record, sorted by run name.
func (s *Store) List() ([]Record, error) {
	var out []Record
	err := s.withLock(func() error {
		entries, err := os.ReadDir(s.dir)
		if err != nil {
			return fmt.Errorf("lease: %w", err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), leaseSuffix) {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
			if err != nil {
				continue
			}
			var rec Record
			if json.Unmarshal(raw, &rec) != nil {
				continue // torn write never happens (tmp+rename); damaged disk: skip
			}
			out = append(out, rec)
		}
		return nil
	})
	sort.Slice(out, func(a, b int) bool { return out[a].Run < out[b].Run })
	return out, err
}

const (
	leaseSuffix = ".lease"
	lockName    = ".lock"
)

// withLock runs fn while holding the directory's flock: lease mutations are
// read-modify-write cycles, and the flock makes them atomic across replica
// processes sharing the directory.
func (s *Store) withLock(fn func() error) error {
	f, err := os.OpenFile(filepath.Join(s.dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("lease: %w", err)
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("lease: lock: %w", err)
	}
	defer func() { _ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }()
	return fn()
}

func (s *Store) path(run string) string {
	return filepath.Join(s.dir, encodeLeaseName(run)+leaseSuffix)
}

func (s *Store) read(run string) (Record, bool, error) {
	raw, err := os.ReadFile(s.path(run))
	if os.IsNotExist(err) {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, fmt.Errorf("lease: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, false, fmt.Errorf("lease: corrupt record for %s: %w", run, err)
	}
	return rec, true, nil
}

// write installs a record atomically (tmp + rename + dir sync): a crash
// mid-write can never leave a torn lease that both sides read differently.
func (s *Store) write(rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("lease: %w", err)
	}
	final := s.path(rec.Run)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lease: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("lease: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lease: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lease: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("lease: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// encodeLeaseName mirrors the journal's partition-name encoding so a run's
// lease file and partition directory are recognizably the same run on disk.
func encodeLeaseName(run string) string {
	var b strings.Builder
	for i := 0; i < len(run); i++ {
		c := run[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.' && i > 0:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}
