package engine

import (
	"sync"
	"time"

	"bifrost/internal/core"
)

// EventType classifies engine events.
type EventType string

// Engine event types, published on the event bus and shown by the CLI and
// dashboard.
const (
	EventStateEntered       EventType = "state_entered"
	EventRoutingApplied     EventType = "routing_applied"
	EventCheckExecuted      EventType = "check_executed"
	EventExceptionTriggered EventType = "exception_triggered"
	// EventCheckConcluded marks a sequential check reaching a decision
	// before the state timer: the state ends early and either δ fires or
	// the check's fallback is taken.
	EventCheckConcluded EventType = "check_concluded"
	// EventBurnRateTriggered marks a burnrate check detecting SLO
	// error-budget burn in both of its windows; the run transitions to
	// the check's fallback state (automatic rollback).
	EventBurnRateTriggered EventType = "burnrate_triggered"
	EventTransition        EventType = "transition"
	EventPaused            EventType = "paused"
	EventResumed           EventType = "resumed"
	EventGateDecision      EventType = "gate_decision"
	EventCompleted         EventType = "completed"
	EventAborted           EventType = "aborted"
	EventError             EventType = "error"
)

// Event is one observable engine occurrence.
type Event struct {
	Seq      int64     `json:"seq"`
	Strategy string    `json:"strategy"`
	Type     EventType `json:"type"`
	State    string    `json:"state,omitempty"`
	Check    string    `json:"check,omitempty"`
	// Detail is type-specific: transition target, routing service,
	// exception fallback, or error text.
	Detail  string `json:"detail,omitempty"`
	Outcome int    `json:"outcome,omitempty"`
	// Verdict carries the statistical result of check_executed,
	// check_concluded, and burnrate_triggered events for compare,
	// sequential, and burnrate checks.
	Verdict *core.Verdict `json:"verdict,omitempty"`
	Time    time.Time     `json:"time"`
}

// eventBus fans events out to subscribers and keeps a bounded replay
// buffer for the status API.
type eventBus struct {
	mu     sync.Mutex
	seq    int64
	ring   []Event
	next   int
	full   bool
	subs   map[int]chan Event
	subSeq int
	closed bool
}

func newEventBus(ringSize int) *eventBus {
	return &eventBus{
		ring: make([]Event, ringSize),
		subs: make(map[int]chan Event),
	}
}

func (b *eventBus) publish(ev Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	b.ring[b.next] = ev
	b.next = (b.next + 1) % len(b.ring)
	if b.next == 0 {
		b.full = true
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the engine
		}
	}
	b.mu.Unlock()
}

func (b *eventBus) subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := b.subSeq
	b.subSeq++
	b.subs[id] = ch
	b.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[id]; ok {
				delete(b.subs, id)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

func (b *eventBus) recent(n int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.full {
		size = len(b.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	start := b.next - n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// recentFiltered returns up to n of the most recent events for one strategy,
// oldest first. n <= 0 means all buffered events for that strategy.
func (b *eventBus) recentFiltered(strategy string, n int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.full {
		size = len(b.ring)
	}
	start := b.next - size
	if start < 0 {
		start += len(b.ring)
	}
	out := make([]Event, 0, 16)
	for i := 0; i < size; i++ {
		ev := b.ring[(start+i)%len(b.ring)]
		if ev.Strategy == strategy {
			out = append(out, ev)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

func (b *eventBus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}
