package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// segmentBytes concatenates dir's segment files in order — the journal's
// on-disk byte stream.
func segmentBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, seg := range segs {
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, raw...)
	}
	return all
}

// AppendBatch must be byte-for-byte and replay-for-replay identical to the
// same records going through N individual Appends: the engine's async
// writer batches opportunistically, so batch boundaries must never be
// observable in the journal.
func TestAppendBatchMatchesAppend(t *testing.T) {
	single, batched := t.TempDir(), t.TempDir()

	js := mustOpen(t, single, Options{FlushInterval: -1})
	recs := make([]Record, 0, 20)
	for i := int64(1); i <= 20; i++ {
		recs = append(recs, rec(i, "r", "event"))
		if err := js.Append(rec(i, "r", "event")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}

	jb := mustOpen(t, batched, Options{FlushInterval: -1})
	if err := jb.AppendBatch(recs[:7]); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if err := jb.AppendBatch(recs[7:]); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	got := replayAll(t, jb)
	if len(got) != 20 {
		t.Fatalf("replayed %d records, want 20", len(got))
	}
	for i, r := range got {
		if r.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if err := jb.Close(); err != nil {
		t.Fatal(err)
	}

	if a, b := segmentBytes(t, single), segmentBytes(t, batched); !bytes.Equal(a, b) {
		t.Fatalf("batched byte stream differs from single-append stream:\n%s\nvs\n%s", a, b)
	}
}

func TestAppendBatchRotatesAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 256, FlushInterval: -1})
	for start := int64(1); start <= 41; start += 10 {
		batch := make([]Record, 0, 10)
		for i := start; i < start+10; i++ {
			batch = append(batch, rec(i, "r", "event"))
		}
		if err := j.AppendBatch(batch); err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) < 3 {
		t.Fatalf("expected batched appends to rotate segments, got %v", segs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := replayAll(t, j2); len(got) != 50 {
		t.Fatalf("replayed %d records after reopen, want 50", len(got))
	}
}

// A write-through journal must make a batch durable before AppendBatch
// returns: the records are on disk even though Close never runs (crash
// simulation by reading the segment files directly).
func TestAppendBatchWriteThroughDurable(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{FlushInterval: -1})
	defer j.Close()
	batch := []Record{rec(1, "r", "event"), rec(2, "r", "event"), rec(3, "r", "event")}
	if err := j.AppendBatch(batch); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	raw := segmentBytes(t, dir)
	if n := bytes.Count(raw, []byte("\n")); n != 3 {
		t.Fatalf("found %d records on disk before Close, want 3", n)
	}
}

func TestAppendBatchFenced(t *testing.T) {
	dir := t.TempDir()
	j1 := mustOpen(t, dir, Options{FlushInterval: -1, FencingToken: 1})
	defer j1.Close()
	// A newer owner registers a higher token for the same directory: the
	// old writer's batches must be rejected, exactly like single appends.
	j2 := mustOpen(t, dir, Options{FlushInterval: -1, FencingToken: 2})
	defer j2.Close()

	err := j1.AppendBatch([]Record{rec(1, "r", "event")})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendBatch on fenced journal = %v, want ErrFenced", err)
	}
	if err := j2.AppendBatch([]Record{rec(1, "r", "event")}); err != nil {
		t.Fatalf("new owner AppendBatch: %v", err)
	}
}

func TestAppendBatchEmptyAndClosed(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{FlushInterval: -1})
	if err := j.AppendBatch(nil); err != nil {
		t.Fatalf("empty AppendBatch: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch([]Record{rec(1, "r", "event")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AppendBatch after Close = %v, want ErrClosed", err)
	}
}
