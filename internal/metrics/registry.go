package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the instrumentation side of the metrics substrate: services
// create counters and gauges on it and expose them via Handler(), which the
// scraper collects into the central Store — the same division of labour as
// client_golang vs the Prometheus server.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter, 16),
		gauges:   make(map[string]*Gauge, 16),
	}
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	key := name + "\x00" + labels.Key()
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{name: name, labels: labels.Clone()}
	r.counters[key] = c
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	key := name + "\x00" + labels.Key()
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{name: name, labels: labels.Clone()}
	r.gauges[key] = g
	return g
}

// DeleteGauge removes the gauge for name+labels from the registry, so
// components labelling metrics by transient identities (e.g. the engine's
// per-replica routing generations) can retire series instead of exporting
// them forever. Existing handles keep working but are no longer gathered;
// deleting an absent gauge is a no-op.
func (r *Registry) DeleteGauge(name string, labels Labels) {
	r.mu.Lock()
	delete(r.gauges, name+"\x00"+labels.Key())
	r.mu.Unlock()
}

// DeleteCounter is DeleteGauge for counters: run-forget paths retire a
// run's per-replica counters so a long-lived registry does not export
// every identity it has ever seen. Existing handles keep working but are
// no longer gathered; deleting an absent counter is a no-op.
func (r *Registry) DeleteCounter(name string, labels Labels) {
	r.mu.Lock()
	delete(r.counters, name+"\x00"+labels.Key())
	r.mu.Unlock()
}

// Counter is a monotonically increasing metric. The value is stored as
// float64 bits in an atomic word, so handle holders (e.g. the proxy's
// per-snapshot metric sets) increment without taking any lock — the hot
// path of per-request instrumentation.
type Counter struct {
	name   string
	labels Labels
	bits   atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down, stored lock-free like Counter.
type Gauge struct {
	name   string
	labels Labels
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}

// Point is one exposed metric value, the unit of exposition and scraping.
type Point struct {
	Name   string
	Labels Labels
	Value  float64
	Type   string // "counter" or "gauge"
}

// Gather snapshots every metric in deterministic order.
func (r *Registry) Gather() []Point {
	r.mu.RLock()
	defer r.mu.RUnlock()
	points := make([]Point, 0, len(r.counters)+len(r.gauges))
	for _, c := range r.counters {
		points = append(points, Point{Name: c.name, Labels: c.labels.Clone(), Value: c.Value(), Type: "counter"})
	}
	for _, g := range r.gauges {
		points = append(points, Point{Name: g.name, Labels: g.labels.Clone(), Value: g.Value(), Type: "gauge"})
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Name != points[j].Name {
			return points[i].Name < points[j].Name
		}
		return points[i].Labels.Key() < points[j].Labels.Key()
	})
	return points
}

// WriteExposition renders the registry in the text exposition format:
//
//	# TYPE http_requests_total counter
//	http_requests_total{service="product",version="A"} 42
func (r *Registry) WriteExposition(w io.Writer) error {
	points := r.Gather()
	lastName := ""
	for _, p := range points {
		if p.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Type); err != nil {
				return err
			}
			lastName = p.Name
		}
		label := ""
		if len(p.Labels) > 0 {
			label = p.Labels.String()
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, label,
			strconv.FormatFloat(p.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the text exposition format over HTTP (the /metrics
// endpoint every instrumented service exposes).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WriteExposition(w)
	})
}

// ParseExposition parses the text exposition format back into points; the
// scraper uses it on /metrics responses.
func ParseExposition(r io.Reader) ([]Point, error) {
	var points []Point
	types := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		p, err := parseExpositionLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: exposition line %d: %w", lineNo, err)
		}
		if math.IsNaN(p.Value) {
			continue
		}
		p.Type = types[p.Name]
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: read exposition: %w", err)
	}
	return points, nil
}

func parseExpositionLine(line string) (Point, error) {
	var p Point
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return p, fmt.Errorf("malformed line %q", line)
	}
	p.Name = line[:nameEnd]
	rest := line[nameEnd:]
	p.Labels = Labels{}
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return p, fmt.Errorf("unterminated labels in %q", line)
		}
		inner := rest[1:close]
		rest = rest[close+1:]
		for _, part := range splitLabelPairs(inner) {
			eq := strings.Index(part, "=")
			if eq < 0 {
				return p, fmt.Errorf("bad label pair %q", part)
			}
			val := strings.Trim(part[eq+1:], `"`)
			p.Labels[strings.TrimSpace(part[:eq])] = val
		}
	}
	valStr := strings.TrimSpace(rest)
	// Ignore an optional timestamp suffix.
	if sp := strings.IndexByte(valStr, ' '); sp >= 0 {
		valStr = valStr[:sp]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return p, fmt.Errorf("bad value %q", valStr)
	}
	p.Value = v
	return p, nil
}

// splitLabelPairs splits label pairs on commas outside quotes.
func splitLabelPairs(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}
