package proxy

import (
	"sync"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// DefaultStickyCapacity bounds the sticky assignment store when the proxy
// is not configured otherwise. Assignments are ⟨cookie UUID, version⟩
// pairs (~60 bytes each), so the default costs a few megabytes while
// covering far more concurrently active clients than one service instance
// sees between config generations.
const DefaultStickyCapacity = 1 << 17

// stickyShardCount shards the store to keep lock contention negligible
// under parallel ServeHTTP. Must be a power of two.
const stickyShardCount = 16

// stickyStore is a sharded, capacity-bounded client→version assignment
// table. Entries are evicted with a clock (second-chance) sweep per shard,
// so millions of distinct client IDs cannot grow the proxy without bound;
// evictions are counted on the proxy's metrics registry. An evicted client
// that returns is simply re-assigned by the deterministic selector, so
// eviction costs correctness nothing for cookie-routed clients — the same
// cookie hashes to the same version within one config generation.
type stickyStore struct {
	shards    []stickyShard
	evictions *metrics.Counter
}

type stickyShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*stickyEntry
	ring    []*stickyEntry // clock ring over the live entries
	hand    int
}

type stickyEntry struct {
	key     string
	version string
	ref     bool // second-chance bit, set on lookup
}

// newStickyStore builds a store with the given total capacity spread over
// shards. evictions may be nil (tests).
func newStickyStore(capacity, shards int, evictions *metrics.Counter) *stickyStore {
	if capacity <= 0 {
		capacity = DefaultStickyCapacity
	}
	if shards <= 0 {
		shards = stickyShardCount
	}
	// Shard caps sum to exactly capacity: the first capacity%shards
	// shards take one extra entry. Shard maps grow on demand — snapshots
	// are rebuilt on every config push, so preallocating full capacity
	// would make reconfiguration cost O(capacity) even for proxies that
	// never see that many clients.
	base, extra := capacity/shards, capacity%shards
	s := &stickyStore{shards: make([]stickyShard, shards), evictions: evictions}
	for i := range s.shards {
		cap := base
		if i < extra {
			cap++
		}
		hint := cap
		if hint > 1024 {
			hint = 1024
		}
		s.shards[i] = stickyShard{
			cap:     cap,
			entries: make(map[string]*stickyEntry, hint),
		}
	}
	return s
}

func (s *stickyStore) shard(key string) *stickyShard {
	// Inline FNV-1a over the string: hash/fnv would heap-allocate the
	// hasher and a byte copy of the key on every sticky lookup.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[int(h)%len(s.shards)]
}

// get returns the pinned version for key, if any.
func (s *stickyStore) get(key string) (string, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		e.ref = true
	}
	sh.mu.Unlock()
	if !ok {
		return "", false
	}
	return e.version, true
}

// put pins key→version, evicting one entry (clock sweep) when the shard is
// full. Racing puts for the same key keep the first value; callers derive
// version deterministically from key, so both racers agree anyway.
func (s *stickyStore) put(key, version string) {
	sh := s.shard(key)
	sh.mu.Lock()
	if _, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		return
	}
	if len(sh.ring) >= sh.cap {
		if sh.evictLocked() && s.evictions != nil {
			s.evictions.Inc()
		}
		if len(sh.ring) >= sh.cap {
			// Zero-cap shard (capacity below the shard count): nothing to
			// pin; the deterministic selector still keeps the client on
			// one version within this config generation.
			sh.mu.Unlock()
			return
		}
	}
	e := &stickyEntry{key: key, version: version}
	sh.ring = append(sh.ring, e)
	sh.entries[key] = e
	sh.mu.Unlock()
}

// evictLocked frees one slot: advance the clock hand, clearing reference
// bits, until an unreferenced entry is found. Bounded by two revolutions.
// It reports whether an entry was evicted (false only on an empty ring).
func (sh *stickyShard) evictLocked() bool {
	for i := 0; i < 2*len(sh.ring); i++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[sh.hand]
		if e.ref {
			e.ref = false
			sh.hand++
			continue
		}
		// Evict: swap the last entry into this slot.
		delete(sh.entries, e.key)
		last := len(sh.ring) - 1
		sh.ring[sh.hand] = sh.ring[last]
		sh.ring = sh.ring[:last]
		return true
	}
	return false
}

// len reports the number of pinned assignments.
func (s *stickyStore) len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// mappings materializes the store as the formal model's ⟨u, v, sticky⟩
// triples for the dashboard and tests.
func (s *stickyStore) mappings() []core.UserMapping {
	out := make([]core.UserMapping, 0, s.len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			out = append(out, core.UserMapping{User: e.key, Version: e.version, Sticky: true})
		}
		sh.mu.Unlock()
	}
	return out
}
