// Package harness supervises real bifrost-engine replica processes for
// multi-replica end-to-end tests: it builds the daemon binary once, spawns
// N replicas sharing one journal root (partitioned per run) and one lease
// directory, and exposes crash primitives — kill -9, restart — plus
// partition- and lease-level visibility so tests can assert on what is
// actually on disk, not just on what the API claims.
//
// The harness runs real processes on purpose: lease takeover, fencing, and
// SSE reconnection across a dead owner only mean something when the old
// owner is a separate OS process that got SIGKILL mid-write, not a
// goroutine that was politely asked to stop.
package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"bifrost/internal/engine"
	"bifrost/internal/lease"
)

// internalHeader mirrors the engine's replica-to-replica marker: requests
// carrying it are served from local state only (no routing, no fan-out),
// which is exactly what per-replica assertions need.
const internalHeader = "X-Bifrost-Internal"

// Options shapes a fleet.
type Options struct {
	// Replicas is the fleet size (default 3).
	Replicas int
	// LeaseTTL is the run-lease lifetime (default 2s — takeover tests
	// want short).
	LeaseTTL time.Duration
	// Heartbeat is the journal liveness heartbeat cadence (default
	// 250ms, so crash-time estimates are sharp).
	Heartbeat time.Duration
	// ExtraArgs are appended to every replica's command line.
	ExtraArgs []string
}

// Fleet is a running set of engine replicas over shared durable state.
type Fleet struct {
	t          *testing.T
	bin        string
	JournalDir string

	mu       sync.Mutex
	replicas map[string]*Replica
	ids      []string
	peersArg string
	opts     Options
}

// Replica is one supervised engine process.
type Replica struct {
	ID     string
	URL    string
	listen string

	fleet  *Fleet
	mu     sync.Mutex
	cmd    *exec.Cmd
	exited chan struct{}
	log    *syncBuffer
	dead   bool
}

// syncBuffer guards the replica log: the exec package writes to it from
// its own copying goroutine while tests read it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// BuildEngine compiles cmd/bifrost-engine once per test binary run and
// returns the path.
func BuildEngine(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "bifrost-e2e-bin")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "bifrost-engine")
		// The daemon is always built with the race detector: the whole
		// point of these tests is concurrent takeover, and a data race
		// inside a replica should fail the run loudly (the runtime
		// aborts the process, WaitHealthy or adoption then times out).
		cmd := exec.Command("go", "build", "-race", "-o", buildBin, "bifrost/cmd/bifrost-engine")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build bifrost-engine: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatalf("%v", buildErr)
	}
	return buildBin
}

// StartFleet builds the daemon, reserves a port per replica, and starts
// them all against one shared journal root. Replicas are named r0..r(n-1).
// Cleanup kills whatever is still running.
func StartFleet(t *testing.T, opts Options) *Fleet {
	t.Helper()
	if opts.Replicas == 0 {
		opts.Replicas = 3
	}
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 2 * time.Second
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 250 * time.Millisecond
	}
	f := &Fleet{
		t:          t,
		bin:        BuildEngine(t),
		JournalDir: t.TempDir(),
		replicas:   make(map[string]*Replica, opts.Replicas),
		opts:       opts,
	}
	peers := ""
	for i := 0; i < opts.Replicas; i++ {
		id := fmt.Sprintf("r%d", i)
		addr := reservePort(t)
		r := &Replica{
			ID: id, URL: "http://" + addr, listen: addr,
			fleet: f, log: &syncBuffer{},
		}
		f.replicas[id] = r
		f.ids = append(f.ids, id)
		if peers != "" {
			peers += ","
		}
		peers += id + "=" + r.URL
	}
	f.peersArg = peers
	for _, id := range f.ids {
		f.replicas[id].start()
	}
	t.Cleanup(f.StopAll)
	for _, id := range f.ids {
		f.replicas[id].WaitHealthy(10 * time.Second)
	}
	return f
}

// reservePort grabs a free localhost port and releases it for the replica
// to bind. The tiny reuse window is acceptable in tests.
func reservePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// Replica returns the replica with the given id.
func (f *Fleet) Replica(id string) *Replica {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.replicas[id]
	if !ok {
		f.t.Fatalf("no replica %q", id)
	}
	return r
}

// IDs returns the replica ids in start order.
func (f *Fleet) IDs() []string { return append([]string(nil), f.ids...) }

// Client returns an API client pointed at one replica.
func (f *Fleet) Client(id string) *engine.Client {
	return &engine.Client{BaseURL: f.Replica(id).URL}
}

// Leases opens a read view of the fleet's shared lease directory.
func (f *Fleet) Leases() *lease.Store {
	s, err := lease.Open(filepath.Join(f.JournalDir, "leases"))
	if err != nil {
		f.t.Fatalf("open lease store: %v", err)
	}
	return s
}

// Partitions lists the per-run partition directories in the shared
// journal root. Names are the raw (escaped) directory names; runs named
// with plain characters appear verbatim.
func (f *Fleet) Partitions() []string {
	entries, err := os.ReadDir(filepath.Join(f.JournalDir, "runs"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		f.t.Fatalf("read partitions: %v", err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out
}

// StopAll SIGKILLs every replica still running (idempotent; used as the
// test cleanup).
func (f *Fleet) StopAll() {
	f.mu.Lock()
	ids := append([]string(nil), f.ids...)
	f.mu.Unlock()
	for _, id := range ids {
		f.replicas[id].kill(false)
	}
}

// start launches the replica process (fresh incarnation).
func (r *Replica) start() {
	r.fleet.t.Helper()
	args := []string{
		"-listen", r.listen,
		"-journal-dir", r.fleet.JournalDir,
		"-engine-id", r.ID,
		"-peers", r.fleet.peersArg,
		"-lease-ttl", r.fleet.opts.LeaseTTL.String(),
		"-journal-heartbeat", r.fleet.opts.Heartbeat.String(),
		// Write-through journaling: every append fsyncs, so a kill -9
		// loses nothing that a watcher already saw.
		"-journal-flush-interval", "-1ns",
		"-sysmon-interval", "0",
	}
	args = append(args, r.fleet.opts.ExtraArgs...)
	cmd := exec.Command(r.fleet.bin, args...)
	cmd.Stdout = r.log
	cmd.Stderr = r.log
	if err := cmd.Start(); err != nil {
		r.fleet.t.Fatalf("start replica %s: %v", r.ID, err)
	}
	exited := make(chan struct{})
	r.mu.Lock()
	r.cmd = cmd
	r.exited = exited
	r.dead = false
	r.mu.Unlock()
	go func() { // reap whenever it exits, however it exits
		_ = cmd.Wait()
		close(exited)
	}()
}

// Kill9 SIGKILLs the replica — the crash primitive. No shutdown hooks
// run: leases stay on disk unreleased, journal partitions keep whatever
// was durably written, and survivors must take over via expiry.
func (r *Replica) Kill9() {
	r.fleet.t.Helper()
	r.kill(true)
}

func (r *Replica) kill(fatalIfGone bool) {
	r.mu.Lock()
	cmd, exited := r.cmd, r.exited
	r.dead = true
	r.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		if fatalIfGone {
			r.fleet.t.Fatalf("replica %s is not running", r.ID)
		}
		return
	}
	_ = cmd.Process.Signal(syscall.SIGKILL)
	// Wait for the OS to reap it so the port frees for a restart.
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
	}
}

// Restart starts a fresh incarnation on the same id, port, and shared
// state (the replica must be dead).
func (r *Replica) Restart() {
	r.fleet.t.Helper()
	r.mu.Lock()
	exited := r.exited
	running := !r.dead && r.cmd != nil
	r.mu.Unlock()
	if running && exited != nil {
		select {
		case <-exited:
		default:
			r.fleet.t.Fatalf("replica %s still running; Kill9 first", r.ID)
		}
	}
	r.start()
	r.WaitHealthy(10 * time.Second)
}

// WaitHealthy polls /-/healthy until 200 or the timeout.
func (r *Replica) WaitHealthy(timeout time.Duration) {
	r.fleet.t.Helper()
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(r.URL + "/-/healthy")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	r.fleet.t.Fatalf("replica %s not healthy after %s; log:\n%s",
		r.ID, timeout, r.Log())
}

// LocalRuns lists the runs this replica itself hosts (internal-marked
// request: no fan-out, no redirects) — the per-replica ownership view.
func (r *Replica) LocalRuns() []engine.Status {
	r.fleet.t.Helper()
	out, err := r.TryLocalRuns()
	if err != nil {
		r.fleet.t.Fatalf("local runs of %s: %v", r.ID, err)
	}
	return out
}

// TryLocalRuns is LocalRuns without the fatal: callers probing replicas
// that may be dead get the error instead.
func (r *Replica) TryLocalRuns() ([]engine.Status, error) {
	req, err := http.NewRequest(http.MethodGet, r.URL+"/api/v2/runs", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(internalHeader, "harness")
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []engine.Status
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Log returns the replica's combined output so far (all incarnations).
func (r *Replica) Log() string { return r.log.String() }

// Eventually polls cond until it holds or the deadline passes.
func Eventually(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", timeout, what)
}

// WaitContext is Eventually's context-style sibling for call sites that
// already hold a deadline.
func WaitContext(ctx context.Context, cond func() bool) error {
	for {
		if cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}
