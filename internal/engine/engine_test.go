package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/core"
)

// recordingConfigurator captures Configure calls for assertions.
type recordingConfigurator struct {
	mu    sync.Mutex
	calls []configCall
	fail  bool
}

type configCall struct {
	state      string
	service    string
	generation int64
	weights    map[string]float64
}

func (rc *recordingConfigurator) Configure(_ context.Context, _ *core.Strategy,
	state *core.State, r core.RoutingConfig, gen int64) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.fail {
		return errors.New("configurator down")
	}
	w := make(map[string]float64, len(r.Weights))
	for k, v := range r.Weights {
		w[k] = v
	}
	rc.calls = append(rc.calls, configCall{
		state: state.ID, service: r.Service, generation: gen, weights: w,
	})
	return nil
}

func (rc *recordingConfigurator) snapshot() []configCall {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]configCall(nil), rc.calls...)
}

// twoVersionServices is the minimal B for test strategies.
func twoVersionServices() []core.Service {
	return []core.Service{{
		Name: "svc",
		Versions: []core.Version{
			{Name: "stable", Endpoint: "127.0.0.1:1001"},
			{Name: "canary", Endpoint: "127.0.0.1:1002"},
		},
	}}
}

func routeTo(stablePct, canaryPct float64) []core.RoutingConfig {
	return []core.RoutingConfig{{
		Service: "svc",
		Weights: map[string]float64{"stable": stablePct, "canary": canaryPct},
	}}
}

// canaryStrategy: start → (checks pass: done | fail: rollback).
func canaryStrategy(eval core.Evaluator, interval time.Duration, executions int) *core.Strategy {
	return &core.Strategy{
		Name:     "test-canary",
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "canary",
			Finals: []string{"done", "rollback"},
			States: []core.State{
				{
					ID: "canary",
					Checks: []core.Check{{
						Name:       "errors",
						Kind:       core.BasicCheck,
						Eval:       eval,
						Interval:   interval,
						Executions: executions,
						Weight:     1,
						Thresholds: []int{executions - 1},
						Outputs:    []int{-1, 1},
					}},
					Thresholds:  []int{0},
					Transitions: []string{"rollback", "done"},
					Routing:     routeTo(95, 5),
				},
				{ID: "done", Routing: routeTo(0, 100)},
				{ID: "rollback", Routing: routeTo(100, 0)},
			},
		},
	}
}

func waitDone(t *testing.T, r *Run) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Wait(ctx); err != nil {
		t.Fatalf("run did not finish: %v (status %+v)", err, r.Status())
	}
	return r.Status()
}

func TestCanarySucceedsAndRollsOut(t *testing.T) {
	cfg := &recordingConfigurator{}
	eng := New(WithConfigurator(cfg))
	defer eng.Shutdown()

	s := canaryStrategy(core.ConstEvaluator(true), 2*time.Millisecond, 5)
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "done" {
		t.Fatalf("path = %+v, want canary→done", st.Path)
	}
	if st.Path[0].Outcome != 1 {
		t.Errorf("outcome = %d, want 1", st.Path[0].Outcome)
	}

	calls := cfg.snapshot()
	if len(calls) != 2 {
		t.Fatalf("configurator calls = %d, want 2 (canary + done)", len(calls))
	}
	if calls[0].state != "canary" || calls[0].weights["canary"] != 5 {
		t.Errorf("first call = %+v", calls[0])
	}
	if calls[1].state != "done" || calls[1].weights["canary"] != 100 {
		t.Errorf("second call = %+v", calls[1])
	}
	if calls[1].generation <= calls[0].generation {
		t.Errorf("generations not monotonic: %d then %d",
			calls[0].generation, calls[1].generation)
	}
}

func TestCanaryFailureRollsBack(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	s := canaryStrategy(core.ConstEvaluator(false), 2*time.Millisecond, 5)
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "rollback" {
		t.Fatalf("path = %+v, want canary→rollback", st.Path)
	}
}

func TestCheckExecutionCountsExact(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 7)
	run, _ := eng.Enact(s)
	st := waitDone(t, run)
	if len(st.Checks) != 1 {
		t.Fatalf("checks = %+v", st.Checks)
	}
	c := st.Checks[0]
	// With no explicit state duration the state ends when the timed check
	// has performed all scheduled executions — exactly 7.
	if c.Executions != 7 || c.Successes != 7 || c.Failures != 0 {
		t.Errorf("check = %+v, want 7/7/0", c)
	}
}

func TestEvaluatorErrorCountsAsFailure(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	evalErr := core.EvaluatorFunc(func(context.Context) (bool, error) {
		return true, errors.New("prometheus unreachable")
	})
	s := canaryStrategy(evalErr, time.Millisecond, 3)
	run, _ := eng.Enact(s)
	st := waitDone(t, run)
	if st.Path[0].To != "rollback" {
		t.Fatalf("path = %+v, want rollback on evaluator errors", st.Path)
	}
	if st.Checks[0].LastError == "" {
		t.Error("LastError not recorded")
	}
}

func TestExceptionCheckInterruptsImmediately(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	s := &core.Strategy{
		Name:     "exception-test",
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "watch",
			Finals: []string{"done", "emergency"},
			States: []core.State{
				{
					ID: "watch",
					// The state would run for 10 seconds, but the exception
					// check fails on its first execution after 2ms.
					Duration: 10 * time.Second,
					Checks: []core.Check{{
						Name:       "error_explosion",
						Kind:       core.ExceptionCheck,
						Eval:       core.ConstEvaluator(false),
						Interval:   2 * time.Millisecond,
						Executions: 100,
						Fallback:   "emergency",
					}},
					Thresholds:  []int{0},
					Transitions: []string{"emergency", "done"},
					Routing:     routeTo(95, 5),
				},
				{ID: "done", Routing: routeTo(0, 100)},
				{ID: "emergency", Routing: routeTo(100, 0)},
			},
		},
	}
	start := time.Now()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	elapsed := time.Since(start)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "emergency" {
		t.Fatalf("path = %+v, want watch→emergency", st.Path)
	}
	if elapsed > 5*time.Second {
		t.Errorf("rollback took %v; exception should interrupt immediately", elapsed)
	}
	events := eng.RecentEvents(0)
	var sawException bool
	for _, ev := range events {
		if ev.Type == EventExceptionTriggered && ev.Check == "error_explosion" {
			sawException = true
		}
	}
	if !sawException {
		t.Error("no exception_triggered event published")
	}
}

func TestStateReexecutionResetsTimers(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	// Evaluator fails during the first pass and succeeds afterwards, so
	// the state re-executes once ("staying in a certain state if results
	// are not definite") and then proceeds.
	var mu sync.Mutex
	calls := 0
	eval := core.EvaluatorFunc(func(context.Context) (bool, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return calls > 3, nil // first 3 executions fail
	})
	s := &core.Strategy{
		Name:     "reexec-test",
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "probe",
			Finals: []string{"done"},
			States: []core.State{
				{
					ID: "probe",
					Checks: []core.Check{{
						Name:       "flaky",
						Kind:       core.BasicCheck,
						Eval:       eval,
						Interval:   time.Millisecond,
						Executions: 3,
						Thresholds: []int{2},
						Outputs:    []int{0, 1},
					}},
					Thresholds:  []int{0},
					Transitions: []string{"probe", "done"}, // ≤0 re-execute
					Routing:     routeTo(95, 5),
				},
				{ID: "done", Routing: routeTo(0, 100)},
			},
		},
	}
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 2 {
		t.Fatalf("path = %+v, want probe→probe→done", st.Path)
	}
	if st.Path[0].To != "probe" || st.Path[1].To != "done" {
		t.Errorf("path = %+v", st.Path)
	}
}

func TestAbortMidRun(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	s := canaryStrategy(core.ConstEvaluator(true), 50*time.Millisecond, 1000)
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := eng.Abort(s.Name); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunAborted {
		t.Errorf("state = %s, want aborted", st.State)
	}
}

func TestEnactRejectsInvalidAndDuplicate(t *testing.T) {
	eng := New()
	defer eng.Shutdown()

	bad := &core.Strategy{Name: "bad"}
	if _, err := eng.Enact(bad); err == nil {
		t.Fatal("invalid strategy accepted")
	}

	s := canaryStrategy(core.ConstEvaluator(true), 20*time.Millisecond, 100)
	if _, err := eng.Enact(s); err != nil {
		t.Fatalf("Enact: %v", err)
	}
	if _, err := eng.Enact(s); !errors.Is(err, ErrAlreadyRunning) {
		t.Fatalf("duplicate err = %v, want ErrAlreadyRunning", err)
	}
	if err := eng.Abort(s.Name); err != nil {
		t.Fatal(err)
	}
	run, _ := eng.Run(s.Name)
	waitDone(t, run)
	// After completion the name can be reused.
	if _, err := eng.Enact(canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 2)); err != nil {
		t.Fatalf("re-enact after completion: %v", err)
	}
}

func TestConfiguratorFailureFailsRun(t *testing.T) {
	cfg := &recordingConfigurator{fail: true}
	eng := New(WithConfigurator(cfg))
	defer eng.Shutdown()
	run, err := eng.Enact(canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 2))
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Error == "" {
		t.Error("no error recorded")
	}
}

func TestDelayAccounting(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	s := canaryStrategy(core.ConstEvaluator(true), 2*time.Millisecond, 5)
	run, _ := eng.Enact(s)
	st := waitDone(t, run)
	if st.PlannedNanos != int64(8*time.Millisecond) {
		t.Errorf("planned = %v, want 8ms (5 executions spanning 4 intervals)",
			time.Duration(st.PlannedNanos))
	}
	if st.ActualNanos < st.PlannedNanos {
		t.Errorf("actual %v < planned %v", st.ActualNanos, st.PlannedNanos)
	}
	if st.Delay() < 0 {
		t.Errorf("delay = %v, want ≥ 0", st.Delay())
	}
}

func TestRemoveRun(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 2)
	run, _ := eng.Enact(s)
	if err := eng.Remove(s.Name); err == nil {
		t.Fatal("Remove succeeded while running")
	}
	waitDone(t, run)
	if err := eng.Remove(s.Name); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, ok := eng.Run(s.Name); ok {
		t.Error("run still present after Remove")
	}
	if err := eng.Remove("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Remove(ghost) = %v", err)
	}
}

func TestEventsSubscription(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	events, cancel := eng.Subscribe(256)
	defer cancel()

	s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 3)
	run, _ := eng.Enact(s)
	waitDone(t, run)

	types := map[EventType]int{}
	timeout := time.After(5 * time.Second)
	for {
		var done bool
		select {
		case ev := <-events:
			types[ev.Type]++
			if ev.Type == EventCompleted {
				done = true
			}
		case <-timeout:
			t.Fatalf("no completed event; saw %v", types)
		}
		if done {
			break
		}
	}
	if types[EventStateEntered] < 2 {
		t.Errorf("state_entered = %d, want ≥ 2", types[EventStateEntered])
	}
	if types[EventCheckExecuted] != 3 {
		t.Errorf("check_executed = %d, want 3", types[EventCheckExecuted])
	}
	if types[EventTransition] != 1 {
		t.Errorf("transition = %d, want 1", types[EventTransition])
	}
	if types[EventRoutingApplied] < 2 {
		t.Errorf("routing_applied = %d, want ≥ 2", types[EventRoutingApplied])
	}
}

func TestRecentEventsOrdered(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	s := canaryStrategy(core.ConstEvaluator(true), time.Millisecond, 2)
	run, _ := eng.Enact(s)
	waitDone(t, run)
	events := eng.RecentEvents(0)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
	limited := eng.RecentEvents(2)
	if len(limited) != 2 {
		t.Errorf("RecentEvents(2) = %d events", len(limited))
	}
	if limited[1].Seq != events[len(events)-1].Seq {
		t.Error("RecentEvents(2) did not return the newest events")
	}
}

func TestRunningExampleOnManualClock(t *testing.T) {
	clk := clock.NewManual(time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC))
	eng := New(WithClock(clk))
	defer eng.Shutdown()

	// One unit = one simulated hour: the full strategy spans ~9 simulated
	// days and completes in well under a second of real time.
	unit := time.Hour
	s := core.RunningExample(unit)
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for !run.Done() && time.Now().Before(deadline) {
		clk.Advance(15 * time.Minute)
		time.Sleep(200 * time.Microsecond) // let goroutines observe ticks
	}
	if !run.Done() {
		t.Fatalf("running example did not finish; status %+v", run.Status())
	}
	st := run.Status()
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s), path %+v", st.State, st.Error, st.Path)
	}
	last := st.Path[len(st.Path)-1]
	if last.To != "f" {
		t.Errorf("final state = %s, want f (full rollout); path %+v", last.To, st.Path)
	}
	// All check evaluators succeed, so the rollback state g must not appear.
	for _, tr := range st.Path {
		if tr.To == "g" {
			t.Errorf("unexpected rollback transition %+v", tr)
		}
	}
}

func TestShutdownAbortsEverything(t *testing.T) {
	eng := New()
	runs := make([]*Run, 0, 5)
	for i := 0; i < 5; i++ {
		s := canaryStrategy(core.ConstEvaluator(true), 50*time.Millisecond, 1000)
		s.Name = s.Name + string(rune('a'+i))
		r, err := eng.Enact(s)
		if err != nil {
			t.Fatalf("Enact %d: %v", i, err)
		}
		runs = append(runs, r)
	}
	eng.Shutdown()
	for i, r := range runs {
		if !r.Done() {
			t.Errorf("run %d still active after Shutdown", i)
		}
	}
}
