// Package engine implements the Bifrost engine: the control plane that
// enacts release strategies (paper §4.1).
//
// The engine "executes the state machine of the formal release model": for
// every enacted strategy it walks the automaton, runs each state's checks
// on their timers, aggregates weighted outcomes, fires the transition
// function δ, and reconfigures the affected Bifrost proxies whenever a
// state change happens. Many strategies run in parallel — the paper's
// scalability evaluation (§5.2) drives exactly this code path.
//
// Statistical checks carry a typed core.Verdict through the same
// machinery: verdicts surface in run status and engine events, a
// concluding sequential gate or a tripped burn-rate guard interrupts the
// state ahead of its timer (check.go), and operators can pause, resume,
// or override any gate manually (run.go).
//
// Runs are exposed as lifecycle resources by the REST API v2 (api.go):
// schedule with dry-run analysis, pause/resume with generation-checked
// resumes, manual promote/rollback, per-run event history, and a live
// Server-Sent-Events stream shared by the CLI and the dashboard.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/journal"
	"bifrost/internal/metrics"
)

// Common engine errors. The API layer maps each to a machine-readable
// problem+json code, so clients dispatch on these rather than on message
// strings.
var (
	// ErrAlreadyRunning is returned by Enact when a strategy with the
	// same name is currently executing.
	ErrAlreadyRunning = errors.New("engine: strategy already running")
	// ErrNotFound is returned when referencing an unknown strategy.
	ErrNotFound = errors.New("engine: strategy not found")
	// ErrFinished is returned by operator controls on a finished run.
	ErrFinished = errors.New("engine: run already finished")
	// ErrNotPaused is returned by Resume when the run is not paused.
	ErrNotPaused = errors.New("engine: run is not paused")
	// ErrAlreadyPaused is returned by Pause on an already-paused run.
	ErrAlreadyPaused = errors.New("engine: run already paused")
	// ErrStaleResume is returned when a resume carries a pause generation
	// that is no longer current (another pause/resume cycle intervened).
	ErrStaleResume = errors.New("engine: stale resume")
	// ErrUnknownState is returned when a manual gate decision names a state
	// outside the strategy's automaton (or none can be inferred).
	ErrUnknownState = errors.New("engine: unknown automaton state")
	// ErrEngineClosed is returned by Enact once Shutdown or Suspend began.
	ErrEngineClosed = errors.New("engine: shut down")
)

// errSuspended is the run loop's internal signal that the engine is
// suspending: the loop exits without a terminal record so the journal still
// shows the run mid-state and a restart resumes it.
var errSuspended = errors.New("engine: suspended")

// Engine enacts release strategies. Create with New; Shutdown aborts every
// run and waits for the run loops to exit, while Suspend stops them without
// terminal records so a journal-backed restart resumes them.
type Engine struct {
	clk          clock.Clock
	registry     *metrics.Registry
	configurator Configurator
	bus          *eventBus
	ringSize     int

	mu     sync.Mutex
	runs   map[string]*Run
	closed bool
	// stopping is closed by Suspend; run loops exit without terminal
	// records when they observe it.
	stopping chan struct{}
	// hbQuit stops the journal heartbeat goroutine (nil without journal).
	hbQuit chan struct{}

	// pubMu serializes the publish pipeline: sequence assignment, mirror
	// reduction, journal append, and bus fan-out happen atomically with
	// respect to each other, so snapshots taken under pubMu are consistent
	// with a journal position.
	pubMu      sync.Mutex
	mirror     *engineMirror
	journals   *journal.Set
	compacting atomic.Bool
	// jw moves journal appends off pubMu (nil for write-through journals
	// and journal-less engines, which keep the inline append path).
	jw *journalWriter

	// hbEvery paces heartbeat records on journaled engines.
	hbEvery time.Duration
	// fence supplies the fencing token for a run's journal partition (HA
	// mode: the cluster layer maps runs to its held lease tokens). Nil
	// means classic flock protection.
	fence func(run string) int64
	// enactGate, when set, must succeed before a new enactment registers
	// (the cluster layer acquires the run's lease here).
	enactGate func(run string) error
	// children schedules and observes sub-rollout child runs (hierarchical
	// rollouts). Defaults to in-process enactment.
	children ChildRunner

	generation atomic.Int64
	wg         sync.WaitGroup

	mActive      *metrics.Gauge
	mEnacted     *metrics.Counter
	mTransitions *metrics.Counter
	mChecks      *metrics.Counter
	mJournaled   *metrics.Counter
	mCompactions *metrics.Counter
	mRecovered   *metrics.Counter
	mFenced      *metrics.Counter
}

// Option configures an Engine.
type Option func(*Engine)

// WithClock injects the clock driving timers (tests use clock.Manual).
func WithClock(c clock.Clock) Option {
	return func(e *Engine) { e.clk = c }
}

// WithRegistry attaches the registry for the engine's self-metrics.
func WithRegistry(r *metrics.Registry) Option {
	return func(e *Engine) { e.registry = r }
}

// WithConfigurator sets how routing configs reach the proxies.
func WithConfigurator(c Configurator) Option {
	return func(e *Engine) { e.configurator = c }
}

// WithJournalSet attaches the durable run journal, partitioned per run:
// every engine event is appended to its run's partition, and Recover
// replays the partitions after a restart so unfinished strategies resume
// instead of being silently aborted. The engine owns the set from here on
// (Shutdown/Suspend close it). Open one with OpenJournal.
func WithJournalSet(s *journal.Set) Option {
	return func(e *Engine) { e.journals = s }
}

// OpenJournal opens dir as a per-run partitioned journal set wired with the
// engine's snapshot schema, migrating a pre-partition single-directory
// journal in place if one is found.
func OpenJournal(dir string, opts journal.Options) (*journal.Set, error) {
	return journal.OpenSet(dir, journal.SetOptions{
		Journal:       opts,
		SplitSnapshot: splitMirrorSnapshot,
	})
}

// WithHeartbeatInterval overrides the heartbeat cadence (default 30s):
// multi-replica deployments with short lease TTLs tighten it so adopted
// runs lose almost no elapsed-in-state accuracy.
func WithHeartbeatInterval(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.hbEvery = d
		}
	}
}

// WithFence supplies the fencing token used when a run's journal partition
// is opened (HA mode; see journal.Options.FencingToken). The cluster layer
// maps runs to the tokens of the leases it holds.
func WithFence(fn func(run string) int64) Option {
	return func(e *Engine) { e.fence = fn }
}

// WithEnactGate installs a hook that must succeed before a new enactment is
// accepted; the cluster layer acquires the run's ownership lease here so a
// run is never enacted on a replica that does not own it.
func WithEnactGate(fn func(run string) error) Option {
	return func(e *Engine) { e.enactGate = fn }
}

// WithChildRunner overrides how sub-rollout children are scheduled and
// observed. The default enacts them in-process; cluster deployments install
// an HTTPChildRunner pointed at the cluster-routed API so children shard
// across replicas like any operator-scheduled run.
func WithChildRunner(cr ChildRunner) Option {
	return func(e *Engine) { e.children = cr }
}

// WithEventRingSize overrides the global event replay ring (default 1024
// events); mainly for tests exercising retention-exceeded SSE resumes.
func WithEventRingSize(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.ringSize = n
		}
	}
}

// New creates an engine. By default it uses the real clock, a private
// metrics registry, and a no-op configurator.
func New(opts ...Option) *Engine {
	e := &Engine{
		clk:          clock.Real{},
		registry:     metrics.NewRegistry(),
		configurator: NopConfigurator{},
		ringSize:     1024,
		runs:         make(map[string]*Run, 8),
		stopping:     make(chan struct{}),
		mirror:       newEngineMirror(),
		hbEvery:      journalHeartbeatInterval,
	}
	for _, o := range opts {
		o(e)
	}
	if e.children == nil {
		e.children = localChildRunner{eng: e}
	}
	// Fleet-aware configurators borrow the engine's clock (deterministic
	// backoff in tests) and registry (per-replica generation gauges).
	if b, ok := e.configurator.(interface{ bindEngine(*Engine) }); ok {
		b.bindEngine(e)
	}
	e.bus = newEventBus(e.ringSize)
	e.mActive = e.registry.Gauge("engine_active_strategies", nil)
	e.mEnacted = e.registry.Counter("engine_strategies_enacted_total", nil)
	e.mTransitions = e.registry.Counter("engine_transitions_total", nil)
	e.mChecks = e.registry.Counter("engine_check_executions_total", nil)
	e.mJournaled = e.registry.Counter("engine_journal_records_total", nil)
	e.mCompactions = e.registry.Counter("engine_journal_compactions_total", nil)
	e.mRecovered = e.registry.Counter("engine_runs_recovered_total", nil)
	e.mFenced = e.registry.Counter("engine_journal_fenced_total", nil)
	if e.journals != nil {
		if !e.journals.WriteThrough() {
			// Buffered flushing: appends move to the async journal writer
			// so the publish critical section stays I/O-free. Write-through
			// journals keep the inline path — their contract is that the
			// record hits the OS before any subscriber sees the event.
			e.jw = newJournalWriter(e)
		}
		e.hbQuit = make(chan struct{})
		go e.heartbeatLoop(e.clk.NewTicker(e.hbEvery))
	}
	return e
}

// Registry exposes the engine's self-metrics for scraping.
func (e *Engine) Registry() *metrics.Registry { return e.registry }

// Subscribe returns a channel of engine events and a cancel function. The
// channel is closed after cancel. Slow subscribers drop events rather than
// blocking enactment.
func (e *Engine) Subscribe(buffer int) (<-chan Event, func()) {
	return e.bus.subscribe(buffer)
}

// RecentEvents returns up to n of the most recent events, oldest first.
func (e *Engine) RecentEvents(n int) []Event { return e.bus.recent(n) }

// Enact validates the strategy and starts executing it. The returned Run
// tracks progress; the engine keeps running it in the background. Runs
// enacted without source cannot be resumed after a restart — the REST API
// uses EnactSource so the journal can recompile the strategy on recovery.
func (e *Engine) Enact(s *core.Strategy) (*Run, error) {
	return e.EnactSource(s, "")
}

// EnactSource is Enact with the strategy's DSL source attached: the journal
// records the source so a restarted engine can recompile and resume the run.
func (e *Engine) EnactSource(s *core.Strategy, source string) (*Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if e.enactGate != nil {
		// Outside e.mu: the gate may block on cross-process lease I/O.
		if err := e.enactGate(s.Name); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	if r, exists := e.runs[s.Name]; exists && !r.Done() {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAlreadyRunning, s.Name)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Run{
		engine:   e,
		strategy: s,
		cancel:   cancel,
		done:     make(chan struct{}),
		evicted:  make(chan struct{}),
		controls: make(chan controlMsg),
		status: Status{
			Strategy: s.Name,
			State:    RunPending,
		},
	}
	e.runs[s.Name] = r
	// wg.Add under e.mu so Shutdown/Suspend (which set closed under the
	// same lock before waiting) can never miss a newly enacted run.
	e.wg.Add(1)
	e.mu.Unlock()

	e.scheduleRecord(s, source)
	e.mEnacted.Inc()
	e.mActive.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.mActive.Add(-1)
		r.loop(ctx)
	}()
	return r, nil
}

// scheduleRecord publishes the scheduled event and journals the strategy
// source alongside it (same sequence number, so replay pairs them up).
func (e *Engine) scheduleRecord(s *core.Strategy, source string) {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	ev := e.bus.stamp(Event{Strategy: s.Name, Type: EventScheduled, Time: e.clk.Now()})
	f := newFrame(ev)
	e.mirror.apply(s, ev) // resets any previous enactment under this name
	e.mirror.setSource(s.Name, source)
	e.journalFrame(f)
	if source != "" {
		rec := journal.Record{
			Seq: ev.Seq, Time: ev.Time, Type: recSource, Run: s.Name,
			Data: mustJSON(sourceRecord{Source: source}),
		}
		if e.jw != nil {
			// Enqueued right behind the scheduled event, still under pubMu,
			// so replay sees them adjacent exactly like the inline path.
			e.jw.enqueue(jreq{rec: rec})
		} else {
			e.journalAppend(s.Name, rec)
		}
	}
	e.bus.fanout(f)
}

// publish runs one event through the staged pipeline: stamp a sequence
// number into the replay ring, encode the event exactly once into a pooled
// frame, reduce into the durable per-run mirror, hand the frame to the
// journal stage, and fan the same frame out to subscribers. With
// write-through flushing the journal append is inline, so a watcher never
// sees an event a crash could unwind; with buffered flushing the append is
// enqueued (in publish order) to the async journal writer, and terminal
// events wait for durability after pubMu is released. strategy is used by
// the mirror's planned-duration accounting and may be nil.
func (e *Engine) publish(strategy *core.Strategy, ev Event) {
	e.pubMu.Lock()
	ev = e.bus.stamp(ev)
	f := newFrame(ev)
	e.mirror.apply(strategy, ev)
	durable := e.journalFrame(f)
	var shouldCompact bool
	if e.journals != nil {
		if j, ok := e.journals.Get(ev.Strategy); ok {
			shouldCompact = j.ShouldCompact()
		}
	}
	e.bus.fanout(f)
	e.pubMu.Unlock()

	if durable != nil {
		// Terminal event in async-writer mode: wait for append+fsync with
		// pubMu released — the same durability point the old inline Sync
		// provided, without stalling other publishers behind the disk.
		<-durable
	}
	if shouldCompact && e.compacting.CompareAndSwap(false, true) {
		go e.compact()
	}
}

// Journal record types and payloads.
const (
	recEvent  = "event"
	recSource = "source"
	// recHeartbeat records only the passage of time: recovery measures
	// elapsed-in-state up to the newest journaled record so downtime never
	// counts against a phase, and phases without chatty checks would
	// otherwise appear frozen at their entry time. Heartbeats reuse the
	// current sequence number (they are not events and must not create
	// gaps in the event numbering).
	recHeartbeat = "heartbeat"
)

// journalHeartbeatInterval paces heartbeat records on journaled engines.
const journalHeartbeatInterval = 30 * time.Second

// heartbeatLoop appends heartbeat records until the engine closes. The
// ticker is created by New (synchronously, so tests driving a manual clock
// can rely on it existing before any Advance). Heartbeats go to the
// partition of every unfinished run — each partition must carry its own
// crash-time estimate — and finished runs' partitions stay quiet, so an
// idle journal does not grow.
func (e *Engine) heartbeatLoop(t clock.Ticker) {
	defer t.Stop()
	for {
		select {
		case <-t.C():
			live := e.unfinishedRunNames()
			if len(live) == 0 {
				continue
			}
			// Capture the clock position under pubMu so heartbeat times stay
			// consistent with the sequence counter, but keep the appends
			// themselves off the publish pipeline's critical section: N
			// runs' synchronous heartbeat writes must not stall publishers.
			e.pubMu.Lock()
			now := e.clk.Now()
			seq := e.bus.currentSeq()
			js := e.journals
			if seq > 0 && js != nil {
				if now.After(e.mirror.LastTime) {
					e.mirror.LastTime = now
				}
				if e.jw != nil {
					// Async mode: enqueue under pubMu — each heartbeat keeps
					// its place in its partition's publish order, and the
					// writer goroutine does the I/O.
					for _, name := range live {
						e.jw.enqueue(jreq{rec: journal.Record{Seq: seq, Time: now, Type: recHeartbeat, Run: name}})
					}
				}
			}
			e.pubMu.Unlock()
			if seq > 0 && js != nil && e.jw == nil {
				// Write-through mode: append after releasing pubMu.
				// Heartbeat records are order-insensitive — recovery takes
				// the newest record time it sees, wherever it sits in the
				// partition — so racing a concurrent publish cannot corrupt
				// elapsed-in-state accounting, and racing the journal's
				// close is a harmless ErrClosed.
				for _, name := range live {
					e.journalAppendTo(js, name, journal.Record{Seq: seq, Time: now, Type: recHeartbeat, Run: name})
				}
			}
		case <-e.hbQuit:
			return
		}
	}
}

// unfinishedRunNames lists the registered runs that are still live.
func (e *Engine) unfinishedRunNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for name, r := range e.runs {
		if !r.Done() {
			out = append(out, name)
		}
	}
	return out
}

// sourceRecord is the payload of a recSource journal record.
type sourceRecord struct {
	Source string `json:"source"`
}

func mustJSON(v any) json.RawMessage {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err) // engine payloads are always marshalable
	}
	return raw
}

// journalFrame hands the published event behind f to the journal stage,
// sharing the frame's encode-once bytes as the record payload. Removal
// events are not journaled: Remove deletes the whole partition instead,
// which is the stronger statement. Callers hold pubMu.
//
// Write-through journals (and the terminal Sync) stay fully inline under
// pubMu, preserving the "a subscriber never sees an event a crash could
// unwind" contract. With the async writer the record is enqueued in publish
// order instead; terminal events return a channel closed once the record is
// appended and fsynced, and publish waits on it after releasing pubMu — a
// crash right after a run finishes can still never resurrect it.
func (e *Engine) journalFrame(f *frame) <-chan struct{} {
	ev := f.ev
	if e.journals == nil || ev.Type == EventRemoved {
		return nil
	}
	terminal := ev.Type == EventCompleted || ev.Type == EventAborted || ev.Type == EventError
	rec := journal.Record{Seq: ev.Seq, Time: ev.Time, Type: recEvent, Run: ev.Strategy}
	if e.jw == nil {
		// The caller's frame reference outlives Append (fanout releases it
		// later in the same publish), so the record borrows the encoded
		// bytes without copying.
		rec.Data = json.RawMessage(f.data())
		e.journalAppend(ev.Strategy, rec)
		if terminal {
			if j, ok := e.journals.Get(ev.Strategy); ok {
				_ = j.Sync()
			}
		}
		return nil
	}
	req := jreq{rec: rec, f: f.retain(), sync: terminal}
	if terminal {
		req.doneCh = make(chan struct{})
	}
	e.jw.enqueue(req)
	return req.doneCh
}

// journalAppend writes one record to run's partition. Callers hold pubMu.
func (e *Engine) journalAppend(run string, rec journal.Record) {
	if e.journals == nil {
		return
	}
	e.journalAppendTo(e.journals, run, rec)
}

// journalAppendTo writes one record to run's partition in js (opened on
// first use with the run's fencing token), counting it. A fenced append
// means this replica lost the run's ownership mid-write: the record is
// dropped — the new owner's replay defines the truth now — and the loss is
// counted. js is passed explicitly so callers that captured the set under
// pubMu (the write-through heartbeat path) can append after releasing it.
func (e *Engine) journalAppendTo(js *journal.Set, run string, rec journal.Record) {
	j, err := js.Partition(run, e.fenceFor(run))
	if err != nil {
		if !errors.Is(err, journal.ErrClosed) {
			e.mFenced.Inc()
		}
		return
	}
	switch err := j.Append(rec); {
	case err == nil:
		e.mJournaled.Inc()
	case errors.Is(err, journal.ErrFenced):
		e.mFenced.Inc()
	}
}

// fenceFor returns the fencing token for run's partition (0: flock mode).
func (e *Engine) fenceFor(run string) int64 {
	if e.fence == nil {
		return 0
	}
	return e.fence(run)
}

// compact snapshots each run whose partition grew past its compaction
// threshold and asks that partition to drop the records the snapshot
// covers. Runs in its own goroutine, one at a time.
func (e *Engine) compact() {
	defer e.compacting.Store(false)
	e.pubMu.Lock()
	// Capture the set under pubMu: closeJournal nils the field during
	// Suspend/Shutdown, possibly between our unlock and the Compact calls.
	js := e.journals
	if js == nil {
		e.pubMu.Unlock()
		return
	}
	e.mirror.Generation = e.generation.Load()
	seq := e.bus.currentSeq()
	type item struct {
		j      *journal.Journal
		mirror *engineMirror
	}
	var items []item
	// Clone under the lock, marshal outside it: JSON-encoding the mirrors
	// must not stall the publish pipeline.
	js.Each(func(run string, j *journal.Journal) {
		if !j.ShouldCompact() {
			return
		}
		if m := e.mirror.cloneRun(run); m != nil {
			items = append(items, item{j, m})
		}
	})
	e.pubMu.Unlock()
	for _, it := range items {
		snap, err := json.Marshal(it.mirror)
		if err != nil {
			continue
		}
		if it.j.Compact(snap, seq) == nil {
			e.mCompactions.Inc()
		}
	}
}

// Run returns the run for a strategy name.
func (e *Engine) Run(name string) (*Run, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[name]
	return r, ok
}

// Runs snapshots all known runs.
func (e *Engine) Runs() []*Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Run, 0, len(e.runs))
	for _, r := range e.runs {
		out = append(out, r)
	}
	return out
}

// Abort stops a running strategy.
func (e *Engine) Abort(name string) error {
	e.mu.Lock()
	r, ok := e.runs[name]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	r.Abort()
	return nil
}

// Pause suspends a running strategy at its current state, returning the new
// pause generation (see Run.Pause).
func (e *Engine) Pause(name string) (int, error) {
	r, ok := e.Run(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Pause()
}

// Resume continues a paused strategy (see Run.Resume).
func (e *Engine) Resume(name string, gen int) error {
	r, ok := e.Run(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Resume(gen)
}

// Promote applies a manual success gate decision (see Run.Promote).
func (e *Engine) Promote(name, target string) error {
	r, ok := e.Run(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Promote(target)
}

// Rollback applies a manual failure gate decision (see Run.Rollback).
func (e *Engine) Rollback(name, target string) error {
	r, ok := e.Run(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return r.Rollback(target)
}

// RunEvents returns up to n events of one strategy's durable history,
// oldest first. The history is journal-backed: it is rebuilt on recovery,
// so it spans engine restarts (bounded per run, unlike the global ring that
// other runs' chatter can evict).
func (e *Engine) RunEvents(name string, n int) []Event {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	return e.mirror.events(name, n)
}

// eventsSince returns retained events with Seq > afterSeq for SSE resume:
// from the per-run durable history when strategy is set, from the global
// replay ring otherwise. dropped reports that part of the gap is beyond
// retention.
func (e *Engine) eventsSince(strategy string, afterSeq int64) ([]Event, bool) {
	if strategy == "" {
		return e.bus.since(afterSeq)
	}
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	return e.mirror.eventsSince(strategy, afterSeq)
}

// Remove forgets a finished run (keeps the registry tidy between tests and
// long engine uptimes). Running strategies cannot be removed. The run's
// journaled history is dropped at the next compaction. Journal entries
// that Recover could not resume (source lost or no longer compiling) have
// no registered run but can still be removed by name, so they don't haunt
// every future snapshot.
func (e *Engine) Remove(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[name]
	if ok && !r.Done() {
		return fmt.Errorf("engine: strategy %s still running", name)
	}
	if !ok {
		e.pubMu.Lock()
		_, inMirror := e.mirror.Runs[name]
		e.pubMu.Unlock()
		if !inMirror {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		}
	}
	delete(e.runs, name)

	// Drop the run's journal partition before announcing the removal: a
	// crash in between leaves no trace for recovery to resurrect. The
	// removal is still published as a regular event (mirror + SSE) so
	// watchers and the dashboard see it; journalEvent skips it — there is
	// no partition left to write to. Done under e.mu so a concurrent
	// re-enactment of the name cannot schedule between the partition
	// removal and the mirror removal.
	if e.journals != nil {
		if e.jw != nil {
			// Flush queued appends first: a record still in the writer's
			// queue must not re-create the partition directory after the
			// removal. Safe under e.mu — the writer never takes it.
			e.jw.barrier()
		}
		_ = e.journals.Remove(name)
	}
	e.publish(nil, Event{Strategy: name, Type: EventRemoved, Time: e.clk.Now()})
	return nil
}

// Evict stops a run's loop without a terminal record and unregisters it,
// closing (not deleting) its journal partition: the run's lease moved to
// another replica, which has adopted — or is about to adopt — the run from
// that same partition. The counterpart of adoption via RecoverRun.
func (e *Engine) Evict(name string) error {
	e.mu.Lock()
	r, ok := e.runs[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(e.runs, name)
	e.mu.Unlock()

	if !r.Done() {
		r.evictOnce.Do(func() { close(r.evicted) })
		<-r.done
	}
	e.pubMu.Lock()
	delete(e.mirror.Runs, name)
	e.pubMu.Unlock()
	if e.journals != nil {
		if e.jw != nil {
			// The run's queued records must reach the partition before it
			// closes — the adopting replica replays this file.
			e.jw.barrier()
		}
		_ = e.journals.CloseRun(name)
	}
	return nil
}

// Shutdown aborts everything and waits for run loops to stop. The aborts
// are journaled as terminal records: after Shutdown the strategies are
// over, and a later restart will not resume them. Use Suspend to restart
// the control plane without ending its runs.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if !e.closed && e.hbQuit != nil {
		close(e.hbQuit)
	}
	e.closed = true
	for _, r := range e.runs {
		r.Abort()
	}
	e.mu.Unlock()
	e.wg.Wait()
	e.closeJournal()
	e.bus.close()
}

// Suspend stops every run loop without terminal records: the journal keeps
// showing the runs mid-state, so an engine restarted on the same journal
// directory resumes them via Recover. This is the graceful half of crash
// recovery — SIGTERM during a deploy behaves like a crash with zero lost
// records.
func (e *Engine) Suspend() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	if e.hbQuit != nil {
		close(e.hbQuit)
	}
	close(e.stopping)
	e.mu.Unlock()
	e.wg.Wait()
	e.closeJournal()
	e.bus.close()
}

// closeJournal takes a final per-partition snapshot (so restarts replay a
// compact prefix) and closes the set. Run loops have already stopped.
func (e *Engine) closeJournal() {
	if e.jw != nil {
		// Drain the async writer before touching the set: every queued
		// record lands in its partition, and the writer goroutine (which
		// briefly takes pubMu per batch) is gone before we hold pubMu.
		e.jw.stopAndDrain()
	}
	e.pubMu.Lock()
	js := e.journals
	if js == nil {
		e.pubMu.Unlock()
		return
	}
	e.journals = nil
	e.mirror.Generation = e.generation.Load()
	seq := e.bus.currentSeq()
	type item struct {
		j      *journal.Journal
		mirror *engineMirror
	}
	var items []item
	js.Each(func(run string, j *journal.Journal) {
		if m := e.mirror.cloneRun(run); m != nil {
			items = append(items, item{j, m})
		}
	})
	e.pubMu.Unlock()
	if seq > 0 {
		for _, it := range items {
			if snap, err := json.Marshal(it.mirror); err == nil {
				_ = it.j.Compact(snap, seq)
			}
		}
	}
	_ = js.Close()
}

// nextGeneration issues monotonically increasing proxy config generations.
func (e *Engine) nextGeneration() int64 { return e.generation.Add(1) }
