// Tier-2 multi-replica end-to-end: three real bifrost-engine processes
// share one partitioned journal root and one lease directory. A 12-run
// matrix template is scheduled through a single replica and sharded across
// the fleet by rendezvous preference; one replica is then killed -9
// mid-phase and the survivors must adopt every one of its runs within two
// lease TTLs — same phase, elapsed-in-state preserved with the downtime
// excluded — while SSE watchers attached through a survivor ride the
// takeover via Last-Event-ID with zero lost and zero duplicated events.
//
// Run with the ha CI job (no -short): go test ./e2e -race -run TestHA -v
package e2e

import (
	"context"
	"sync"
	"testing"
	"time"

	"bifrost/e2e/harness"
	"bifrost/internal/engine"
)

// haMatrix expands to 3×2×2 = 12 runs. The canary phase is long enough
// that every run is still mid-phase when the victim dies; the flag target
// keeps enactment in-process (no external proxies to stand up).
const haMatrix = `
name: ha-${region}-${cohort}-${slice}
matrix:
  region: [eu, us, ap]
  cohort: [free, paid]
  slice: [x, y]
deployment:
  services:
    - service: shop
      target: flag
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: canary
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: canary
      duration: 10m
      routes:
        - route:
            service: shop
            weights: {stable: 90, canary: 10}
      on:
        success: end
    - phase: end
      routes:
        - route:
            service: shop
            weights: {canary: 100}
`

const leaseTTL = 2 * time.Second

func TestHAShardedFleetSurvivesReplicaKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e; skipped in -short")
	}
	fleet := harness.StartFleet(t, harness.Options{Replicas: 3, LeaseTTL: leaseTTL})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// One POST through r0 schedules the whole matrix across the fleet.
	client := fleet.Client("r0")
	sts, err := client.ScheduleAll(ctx, haMatrix)
	if err != nil {
		t.Fatalf("ScheduleAll: %v", err)
	}
	if len(sts) != 12 {
		t.Fatalf("scheduled %d runs, want 12", len(sts))
	}

	// Wait until every run is mid-phase, then map ownership per replica
	// through internal (local-only) listings: every run on exactly one
	// replica, and the journal root shows one partition per run.
	harness.Eventually(t, 15*time.Second, "all 12 runs in canary", func() bool {
		listed, err := client.List(ctx)
		if err != nil || len(listed) != 12 {
			return false
		}
		for _, st := range listed {
			if st.Current != "canary" || st.State != engine.RunRunning {
				return false
			}
		}
		return true
	})
	owners := ownershipMap(t, fleet)
	if len(owners) != 12 {
		t.Fatalf("fleet owns %d runs, want 12: %v", len(owners), owners)
	}
	if parts := fleet.Partitions(); len(parts) != 12 {
		t.Fatalf("journal root has %d partitions, want 12: %v", len(parts), parts)
	}

	// Pick the victim: a replica that owns at least one run (sharding
	// across 12 names makes an empty replica all but impossible, but be
	// explicit). Kill -9: no shutdown hooks, leases stay on disk.
	perReplica := map[string][]string{}
	for run, id := range owners {
		perReplica[id] = append(perReplica[id], run)
	}
	victim := ""
	for _, id := range fleet.IDs() {
		if len(perReplica[id]) > 0 {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Fatalf("no replica owns any run: %v", perReplica)
	}
	victimRuns := perReplica[victim]
	t.Logf("victim %s owns %d runs: %v", victim, len(victimRuns), victimRuns)

	// SSE watchers ride through the takeover: attach one per victim run,
	// through a surviving replica (it 307s to the owner; the stream
	// client follows, and reconnects with Last-Event-ID after the kill).
	survivor := ""
	for _, id := range fleet.IDs() {
		if id != victim {
			survivor = id
			break
		}
	}
	type watchState struct {
		mu      sync.Mutex
		seqs    []int64
		seen    map[int64]int
		recov   bool
		reentry bool
	}
	watches := make(map[string]*watchState, len(victimRuns))
	watchCancels := make([]func(), 0, len(victimRuns))
	for _, run := range victimRuns {
		ws := &watchState{seen: make(map[int64]int)}
		watches[run] = ws
		// replay=64 prefixes the run's buffered history, so the watcher
		// has a Last-Event-ID to resume from before the kill even though
		// the run is sitting quietly mid-phase.
		ch, stop, err := fleet.Client(survivor).Watch(ctx, run, 64)
		if err != nil {
			t.Fatalf("Watch %s via %s: %v", run, survivor, err)
		}
		watchCancels = append(watchCancels, stop)
		go func(run string, ws *watchState) {
			for ev := range ch {
				ws.mu.Lock()
				ws.seqs = append(ws.seqs, ev.Seq)
				ws.seen[ev.Seq]++
				if ev.Type == engine.EventRecovered {
					ws.recov = true
				}
				if ev.Type == engine.EventStateEntered && ws.recov {
					ws.reentry = true
				}
				ws.mu.Unlock()
			}
		}(run, ws)
	}
	defer func() {
		for _, stop := range watchCancels {
			stop()
		}
	}()
	// Let every watcher land on the live stream before the kill.
	harness.Eventually(t, 10*time.Second, "watchers attached", func() bool {
		for _, ws := range watches {
			ws.mu.Lock()
			n := len(ws.seqs)
			ws.mu.Unlock()
			if n == 0 {
				return false
			}
		}
		return true
	})

	// Record each victim run's pre-kill elapsed-in-state, then kill -9.
	preKill := map[string]time.Duration{}
	for _, run := range victimRuns {
		st, err := client.Get(ctx, run)
		if err != nil {
			t.Fatalf("pre-kill status of %s: %v", run, err)
		}
		preKill[run] = time.Since(st.EnteredAt)
	}
	killedAt := time.Now()
	fleet.Replica(victim).Kill9()
	// The scheduling client may have pointed at the victim; all post-kill
	// API traffic goes through a survivor (redirected to owners as needed).
	client = fleet.Client(survivor)

	// Adoption deadline: two lease TTLs, plus scheduling slack for the
	// sweep that performs it.
	adoptBy := killedAt.Add(2*leaseTTL + 3*time.Second)
	harness.Eventually(t, time.Until(adoptBy)+time.Second,
		"survivors adopting every victim run", func() bool {
			owners := ownershipMap(t, fleet)
			for _, run := range victimRuns {
				if id, ok := owners[run]; !ok || id == victim {
					return false
				}
			}
			return true
		})
	adoptedAt := time.Now()
	if lateBy := adoptedAt.Sub(adoptBy); lateBy > 0 {
		t.Errorf("adoption finished %s past the 2-TTL deadline", lateBy)
	}

	// Every run is owned exactly once across the survivors, and each
	// adopted run resumed in-phase with elapsed preserved: the in-state
	// clock must not have absorbed the ≥1 TTL of downtime, and must not
	// have reset either.
	owners = ownershipMap(t, fleet)
	if len(owners) != 12 {
		t.Fatalf("fleet owns %d runs after takeover, want 12: %v", len(owners), owners)
	}
	for _, run := range victimRuns {
		st, err := client.Get(ctx, run)
		if err != nil {
			t.Fatalf("post-adopt status of %s: %v", run, err)
		}
		if st.Current != "canary" || st.State != engine.RunRunning {
			t.Errorf("run %s resumed as %s/%s, want running/canary", run, st.State, st.Current)
		}
		if !st.Recovered {
			t.Errorf("run %s does not report Recovered after adoption", run)
		}
		elapsed := time.Since(st.EnteredAt)
		wall := preKill[run] + time.Since(killedAt)
		// Downtime ≥ 1 TTL must be excluded (heartbeats pin the crash
		// time to within 250ms), and the pre-kill elapsed kept.
		if elapsed > wall-leaseTTL/2 {
			t.Errorf("run %s elapsed %s vs wall %s: downtime not excluded", run, elapsed, wall)
		}
		if elapsed < preKill[run]-time.Second {
			t.Errorf("run %s elapsed %s < pre-kill %s: in-state clock reset", run, elapsed, preKill[run])
		}
	}

	// Watchers rode through: the recovered event and the re-entry made
	// it onto each resumed stream, with zero duplicate sequence numbers
	// and strictly ascending delivery (no lost-and-refetched weirdness).
	harness.Eventually(t, 20*time.Second, "watchers observing the takeover", func() bool {
		for _, ws := range watches {
			ws.mu.Lock()
			ok := ws.recov && ws.reentry
			ws.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	})
	for run, ws := range watches {
		ws.mu.Lock()
		for seq, n := range ws.seen {
			if n > 1 {
				t.Errorf("watcher of %s saw seq %d %d times (duplicate delivery)", run, seq, n)
			}
		}
		for i := 1; i < len(ws.seqs); i++ {
			if ws.seqs[i] <= ws.seqs[i-1] {
				t.Errorf("watcher of %s saw non-ascending seqs %d then %d",
					run, ws.seqs[i-1], ws.seqs[i])
			}
		}
		ws.mu.Unlock()
	}

	// The lease records agree with the API's view of ownership.
	leases := fleet.Leases()
	recs, err := leases.List()
	if err != nil {
		t.Fatalf("lease list: %v", err)
	}
	holder := map[string]string{}
	for _, rec := range recs {
		holder[rec.Run] = rec.Holder
	}
	for run, id := range owners {
		if holder[run] != id {
			t.Errorf("run %s: API owner %s but lease holder %s", run, id, holder[run])
		}
	}
}

// ownershipMap asks each live replica for its local runs and asserts no
// run is claimed twice. Dead replicas are skipped (connection refused).
func ownershipMap(t *testing.T, fleet *harness.Fleet) map[string]string {
	t.Helper()
	owners := map[string]string{}
	for _, id := range fleet.IDs() {
		r := fleet.Replica(id)
		sts, err := r.TryLocalRuns()
		if err != nil {
			continue // dead or restarting replica
		}
		for _, st := range sts {
			if prev, dup := owners[st.Strategy]; dup {
				t.Fatalf("run %s live on both %s and %s", st.Strategy, prev, id)
			}
			owners[st.Strategy] = id
		}
	}
	return owners
}
