package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestEDivisiveDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	series := make([]float64, 0, 120)
	for i := 0; i < 60; i++ {
		series = append(series, 100+5*rng.NormFloat64())
	}
	for i := 0; i < 60; i++ {
		series = append(series, 130+5*rng.NormFloat64()) // +6σ shift
	}
	cp, err := EDivisive(series, 5, 199, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Index < 55 || cp.Index > 65 {
		t.Fatalf("change located at %d, want ≈60", cp.Index)
	}
	if cp.P > 0.01 {
		t.Fatalf("clear shift not significant: p=%v", cp.P)
	}
}

func TestEDivisiveStationaryNotSignificant(t *testing.T) {
	// Across several seeds, stationary noise must (almost) never reach
	// significance at 0.05 — pin a small family rather than one lucky run.
	hits := 0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		series := make([]float64, 120)
		for i := range series {
			series[i] = 100 + 5*rng.NormFloat64()
		}
		cp, err := EDivisive(series, 5, 199, seed)
		if err != nil {
			t.Fatal(err)
		}
		if cp.P <= 0.05 {
			hits++
		}
	}
	if hits > 1 {
		t.Fatalf("stationary series significant in %d/10 runs", hits)
	}
}

func TestEDivisiveVarianceShift(t *testing.T) {
	// Energy distance is sensitive to distribution change generally, not
	// just the mean: same mean, 6× the spread.
	rng := rand.New(rand.NewSource(33))
	series := make([]float64, 0, 160)
	for i := 0; i < 80; i++ {
		series = append(series, 100+2*rng.NormFloat64())
	}
	for i := 0; i < 80; i++ {
		series = append(series, 100+12*rng.NormFloat64())
	}
	cp, err := EDivisive(series, 5, 199, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.P > 0.05 {
		t.Fatalf("variance shift not significant: p=%v", cp.P)
	}
}

func TestEDivisiveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	series := make([]float64, 60)
	for i := range series {
		series[i] = rng.Float64()
	}
	a, err := EDivisive(series, 3, 99, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EDivisive(series, 3, 99, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestEDivisiveIncrementalMatchesNaive(t *testing.T) {
	// The O(n²) incremental scan must agree with a direct recomputation
	// of Q at every split.
	rng := rand.New(rand.NewSource(35))
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	const minSeg = 3
	idx, stat := bestSplit(x, minSeg)
	naiveIdx, naiveStat := 0, math.Inf(-1)
	for m := minSeg; m <= len(x)-minSeg; m++ {
		var wx, wy, b float64
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				wx += math.Abs(x[i] - x[j])
			}
		}
		for i := m; i < len(x); i++ {
			for j := i + 1; j < len(x); j++ {
				wy += math.Abs(x[i] - x[j])
			}
		}
		for i := 0; i < m; i++ {
			for j := m; j < len(x); j++ {
				b += math.Abs(x[i] - x[j])
			}
		}
		if q := qStat(b, wx, wy, m, len(x)); q > naiveStat {
			naiveStat, naiveIdx = q, m
		}
	}
	if idx != naiveIdx || math.Abs(stat-naiveStat) > 1e-9*math.Abs(naiveStat) {
		t.Fatalf("incremental (%d, %v) != naive (%d, %v)", idx, stat, naiveIdx, naiveStat)
	}
}

func TestEDivisiveErrors(t *testing.T) {
	if _, err := EDivisive([]float64{1, 2, 3}, 2, 10, 0); err == nil {
		t.Fatal("short series accepted")
	}
	if _, err := EDivisive([]float64{1, 2, math.NaN(), 4, 5, 6, 7, 8}, 2, 10, 0); err == nil {
		t.Fatal("NaN accepted")
	}
	cp, err := EDivisive([]float64{1, 2, 3, 4, 9, 9, 9, 9}, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(cp.P) {
		t.Fatalf("zero permutations must leave P NaN, got %v", cp.P)
	}
}
