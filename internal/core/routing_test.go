package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNormalizedWeights(t *testing.T) {
	rc := RoutingConfig{
		Service: "search",
		Weights: map[string]float64{"search": 95, "fastSearch": 5},
	}
	names, shares, err := rc.NormalizedWeights()
	if err != nil {
		t.Fatalf("NormalizedWeights: %v", err)
	}
	if len(names) != 2 || names[0] != "fastSearch" || names[1] != "search" {
		t.Fatalf("names = %v, want sorted [fastSearch search]", names)
	}
	if math.Abs(shares[0]-0.05) > 1e-12 || math.Abs(shares[1]-0.95) > 1e-12 {
		t.Errorf("shares = %v", shares)
	}
}

func TestNormalizedWeightsErrors(t *testing.T) {
	cases := []RoutingConfig{
		{Service: "s"},
		{Service: "s", Weights: map[string]float64{"a": 0, "b": 0}},
		{Service: "s", Weights: map[string]float64{"a": -1, "b": 2}},
	}
	for i, rc := range cases {
		if _, _, err := rc.NormalizedWeights(); err == nil {
			t.Errorf("case %d: no error for %v", i, rc.Weights)
		}
	}
}

func TestSelectorDeterministic(t *testing.T) {
	rc := RoutingConfig{
		Service: "search",
		Weights: map[string]float64{"search": 50, "fastSearch": 50},
	}
	sel, err := NewSelector(&rc)
	if err != nil {
		t.Fatalf("NewSelector: %v", err)
	}
	// Property: η is a function — the same user always gets the same version.
	f := func(user string) bool {
		return sel.Assign(user) == sel.Assign(user)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectorAssignsOnlyKnownVersions(t *testing.T) {
	rc := RoutingConfig{
		Service: "product",
		Weights: map[string]float64{"productA": 1, "productB": 1, "product": 2},
	}
	sel, err := NewSelector(&rc)
	if err != nil {
		t.Fatalf("NewSelector: %v", err)
	}
	known := map[string]bool{}
	for _, v := range sel.Versions() {
		known[v] = true
	}
	f := func(user string) bool { return known[sel.Assign(user)] }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectorDistributionRoughlyMatchesWeights(t *testing.T) {
	rc := RoutingConfig{
		Service: "search",
		Weights: map[string]float64{"search": 95, "fastSearch": 5},
	}
	sel, err := NewSelector(&rc)
	if err != nil {
		t.Fatalf("NewSelector: %v", err)
	}
	const n = 20000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[sel.Assign(fmt.Sprintf("user-%d", i))]++
	}
	fastShare := float64(counts["fastSearch"]) / n
	if fastShare < 0.035 || fastShare > 0.065 {
		t.Errorf("fastSearch share = %.4f, want ≈ 0.05", fastShare)
	}
}

func TestSelectorExtremeWeights(t *testing.T) {
	rc := RoutingConfig{
		Service: "search",
		Weights: map[string]float64{"search": 0, "fastSearch": 100},
	}
	sel, err := NewSelector(&rc)
	if err != nil {
		t.Fatalf("NewSelector: %v", err)
	}
	for i := 0; i < 100; i++ {
		if got := sel.Assign(fmt.Sprintf("u%d", i)); got != "fastSearch" {
			t.Fatalf("Assign = %q, want fastSearch (100%%)", got)
		}
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	mk := func(mutate func(*Strategy)) *Strategy {
		s := RunningExample(time.Millisecond)
		mutate(s)
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Strategy)
	}{
		{"empty name", func(s *Strategy) { s.Name = "" }},
		{"missing start", func(s *Strategy) { s.Automaton.Start = "zz" }},
		{"no finals", func(s *Strategy) { s.Automaton.Finals = nil }},
		{"bad final", func(s *Strategy) { s.Automaton.Finals = []string{"nope"} }},
		{"dup state", func(s *Strategy) {
			s.Automaton.States = append(s.Automaton.States, State{ID: "a"})
		}},
		{"unsorted thresholds", func(s *Strategy) {
			st, _ := s.Automaton.State("b")
			st.Thresholds = []int{4, 3}
		}},
		{"transition count", func(s *Strategy) {
			st, _ := s.Automaton.State("b")
			st.Transitions = []string{"c"}
		}},
		{"unknown transition", func(s *Strategy) {
			st, _ := s.Automaton.State("b")
			st.Transitions[0] = "zz"
		}},
		{"bad fallback", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Checks[1].Fallback = "zz"
		}},
		{"nil evaluator", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Checks[0].Eval = nil
		}},
		{"bad output mapping", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Checks[0].Outputs = []int{1}
		}},
		{"negative weight", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Checks[0].Weight = -1
		}},
		{"dup check name", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Checks[1].Name = st.Checks[0].Name
		}},
		{"unknown routed service", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Routing[0].Service = "zz"
		}},
		{"unknown routed version", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Routing[0].Weights = map[string]float64{"ghost": 1}
		}},
		{"no services", func(s *Strategy) { s.Services = nil }},
		{"dup versions", func(s *Strategy) {
			s.Services[0].Versions = append(s.Services[0].Versions, s.Services[0].Versions[0])
		}},
		{"shadow percent", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Routing[0].Shadows = []ShadowRule{{Target: "fastSearch", Percent: 150}}
		}},
		{"shadow unknown target", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Routing[0].Shadows = []ShadowRule{{Target: "ghost", Percent: 50}}
		}},
		{"header mode without header", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Routing[0].Mode = RouteHeader
		}},
		{"executions without interval", func(s *Strategy) {
			st, _ := s.Automaton.State("a")
			st.Checks[0].Interval = 0
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := mk(c.mutate)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted mutated strategy (%s)", c.name)
			}
			var verr *ValidationError
			if !asValidation(err, &verr) {
				t.Fatalf("error type = %T", err)
			}
			if len(verr.Problems) == 0 {
				t.Fatal("no problems recorded")
			}
		})
	}
}

func asValidation(err error, target **ValidationError) bool {
	v, ok := err.(*ValidationError)
	if ok {
		*target = v
	}
	return ok
}

func TestValidationErrorMessage(t *testing.T) {
	err := &ValidationError{Strategy: "x", Problems: []string{"p1", "p2"}}
	msg := err.Error()
	if msg == "" || len(msg) < 10 {
		t.Errorf("Error() = %q", msg)
	}
}

func BenchmarkSelectorAssign(b *testing.B) {
	rc := RoutingConfig{
		Service: "search",
		Weights: map[string]float64{"search": 95, "fastSearch": 5},
	}
	sel, err := NewSelector(&rc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel.Assign("user-123e4567-e89b-12d3-a456-426614174000")
	}
}

func BenchmarkValidateRunningExample(b *testing.B) {
	s := RunningExample(time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
