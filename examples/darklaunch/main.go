// Dark launch: duplicate production traffic to a shadow version.
//
// A redesigned recommendation engine must face production-like traffic
// before any user sees it. The strategy keeps 100% of live traffic on the
// stable version while duplicating every request to the shadow version,
// whose responses are discarded — the Listing-2 scenario of the paper,
// written in the paper's own route syntax.
//
//	go run ./examples/darklaunch
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"bifrost"
	"bifrost/internal/httpx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var liveHits, shadowHits atomic.Int64
	live := serveCounting("recs-v1", &liveHits, 0)
	shadow := serveCounting("recs-v2", &shadowHits, 3*time.Millisecond)
	defer live.Shutdown(context.Background())
	defer shadow.Shutdown(context.Background())

	// The paper's Listing-2 form: from/to with a shadow traffic filter.
	yaml := fmt.Sprintf(`
name: recs-darklaunch
deployment:
  services:
    - service: recs
      versions:
        - name: recs
          endpoint: %s
        - name: recsNext
          endpoint: %s
strategy:
  phases:
    - phase: dark
      description: 100%% of traffic duplicated to the shadow version
      duration: 3s
      routes:
        - route:
            from: recs
            to: recsNext
            filters:
              - traffic:
                  percentage: 100
                  shadow: true
                  intervalTime: 60
      on:
        success: keep-stable
    - phase: keep-stable
      routes:
        - route:
            service: recs
            weights: {recs: 100}
`, live.URL(), shadow.URL())

	strategy, err := bifrost.CompileStrategy(yaml)
	if err != nil {
		return err
	}
	proxy, err := bifrost.NewProxy("recs", bifrost.ProxyConfig{})
	if err != nil {
		return err
	}
	defer proxy.Close()
	front, err := httpx.NewServer("127.0.0.1:0", proxy)
	if err != nil {
		return err
	}
	front.Start()
	defer front.Shutdown(context.Background())

	local := bifrost.NewLocalProxies()
	local.Register("recs", proxy)
	eng := bifrost.NewEngine(bifrost.WithLocalProxies(local))
	defer eng.Shutdown()

	run, err := eng.Enact(strategy)
	if err != nil {
		return err
	}

	// Production traffic during the dark phase. Every response must come
	// from the live version — users never see the shadow.
	const requests = 60
	for i := 0; i < requests; i++ {
		resp, rerr := http.Get(front.URL() + "/recommendations")
		if rerr != nil {
			continue
		}
		if v := resp.Header.Get("X-Bifrost-Version"); v != "recs" {
			return fmt.Errorf("user-visible response from %q — dark launch leaked", v)
		}
		resp.Body.Close()
		time.Sleep(30 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	status, err := bifrost.WaitForCompletion(ctx, run)
	if err != nil {
		return err
	}
	// Shadow delivery is asynchronous; give the queue a moment to drain.
	time.Sleep(300 * time.Millisecond)

	fmt.Printf("strategy finished: %s\n", status.State)
	fmt.Printf("live version handled   %d requests\n", liveHits.Load())
	fmt.Printf("shadow version endured %d duplicated requests (invisible to users)\n",
		shadowHits.Load())
	if shadowHits.Load() == 0 {
		return fmt.Errorf("shadow never received traffic")
	}
	return nil
}

func serveCounting(name string, hits *atomic.Int64, delay time.Duration) *httpx.Server {
	srv, err := httpx.NewServer("127.0.0.1:0", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			if delay > 0 {
				time.Sleep(delay) // the redesign is still slow under load
			}
			fmt.Fprintf(w, "recommendations from %s\n", name)
		}))
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	return srv
}
