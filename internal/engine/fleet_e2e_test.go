package engine

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"bifrost/internal/dsl"
	"bifrost/internal/httpx"
	"bifrost/internal/proxy"
)

// replicaServer is one real proxy replica served over HTTP, restartable on
// its original address (the way a rescheduled container comes back).
type replicaServer struct {
	t    *testing.T
	addr string
	p    *proxy.Proxy
	srv  *httpx.Server
}

func startReplica(t *testing.T, addr string) *replicaServer {
	t.Helper()
	p, err := proxy.New("shop", proxy.Config{
		Service:    "shop",
		Generation: 0,
		Backends:   []proxy.Backend{{Version: "stable", URL: "http://127.0.0.1:9001", Weight: 1}},
	})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	srv, err := httpx.NewServer(addr, p)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv.Start()
	return &replicaServer{t: t, addr: srv.Addr(), p: p, srv: srv}
}

// kill stops the replica: admin API unreachable, all state lost.
func (rs *replicaServer) kill() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rs.srv.Shutdown(ctx); err != nil {
		rs.t.Logf("replica shutdown: %v", err)
	}
	rs.p.Close()
}

// restart brings a fresh, configless replica back on the same address.
func (rs *replicaServer) restart() {
	fresh := startReplica(rs.t, rs.addr)
	rs.p, rs.srv = fresh.p, fresh.srv
}

func (rs *replicaServer) generation() int64 { return rs.p.Config().Generation }

// TestFleetReplicaRestartEndToEnd is the issue's acceptance drill: a
// 3-replica run survives one replica being killed and restarted mid-phase.
// The killed replica makes the fleet degraded (observed as
// routing_degraded on the live SSE stream), the restarted one is
// reconverged by the anti-entropy reconciler without operator action
// (routing_converged on SSE, generation caught up), and the run completes.
func TestFleetReplicaRestartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e runs in the recovery CI job (and full local test runs)")
	}

	replicas := []*replicaServer{
		startReplica(t, "127.0.0.1:0"),
		startReplica(t, "127.0.0.1:0"),
		startReplica(t, "127.0.0.1:0"),
	}
	defer func() {
		for _, rs := range replicas {
			rs.kill()
		}
	}()

	src := fmt.Sprintf(`
name: fleet-e2e
deployment:
  services:
    - service: shop
      proxies:
        - http://%s
        - http://%s
        - http://%s
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: canary
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: canary
      duration: 3s
      routes:
        - route:
            service: shop
            weights: {stable: 9, canary: 1}
      on:
        success: done
    - phase: done
      routes:
        - route:
            service: shop
            weights: {canary: 100}
`, replicas[0].addr, replicas[1].addr, replicas[2].addr)

	// Quorum 2 of 3: losing one replica must neither fail a state entry
	// nor block the run's transitions while the replica is down.
	eng := New(WithConfigurator(NewFleetConfigurator(
		FleetQuorum(2),
		FleetRetry(RetryPolicy{
			PushTimeout: time.Second,
			MaxAttempts: 2,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		}),
		FleetReconcileInterval(25*time.Millisecond),
	)))
	defer eng.Shutdown()

	api := httptest.NewServer(NewAPI(eng, dsl.Compile).Handler())
	defer api.Close()
	client := &Client{BaseURL: api.URL}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, stopWatch, err := client.Watch(ctx, "", 0)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer stopWatch()

	if _, err := client.Schedule(ctx, src); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	run, ok := eng.Run("fleet-e2e")
	if !ok {
		t.Fatal("run not registered")
	}

	// All three replicas receive the canary phase's routing.
	awaitEvent(t, events, "routing_applied", func(ev Event) bool {
		return ev.Type == EventRoutingApplied && ev.State == "canary"
	})
	canaryGen := int64(0)
	for i, rs := range replicas {
		if g := rs.generation(); g <= 0 {
			t.Fatalf("replica %d generation = %d after state entry", i, g)
		} else {
			canaryGen = g
		}
	}

	// Kill one replica mid-phase: the reconciler notices the fleet is no
	// longer at full strength and degrades it on the event stream.
	replicas[1].kill()
	deg := awaitEvent(t, events, "routing_degraded", func(ev Event) bool {
		return ev.Type == EventRoutingDegraded && ev.Service == "shop"
	})
	if deg.Replicas != 3 || deg.Acked != 2 {
		t.Errorf("degraded event = %d/%d acked, want 2/3", deg.Acked, deg.Replicas)
	}

	// Restart it empty on the same address: anti-entropy re-pushes the
	// current generation and announces reconvergence — no operator action.
	replicas[1].restart()
	conv := awaitEvent(t, events, "routing_converged", func(ev Event) bool {
		return ev.Type == EventRoutingConverged && ev.Service == "shop"
	})
	if conv.Replicas != 3 || conv.Acked != 3 {
		t.Errorf("converged event = %d/%d acked, want 3/3", conv.Acked, conv.Replicas)
	}
	if g := replicas[1].generation(); g < canaryGen {
		t.Errorf("restarted replica generation = %d, want ≥ %d", g, canaryGen)
	}

	// Run status reflects the convergence (the v2 run resource carries it).
	st, err := client.Get(ctx, "fleet-e2e")
	if err != nil {
		t.Fatalf("get status: %v", err)
	}
	if len(st.Fleet) != 1 || !st.Fleet[0].Converged || st.Fleet[0].Acked != 3 {
		t.Errorf("status fleet = %+v, want shop converged 3/3", st.Fleet)
	}

	// The phase timer fires, the run rolls into its final state and
	// completes — the whole drill never needed a human.
	awaitEvent(t, events, "run completed", func(ev Event) bool {
		return ev.Type == EventCompleted && ev.Strategy == "fleet-e2e"
	})
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := run.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	if st := run.Status(); st.State != RunCompleted {
		t.Fatalf("run state = %s (%s), want completed", st.State, st.Error)
	}

	// Every replica — including the restarted one — ends on the final
	// state's generation.
	final := replicas[0].generation()
	if final <= canaryGen {
		t.Fatalf("final generation %d not beyond canary generation %d", final, canaryGen)
	}
	for i, rs := range replicas {
		if g := rs.generation(); g != final {
			t.Errorf("replica %d generation = %d, want %d", i, g, final)
		}
	}
}
