// Package sysmon samples process resource usage into the metrics substrate
// — the standard-library substitute for the cAdvisor containers in the
// paper's deployment, which "collect the containers' performance metrics
// (e.g., CPU utilization, memory consumption)" for Prometheus.
//
// On Linux it reads /proc/self/stat for CPU time and uses runtime memory
// statistics; both are exported as gauges on a metrics registry under a
// configurable "container" label, so the engine-CPU experiments (Figures 7
// and 9) query the same metric names the paper's setup produced.
package sysmon

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/metrics"
)

// Sampler periodically publishes CPU and memory gauges.
type Sampler struct {
	registry  *metrics.Registry
	container string
	interval  time.Duration
	clk       clock.Clock

	mu           sync.Mutex
	lastCPU      time.Duration
	lastSampleAt time.Time

	stop chan struct{}
	done chan struct{}

	// readCPU is swappable for tests and non-Linux fallback.
	readCPU func() (time.Duration, error)
}

// New creates a sampler publishing under the given container label.
func New(registry *metrics.Registry, container string, interval time.Duration, clk clock.Clock) *Sampler {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Sampler{
		registry:  registry,
		container: container,
		interval:  interval,
		clk:       clk,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		readCPU:   ProcessCPUTime,
	}
}

// Start launches the sampling loop.
func (s *Sampler) Start() {
	go func() {
		defer close(s.done)
		ticker := s.clk.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C():
				s.SampleOnce()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for it.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
}

// SampleOnce publishes one sample immediately.
func (s *Sampler) SampleOnce() {
	labels := metrics.Labels{"container": s.container}
	now := s.clk.Now()

	if cpu, err := s.readCPU(); err == nil {
		s.mu.Lock()
		if !s.lastSampleAt.IsZero() {
			wall := now.Sub(s.lastSampleAt)
			if wall > 0 {
				busy := float64(cpu-s.lastCPU) / float64(wall)
				if busy < 0 {
					busy = 0
				}
				s.registry.Gauge("container_cpu_busy_ratio", labels).Set(busy)
				s.registry.Gauge("container_cpu_usage_percent", labels).Set(busy * 100)
			}
		}
		s.lastCPU = cpu
		s.lastSampleAt = now
		s.mu.Unlock()
		s.registry.Gauge("container_cpu_seconds_total", labels).Set(cpu.Seconds())
	}

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	s.registry.Gauge("container_memory_bytes", labels).Set(float64(mem.Alloc))
	s.registry.Gauge("container_memory_sys_bytes", labels).Set(float64(mem.Sys))
	s.registry.Gauge("container_goroutines", labels).Set(float64(runtime.NumGoroutine()))
}

// ProcessCPUTime returns the process's cumulative user+system CPU time from
// /proc/self/stat. It fails gracefully on non-Linux systems.
func ProcessCPUTime() (time.Duration, error) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, fmt.Errorf("sysmon: read /proc/self/stat: %w", err)
	}
	return parseProcStat(string(data))
}

// parseProcStat extracts utime+stime (fields 14 and 15, 1-based) from a
// /proc/<pid>/stat line. The command field (2) may contain spaces and is
// parenthesized, so parsing starts after the closing parenthesis.
func parseProcStat(stat string) (time.Duration, error) {
	close := strings.LastIndexByte(stat, ')')
	if close < 0 {
		return 0, fmt.Errorf("sysmon: malformed stat line")
	}
	fields := strings.Fields(stat[close+1:])
	// fields[0] is field 3 ("state"); utime is field 14 → index 11.
	if len(fields) < 13 {
		return 0, fmt.Errorf("sysmon: short stat line (%d fields)", len(fields))
	}
	utime, err1 := strconv.ParseUint(fields[11], 10, 64)
	stime, err2 := strconv.ParseUint(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("sysmon: parse utime/stime: %v %v", err1, err2)
	}
	ticks := utime + stime
	const hz = 100 // USER_HZ on all supported platforms
	return time.Duration(ticks) * time.Second / hz, nil
}

// CPUUtilization measures average process CPU utilization (0..1 per core)
// over the given wall window; the experiment harness uses it to produce
// Figure 7/9 style samples without a full sampler loop.
func CPUUtilization(window time.Duration) (float64, error) {
	before, err := ProcessCPUTime()
	if err != nil {
		return 0, err
	}
	time.Sleep(window)
	after, err := ProcessCPUTime()
	if err != nil {
		return 0, err
	}
	if window <= 0 {
		return 0, nil
	}
	return float64(after-before) / float64(window), nil
}
