package httpx

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestProblemRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteProblem(w, Problem{
			Status: http.StatusConflict,
			Code:   "already_running",
			Detail: "strategy x already running",
		})
	}))
	defer ts.Close()

	err := GetJSON(context.Background(), ts.URL, &struct{}{})
	var p *Problem
	if !errors.As(err, &p) {
		t.Fatalf("err = %v (%T), want *Problem", err, err)
	}
	if p.Status != http.StatusConflict || p.Code != "already_running" {
		t.Errorf("problem = %+v", p)
	}
	if p.Title != http.StatusText(http.StatusConflict) {
		t.Errorf("title = %q, want filled from status text", p.Title)
	}
	if ProblemCode(err) != "already_running" {
		t.Errorf("ProblemCode = %q", ProblemCode(err))
	}
	if !strings.Contains(p.Error(), "already_running") {
		t.Errorf("Error() = %q, want code included", p.Error())
	}
}

func TestProblemContentTypeIsRFC9457(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteProblem(rec, Problem{Status: 422, Code: "compile_failed", Detail: "boom"})
	if ct := rec.Header().Get("Content-Type"); ct != ProblemContentType {
		t.Errorf("content type = %q, want %q", ct, ProblemContentType)
	}
	if !strings.Contains(rec.Body.String(), `"code":"compile_failed"`) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestLegacyErrorEnvelopeStillParses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, "nope")
	}))
	defer ts.Close()

	err := GetJSON(context.Background(), ts.URL, &struct{}{})
	var e *Error
	if !errors.As(err, &e) || e.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v (%T), want legacy *Error with 404", err, err)
	}
}

func TestSSEWriteAndRead(t *testing.T) {
	type payload struct {
		N int    `json:"n"`
		S string `json:"s"`
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sse, err := NewSSEWriter(w)
		if err != nil {
			t.Errorf("NewSSEWriter: %v", err)
			return
		}
		sse.Comment("keep-alive")
		for i := 1; i <= 3; i++ {
			if err := sse.Send("tick", "", payload{N: i, S: "event"}); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	var got []SSEEvent
	if err := ReadSSE(resp.Body, func(ev SSEEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("ReadSSE: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("events = %d, want 3 (comments must be skipped)", len(got))
	}
	for i, ev := range got {
		if ev.Name != "tick" {
			t.Errorf("event %d name = %q", i, ev.Name)
		}
		if want := `{"n":` + string(rune('1'+i)) + `,"s":"event"}`; string(ev.Data) != want {
			t.Errorf("event %d data = %s, want %s", i, ev.Data, want)
		}
	}
}

func TestReadSSEStopsOnCallbackError(t *testing.T) {
	stream := "event: a\ndata: {}\n\nevent: b\ndata: {}\n\n"
	sentinel := errors.New("stop")
	n := 0
	err := ReadSSE(strings.NewReader(stream), func(ev SSEEvent) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Errorf("err = %v after %d events, want sentinel after 1", err, n)
	}
}

func TestReadSSEMultiLineDataAndFinalEvent(t *testing.T) {
	// Two data lines join with \n; a stream ending without a trailing blank
	// line still dispatches the last event.
	stream := "data: line1\ndata: line2\n\nevent: last\ndata: x"
	var got []SSEEvent
	if err := ReadSSE(strings.NewReader(stream), func(ev SSEEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2", len(got))
	}
	if string(got[0].Data) != "line1\nline2" {
		t.Errorf("multi-line data = %q", got[0].Data)
	}
	if got[1].Name != "last" || string(got[1].Data) != "x" {
		t.Errorf("final event = %+v", got[1])
	}
}
