package engine

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"bifrost/internal/core"
	"bifrost/internal/httpx"
)

// CompileFunc turns DSL source into an executable strategy. The API takes
// it as a dependency so the engine package does not import the dsl package
// (cmd wiring passes dsl-based compilation in).
type CompileFunc func(src string) (*core.Strategy, error)

// API is the engine's REST interface, used by the Bifrost CLI and any
// release automation (the paper mentions Jenkins jobs driving the CLI).
type API struct {
	eng     *Engine
	compile CompileFunc
}

// NewAPI wraps an engine in the REST API.
func NewAPI(eng *Engine, compile CompileFunc) *API {
	return &API{eng: eng, compile: compile}
}

// ScheduleRequest is the POST /api/v1/strategies payload.
type ScheduleRequest struct {
	// YAML is the strategy in the Bifrost DSL.
	YAML string `json:"yaml"`
}

// Handler returns the API handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/strategies", a.handleSchedule)
	mux.HandleFunc("GET /api/v1/strategies", a.handleList)
	mux.HandleFunc("GET /api/v1/strategies/{name}", a.handleGet)
	mux.HandleFunc("DELETE /api/v1/strategies/{name}", a.handleAbort)
	mux.HandleFunc("GET /api/v1/events", a.handleEvents)
	mux.HandleFunc("GET /-/healthy", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (a *API) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if a.compile == nil {
		httpx.WriteError(w, http.StatusNotImplemented, "engine has no strategy compiler")
		return
	}
	var req ScheduleRequest
	if err := httpx.ReadJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	strategy, err := a.compile(req.YAML)
	if err != nil {
		httpx.WriteError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	run, err := a.eng.Enact(strategy)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if isAlreadyRunning(err) {
			status = http.StatusConflict
		}
		httpx.WriteError(w, status, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusAccepted, run.Status())
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	runs := a.eng.Runs()
	statuses := make([]Status, 0, len(runs))
	for _, run := range runs {
		statuses = append(statuses, run.Status())
	}
	httpx.WriteJSON(w, http.StatusOK, statuses)
}

func (a *API) handleGet(w http.ResponseWriter, r *http.Request) {
	run, ok := a.eng.Run(r.PathValue("name"))
	if !ok {
		httpx.WriteError(w, http.StatusNotFound, "strategy not found")
		return
	}
	httpx.WriteJSON(w, http.StatusOK, run.Status())
}

func (a *API) handleAbort(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := a.eng.Abort(name); err != nil {
		httpx.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"aborted": name})
}

func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 100
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	httpx.WriteJSON(w, http.StatusOK, a.eng.RecentEvents(n))
}

func isAlreadyRunning(err error) bool {
	for err != nil {
		if err == ErrAlreadyRunning {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Client talks to a remote engine API; the CLI is a thin wrapper over it.
type Client struct {
	// BaseURL is the engine root, e.g. "http://127.0.0.1:7000".
	BaseURL string
}

// Schedule submits DSL source for enactment.
func (c *Client) Schedule(ctx context.Context, yamlSrc string) (Status, error) {
	var st Status
	err := httpx.PostJSON(ctx, c.BaseURL+"/api/v1/strategies", ScheduleRequest{YAML: yamlSrc}, &st)
	return st, err
}

// List returns all run statuses.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var out []Status
	err := httpx.GetJSON(ctx, c.BaseURL+"/api/v1/strategies", &out)
	return out, err
}

// Get returns one run status.
func (c *Client) Get(ctx context.Context, name string) (Status, error) {
	var st Status
	err := httpx.GetJSON(ctx, c.BaseURL+"/api/v1/strategies/"+url.PathEscape(name), &st)
	return st, err
}

// Abort stops a running strategy.
func (c *Client) Abort(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.BaseURL+"/api/v1/strategies/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	resp, err := httpx.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("abort %s: status %d", name, resp.StatusCode)
	}
	return nil
}

// Events fetches recent engine events.
func (c *Client) Events(ctx context.Context, n int) ([]Event, error) {
	var out []Event
	err := httpx.GetJSON(ctx, fmt.Sprintf("%s/api/v1/events?n=%d", c.BaseURL, n), &out)
	return out, err
}

// Healthy checks engine liveness.
func (c *Client) Healthy(ctx context.Context) error {
	var out map[string]string
	return httpx.GetJSON(ctx, c.BaseURL+"/-/healthy", &out)
}
