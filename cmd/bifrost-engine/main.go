// Command bifrost-engine runs the Bifrost engine daemon: the REST API the
// CLI talks to, the live dashboard, and the engine's own /metrics endpoint.
//
// Usage:
//
//	bifrost-engine -listen 127.0.0.1:7000 -journal-dir /var/lib/bifrost/journal
//
// Strategies are scheduled via the API (see cmd/bifrost) as YAML documents
// in the Bifrost DSL; routing updates are pushed over HTTP to the proxies
// named in each strategy's deployment section. Services fronted by a
// multi-replica proxy fleet (`proxies:` list) get every routing change
// fanned out to all replicas with bounded retries (-push-timeout,
// -push-retries), state entries succeed once -fleet-quorum replicas ack
// (0 = all), and a background reconciler re-pushes the current generation
// to lagging or restarted replicas every -reconcile-interval.
//
// With -journal-dir set, every run is recorded in a durable journal and the
// daemon recovers on startup: unfinished strategies resume from their
// recorded state (same phase, elapsed time preserved, routing re-applied)
// instead of being silently aborted by the restart. SIGTERM suspends runs
// without ending them, so rolling the control plane is safe mid-release.
// See docs/operations.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bifrost/internal/dashboard"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/httpx"
	"bifrost/internal/journal"
	"bifrost/internal/lease"
	"bifrost/internal/metrics"
	"bifrost/internal/sysmon"
	"bifrost/internal/target"
	"bifrost/internal/target/command"
	flagtarget "bifrost/internal/target/flag"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bifrost-engine:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7000", "address to serve the API and dashboard on")
	sampleEvery := flag.Duration("sysmon-interval", 5*time.Second, "resource sampling period (0 disables)")
	journalDir := flag.String("journal-dir", "",
		"directory for the durable run journal; restarts resume unfinished runs (empty disables)")
	engineID := flag.String("engine-id", "",
		"this replica's id in an HA fleet (empty: single-replica mode)")
	peersFlag := flag.String("peers", "",
		"comma-separated id=url fleet membership, self included (HA mode; requires -engine-id and -journal-dir on shared storage)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second,
		"HA run-lease lifetime; a dead replica's runs are adopted after this long")
	flushEvery := flag.Duration("journal-flush-interval", 0,
		"journal group-commit window (0: journal default; negative: fsync every append)")
	heartbeatEvery := flag.Duration("journal-heartbeat", 30*time.Second,
		"cadence of journal liveness heartbeats (bounds recovery's downtime estimate)")
	fleetQuorum := flag.Int("fleet-quorum", 0,
		"proxy replica acks required per config push (0 = all replicas)")
	pushTimeout := flag.Duration("push-timeout", 5*time.Second,
		"per-attempt deadline for one proxy config push")
	pushRetries := flag.Int("push-retries", 4,
		"attempts per proxy config push (transient failures back off exponentially)")
	reconcileEvery := flag.Duration("reconcile-interval", 10*time.Second,
		"anti-entropy cadence: how often lagging/restarted proxy replicas are re-pushed")
	flag.Parse()

	registry := metrics.NewRegistry()
	fleet := engine.NewFleetConfigurator(
		engine.FleetQuorum(*fleetQuorum),
		engine.FleetRetry(engine.RetryPolicy{PushTimeout: *pushTimeout, MaxAttempts: *pushRetries}),
		engine.FleetReconcileInterval(*reconcileEvery),
	)
	// Enactment targets, dispatched per service by its deployment's
	// `target:` kind: the proxy fleet (default), client-side flag rulesets
	// served from /flags/, and declarative shell-outs.
	flagStore := flagtarget.NewStore(flagtarget.WithReconcileInterval(*reconcileEvery))
	targets := target.NewRegistry()
	for kind, t := range map[string]target.Target{
		target.KindProxy:   engine.NewProxyTarget(fleet),
		target.KindFlag:    flagStore,
		target.KindCommand: &command.Runner{},
	} {
		if err := targets.Register(kind, t); err != nil {
			return err
		}
	}
	configurator := engine.NewTargetConfigurator(targets)
	opts := []engine.Option{
		engine.WithConfigurator(configurator),
		engine.WithRegistry(registry),
	}
	if *journalDir != "" {
		js, err := engine.OpenJournal(*journalDir, journal.Options{FlushInterval: *flushEvery})
		if err != nil {
			return err
		}
		opts = append(opts, engine.WithJournalSet(js),
			engine.WithHeartbeatInterval(*heartbeatEvery))
	}

	// HA mode: -engine-id names this replica and -peers the fleet; every
	// replica points -journal-dir at the same shared root, and run
	// ownership is arbitrated by leases + fencing tokens instead of a
	// process-wide flock. See docs/operations.md.
	var cluster *engine.Cluster
	if *engineID != "" {
		if *journalDir == "" {
			return fmt.Errorf("-engine-id requires -journal-dir (shared across replicas)")
		}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		leases, err := lease.Open(filepath.Join(*journalDir, "leases"))
		if err != nil {
			return err
		}
		cluster, err = engine.NewCluster(engine.ClusterOptions{
			Self:    *engineID,
			Peers:   peers,
			Leases:  leases,
			TTL:     *leaseTTL,
			Compile: dsl.Compile,
			Expand:  expandAll,
		})
		if err != nil {
			return err
		}
		opts = append(opts,
			engine.WithFence(cluster.Token),
			engine.WithEnactGate(cluster.Gate))
		// Hierarchical rollouts: a parent run schedules its per-region
		// children back through this replica's own API, where the cluster
		// handler shards them across the fleet like any operator POST —
		// each child gets its own lease, journal partition, and recovery.
		if self, ok := peers[*engineID]; ok {
			opts = append(opts, engine.WithChildRunner(engine.HTTPChildRunner{
				Client: &engine.Client{BaseURL: self},
			}))
		} else {
			log.Printf("warning: -peers does not list %s; sub-rollout children stay on this replica", *engineID)
		}
		log.Printf("HA replica %s joining fleet of %d (lease TTL %s)",
			*engineID, len(peers), *leaseTTL)
	}

	eng := engine.New(opts...)
	switch {
	case cluster != nil:
		// A replica never replays the whole journal root at startup: its
		// first lease sweep re-claims its own runs (and any expired
		// orphans it is preferred for) via the same adoption path used
		// for dead-peer takeover.
		defer eng.Suspend()
		cluster.Start(eng)
		defer cluster.Close()
	case *journalDir != "":
		// A journaled engine suspends on exit (runs stay resumable);
		// without a journal, stopping the daemon ends its runs.
		defer eng.Suspend()
		report, err := eng.Recover(dsl.Compile)
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		for _, r := range report.Resumed {
			st := r.Status()
			log.Printf("recovered run %s: resumed in state %q (%s)",
				st.Strategy, st.Current, st.State)
		}
		if report.Finished > 0 {
			log.Printf("recovered %d finished run(s) as history", report.Finished)
		}
		for name, reason := range report.Skipped {
			log.Printf("warning: cannot resume run %s: %s", name, reason)
		}
	default:
		defer eng.Shutdown()
	}

	if *sampleEvery > 0 {
		sampler := sysmon.New(registry, "engine", *sampleEvery, nil)
		sampler.Start()
		defer sampler.Stop()
	}

	// The API serves /api/v2 (run lifecycle resources, SSE event stream)
	// plus the /api/v1 aliases; the dashboard's page drives the v2 API.
	// The expander lets one POST schedule a whole matrix template.
	api := engine.NewAPI(eng, dsl.Compile).WithExpander(expandAll).Handler()
	if cluster != nil {
		// Ownership routing in front of the API: non-owned run requests
		// 307 to the lease holder, schedules shard across the fleet,
		// lists fan out and merge.
		api = cluster.Handler(api)
	}
	dash := dashboard.New(eng).Handler()
	mux := http.NewServeMux()
	mux.Handle("/api/", api)
	mux.Handle("/-/healthy", api)
	mux.Handle("/dashboard", dash)
	mux.Handle("/dashboard/", dash)
	mux.Handle("/flags/", http.StripPrefix("/flags", flagStore.Handler()))
	mux.Handle("/metrics", registry.Handler())

	srv, err := httpx.NewServer(*listen, mux)
	if err != nil {
		return err
	}
	srv.Start()
	log.Printf("bifrost-engine listening on %s (dashboard at %s/dashboard)", srv.Addr(), srv.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// parsePeers parses the -peers flag: "engine-1=http://host:7000,...".
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers: malformed entry %q (want id=url)", part)
		}
		peers[id] = strings.TrimRight(url, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is required with -engine-id")
	}
	return peers, nil
}

// expandAll adapts dsl.CompileAll to the API's expander hook.
func expandAll(src string) ([]engine.ExpandedStrategy, error) {
	runs, err := dsl.CompileAll(src)
	if err != nil {
		return nil, err
	}
	out := make([]engine.ExpandedStrategy, len(runs))
	for i, r := range runs {
		out[i] = engine.ExpandedStrategy{Strategy: r.Strategy, Source: r.Source, Vars: r.Vars}
	}
	return out, nil
}
