package engine

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/dsl"
	"bifrost/internal/lease"
)

// haMatrixYAML expands to four long-lived runs so ownership spread across
// replicas can be asserted while they are all still mid-phase.
const haMatrixYAML = `
name: ha-${region}-${cohort}
matrix:
  region: [eu, us]
  cohort: [free, paid]
deployment:
  services:
    - service: svc
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: canary
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: canary
      duration: 30m
      routes:
        - route:
            service: svc
            weights: {stable: 90, canary: 10}
      on:
        success: end
    - phase: end
      routes:
        - route:
            service: svc
            weights: {canary: 100}
`

// clusterFixture is one in-process HA replica: engine + membership wired
// the way cmd/bifrost-engine does it, sharing journal root and lease dir
// with its siblings.
type clusterFixture struct {
	id      string
	eng     *Engine
	cluster *Cluster
}

// newClusterFleet builds n replicas named r0..r(n-1) over one shared
// journal root and lease store, all on the manual clock. health reports
// peer liveness (nil: everyone healthy).
func newClusterFleet(t *testing.T, n int, clk clock.Clock,
	health func(id string) bool) []*clusterFixture {

	t.Helper()
	root := t.TempDir()
	leaseDir := t.TempDir()
	peers := make(map[string]string, n)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = string(rune('a' + i))
		peers[ids[i]] = "http://127.0.0.1:1" // placeholder; Handler tests override
	}
	fleet := make([]*clusterFixture, n)
	for i, id := range ids {
		leases, err := lease.Open(leaseDir, lease.WithClock(clk))
		if err != nil {
			t.Fatalf("lease.Open: %v", err)
		}
		c, err := NewCluster(ClusterOptions{
			Self: id, Peers: peers, Leases: leases,
			TTL: time.Minute, Compile: dsl.Compile, Clock: clk,
			Health: func(peer string) bool {
				if health == nil {
					return true
				}
				return health(peer)
			},
		})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		eng := New(WithClock(clk),
			WithJournalSet(openTestJournal(t, root)),
			WithFence(c.Token), WithEnactGate(c.Gate))
		c.mu.Lock()
		c.eng = eng // loops stay off: tests drive sweepOnce directly
		c.mu.Unlock()
		fleet[i] = &clusterFixture{id: id, eng: eng, cluster: c}
	}
	return fleet
}

func TestClusterEnactClaimsLeaseAndPeersRefuse(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC))
	fleet := newClusterFleet(t, 2, clk, nil)
	a, b := fleet[0], fleet[1]
	defer a.eng.Suspend()
	defer b.eng.Suspend()

	strategy, err := dsl.Compile(holdStrategy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := a.eng.EnactSource(strategy, holdStrategy); err != nil {
		t.Fatalf("EnactSource on a: %v", err)
	}
	if tok := a.cluster.Token(strategy.Name); tok == 0 {
		t.Fatalf("replica a holds no fencing token after enacting")
	}
	if _, err := b.eng.EnactSource(strategy, holdStrategy); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("EnactSource on b: got %v, want ErrNotOwner", err)
	}
}

func TestClusterSweepAdoptsOnlyExpiredLeases(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC))
	// Replica a is "dead" from b's point of view throughout.
	fleet := newClusterFleet(t, 2, clk, func(id string) bool { return id != "a" })
	a, b := fleet[0], fleet[1]
	defer b.eng.Suspend()

	strategy, err := dsl.Compile(holdStrategy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := a.eng.EnactSource(strategy, holdStrategy); err != nil {
		t.Fatalf("EnactSource: %v", err)
	}
	name := strategy.Name
	eventually(t, "run entering canary on a", func() bool {
		r, ok := a.eng.Run(name)
		return ok && r.Status().Current == "canary"
	})
	// Half a TTL of in-phase time before the crash: the lease (1m TTL,
	// never renewed here — no loops run in this test) is still live.
	// Wait for a heartbeat to advance the journal's crash-time estimate
	// so the downtime boundary is sharp.
	clk.Advance(30 * time.Second)
	eventually(t, "journal clock advanced on a", func() bool {
		a.eng.pubMu.Lock()
		defer a.eng.pubMu.Unlock()
		return !a.eng.mirror.LastTime.Before(clk.Now())
	})
	aTok := a.cluster.Token(name)
	a.eng.Suspend() // crash stand-in: lease stays on disk, unreleased

	// Lease still live: the sweep must not steal it even though a is
	// unreachable — only expiry proves the owner is gone.
	b.cluster.sweepOnce()
	if _, ok := b.eng.Run(name); ok {
		t.Fatalf("replica b adopted a run whose lease had not expired")
	}

	clk.Advance(2 * time.Minute) // past the 1m TTL
	b.cluster.sweepOnce()
	r, ok := b.eng.Run(name)
	if !ok {
		t.Fatalf("replica b did not adopt the expired run")
	}
	// The resumed loop re-enters the phase asynchronously; wait for the
	// re-entry before judging the elapsed accounting.
	eventually(t, "adopted run re-entering canary", func() bool {
		for _, ev := range b.eng.RunEvents(name, 0) {
			if ev.Type == EventRecovered {
				return true
			}
		}
		return false
	})
	waitReentries(t, b.eng, name, 2)
	st := r.Status()
	if st.Current != "canary" || st.State != RunRunning || !st.Recovered {
		t.Fatalf("adopted run status = %+v, want running in canary, recovered", st)
	}
	// Elapsed-in-state excludes the downtime: 30s lived, 2 minutes dead.
	// EnteredAt is backdated so elapsed reads ~30s, not 2m30s.
	elapsed := clk.Now().Sub(st.EnteredAt)
	if elapsed < 20*time.Second || elapsed > 70*time.Second {
		t.Fatalf("elapsed in state after adoption = %s, want ~30s (downtime excluded)", elapsed)
	}
	if bTok := b.cluster.Token(name); bTok <= aTok {
		t.Fatalf("adopting token %d does not fence previous owner's %d", bTok, aTok)
	}
}

func TestClusterRendezvousOrderAgreesAcrossReplicas(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC))
	fleet := newClusterFleet(t, 3, clk, nil)
	for _, name := range []string{"checkout-canary", "ha-eu-free", "x", ""} {
		want := fleet[0].cluster.preferred(name)
		if len(want) != 3 {
			t.Fatalf("preferred(%q) returned %d replicas, want 3", name, len(want))
		}
		for _, f := range fleet[1:] {
			if got := f.cluster.preferred(name); !reflect.DeepEqual(got, want) {
				t.Fatalf("replica %s preference for %q = %v, others say %v",
					f.id, name, got, want)
			}
		}
	}
	for i := range fleet {
		fleet[i].eng.Suspend()
	}
}

// TestClusterHandlerRoutesAndShards drives the HTTP layer end to end in
// process: two replicas behind httptest servers, a matrix schedule split
// across them by rendezvous preference, non-owned requests 307ing to the
// owner, and list fan-out merging the fleet view.
func TestClusterHandlerRoutesAndShards(t *testing.T) {
	root, leaseDir := t.TempDir(), t.TempDir()
	expand := func(src string) ([]ExpandedStrategy, error) {
		runs, err := dsl.CompileAll(src)
		if err != nil {
			return nil, err
		}
		out := make([]ExpandedStrategy, len(runs))
		for i, r := range runs {
			out[i] = ExpandedStrategy{Strategy: r.Strategy, Source: r.Source, Vars: r.Vars}
		}
		return out, nil
	}

	// Servers first (so peer URLs exist), handlers swapped in below.
	handlers := make([]http.Handler, 2)
	servers := make([]*httptest.Server, 2)
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) { handlers[i].ServeHTTP(w, r) }))
		defer servers[i].Close()
	}
	peers := map[string]string{"a": servers[0].URL, "b": servers[1].URL}

	engines := make([]*Engine, 2)
	clusters := make([]*Cluster, 2)
	for i, id := range []string{"a", "b"} {
		leases, err := lease.Open(leaseDir)
		if err != nil {
			t.Fatalf("lease.Open: %v", err)
		}
		c, err := NewCluster(ClusterOptions{
			Self: id, Peers: peers, Leases: leases,
			TTL: time.Minute, Compile: dsl.Compile, Expand: expand,
		})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		eng := New(WithJournalSet(openTestJournal(t, root)),
			WithFence(c.Token), WithEnactGate(c.Gate))
		defer eng.Suspend()
		c.mu.Lock()
		c.eng = eng
		c.mu.Unlock()
		handlers[i] = c.Handler(NewAPI(eng, dsl.Compile).WithExpander(expand).Handler())
		engines[i], clusters[i] = eng, c
	}

	// One POST to replica a schedules the whole matrix, sharded by
	// rendezvous preference.
	client := &Client{BaseURL: servers[0].URL}
	sts, err := client.ScheduleAll(context.Background(), haMatrixYAML)
	if err != nil {
		t.Fatalf("ScheduleAll: %v", err)
	}
	if len(sts) != 4 {
		t.Fatalf("scheduled %d runs, want 4", len(sts))
	}
	healthy := map[string]bool{"a": true, "b": true}
	for _, st := range sts {
		want := clusters[0].pickOwner(st.Strategy, healthy)
		var owner string
		for i, id := range []string{"a", "b"} {
			if _, ok := engines[i].Run(st.Strategy); ok {
				if owner != "" {
					t.Fatalf("run %s is live on both replicas", st.Strategy)
				}
				owner = id
			}
		}
		if owner != want {
			t.Fatalf("run %s landed on %q, rendezvous prefers %q", st.Strategy, owner, want)
		}
	}

	// A run-scoped GET against the wrong replica redirects to the owner;
	// the default client follows it transparently.
	name := sts[0].Strategy
	ownerIdx := 0
	if _, ok := engines[1].Run(name); ok {
		ownerIdx = 1
	}
	other := servers[1-ownerIdx]
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Get(other.URL + "/api/v2/runs/" + name)
	if err != nil {
		t.Fatalf("GET via non-owner: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner GET status = %d, want 307", resp.StatusCode)
	}
	wantLoc := servers[ownerIdx].URL + "/api/v2/runs/" + name
	if loc := resp.Header.Get("Location"); loc != wantLoc {
		t.Fatalf("redirect Location = %q, want %q", loc, wantLoc)
	}
	st, err := (&Client{BaseURL: other.URL}).Get(context.Background(), name)
	if err != nil {
		t.Fatalf("Status via non-owner (follow redirect): %v", err)
	}
	if st.Strategy != name {
		t.Fatalf("redirected status is for %q, want %q", st.Strategy, name)
	}

	// List fan-out: either replica returns the merged fleet view, each
	// run exactly once.
	for i := range servers {
		listed, err := (&Client{BaseURL: servers[i].URL}).List(context.Background())
		if err != nil {
			t.Fatalf("List via %d: %v", i, err)
		}
		seen := map[string]int{}
		for _, st := range listed {
			seen[st.Strategy]++
		}
		if len(seen) != 4 {
			t.Fatalf("replica %d lists %d distinct runs, want 4: %v", i, len(seen), seen)
		}
		for name, n := range seen {
			if n != 1 {
				t.Fatalf("replica %d lists run %s %d times", i, name, n)
			}
		}
	}
}
