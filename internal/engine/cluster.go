package engine

// Cluster is the membership layer of a sharded HA deployment: N engine
// replicas share one journal root (per-run partitions) and one lease
// directory, and each run is owned by exactly one replica at a time —
// whoever holds its lease. Ownership is arbitrated by the lease store's
// fencing tokens, not by liveness guesses: every partition append carries
// the owner's token, so a deposed replica's writes are rejected no matter
// how wrong its view of the world is.
//
// The pieces:
//
//   - Gate: the engine's enact gate. A replica acquires the run's lease
//     before registering a new enactment, so scheduling *is* claiming.
//   - Token: the engine's fence hook, mapping a run to the held lease's
//     fencing token for partition appends.
//   - renew loop: held leases are renewed at TTL/3; a lost lease evicts
//     the run locally (the new owner has already replayed it).
//   - sweep loop: partitions whose lease is missing or expired are
//     adopted — lease acquired, partition replayed via RecoverRun, run
//     resumed in-phase — by the first *healthy* replica in the run's
//     rendezvous-hash preference order.
//   - Handler: wraps the REST API. Run-scoped requests are answered
//     locally when this replica owns the run and 307-redirected to the
//     owner otherwise; schedules are split across preferred owners; list
//     requests fan out to all healthy peers and merge.
//
// Replicas never gossip: the shared filesystem (journal partitions +
// lease records) is the only coordination medium, which is exactly the
// deploy=crash invariant the rest of the engine is built on.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/httpx"
	"bifrost/internal/lease"
	"bifrost/internal/metrics"
)

// internalHeader marks replica-to-replica requests: the receiving handler
// serves them locally instead of re-routing (no forwarding loops, and list
// fan-out stays one hop deep).
const internalHeader = "X-Bifrost-Internal"

// ErrNotOwner is returned by the enact gate when the run's lease is held,
// live, by another replica.
var ErrNotOwner = errors.New("cluster: run is owned by another replica")

// ClusterOptions configures one replica's membership.
type ClusterOptions struct {
	// Self is this replica's id; it must be a key of Peers.
	Self string
	// Peers maps replica id to base URL (scheme://host:port), self
	// included. The key set must agree across replicas — it is the
	// rendezvous hash universe.
	Peers map[string]string
	// Leases is the shared lease store (same directory on every replica).
	Leases *lease.Store
	// TTL is the lease lifetime; renewals happen every TTL/3 and a dead
	// replica's runs become adoptable one TTL after its last renewal.
	TTL time.Duration
	// SweepInterval paces the adoption scan (default TTL/2).
	SweepInterval time.Duration
	// Compile recompiles adopted runs from their journaled source.
	Compile CompileFunc
	// Expand splits a schedule request into concrete runs so the handler
	// can shard a matrix template across owners. Nil: requests are
	// treated as single-run and scheduled locally.
	Expand ExpandFunc
	// Health overrides peer liveness probing (tests). Nil: GET
	// <peer>/-/healthy with a short timeout.
	Health func(id string) bool
	// Clock defaults to the wall clock.
	Clock clock.Clock
}

// Cluster is one replica's view of the shard. Create with NewCluster, wire
// the engine with WithFence(c.Token) and WithEnactGate(c.Gate), then call
// Start. The zero value is not usable.
type Cluster struct {
	self    string
	peers   map[string]string
	leases  *lease.Store
	ttl     time.Duration
	sweep   time.Duration
	compile CompileFunc
	expand  ExpandFunc
	health  func(id string) bool
	clk     clock.Clock
	client  *http.Client

	mu     sync.Mutex
	tokens map[string]int64 // run -> held fencing token
	eng    *Engine
	quit   chan struct{}
	done   sync.WaitGroup

	mAdopted   *metrics.Counter
	mLeaseLost *metrics.Counter
	mRedirects *metrics.Counter
}

// NewCluster validates the membership config. The returned Cluster's Token
// and Gate hooks are usable immediately (so they can be passed as engine
// options); the loops start with Start.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Self == "" {
		return nil, errors.New("cluster: Self is required")
	}
	if _, ok := opts.Peers[opts.Self]; !ok {
		return nil, fmt.Errorf("cluster: Self %q is not in Peers", opts.Self)
	}
	if opts.Leases == nil {
		return nil, errors.New("cluster: Leases is required")
	}
	if opts.TTL <= 0 {
		return nil, errors.New("cluster: TTL must be positive")
	}
	c := &Cluster{
		self:    opts.Self,
		peers:   opts.Peers,
		leases:  opts.Leases,
		ttl:     opts.TTL,
		sweep:   opts.SweepInterval,
		compile: opts.Compile,
		expand:  opts.Expand,
		health:  opts.Health,
		clk:     opts.Clock,
		client:  &http.Client{Timeout: 10 * time.Second},
		tokens:  make(map[string]int64),
		quit:    make(chan struct{}),
	}
	if c.sweep <= 0 {
		c.sweep = c.ttl / 2
	}
	if c.clk == nil {
		c.clk = clock.Real{}
	}
	if c.health == nil {
		c.health = c.probe
	}
	return c, nil
}

// Token is the engine fence hook: the fencing token of the lease this
// replica holds for run (0 when it holds none — appends then fail fenced
// rather than silently writing into a partition someone else owns).
func (c *Cluster) Token(run string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tokens[run]
}

// Gate is the engine enact gate: scheduling a run claims its lease. The
// partition is closed after a successful claim so it reopens under the new
// token — a re-enactment of a finished run gets a fresh ownership epoch,
// not the cached journal of the previous one.
func (c *Cluster) Gate(run string) error {
	rec, err := c.leases.Acquire(run, c.self, c.ttl)
	if err != nil {
		if errors.Is(err, lease.ErrHeld) {
			return fmt.Errorf("%w: %s", ErrNotOwner, run)
		}
		return err
	}
	c.mu.Lock()
	c.tokens[run] = rec.Token
	eng := c.eng
	c.mu.Unlock()
	if eng != nil && eng.journals != nil {
		_ = eng.journals.CloseRun(run)
	}
	return nil
}

// Start attaches the engine and launches the renew and sweep loops plus
// the terminal-event watcher. Call once, before serving traffic.
func (c *Cluster) Start(eng *Engine) {
	c.mu.Lock()
	c.eng = eng
	c.mu.Unlock()
	if r := eng.Registry(); r != nil {
		c.mAdopted = r.Counter("engine_cluster_runs_adopted_total", nil)
		c.mLeaseLost = r.Counter("engine_cluster_leases_lost_total", nil)
		c.mRedirects = r.Counter("engine_cluster_redirects_total", nil)
	}
	events, cancel := eng.Subscribe(64)
	c.done.Add(3)
	go c.renewLoop()
	go c.sweepLoop()
	go func() {
		defer c.done.Done()
		defer cancel()
		c.watchEvents(events)
	}()
}

// Close stops the loops. Held leases are NOT released: a stopping replica
// behaves exactly like a crashed one (deploy=crash), and survivors adopt
// its runs after the TTL.
func (c *Cluster) Close() {
	c.mu.Lock()
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	c.mu.Unlock()
	c.done.Wait()
}

// renewLoop re-asserts every held lease at TTL/3. Losing one (another
// replica fenced us) evicts the run locally without a terminal record —
// the new owner's replay is the truth now.
func (c *Cluster) renewLoop() {
	defer c.done.Done()
	t := c.clk.NewTicker(c.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C():
		}
		c.renewOnce()
	}
}

// renewOnce re-asserts every held lease once.
func (c *Cluster) renewOnce() {
	c.mu.Lock()
	held := make(map[string]int64, len(c.tokens))
	for run, tok := range c.tokens {
		held[run] = tok
	}
	eng := c.eng
	c.mu.Unlock()
	for run, tok := range held {
		_, err := c.leases.Renew(run, c.self, tok, c.ttl)
		if err == nil {
			continue
		}
		if errors.Is(err, lease.ErrLost) {
			c.dropToken(run, tok)
			if c.mLeaseLost != nil {
				c.mLeaseLost.Inc()
			}
			if eng != nil {
				_ = eng.Evict(run)
			}
		}
		// Transient store errors: keep the token, retry next tick.
		// The lease may expire meanwhile; fencing keeps that safe.
	}
}

// sweepLoop periodically adopts orphaned partitions: runs present in the
// shared journal root whose lease is missing or expired. The first sweep
// runs immediately, so a restarted replica re-claims its own runs without
// waiting a full interval.
func (c *Cluster) sweepLoop() {
	defer c.done.Done()
	t := c.clk.NewTicker(c.sweep)
	defer t.Stop()
	for {
		c.sweepOnce()
		select {
		case <-c.quit:
			return
		case <-t.C():
		}
	}
}

// sweepOnce scans for adoptable runs and adopts the ones this replica is
// the first healthy preferred owner of.
func (c *Cluster) sweepOnce() {
	c.mu.Lock()
	eng := c.eng
	c.mu.Unlock()
	if eng == nil || eng.journals == nil {
		return
	}
	runs, err := eng.journals.List()
	if err != nil {
		return
	}
	healthy := c.healthCache()
	now := c.clk.Now()
	for _, run := range runs {
		select {
		case <-c.quit:
			return
		default:
		}
		if _, live := eng.Run(run); live {
			continue
		}
		rec, found, err := c.leases.Get(run)
		if err != nil {
			continue
		}
		if found && rec.Holder != c.self && !rec.Expired(now) {
			continue // someone else owns it, and proves it by renewing
		}
		if !c.firstHealthyOwner(run, healthy) {
			continue
		}
		c.adopt(run)
	}
}

// adopt claims run's lease and replays its partition into a live run.
func (c *Cluster) adopt(run string) {
	rec, err := c.leases.Acquire(run, c.self, c.ttl)
	if err != nil {
		return // lost the race: another replica claimed it first
	}
	c.mu.Lock()
	c.tokens[run] = rec.Token
	eng := c.eng
	c.mu.Unlock()
	// The partition may be cached from a previous ownership epoch of this
	// same process; reopen it under the fresh token.
	_ = eng.journals.CloseRun(run)
	rr, err := eng.RecoverRun(run, c.compile, rec.Token)
	if err != nil {
		if errors.Is(err, ErrAlreadyRunning) {
			return // raced with a local enactment that claimed the lease
		}
		// Replay failed: release so a healthier replica can try.
		c.dropToken(run, rec.Token)
		_ = c.leases.Release(run, c.self, rec.Token)
		return
	}
	if c.mAdopted != nil {
		c.mAdopted.Inc()
	}
	_ = rr // finished runs adopt as history; resumed ones are live again
}

// watchEvents releases a removed run's lease: Remove is the explicit "this
// run's history is gone" statement, so ownership goes with it.
func (c *Cluster) watchEvents(events <-chan Event) {
	for {
		select {
		case <-c.quit:
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if ev.Type != EventRemoved {
				continue
			}
			c.mu.Lock()
			tok, held := c.tokens[ev.Strategy]
			delete(c.tokens, ev.Strategy)
			c.mu.Unlock()
			if held {
				_ = c.leases.Release(ev.Strategy, c.self, tok)
			}
		}
	}
}

// dropToken forgets a held token if it is still the one recorded.
func (c *Cluster) dropToken(run string, tok int64) {
	c.mu.Lock()
	if c.tokens[run] == tok {
		delete(c.tokens, run)
	}
	c.mu.Unlock()
}

// preferred returns the replica ids in rendezvous-hash order for run: each
// replica scores hash(id, run) and the ordering is stable across the fleet
// (every replica computes the same list), so ownership decisions need no
// coordination beyond the lease itself.
func (c *Cluster) preferred(run string) []string {
	type scored struct {
		id string
		h  uint64
	}
	list := make([]scored, 0, len(c.peers))
	for id := range c.peers {
		h := fnv.New64a()
		io.WriteString(h, id)
		h.Write([]byte{0})
		io.WriteString(h, run)
		list = append(list, scored{id, h.Sum64()})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].h != list[j].h {
			return list[i].h > list[j].h
		}
		return list[i].id < list[j].id
	})
	out := make([]string, len(list))
	for i, s := range list {
		out[i] = s.id
	}
	return out
}

// firstHealthyOwner reports whether self is the first healthy replica in
// run's preference order.
func (c *Cluster) firstHealthyOwner(run string, healthy map[string]bool) bool {
	for _, id := range c.preferred(run) {
		if id == c.self {
			return true
		}
		if healthy[id] {
			return false
		}
	}
	return false
}

// pickOwner returns the first healthy replica in run's preference order
// (self when every peer ahead of it is down; self as last resort).
func (c *Cluster) pickOwner(run string, healthy map[string]bool) string {
	for _, id := range c.preferred(run) {
		if id == c.self || healthy[id] {
			return id
		}
	}
	return c.self
}

// healthCache probes each peer once and memoizes the verdict for the
// duration of one scan. Self is always healthy.
func (c *Cluster) healthCache() map[string]bool {
	out := make(map[string]bool, len(c.peers))
	for id := range c.peers {
		if id == c.self {
			out[id] = true
		} else {
			out[id] = c.health(id)
		}
	}
	return out
}

// probe is the default peer health check.
func (c *Cluster) probe(id string) bool {
	base, ok := c.peers[id]
	if !ok {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/-/healthy", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ownerOf resolves which replica should answer a request about run name:
// self when this replica holds the run (token or live/finished run in the
// engine), else the lease holder. An expired lease still routes to its
// last holder — for a finished run nobody renews for, the holder keeps
// the history until Remove. Empty means "serve locally" (unknown run:
// the local API produces the 404).
func (c *Cluster) ownerOf(name string) string {
	c.mu.Lock()
	_, held := c.tokens[name]
	eng := c.eng
	c.mu.Unlock()
	if held {
		return c.self
	}
	if eng != nil {
		if _, ok := eng.Run(name); ok {
			return c.self
		}
	}
	rec, found, err := c.leases.Get(name)
	if err != nil || !found {
		return ""
	}
	return rec.Holder
}

// Handler wraps the engine API with ownership routing. next serves
// everything this layer does not intercept (and everything marked
// internal).
func (c *Cluster) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(internalHeader) != "" {
			next.ServeHTTP(w, r)
			return
		}
		if name, ok := runScopedPath(r.URL.Path); ok {
			c.route(w, r, next, name)
			return
		}
		switch {
		case r.Method == http.MethodPost &&
			(r.URL.Path == "/api/v2/runs" || r.URL.Path == "/api/v1/strategies"):
			c.handleSchedule(w, r, next)
		case r.Method == http.MethodGet &&
			(r.URL.Path == "/api/v2/runs" || r.URL.Path == "/api/v1/strategies"):
			c.handleList(w, r, next)
		case r.Method == http.MethodGet && r.URL.Path == "/api/v2/events/stream" &&
			r.URL.Query().Get("strategy") != "":
			c.route(w, r, next, r.URL.Query().Get("strategy"))
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// runScopedPath extracts the run name from a run-scoped API path.
func runScopedPath(path string) (string, bool) {
	for _, prefix := range []string{"/api/v2/runs/", "/api/v1/strategies/"} {
		if rest, ok := strings.CutPrefix(path, prefix); ok && rest != "" {
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			return rest, rest != ""
		}
	}
	return "", false
}

// route serves the request locally when this replica owns name, else
// 307-redirects to the owner. 307 preserves method, body, and headers
// (including SSE Last-Event-ID), so a watcher reconnecting after a
// takeover lands on the new owner and resumes loss-free.
func (c *Cluster) route(w http.ResponseWriter, r *http.Request, next http.Handler, name string) {
	owner := c.ownerOf(name)
	if owner == "" || owner == c.self {
		next.ServeHTTP(w, r)
		return
	}
	base, ok := c.peers[owner]
	if !ok {
		// Lease held by a replica outside our peer set (config drift):
		// answer locally rather than dead-ending the client.
		next.ServeHTTP(w, r)
		return
	}
	if c.mRedirects != nil {
		c.mRedirects.Inc()
	}
	http.Redirect(w, r, base+r.URL.RequestURI(), http.StatusTemporaryRedirect)
}

// handleSchedule shards a schedule request across owners: the template is
// expanded here, each concrete run is assigned its first healthy preferred
// replica, local runs are enacted directly, and remote ones are forwarded
// (one single-run schedule each, marked internal). Dry runs and engines
// without an expander fall through to the local API.
func (c *Cluster) handleSchedule(w http.ResponseWriter, r *http.Request, next http.Handler) {
	if c.expand == nil || isDryRun(r) {
		next.ServeHTTP(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		httpx.WriteProblem(w, httpx.Problem{
			Status: http.StatusBadRequest, Code: CodeBadRequest, Detail: err.Error()})
		return
	}
	var req ScheduleRequest
	if err := httpx.ReadJSONBody(bytes.NewReader(body), &req); err != nil {
		httpx.WriteProblem(w, httpx.Problem{
			Status: http.StatusBadRequest, Code: CodeBadRequest, Detail: err.Error()})
		return
	}
	exps, err := c.expand(req.YAML)
	if err != nil || len(exps) == 0 {
		// Let the local API produce its usual compile_failed problem.
		r.Body = io.NopCloser(bytes.NewReader(body))
		next.ServeHTTP(w, r)
		return
	}
	healthy := c.healthCache()
	placements := make([]placedRun, len(exps))
	allLocal := true
	for i, ex := range exps {
		owner := c.pickOwner(ex.Strategy.Name, healthy)
		placements[i] = placedRun{ex, owner}
		if owner != c.self {
			allLocal = false
		}
	}
	if allLocal {
		r.Body = io.NopCloser(bytes.NewReader(body))
		next.ServeHTTP(w, r)
		return
	}

	c.mu.Lock()
	eng := c.eng
	c.mu.Unlock()
	statuses := make([]Status, 0, len(placements))
	scheduled := make([]placedRun, 0, len(placements))
	fail := func(failed string, status int, code, detail string) {
		// Scheduling a template stays atomic across the fleet:
		// best-effort unwind of the siblings already placed.
		for _, p := range scheduled {
			c.unschedule(eng, p)
		}
		if len(scheduled) > 0 {
			detail = fmt.Sprintf("run %q: %s (%d already-scheduled sibling run(s) aborted)",
				failed, detail, len(scheduled))
		}
		httpx.WriteProblem(w, httpx.Problem{Status: status, Code: code, Detail: detail})
	}
	for _, p := range placements {
		if p.owner == c.self {
			run, err := eng.EnactSource(p.exp.Strategy, p.exp.Source)
			if err != nil {
				code, status := CodeAlreadyRunning, http.StatusConflict
				if !errors.Is(err, ErrAlreadyRunning) {
					code, status = CodeBadRequest, http.StatusBadGateway
				}
				fail(p.exp.Strategy.Name, status, code, err.Error())
				return
			}
			statuses = append(statuses, run.Status())
		} else {
			st, err := c.forwardSchedule(r.Context(), p.owner, p.exp.Source)
			if err != nil {
				fail(p.exp.Strategy.Name, http.StatusBadGateway, CodeBadRequest, err.Error())
				return
			}
			statuses = append(statuses, st)
		}
		scheduled = append(scheduled, p)
	}
	if len(statuses) == 1 {
		httpx.WriteJSON(w, http.StatusAccepted, statuses[0])
		return
	}
	httpx.WriteJSON(w, http.StatusAccepted, statuses)
}

// forwardSchedule posts one concrete run's source to its owner replica.
func (c *Cluster) forwardSchedule(ctx context.Context, owner, source string) (Status, error) {
	var st Status
	base, ok := c.peers[owner]
	if !ok {
		return st, fmt.Errorf("unknown replica %q", owner)
	}
	payload, err := json.Marshal(ScheduleRequest{YAML: source})
	if err != nil {
		return st, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/api/v2/runs", bytes.NewReader(payload))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(internalHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		return st, fmt.Errorf("replica %s: %w", owner, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		return st, fmt.Errorf("replica %s: %s: %s", owner, resp.Status, strings.TrimSpace(string(raw)))
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, fmt.Errorf("replica %s: %w", owner, err)
	}
	return st, nil
}

// unschedule undoes one placement after a failed sibling: local runs are
// aborted and removed, remote ones get a DELETE.
func (c *Cluster) unschedule(eng *Engine, p placedRun) {
	name := p.exp.Strategy.Name
	if p.owner == c.self {
		if run, ok := eng.Run(name); ok {
			run.Abort()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = run.Wait(ctx)
			cancel()
		}
		_ = eng.Remove(name)
		return
	}
	base, ok := c.peers[p.owner]
	if !ok {
		return
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/api/v2/runs/"+name, nil)
	if err != nil {
		return
	}
	req.Header.Set(internalHeader, c.self)
	if resp, err := c.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// placedRun is one expanded run assigned to its owning replica.
type placedRun struct {
	exp   ExpandedStrategy
	owner string
}

// handleList merges run statuses across the fleet: the local engine's runs
// plus an internal-marked fan-out to every healthy peer. Each run lives on
// exactly one replica, but a takeover in flight can surface it twice — the
// copy from the current lease holder wins.
func (c *Cluster) handleList(w http.ResponseWriter, r *http.Request, next http.Handler) {
	c.mu.Lock()
	eng := c.eng
	c.mu.Unlock()
	byName := make(map[string]Status)
	order := []string{}
	add := func(st Status, authoritative bool) {
		if _, seen := byName[st.Strategy]; !seen {
			order = append(order, st.Strategy)
			byName[st.Strategy] = st
			return
		}
		if authoritative {
			byName[st.Strategy] = st
		}
	}
	holders := make(map[string]string)
	if recs, err := c.leases.List(); err == nil {
		now := c.clk.Now()
		for _, rec := range recs {
			if !rec.Expired(now) {
				holders[rec.Run] = rec.Holder
			}
		}
	}
	if eng != nil {
		for _, run := range eng.Runs() {
			st := run.Status()
			add(st, holders[st.Strategy] == c.self || holders[st.Strategy] == "")
		}
	}
	healthy := c.healthCache()
	for id, base := range c.peers {
		if id == c.self || !healthy[id] {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			base+"/api/v2/runs", nil)
		if err != nil {
			continue
		}
		req.Header.Set(internalHeader, c.self)
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		var sts []Status
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&sts)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, st := range sts {
			add(st, holders[st.Strategy] == id)
		}
	}
	sort.Strings(order)
	out := make([]Status, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	httpx.WriteJSON(w, http.StatusOK, out)
}
