package engine

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/httpx"
)

// multiPhaseStrategy builds canary → abtest → done with rollback reachable
// from both testing phases. Each phase would run for `phase` unless an
// operator intervenes, so tests can pause and promote deterministically
// mid-phase.
func multiPhaseStrategy(name string, phase time.Duration) *core.Strategy {
	mkChecks := func() []core.Check {
		return []core.Check{{
			Name:       "errors",
			Kind:       core.BasicCheck,
			Eval:       core.ConstEvaluator(true),
			Interval:   5 * time.Millisecond,
			Executions: 4,
			Weight:     1,
			Thresholds: []int{3},
			Outputs:    []int{-1, 1},
		}}
	}
	return &core.Strategy{
		Name:     name,
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "canary",
			Finals: []string{"done", "rollback"},
			States: []core.State{
				{
					ID: "canary", Duration: phase, Checks: mkChecks(),
					Thresholds:  []int{0},
					Transitions: []string{"rollback", "abtest"},
					Routing:     routeTo(95, 5),
				},
				{
					ID: "abtest", Duration: phase, Checks: mkChecks(),
					Thresholds:  []int{0},
					Transitions: []string{"rollback", "done"},
					Routing:     routeTo(50, 50),
				},
				{ID: "done", Routing: routeTo(0, 100)},
				{ID: "rollback", Routing: routeTo(100, 0)},
			},
		},
	}
}

// v2Fixture serves the API over a compile shim that treats the request YAML
// as the strategy name: names starting with "!" fail compilation, names
// containing "quick" build a fast-finishing canary, anything else a slow
// multi-phase strategy an operator must drive.
func v2Fixture(t *testing.T) (*Engine, *httptest.Server, *Client) {
	t.Helper()
	eng := New()
	t.Cleanup(eng.Shutdown)
	compile := func(src string) (*core.Strategy, error) {
		switch {
		case src == "" || strings.HasPrefix(src, "!"):
			return nil, errors.New("bad strategy source")
		case strings.Contains(src, "quick"):
			s := canaryStrategy(core.ConstEvaluator(true), 2*time.Millisecond, 4)
			s.Name = src
			return s, nil
		default:
			return multiPhaseStrategy(src, 30*time.Second), nil
		}
	}
	ts := httptest.NewServer(NewAPI(eng, compile).Handler())
	t.Cleanup(ts.Close)
	return eng, ts, &Client{BaseURL: ts.URL}
}

// awaitEvent drains ch until pred matches, failing the test on timeout or a
// closed stream.
func awaitEvent(t *testing.T, ch <-chan Event, what string, pred func(Event) bool) Event {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event stream closed while waiting for %s", what)
			}
			if pred(ev) {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

func wantProblem(t *testing.T, err error, status int, code string) {
	t.Helper()
	var p *httpx.Problem
	if !errors.As(err, &p) {
		t.Fatalf("err = %v (%T), want *httpx.Problem", err, err)
	}
	if p.Status != status || p.Code != code {
		t.Fatalf("problem = %d %q (%s), want %d %q", p.Status, p.Code, p.Detail, status, code)
	}
}

func TestAPIDryRunValidatesWithoutEnacting(t *testing.T) {
	eng, _, c := v2Fixture(t)
	res, err := c.DryRun(context.Background(), "dry-check")
	if err != nil {
		t.Fatalf("DryRun: %v", err)
	}
	if !res.Valid || res.Strategy != "dry-check" {
		t.Errorf("dry-run = %+v", res)
	}
	if res.Analysis == nil || res.Analysis.MaxDuration <= 0 {
		t.Errorf("analysis = %+v, want rollout bounds", res.Analysis)
	}
	if len(res.Analysis.Unreachable) != 0 || len(res.Analysis.Trapped) != 0 {
		t.Errorf("lints = %+v", res.Analysis)
	}
	if runs := eng.Runs(); len(runs) != 0 {
		t.Errorf("dry-run enacted %d runs", len(runs))
	}
}

func TestAPIDryRunCompileErrorIsProblemJSON(t *testing.T) {
	_, ts, c := v2Fixture(t)

	// Typed client-side error.
	_, err := c.DryRun(context.Background(), "!broken")
	wantProblem(t, err, http.StatusUnprocessableEntity, CodeCompileFailed)

	// And on the wire it is an RFC 9457 problem document.
	resp, err := http.Post(ts.URL+"/api/v2/runs?dry-run=true", "application/json",
		strings.NewReader(`{"yaml":"!broken"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != httpx.ProblemContentType {
		t.Errorf("content type = %q, want %q", ct, httpx.ProblemContentType)
	}
	var p httpx.Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Code != CodeCompileFailed || p.Detail == "" {
		t.Errorf("problem = %+v", p)
	}
}

func TestAPIPauseResumePromoteRollbackRoundTrips(t *testing.T) {
	eng, _, c := v2Fixture(t)
	ctx := context.Background()

	// Controls on unknown runs are typed 404s.
	_, err := c.Pause(ctx, "ghost")
	wantProblem(t, err, http.StatusNotFound, CodeNotFound)
	_, err = c.Resume(ctx, "ghost", 0)
	wantProblem(t, err, http.StatusNotFound, CodeNotFound)
	_, err = c.Promote(ctx, "ghost", "")
	wantProblem(t, err, http.StatusNotFound, CodeNotFound)

	if _, err := c.Schedule(ctx, "ops"); err != nil {
		t.Fatalf("Schedule: %v", err)
	}

	// Resume before any pause → conflict.
	_, err = c.Resume(ctx, "ops", 0)
	wantProblem(t, err, http.StatusConflict, CodeNotPaused)

	gen, err := c.Pause(ctx, "ops")
	if err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if gen != 1 {
		t.Errorf("pause generation = %d, want 1", gen)
	}
	st, err := c.Get(ctx, "ops")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != RunPaused || st.PauseGen != 1 {
		t.Errorf("status = %s gen %d, want paused gen 1", st.State, st.PauseGen)
	}

	// Double pause and stale resume are typed conflicts.
	_, err = c.Pause(ctx, "ops")
	wantProblem(t, err, http.StatusConflict, CodeAlreadyPaused)
	_, err = c.Resume(ctx, "ops", gen+7)
	wantProblem(t, err, http.StatusConflict, CodeStaleResume)

	// Promoting with an unknown target is rejected without moving the run.
	_, err = c.Promote(ctx, "ops", "nirvana")
	wantProblem(t, err, http.StatusUnprocessableEntity, CodeUnknownState)

	// A paused run accepts a manual gate decision directly.
	if _, err := c.Promote(ctx, "ops", ""); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	run, _ := eng.Run("ops")
	waitFor(t, func() bool { return run.Status().Current == "abtest" })

	// Default rollback target is the failure path of the current state.
	if _, err := c.Rollback(ctx, "ops", ""); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	final := waitDone(t, run)
	if final.State != RunCompleted {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if len(final.Path) != 2 ||
		final.Path[0].To != "abtest" || final.Path[0].Cause != "promote" ||
		final.Path[1].To != "rollback" || final.Path[1].Cause != "rollback" {
		t.Errorf("path = %+v", final.Path)
	}

	// Controls on a finished run → conflict.
	_, err = c.Pause(ctx, "ops")
	wantProblem(t, err, http.StatusConflict, CodeRunFinished)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAPIRunEventsHistory(t *testing.T) {
	eng, _, c := v2Fixture(t)
	ctx := context.Background()

	_, err := c.RunEvents(ctx, "ghost", 10)
	wantProblem(t, err, http.StatusNotFound, CodeNotFound)

	for _, name := range []string{"quick-a", "quick-b"} {
		if _, err := c.Schedule(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range eng.Runs() {
		waitDone(t, r)
	}
	events, err := c.RunEvents(ctx, "quick-a", 0)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events for quick-a")
	}
	for _, ev := range events {
		if ev.Strategy != "quick-a" {
			t.Errorf("event for %q leaked into quick-a history", ev.Strategy)
		}
	}
	if events[len(events)-1].Type != EventCompleted {
		t.Errorf("last event = %s, want completed", events[len(events)-1].Type)
	}
}

func TestAPIV1AliasesStillServe(t *testing.T) {
	_, ts, _ := v2Fixture(t)
	ctx := context.Background()

	var st Status
	err := httpx.PostJSON(ctx, ts.URL+"/api/v1/strategies",
		ScheduleRequest{YAML: "quick-legacy"}, &st)
	if err != nil {
		t.Fatalf("v1 schedule: %v", err)
	}
	if st.Strategy != "quick-legacy" {
		t.Errorf("strategy = %q", st.Strategy)
	}
	var list []Status
	if err := httpx.GetJSON(ctx, ts.URL+"/api/v1/strategies", &list); err != nil {
		t.Fatalf("v1 list: %v", err)
	}
	if len(list) != 1 {
		t.Errorf("list = %+v", list)
	}
	var events []Event
	if err := httpx.GetJSON(ctx, ts.URL+"/api/v1/events?n=5", &events); err != nil {
		t.Fatalf("v1 events: %v", err)
	}
}

func TestAPISSEStreamDeliversWithoutPolling(t *testing.T) {
	_, _, c := v2Fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Subscribe first; every event of the run scheduled afterwards must be
	// pushed to us — the test never calls Get or List.
	events, stop, err := c.Watch(ctx, "quick-sse", 0)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer stop()

	if _, err := c.Schedule(ctx, "quick-sse"); err != nil {
		t.Fatal(err)
	}
	awaitEvent(t, events, "state_entered", func(ev Event) bool {
		return ev.Type == EventStateEntered && ev.State == "canary"
	})
	awaitEvent(t, events, "transition", func(ev Event) bool {
		return ev.Type == EventTransition && ev.Detail == "done"
	})
	awaitEvent(t, events, "completed", func(ev Event) bool {
		return ev.Type == EventCompleted
	})
}

func TestAPISSEStreamReplaysHistory(t *testing.T) {
	eng, _, c := v2Fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if _, err := c.Schedule(ctx, "quick-replay"); err != nil {
		t.Fatal(err)
	}
	run, _ := eng.Run("quick-replay")
	waitDone(t, run)

	// The run is long finished; a late joiner with replay still sees its
	// full history.
	events, stop, err := c.Watch(ctx, "quick-replay", 256)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer stop()
	awaitEvent(t, events, "replayed completion", func(ev Event) bool {
		return ev.Type == EventCompleted && ev.Strategy == "quick-replay"
	})
}

// TestAPIV2EndToEnd is the acceptance scenario: a multi-phase strategy
// driven entirely over HTTP through the v2 API — dry-run first, then the
// real schedule, a mid-phase pause, a generation-checked resume, and manual
// promotions past both gates — with every lifecycle step observed on the
// SSE stream via engine.Client, never by polling.
func TestAPIV2EndToEnd(t *testing.T) {
	eng, _, c := v2Fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// 1. Dry-run: validate + analyze without enacting.
	dry, err := c.DryRun(ctx, "e2e")
	if err != nil {
		t.Fatalf("DryRun: %v", err)
	}
	if !dry.Valid || dry.Analysis == nil || dry.Analysis.MaxDuration <= 0 {
		t.Fatalf("dry-run = %+v", dry)
	}
	if len(eng.Runs()) != 0 {
		t.Fatal("dry-run enacted a strategy")
	}

	// 2. Open the event stream before scheduling.
	events, stop, err := c.Watch(ctx, "e2e", 0)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer stop()

	// 3. Schedule for real: the run enters its first phase.
	if _, err := c.Schedule(ctx, "e2e"); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	awaitEvent(t, events, "canary entered", func(ev Event) bool {
		return ev.Type == EventStateEntered && ev.State == "canary"
	})

	// 4. Pause mid-phase; the pause is announced on the stream.
	gen, err := c.Pause(ctx, "e2e")
	if err != nil {
		t.Fatalf("Pause: %v", err)
	}
	awaitEvent(t, events, "paused", func(ev Event) bool {
		return ev.Type == EventPaused && ev.State == "canary"
	})
	if st, err := c.Get(ctx, "e2e"); err != nil || st.State != RunPaused {
		t.Fatalf("status after pause = %+v (%v)", st, err)
	}

	// 5. A stale generation cannot resume; the right one can, and the
	// canary phase restarts from scratch.
	_, err = c.Resume(ctx, "e2e", gen+1)
	wantProblem(t, err, http.StatusConflict, CodeStaleResume)
	if _, err := c.Resume(ctx, "e2e", gen); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	awaitEvent(t, events, "resumed", func(ev Event) bool {
		return ev.Type == EventResumed && ev.State == "canary"
	})
	awaitEvent(t, events, "canary re-entered", func(ev Event) bool {
		return ev.Type == EventStateEntered && ev.State == "canary"
	})

	// 6. Manually promote past the canary gate instead of waiting a phase.
	if _, err := c.Promote(ctx, "e2e", ""); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	awaitEvent(t, events, "gate decision", func(ev Event) bool {
		return ev.Type == EventGateDecision && ev.State == "canary"
	})
	awaitEvent(t, events, "canary→abtest transition", func(ev Event) bool {
		return ev.Type == EventTransition && ev.State == "canary" && ev.Detail == "abtest"
	})
	awaitEvent(t, events, "abtest entered", func(ev Event) bool {
		return ev.Type == EventStateEntered && ev.State == "abtest"
	})

	// 7. Promote straight to the final state; completion arrives on the
	// stream too.
	if _, err := c.Promote(ctx, "e2e", "done"); err != nil {
		t.Fatalf("Promote to done: %v", err)
	}
	awaitEvent(t, events, "abtest→done transition", func(ev Event) bool {
		return ev.Type == EventTransition && ev.State == "abtest" && ev.Detail == "done"
	})
	awaitEvent(t, events, "completed", func(ev Event) bool {
		return ev.Type == EventCompleted
	})

	run, _ := eng.Run("e2e")
	final := waitDone(t, run)
	if final.State != RunCompleted {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if len(final.Path) != 2 ||
		final.Path[0].Cause != "promote" || final.Path[1].Cause != "promote" {
		t.Errorf("path = %+v, want two manual promotions", final.Path)
	}
	// The pause/resume cycle re-entered canary but must not book its
	// specified duration twice: exactly one canary + one abtest phase.
	if want := int64(60 * time.Second); final.PlannedNanos != want {
		t.Errorf("planned = %v, want %v (no double booking across pause/resume)",
			time.Duration(final.PlannedNanos), time.Duration(want))
	}
}
