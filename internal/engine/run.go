package engine

import (
	"context"
	"sync"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// RunState is the lifecycle state of one strategy enactment.
type RunState string

// Run lifecycle states.
const (
	RunPending   RunState = "pending"
	RunRunning   RunState = "running"
	RunCompleted RunState = "completed"
	RunAborted   RunState = "aborted"
	RunFailed    RunState = "failed"
)

// Run is one executing (or finished) strategy enactment.
type Run struct {
	engine   *Engine
	strategy *core.Strategy
	cancel   context.CancelFunc
	done     chan struct{}

	mu     sync.Mutex
	status Status
}

// Status is a snapshot of a run's progress.
type Status struct {
	Strategy string   `json:"strategy"`
	State    RunState `json:"state"`
	// Current is the automaton state being executed.
	Current string `json:"current,omitempty"`
	// EnteredAt is when Current was entered.
	EnteredAt time.Time `json:"enteredAt,omitempty"`
	// StartedAt / FinishedAt bracket the whole enactment.
	StartedAt  time.Time `json:"startedAt,omitempty"`
	FinishedAt time.Time `json:"finishedAt,omitempty"`
	// PlannedNanos accumulates the specified duration of every state the
	// run entered; ActualNanos is wall time. Their difference is the
	// enactment delay studied in Figures 8 and 10 of the paper.
	PlannedNanos int64 `json:"plannedNanos"`
	ActualNanos  int64 `json:"actualNanos"`
	// Path records every transition taken.
	Path []Transition `json:"path"`
	// Checks reports progress of the current state's checks.
	Checks []CheckStatus `json:"checks,omitempty"`
	// Error holds the failure cause for RunFailed.
	Error string `json:"error,omitempty"`
}

// Delay returns the enactment delay: wall time beyond the specified
// execution time of the states the run passed through.
func (s Status) Delay() time.Duration {
	return time.Duration(s.ActualNanos - s.PlannedNanos)
}

// Transition is one δ firing.
type Transition struct {
	From    string    `json:"from"`
	To      string    `json:"to"`
	Outcome int       `json:"outcome"`
	At      time.Time `json:"at"`
}

// CheckStatus reports one check's progress within the current state.
type CheckStatus struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Executions int    `json:"executions"`
	Successes  int    `json:"successes"`
	Failures   int    `json:"failures"`
	LastError  string `json:"lastError,omitempty"`
}

// Strategy returns the strategy this run enacts.
func (r *Run) Strategy() *core.Strategy { return r.strategy }

// Status snapshots the run.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.status
	st.Path = append([]Transition(nil), r.status.Path...)
	st.Checks = append([]CheckStatus(nil), r.status.Checks...)
	return st
}

// Done reports whether the run has finished.
func (r *Run) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the run finishes or ctx is cancelled.
func (r *Run) Wait(ctx context.Context) error {
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Abort cancels the run.
func (r *Run) Abort() { r.cancel() }

func (r *Run) setRunState(s RunState, errMsg string) {
	r.mu.Lock()
	r.status.State = s
	if errMsg != "" {
		r.status.Error = errMsg
	}
	r.mu.Unlock()
}

// loop is the run's main goroutine: it walks the automaton until a final
// state, an abort, or a failure.
func (r *Run) loop(ctx context.Context) {
	defer close(r.done)
	clk := r.engine.clk
	start := clk.Now()

	r.mu.Lock()
	r.status.State = RunRunning
	r.status.StartedAt = start
	r.mu.Unlock()

	finish := func(state RunState, errMsg string) {
		now := clk.Now()
		r.mu.Lock()
		r.status.State = state
		r.status.FinishedAt = now
		r.status.ActualNanos = int64(now.Sub(start))
		if errMsg != "" {
			r.status.Error = errMsg
		}
		r.mu.Unlock()
		r.engine.registry.Gauge("engine_enactment_delay_seconds",
			metrics.Labels{"strategy": r.strategy.Name}).
			Set(r.Status().Delay().Seconds())
		switch state {
		case RunCompleted:
			r.engine.bus.publish(Event{Strategy: r.strategy.Name, Type: EventCompleted, Time: now})
		case RunAborted:
			r.engine.bus.publish(Event{Strategy: r.strategy.Name, Type: EventAborted, Time: now})
		case RunFailed:
			r.engine.bus.publish(Event{Strategy: r.strategy.Name, Type: EventError,
				Detail: errMsg, Time: now})
		}
	}

	current := r.strategy.Automaton.Start
	for {
		select {
		case <-ctx.Done():
			finish(RunAborted, "")
			return
		default:
		}

		state, ok := r.strategy.Automaton.State(current)
		if !ok {
			finish(RunFailed, "unknown state "+current)
			return
		}

		if err := r.enterState(ctx, state); err != nil {
			if ctx.Err() != nil {
				finish(RunAborted, "")
				return
			}
			finish(RunFailed, err.Error())
			return
		}

		if r.strategy.Automaton.IsFinal(state.ID) {
			finish(RunCompleted, "")
			return
		}

		next, outcome, err := r.executeState(ctx, state)
		if err != nil {
			if ctx.Err() != nil {
				finish(RunAborted, "")
				return
			}
			finish(RunFailed, err.Error())
			return
		}

		now := clk.Now()
		r.mu.Lock()
		r.status.Path = append(r.status.Path, Transition{
			From: state.ID, To: next, Outcome: outcome, At: now,
		})
		r.mu.Unlock()
		r.engine.mTransitions.Inc()
		r.engine.bus.publish(Event{
			Strategy: r.strategy.Name, Type: EventTransition,
			State: state.ID, Detail: next, Outcome: outcome, Time: now,
		})
		current = next
	}
}

// enterState applies the state's routing configurations and records entry.
func (r *Run) enterState(ctx context.Context, state *core.State) error {
	clk := r.engine.clk
	now := clk.Now()
	r.mu.Lock()
	r.status.Current = state.ID
	r.status.EnteredAt = now
	if len(state.Checks) > 0 {
		// Keep the previous state's check results visible while passing
		// through checkless states (e.g. final rollout/rollback states).
		r.status.Checks = nil
	}
	r.mu.Unlock()
	r.engine.bus.publish(Event{
		Strategy: r.strategy.Name, Type: EventStateEntered,
		State: state.ID, Detail: state.Description, Time: now,
	})

	for i := range state.Routing {
		rc := state.Routing[i]
		gen := r.engine.nextGeneration()
		if err := r.engine.configurator.Configure(ctx, r.strategy, state, rc, gen); err != nil {
			return err
		}
		r.engine.bus.publish(Event{
			Strategy: r.strategy.Name, Type: EventRoutingApplied,
			State: state.ID, Detail: rc.Service, Time: clk.Now(),
		})
	}
	return nil
}

// executeState runs the state's checks to completion (or interrupt) and
// returns the successor chosen by δ together with the aggregated outcome.
func (r *Run) executeState(ctx context.Context, state *core.State) (string, int, error) {
	clk := r.engine.clk

	// Book the state's specified duration for delay accounting.
	planned := statePlannedDuration(state)
	r.mu.Lock()
	r.status.PlannedNanos += int64(planned)
	r.mu.Unlock()

	stateCtx, cancelState := context.WithCancel(ctx)
	defer cancelState()

	interrupt := make(chan string, 1)
	runners := make([]*checkRunner, 0, len(state.Checks))
	var wg sync.WaitGroup
	for i := range state.Checks {
		c := &state.Checks[i]
		cr := newCheckRunner(r, c, interrupt)
		runners = append(runners, cr)
		if c.Interval > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cr.runTimed(stateCtx, clk)
			}()
		}
	}

	allDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(allDone)
	}()

	// The state ends when: its explicit duration elapses; otherwise when
	// every timed check finishes; an exception check interrupts; or the
	// run is aborted.
	var timerC <-chan time.Time
	if state.Duration > 0 {
		timer := clk.NewTimer(state.Duration)
		defer timer.Stop()
		timerC = timer.C()
	}

	fallback := ""
	if timerC == nil {
		select {
		case <-allDone:
		case fallback = <-interrupt:
		case <-ctx.Done():
			return "", 0, ctx.Err()
		}
	} else {
		select {
		case <-timerC:
		case fallback = <-interrupt:
		case <-ctx.Done():
			return "", 0, ctx.Err()
		}
	}

	// Stop timed checks and wait for them so counts are settled.
	cancelState()
	wg.Wait()

	if fallback != "" {
		// Exception semantics: jump immediately to the fallback state.
		return fallback, 0, nil
	}

	// Execute end-of-state checks (no timer: run once now), then
	// aggregate the weighted outcome and fire δ.
	results := make([]int, len(state.Checks))
	r.mu.Lock()
	r.status.Checks = r.status.Checks[:0]
	r.mu.Unlock()
	for i, cr := range runners {
		if state.Checks[i].Interval <= 0 {
			cr.runOnce(ctx)
		}
		mapped, err := cr.mappedOutcome()
		if err != nil {
			return "", 0, err
		}
		results[i] = mapped
		r.mu.Lock()
		r.status.Checks = append(r.status.Checks, cr.snapshot())
		r.mu.Unlock()
	}

	outcome, err := state.Outcome(results)
	if err != nil {
		return "", 0, err
	}
	next, err := state.NextState(outcome)
	if err != nil {
		return "", 0, err
	}
	return next, outcome, nil
}

// statePlannedDuration is the specified execution time of a state: its
// explicit duration, or the longest check schedule.
func statePlannedDuration(state *core.State) time.Duration {
	if state.Duration > 0 {
		return state.Duration
	}
	var max time.Duration
	for i := range state.Checks {
		if d := state.Checks[i].TotalDuration(); d > max {
			max = d
		}
	}
	return max
}
