package metrics

import (
	"errors"
	"fmt"
	"time"

	"bifrost/internal/sketch"
)

// This file is the store side of metrics federation: a fleet of proxy
// replicas pre-aggregates locally (internal/metrics/federation) and ships
// closed summary buckets — the same bucket summary.go maintains for local
// series, plus a mergeable quantile sketch — to one federating store.
//
// Delivery is at-least-once over a lossy network, so correctness hinges on
// idempotency: every batch carries (replica, incarnation, seq) and the
// store applies each sequence number at most once per incarnation.
// Dropped batches are retried by the agent; duplicated or reordered
// deliveries are absorbed here; a restarted agent starts a fresh
// incarnation at seq 1 and its unshipped window is re-observed from
// scratch rather than replayed, so nothing is ever double-counted.
//
// Federated series are stored summary-only (no raw samples) under the
// shipped labels plus an injected replica label, which keeps replicas'
// series disjoint — counter-reset detection and increase/rate stay exact
// per replica and sum across the fleet at query time. Window queries over
// federated series are bucket-granular: a window edge that cuts through a
// bucket includes the whole bucket, so query windows are effectively
// rounded to the shipping bucket width (1s by default — negligible
// against the ≥30s windows verdict checks use).

// BucketDelta is one shipped summary bucket: the exported form of
// summary.go's aggStats plus the bucket's time extent and the replica's
// quantile sketch of the bucket's samples.
type BucketDelta struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	// Start and Width delimit the bucket's interval [Start, Start+Width)
	// in unix nanoseconds.
	Start int64 `json:"start"`
	Width int64 `json:"width"`
	// FirstT/LastT are the unix nanos of the bucket's first/last sample.
	FirstT int64 `json:"firstT"`
	LastT  int64 `json:"lastT"`

	Count  int     `json:"count"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	M2     float64 `json:"m2"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	FirstV float64 `json:"firstV"`
	LastV  float64 `json:"lastV"`
	Inc    float64 `json:"inc"`

	// Sketch is the bucket's mergeable quantile sketch; nil for series
	// where quantiles are meaningless (e.g. cumulative counters).
	Sketch *sketch.Summary `json:"sketch,omitempty"`
}

// DeltaBatch is the unit of delivery: every closed bucket an agent
// flushed in one shipping interval, under one sequence number.
type DeltaBatch struct {
	// Replica identifies the shipping agent; it is injected as the
	// "replica" label on every federated series.
	Replica string `json:"replica"`
	// Incarnation distinguishes restarts of the same replica: sequence
	// numbers restart at 1 under a fresh incarnation.
	Incarnation string `json:"incarnation"`
	// Seq numbers batches 1,2,3,… within an incarnation.
	Seq     uint64        `json:"seq"`
	Buckets []BucketDelta `json:"buckets"`
}

// fedCursor tracks which sequence numbers of one (replica, incarnation)
// have been applied: everything ≤ floor, plus the out-of-order set above
// it. The set stays tiny — it only holds gaps while retries are in
// flight.
type fedCursor struct {
	floor   uint64
	applied map[uint64]bool
}

func (c *fedCursor) seen(seq uint64) bool {
	return seq <= c.floor || c.applied[seq]
}

func (c *fedCursor) mark(seq uint64) {
	if seq == c.floor+1 {
		c.floor++
		for c.applied[c.floor+1] {
			delete(c.applied, c.floor+1)
			c.floor++
		}
		return
	}
	c.applied[seq] = true
}

// ApplyDelta folds one shipped batch into the store. It reports whether
// the batch was applied: false with a nil error means the batch was a
// duplicate (already applied — the idempotent-re-delivery case); an error
// means the batch is malformed and must not be retried.
func (s *Store) ApplyDelta(batch DeltaBatch) (bool, error) {
	if batch.Replica == "" {
		return false, errors.New("metrics: federated batch without replica")
	}
	if batch.Seq == 0 {
		return false, errors.New("metrics: federated batch without sequence number")
	}
	for i := range batch.Buckets {
		b := &batch.Buckets[i]
		if b.Name == "" || b.Width <= 0 || b.Count <= 0 {
			return false, fmt.Errorf("metrics: malformed federated bucket %d (%q width=%d count=%d)",
				i, b.Name, b.Width, b.Count)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	ckey := batch.Replica + "\x00" + batch.Incarnation
	cur, ok := s.fed[ckey]
	if !ok {
		cur = &fedCursor{applied: make(map[uint64]bool)}
		s.fed[ckey] = cur
	}
	if cur.seen(batch.Seq) {
		return false, nil
	}
	for i := range batch.Buckets {
		s.applyBucketLocked(batch.Replica, &batch.Buckets[i])
	}
	cur.mark(batch.Seq)
	return true, nil
}

// applyBucketLocked inserts one shipped bucket; the store lock is held.
func (s *Store) applyBucketLocked(replica string, d *BucketDelta) {
	labels := Labels(d.Labels).Merge(Labels{"replica": replica})
	key := d.Name + "\x00" + labels.Key()
	sr, ok := s.series[key]
	if !ok {
		sr = &series{name: d.Name, labels: labels, ordered: true, remote: true}
		s.series[key] = sr
	}
	if !sr.remote {
		// A scraped series already owns this name+labels; shipping into it
		// would corrupt its raw/summary invariants. Drop the bucket — the
		// injected replica label makes this a deliberate misconfiguration.
		return
	}
	b := bucket{
		start:  d.Start,
		width:  d.Width,
		firstT: d.FirstT,
		lastT:  d.LastT,
		stats: aggStats{
			count: d.Count, sum: d.Sum, mean: d.Mean, m2: d.M2,
			min: d.Min, max: d.Max, firstV: d.FirstV, lastV: d.LastV,
			inc: d.Inc,
		},
	}
	if d.Sketch != nil {
		if sk, err := sketch.FromSummary(*d.Sketch); err == nil {
			b.sk = sk
		}
	}
	sr.insertRemoteBucket(b, s.maxSamples)
}

// insertRemoteBucket keeps the federated bucket slice sorted by start
// time (ties — e.g. the same wall-clock bucket observed by two
// incarnations across a restart — sort by firstT and coexist; their
// counts add at query time). The slice is bounded like the raw ring:
// beyond maxBuckets, the oldest bucket is evicted.
func (sr *series) insertRemoteBucket(b bucket, maxBuckets int) {
	i := len(sr.buckets)
	for i > 0 && (sr.buckets[i-1].start > b.start ||
		(sr.buckets[i-1].start == b.start && sr.buckets[i-1].firstT > b.firstT)) {
		i--
	}
	sr.buckets = append(sr.buckets, bucket{})
	copy(sr.buckets[i+1:], sr.buckets[i:])
	sr.buckets[i] = b
	if len(sr.buckets) > maxBuckets {
		copy(sr.buckets, sr.buckets[1:])
		sr.buckets = sr.buckets[:len(sr.buckets)-1]
	}
}

// remoteWindowStats aggregates every bucket intersecting (from, to].
// Buckets are chronological, so absorb's boundary steps reproduce the
// reset-aware counter increase across the whole window.
func (sr *series) remoteWindowStats(from, to time.Time) aggStats {
	var out aggStats
	fromN, toN := from.UnixNano(), to.UnixNano()
	for i := range sr.buckets {
		b := &sr.buckets[i]
		if b.start > toN {
			break
		}
		if b.start+b.width <= fromN+1 {
			continue
		}
		out.absorb(&b.stats)
	}
	return out
}

// remoteSketches collects the quantile sketches of every bucket
// intersecting (from, to].
func (sr *series) remoteSketches(from, to time.Time) []*sketch.Sketch {
	var out []*sketch.Sketch
	fromN, toN := from.UnixNano(), to.UnixNano()
	for i := range sr.buckets {
		b := &sr.buckets[i]
		if b.start > toN {
			break
		}
		if b.sk == nil || b.start+b.width <= fromN+1 {
			continue
		}
		out = append(out, b.sk)
	}
	return out
}

// remoteLatest is latestBefore for a federated series: the last observed
// value of the newest bucket ending at or before t.
func (sr *series) remoteLatest(t time.Time) (Sample, bool) {
	tn := t.UnixNano()
	for i := len(sr.buckets) - 1; i >= 0; i-- {
		b := &sr.buckets[i]
		if b.lastT != 0 && b.lastT <= tn {
			return Sample{T: time.Unix(0, b.lastT), V: b.stats.lastV}, true
		}
	}
	return Sample{}, false
}

// FederatedReplicaCount reports how many (replica, incarnation) shipping
// cursors the store has seen — primarily for tests and status surfaces.
func (s *Store) FederatedReplicaCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.fed)
}

// exportDelta is the agent-side inverse of applyBucketLocked; it lives
// here (next to the field list it must stay in sync with) and is used by
// internal/metrics/federation to build shipping batches.
func exportDelta(name string, labels Labels, start, width, firstT, lastT int64, a aggStats, sk *sketch.Sketch) BucketDelta {
	d := BucketDelta{
		Name: name, Labels: labels, Start: start, Width: width,
		FirstT: firstT, LastT: lastT,
		Count: a.count, Sum: a.sum, Mean: a.mean, M2: a.m2,
		Min: a.min, Max: a.max, FirstV: a.firstV, LastV: a.lastV,
		Inc: a.inc,
	}
	if sk != nil && sk.Count() > 0 {
		sum := sk.Export()
		d.Sketch = &sum
	}
	return d
}

// AggBucket accumulates one shipping bucket on the agent side: samples
// fold into the same aggStats summary the store maintains locally, plus a
// quantile sketch when requested. It is exported for the federation
// package; it is not safe for concurrent use (the agent serializes).
type AggBucket struct {
	start, width  int64
	firstT, lastT int64
	stats         aggStats
	sk            *sketch.Sketch
}

// NewAggBucket opens a bucket covering [start, start+width) unix nanos.
// alpha > 0 attaches a quantile sketch with that relative accuracy.
func NewAggBucket(start, width int64, alpha float64) *AggBucket {
	b := &AggBucket{start: start, width: width}
	if alpha > 0 {
		b.sk = sketch.New(alpha)
	}
	return b
}

// Observe folds one sample (chronologically after all previous ones).
func (b *AggBucket) Observe(t int64, v float64) {
	if b.stats.count == 0 {
		b.firstT = t
	}
	b.lastT = t
	b.stats.observe(v)
	if b.sk != nil {
		b.sk.Add(v)
	}
}

// Count returns the number of observed samples.
func (b *AggBucket) Count() int { return b.stats.count }

// Start returns the bucket's interval start in unix nanos.
func (b *AggBucket) Start() int64 { return b.start }

// Export renders the bucket as its shipping delta.
func (b *AggBucket) Export(name string, labels Labels) BucketDelta {
	return exportDelta(name, labels, b.start, b.width, b.firstT, b.lastT, b.stats, b.sk)
}

// BucketStart aligns a sample time down to its bucket start for width w.
func BucketStart(t time.Time, w time.Duration) int64 {
	return floorAlign(t.UnixNano(), int64(w))
}
