package proxy

import (
	"context"
	"errors"
	"net/http"

	"bifrost/internal/httpx"
)

// ErrStaleGeneration is returned by SetConfig when the pushed configuration
// is older than the one the proxy runs. The admin API maps it to an HTTP
// 409 with problem code CodeStaleGeneration, so the engine's retry logic
// can tell a lost ordering race from an invalid config.
var ErrStaleGeneration = errors.New("stale config generation")

// Machine-readable problem+json codes of the proxy admin API.
const (
	// CodeStaleGeneration rejects a config older than the active one (409).
	CodeStaleGeneration = "stale_generation"
	// CodeInvalidConfig rejects a config that fails validation (400);
	// retrying the same push can never succeed.
	CodeInvalidConfig = "invalid_config"
	// CodeBadRequest rejects a request body that is not a config at all.
	CodeBadRequest = "bad_request"
)

// Admin API, served under /_bifrost/ on the proxy's listener:
//
//	PUT /_bifrost/config    — engine pushes a routing configuration
//	GET /_bifrost/config    — inspect the active configuration
//	GET /_bifrost/mappings  — materialized sticky user mappings (M)
//	GET /_bifrost/metrics   — text exposition of proxy metrics
//	GET /_bifrost/healthy   — liveness
//
// Errors are application/problem+json documents (httpx.Problem) carrying
// one of the Code* constants, mirroring the engine API's typed contract.
func (p *Proxy) adminHandler() http.Handler {
	p.adminOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("PUT /_bifrost/config", func(w http.ResponseWriter, r *http.Request) {
			var cfg Config
			if err := httpx.ReadJSON(r, &cfg); err != nil {
				httpx.WriteProblem(w, httpx.Problem{
					Status: http.StatusBadRequest, Code: CodeBadRequest, Detail: err.Error(),
				})
				return
			}
			if err := p.SetConfig(cfg); err != nil {
				// A stale generation is an ordering conflict (another,
				// newer push won); anything else means this config can
				// never be applied and must not be retried.
				status, code := http.StatusBadRequest, CodeInvalidConfig
				if errors.Is(err, ErrStaleGeneration) {
					status, code = http.StatusConflict, CodeStaleGeneration
				}
				httpx.WriteProblem(w, httpx.Problem{Status: status, Code: code, Detail: err.Error()})
				return
			}
			httpx.WriteJSON(w, http.StatusOK, map[string]any{
				"service":    p.service,
				"generation": cfg.Generation,
			})
		})
		mux.HandleFunc("GET /_bifrost/config", func(w http.ResponseWriter, r *http.Request) {
			httpx.WriteJSON(w, http.StatusOK, p.Config())
		})
		mux.HandleFunc("GET /_bifrost/mappings", func(w http.ResponseWriter, r *http.Request) {
			httpx.WriteJSON(w, http.StatusOK, p.Mappings())
		})
		mux.Handle("GET /_bifrost/metrics", p.registry.Handler())
		mux.HandleFunc("GET /_bifrost/healthy", func(w http.ResponseWriter, r *http.Request) {
			httpx.WriteJSON(w, http.StatusOK, map[string]string{
				"status":  "ok",
				"service": p.service,
			})
		})
		p.adminMux = mux
	})
	return p.adminMux
}

// Client configures remote proxies over their admin API; this is the
// engine-side counterpart ("the engine updates the affected proxies").
type Client struct {
	// BaseURL is the proxy root, e.g. "http://127.0.0.1:8081".
	BaseURL string
}

// SetConfig pushes a routing configuration. Rejections surface as typed
// *httpx.Problem errors whose Code is one of the Code* constants, so
// callers can stop retrying permanent failures (invalid_config) and
// recognize lost ordering races (stale_generation).
func (c *Client) SetConfig(ctx context.Context, cfg Config) error {
	return httpx.PutJSON(ctx, c.BaseURL+"/_bifrost/config", cfg, nil)
}

// GetConfig fetches the active configuration.
func (c *Client) GetConfig(ctx context.Context) (Config, error) {
	var cfg Config
	err := httpx.GetJSON(ctx, c.BaseURL+"/_bifrost/config", &cfg)
	return cfg, err
}

// Healthy checks proxy liveness.
func (c *Client) Healthy(ctx context.Context) error {
	var out map[string]string
	return httpx.GetJSON(ctx, c.BaseURL+"/_bifrost/healthy", &out)
}
