package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/proxy"
)

// Configurator delivers a state's dynamic routing configuration to the
// proxy fronting the affected service. The engine calls Configure once per
// routing config whenever the automaton enters a state.
type Configurator interface {
	Configure(ctx context.Context, s *core.Strategy, state *core.State,
		rc core.RoutingConfig, generation int64) error
}

// NopConfigurator ignores routing updates; useful for model-only engines
// and the pure-scalability experiments (§5.2 removes app load entirely).
type NopConfigurator struct{}

var _ Configurator = NopConfigurator{}

// Configure implements Configurator.
func (NopConfigurator) Configure(context.Context, *core.Strategy, *core.State,
	core.RoutingConfig, int64) error {
	return nil
}

// BuildProxyConfig materializes a core.RoutingConfig into the wire config a
// proxy consumes, resolving version names to endpoints. The rendering is
// deterministic — backends in sorted version order, shadows in sorted
// (source, target) order — so identical states produce byte-identical wire
// configs no matter how Go's map iteration shuffles the weights; the fleet
// reconciler's convergence comparison depends on that stability.
func BuildProxyConfig(s *core.Strategy, rc core.RoutingConfig, generation int64) (proxy.Config, error) {
	svc, ok := s.FindService(rc.Service)
	if !ok {
		return proxy.Config{}, fmt.Errorf("engine: routing for unknown service %q", rc.Service)
	}
	cfg := proxy.Config{
		Service:    rc.Service,
		Generation: generation,
		Sticky:     rc.Sticky,
	}
	if rc.Mode == core.RouteHeader {
		cfg.Mode = "header"
		cfg.Header = rc.Header
	}
	// Keep zero-weighted versions routable so shadows and header groups
	// can reference them. NormalizedWeights returns names sorted.
	names, shares, err := rc.NormalizedWeights()
	if err != nil {
		return proxy.Config{}, fmt.Errorf("engine: %w", err)
	}
	for i, name := range names {
		v, ok := svc.FindVersion(name)
		if !ok {
			return proxy.Config{}, fmt.Errorf("engine: unknown version %q of %q", name, rc.Service)
		}
		cfg.Backends = append(cfg.Backends, proxy.Backend{
			Version: name,
			URL:     endpointURL(v.Endpoint),
			Weight:  shares[i],
		})
	}
	for _, sh := range rc.Shadows {
		psh := proxy.Shadow{Source: sh.Source, Target: sh.Target, Percent: sh.Percent}
		if _, routable := rc.Weights[sh.Target]; !routable {
			v, ok := svc.FindVersion(sh.Target)
			if !ok {
				return proxy.Config{}, fmt.Errorf("engine: unknown shadow target %q", sh.Target)
			}
			psh.TargetURL = endpointURL(v.Endpoint)
		}
		cfg.Shadows = append(cfg.Shadows, psh)
	}
	// Shadow rules are independent of each other, so ordering them is
	// purely cosmetic for the proxy but load-bearing for convergence
	// comparisons between renders.
	sort.SliceStable(cfg.Shadows, func(i, j int) bool {
		if cfg.Shadows[i].Source != cfg.Shadows[j].Source {
			return cfg.Shadows[i].Source < cfg.Shadows[j].Source
		}
		return cfg.Shadows[i].Target < cfg.Shadows[j].Target
	})
	return cfg, nil
}

func endpointURL(endpoint string) string {
	if strings.Contains(endpoint, "://") {
		return endpoint
	}
	return "http://" + endpoint
}

// LocalConfigurator pushes configs directly into in-process proxies, used
// by tests, examples and the experiment harness (everything runs on one
// machine, like the paper's Docker Swarm but without the containers).
type LocalConfigurator struct {
	mu      sync.RWMutex
	proxies map[string]*proxy.Proxy
}

var _ Configurator = (*LocalConfigurator)(nil)

// NewLocalConfigurator creates an empty local configurator.
func NewLocalConfigurator() *LocalConfigurator {
	return &LocalConfigurator{proxies: make(map[string]*proxy.Proxy, 4)}
}

// Register attaches the proxy serving a service.
func (lc *LocalConfigurator) Register(service string, p *proxy.Proxy) {
	lc.mu.Lock()
	lc.proxies[service] = p
	lc.mu.Unlock()
}

// Configure implements Configurator.
func (lc *LocalConfigurator) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, generation int64) error {
	lc.mu.RLock()
	p, ok := lc.proxies[rc.Service]
	lc.mu.RUnlock()
	if !ok {
		return fmt.Errorf("engine: no proxy registered for service %q", rc.Service)
	}
	cfg, err := BuildProxyConfig(s, rc, generation)
	if err != nil {
		return err
	}
	return p.SetConfig(cfg)
}

// HTTPConfigurator pushes configs to remote proxies over their admin API,
// using the proxy locations from the strategy's deployment section. Every
// push is bounded by a per-attempt timeout and transient failures are
// retried with exponential backoff (Retry), so one flaky admin call or a
// hung proxy can no longer fail — or wedge — a multi-day run. Services
// with multiple proxy replicas are delivered to every replica and all must
// ack; use FleetConfigurator for quorum semantics and background
// anti-entropy reconciliation.
type HTTPConfigurator struct {
	// Retry bounds and retries each replica push; zero-value fields take
	// the DefaultRetryPolicy defaults.
	Retry RetryPolicy
	// Clock drives the retry backoff waits; nil means the real clock.
	// (FleetConfigurator gets the engine clock via New; this value type
	// takes it explicitly.)
	Clock clock.Clock
}

var _ Configurator = HTTPConfigurator{}

// Configure implements Configurator.
func (hc HTTPConfigurator) Configure(ctx context.Context, s *core.Strategy,
	state *core.State, rc core.RoutingConfig, generation int64) error {
	svc, ok := s.FindService(rc.Service)
	if !ok {
		return fmt.Errorf("engine: routing for unknown service %q", rc.Service)
	}
	endpoints := svc.ProxyEndpoints()
	if len(endpoints) == 0 {
		return fmt.Errorf("engine: service %q has no proxy URL in deployment", rc.Service)
	}
	cfg, err := BuildProxyConfig(s, rc, generation)
	if err != nil {
		return err
	}
	return deliver(ctx, clockOrReal(hc.Clock), dialProxy, endpoints, cfg,
		hc.Retry.withDefaults(), len(endpoints), nil)
}
