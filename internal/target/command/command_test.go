package command

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bifrost/internal/core"
)

func commandStrategy(argv ...string) (*core.Strategy, core.RoutingConfig) {
	s := &core.Strategy{
		Name: "cmd-unit",
		Services: []core.Service{{
			Name:    "search",
			Target:  "command",
			Command: argv,
			Versions: []core.Version{
				{Name: "canary", Endpoint: "127.0.0.1:9102"},
				{Name: "stable", Endpoint: "127.0.0.1:9101"},
			},
		}},
	}
	rc := core.RoutingConfig{
		Service: "search",
		Sticky:  true,
		Weights: map[string]float64{"stable": 75, "canary": 25},
	}
	return s, rc
}

func TestRunnerInvocationPayload(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "invocation.json")
	envFile := filepath.Join(dir, "env.txt")
	// The command receives the rendered routing state on stdin and the
	// identifying variables in its environment.
	script := "cat > " + outFile + "; printf '%s %s %s %s' " +
		"\"$BIFROST_STRATEGY\" \"$BIFROST_SERVICE\" \"$BIFROST_STATE\" \"$BIFROST_GENERATION\" > " + envFile

	s, rc := commandStrategy("/bin/sh", "-c", script)
	r := &Runner{}
	state := &core.State{ID: "canary-phase"}
	if err := r.Apply(context.Background(), s, state, rc, 7); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var inv Invocation
	if err := json.Unmarshal(raw, &inv); err != nil {
		t.Fatalf("stdin was not invocation JSON: %v\n%s", err, raw)
	}
	if inv.Strategy != "cmd-unit" || inv.Service != "search" ||
		inv.State != "canary-phase" || inv.Generation != 7 || !inv.Sticky {
		t.Errorf("invocation = %+v", inv)
	}
	// Variants in sorted order with normalized weights.
	if len(inv.Variants) != 2 ||
		inv.Variants[0] != (Variant{Name: "canary", Endpoint: "127.0.0.1:9102", Weight: 0.25}) ||
		inv.Variants[1] != (Variant{Name: "stable", Endpoint: "127.0.0.1:9101", Weight: 0.75}) {
		t.Errorf("variants = %+v", inv.Variants)
	}

	env, err := os.ReadFile(envFile)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(env); got != "cmd-unit search canary-phase 7" {
		t.Errorf("env = %q", got)
	}
}

func TestRunnerFailureCarriesOutput(t *testing.T) {
	s, rc := commandStrategy("/bin/sh", "-c", "echo kubectl apply refused >&2; exit 3")
	err := (&Runner{}).Apply(context.Background(), s, nil, rc, 1)
	if err == nil {
		t.Fatal("failing command applied")
	}
	for _, want := range []string{"kubectl apply refused", "search", "exit status 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
}

func TestRunnerTimeout(t *testing.T) {
	s, rc := commandStrategy("/bin/sh", "-c", "sleep 10")
	r := &Runner{Timeout: 50 * time.Millisecond}
	start := time.Now()
	err := r.Apply(context.Background(), s, nil, rc, 1)
	if err == nil {
		t.Fatal("hung command applied")
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("timeout not enforced: took %v", time.Since(start))
	}
}

func TestRunnerValidation(t *testing.T) {
	s, rc := commandStrategy()
	if err := (&Runner{}).Apply(context.Background(), s, nil, rc, 1); err == nil {
		t.Error("service without argv applied")
	}
	s, rc = commandStrategy("/bin/true")
	rc.Service = "ghost"
	if err := (&Runner{}).Apply(context.Background(), s, nil, rc, 1); err == nil {
		t.Error("unknown service applied")
	}
	s, rc = commandStrategy("/bin/true")
	rc.Weights = map[string]float64{"nope": 1}
	if err := (&Runner{}).Apply(context.Background(), s, nil, rc, 1); err == nil {
		t.Error("unknown version applied")
	}
}

func TestRunnerNoConvergenceStory(t *testing.T) {
	r := &Runner{}
	if got := r.Convergence(context.Background(), "cmd-unit"); got != nil {
		t.Errorf("convergence = %+v, want nil", got)
	}
	r.Retire("cmd-unit") // no-op, must not panic
}
