package yaml

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseListing1Metric(t *testing.T) {
	// Listing 1 of the paper, the canonical basic check.
	src := `
- metric:
    providers:
      - prometheus:
          name: search_error
          query: request_errors{instance="search:80"}
    intervalTime: 5
    intervalLimit: 12
    threshold: 12
    validator: "<5"
`
	v, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	seq, ok := v.([]any)
	if !ok || len(seq) != 1 {
		t.Fatalf("top level = %#v, want 1-element sequence", v)
	}
	item, ok := seq[0].(map[string]any)
	if !ok {
		t.Fatalf("item = %#v, want mapping", seq[0])
	}
	metric, ok := item["metric"].(map[string]any)
	if !ok {
		t.Fatalf("metric = %#v", item["metric"])
	}
	if got := metric["intervalTime"]; got != int64(5) {
		t.Errorf("intervalTime = %#v, want int64(5)", got)
	}
	if got := metric["validator"]; got != "<5" {
		t.Errorf("validator = %#v, want \"<5\"", got)
	}
	providers, ok := metric["providers"].([]any)
	if !ok || len(providers) != 1 {
		t.Fatalf("providers = %#v", metric["providers"])
	}
	prom := providers[0].(map[string]any)["prometheus"].(map[string]any)
	if prom["name"] != "search_error" {
		t.Errorf("name = %#v", prom["name"])
	}
	if prom["query"] != `request_errors{instance="search:80"}` {
		t.Errorf("query = %#v", prom["query"])
	}
}

func TestParseListing2Route(t *testing.T) {
	src := `
- route:
    from: search
    to: fastSearch
    filters:
      - traffic:
          percentage: 100
          shadow: true
          intervalTime: 60
`
	v, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	route := v.([]any)[0].(map[string]any)["route"].(map[string]any)
	if route["from"] != "search" || route["to"] != "fastSearch" {
		t.Errorf("from/to = %#v/%#v", route["from"], route["to"])
	}
	traffic := route["filters"].([]any)[0].(map[string]any)["traffic"].(map[string]any)
	if traffic["percentage"] != int64(100) {
		t.Errorf("percentage = %#v", traffic["percentage"])
	}
	if traffic["shadow"] != true {
		t.Errorf("shadow = %#v", traffic["shadow"])
	}
}

func TestScalarInference(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"key: 42", int64(42)},
		{"key: -17", int64(-17)},
		{"key: 3.14", 3.14},
		{"key: 1e3", 1000.0},
		{"key: true", true},
		{"key: False", false},
		{"key: null", nil},
		{"key: ~", nil},
		{"key: hello", "hello"},
		{"key: 0x1F", int64(31)},
		{`key: "42"`, "42"},
		{`key: 'single'`, "single"},
		{`key: "esc\nape"`, "esc\nape"},
		{`key: "unié"`, "unié"},
		{`key: 'it''s'`, "it's"},
		{"key: 150ms", "150ms"},
		{"key: <5", "<5"},
	}
	for _, c := range cases {
		m, err := ParseMap(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(m["key"], c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, m["key"], c.want)
		}
	}
}

func TestFlowCollections(t *testing.T) {
	m, err := ParseMap(`
thresholds: [3, 4]
mapping: {low: -5, high: 5}
nested: [[1, 2], {a: b}]
empty_seq: []
empty_map: {}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(m["thresholds"], []any{int64(3), int64(4)}) {
		t.Errorf("thresholds = %#v", m["thresholds"])
	}
	if !reflect.DeepEqual(m["mapping"], map[string]any{"low": int64(-5), "high": int64(5)}) {
		t.Errorf("mapping = %#v", m["mapping"])
	}
	nested := m["nested"].([]any)
	if !reflect.DeepEqual(nested[0], []any{int64(1), int64(2)}) {
		t.Errorf("nested[0] = %#v", nested[0])
	}
	if !reflect.DeepEqual(nested[1], map[string]any{"a": "b"}) {
		t.Errorf("nested[1] = %#v", nested[1])
	}
	if len(m["empty_seq"].([]any)) != 0 {
		t.Errorf("empty_seq = %#v", m["empty_seq"])
	}
	if len(m["empty_map"].(map[string]any)) != 0 {
		t.Errorf("empty_map = %#v", m["empty_map"])
	}
}

func TestBlockScalars(t *testing.T) {
	m, err := ParseMap(`
literal: |
  line one
  line two
    indented
folded: >
  word one
  word two
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m["literal"] != "line one\nline two\n  indented" {
		t.Errorf("literal = %q", m["literal"])
	}
	if m["folded"] != "word one word two" {
		t.Errorf("folded = %q", m["folded"])
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	m, err := ParseMap(`
# leading comment
name: bifrost   # trailing comment

version: 2 #comment directly after space
query: "contains # hash"
anchor: 'single # hash'
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m["name"] != "bifrost" {
		t.Errorf("name = %#v", m["name"])
	}
	if m["version"] != int64(2) {
		t.Errorf("version = %#v", m["version"])
	}
	if m["query"] != "contains # hash" {
		t.Errorf("query = %#v", m["query"])
	}
	if m["anchor"] != "single # hash" {
		t.Errorf("anchor = %#v", m["anchor"])
	}
}

func TestDocumentMarker(t *testing.T) {
	m, err := ParseMap("---\nname: x\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m["name"] != "x" {
		t.Errorf("name = %#v", m["name"])
	}
}

func TestSequenceOfScalars(t *testing.T) {
	v, err := Parse("- a\n- 2\n- true\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []any{"a", int64(2), true}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("got %#v, want %#v", v, want)
	}
}

func TestDashOnlySequenceItems(t *testing.T) {
	v, err := Parse(`
-
  name: first
-
  name: second
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	seq := v.([]any)
	if len(seq) != 2 {
		t.Fatalf("len = %d, want 2", len(seq))
	}
	if seq[1].(map[string]any)["name"] != "second" {
		t.Errorf("seq[1] = %#v", seq[1])
	}
}

func TestErrorCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"tab indent", "key:\n\tsub: 1"},
		{"duplicate key", "a: 1\na: 2"},
		{"unterminated quote", `key: "oops`},
		{"anchor", "key: &a 1"},
		{"alias", "key: *a"},
		{"tag", "key: !!str x"},
		{"bad flow", "key: [1, 2"},
		{"trailing after quote", `key: "x" y`},
		{"bad escape", `key: "\q"`},
		{"stray deeper indent", "a: 1\n    b: 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.src)
			}
		})
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Parse("ok: 1\nbad: \"unterminated")
	var syn *SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("error = %T (%v), want *SyntaxError", err, err)
	}
	if syn.Line != 2 {
		t.Errorf("line = %d, want 2", syn.Line)
	}
	if !strings.Contains(syn.Error(), "line 2") {
		t.Errorf("Error() = %q", syn.Error())
	}
}

func TestParseMapRejectsSequenceRoot(t *testing.T) {
	if _, err := ParseMap("- a\n- b\n"); err == nil {
		t.Fatal("ParseMap accepted sequence root")
	}
}

func TestEmptyDocument(t *testing.T) {
	v, err := Parse("")
	if err != nil || v != nil {
		t.Fatalf("Parse(\"\") = %#v, %v", v, err)
	}
	v, err = Parse("\n# only comments\n\n")
	if err != nil || v != nil {
		t.Fatalf("Parse(comments) = %#v, %v", v, err)
	}
}

// genValue builds a random canonical YAML value of bounded depth.
func genValue(r *rand.Rand, depth int) any {
	if depth <= 0 {
		return genScalar(r)
	}
	switch r.Intn(4) {
	case 0:
		n := r.Intn(4)
		seq := make([]any, n)
		for i := range seq {
			seq[i] = genValue(r, depth-1)
		}
		return seq
	case 1:
		n := r.Intn(4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[genKey(r, i)] = genValue(r, depth-1)
		}
		return m
	default:
		return genScalar(r)
	}
}

func genKey(r *rand.Rand, i int) string {
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	return keys[i%len(keys)]
}

func genScalar(r *rand.Rand) any {
	switch r.Intn(6) {
	case 0:
		return int64(r.Intn(10000) - 5000)
	case 1:
		return float64(r.Intn(1000))/8 + 0.5
	case 2:
		return r.Intn(2) == 0
	case 3:
		return nil
	case 4:
		words := []string{"search", "fastSearch", "canary release", "a#b", "x: y", "- dash", "150ms", "", "true-ish", "0x", "über"}
		return words[r.Intn(len(words))]
	default:
		return "plain" + string(rune('a'+r.Intn(26)))
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := map[string]any{"root": genValue(r, 3)}
		enc, err := Encode(orig)
		if err != nil {
			t.Logf("Encode error: %v", err)
			return false
		}
		back, err := Parse(enc)
		if err != nil {
			t.Logf("Parse error on:\n%s\n%v", enc, err)
			return false
		}
		if !reflect.DeepEqual(back, orig) {
			t.Logf("round trip mismatch:\norig: %#v\nenc:\n%s\nback: %#v", orig, enc, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDeterministicKeyOrder(t *testing.T) {
	m := map[string]any{"b": int64(1), "a": int64(2), "c": int64(3)}
	e1, err1 := Encode(m)
	e2, err2 := Encode(m)
	if err1 != nil || err2 != nil {
		t.Fatalf("Encode: %v %v", err1, err2)
	}
	if e1 != e2 {
		t.Error("Encode not deterministic")
	}
	if strings.Index(e1, "a:") > strings.Index(e1, "b:") {
		t.Errorf("keys not sorted:\n%s", e1)
	}
}

func TestEncodeUnsupportedType(t *testing.T) {
	if _, err := Encode(map[string]any{"ch": make(chan int)}); err == nil {
		t.Fatal("Encode(chan) succeeded")
	}
}

func BenchmarkParseStrategySized(b *testing.B) {
	src := strings.Repeat(`
- metric:
    providers:
      - prometheus:
          name: search_error
          query: request_errors{instance="search:80"}
    intervalTime: 5
    intervalLimit: 12
    threshold: 12
    validator: "<5"
`, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
