package flag

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/httpx"
)

func testRuleset(gen int64) Ruleset {
	return Ruleset{
		Service:    "search",
		Strategy:   "canary",
		Generation: gen,
		Sticky:     true,
		Variants: []Variant{
			{Name: "canary", Endpoint: "http://127.0.0.1:9102", Weight: 0.1},
			{Name: "stable", Endpoint: "http://127.0.0.1:9101", Weight: 0.9},
		},
	}
}

func TestDecideStickyMatchesProxySelector(t *testing.T) {
	c := &Client{Service: "search"}
	if _, ok := c.Decide("alice"); ok {
		t.Error("Decide succeeded before any ruleset was loaded")
	}
	if err := c.Load(testRuleset(1)); err != nil {
		t.Fatal(err)
	}

	// η is a pure function of (config, user): the SDK's sticky assignment
	// must agree with the proxy-side selector for every user.
	rc := core.RoutingConfig{Service: "search",
		Weights: map[string]float64{"stable": 0.9, "canary": 0.1}}
	sel, err := core.NewSelector(&rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		user := fmt.Sprintf("user-%d", i)
		d, ok := c.Decide(user)
		if !ok {
			t.Fatal("no decision")
		}
		if want := sel.Assign(user); d.Version != want {
			t.Fatalf("user %s: SDK chose %q, proxy selector %q", user, d.Version, want)
		}
		if again, _ := c.Decide(user); again.Version != d.Version {
			t.Fatalf("user %s: sticky decision changed", user)
		}
		if d.Generation != 1 {
			t.Errorf("generation = %d", d.Generation)
		}
	}
}

func TestDecideWeightedSplit(t *testing.T) {
	c := &Client{Service: "search"}
	set := testRuleset(1)
	set.Sticky = false
	if err := c.Load(set); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		d, ok := c.Decide(fmt.Sprintf("u%d", i))
		if !ok {
			t.Fatal("no decision")
		}
		counts[d.Version]++
	}
	// 10% canary ± generous slack.
	if counts["canary"] < 100 || counts["canary"] > 350 {
		t.Errorf("canary share = %d/2000, want ≈200", counts["canary"])
	}
	if counts["canary"]+counts["stable"] != 2000 {
		t.Errorf("counts = %v", counts)
	}
}

func TestDecideHeaderMode(t *testing.T) {
	c := &Client{Service: "search"}
	set := testRuleset(2)
	set.Mode, set.Header = "header", "X-Group"
	if err := c.Load(set); err != nil {
		t.Fatal(err)
	}
	// A value naming a variant routes there directly.
	d, ok := c.Decide("canary")
	if !ok || d.Version != "canary" || d.Endpoint != "http://127.0.0.1:9102" {
		t.Errorf("header decision = %+v, %v", d, ok)
	}
	// Unknown values fall through to the sticky split, like the proxy.
	d, ok = c.Decide("someone-else")
	if !ok || (d.Version != "stable" && d.Version != "canary") {
		t.Errorf("fallthrough decision = %+v, %v", d, ok)
	}
}

func TestRefreshAndPolling(t *testing.T) {
	var mu sync.Mutex
	gen := int64(1)
	instances := map[string]int{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if r.URL.Path != "/search" {
			httpx.WriteProblem(w, httpx.Problem{Status: http.StatusNotFound, Code: "no_ruleset"})
			return
		}
		instances[r.Header.Get(InstanceHeader)]++
		httpx.WriteJSON(w, http.StatusOK, testRuleset(gen))
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Service: "search",
		InstanceID: "sdk-test", PollInterval: 5 * time.Millisecond}
	if err := c.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 1 {
		t.Errorf("generation = %d", c.Generation())
	}

	mu.Lock()
	gen = 2
	mu.Unlock()
	c.Start()
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for c.Generation() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("poller never picked up generation 2")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if instances["sdk-test"] < 2 {
		t.Errorf("instance header sent on %d polls", instances["sdk-test"])
	}
	mu.Unlock()
}

func TestRefreshSurfacesProblems(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteProblem(w, httpx.Problem{
			Status: http.StatusNotFound, Code: "no_ruleset", Detail: "nothing active",
		})
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, Service: "search"}
	err := c.Refresh(context.Background())
	if err == nil {
		t.Fatal("missing ruleset refreshed")
	}
	if code := httpx.ProblemCode(err); code != "no_ruleset" {
		t.Errorf("problem code = %q: %v", code, err)
	}
	// A failed refresh never clobbers the last good snapshot.
	if err := c.Load(testRuleset(5)); err != nil {
		t.Fatal(err)
	}
	_ = c.Refresh(context.Background())
	if c.Generation() != 5 {
		t.Errorf("failed refresh clobbered the snapshot: generation = %d", c.Generation())
	}
}
