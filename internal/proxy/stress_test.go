package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentTrafficDuringReconfiguration hammers a proxy with parallel
// traffic while the configuration is replaced repeatedly — the situation of
// a gradual rollout under load. Every request must get a well-formed answer
// (200 from a backend) and the proxy must end on the last configuration.
func TestConcurrentTrafficDuringReconfiguration(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	p, ts := newTestProxy(t, twoBackendConfig(a, b, 100, 0, false))

	const (
		workers          = 8
		requestsEach     = 100
		reconfigurations = 40
	)
	var bad atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < requestsEach; i++ {
				resp, err := client.Get(ts.URL + "/stress")
				if err != nil {
					bad.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Concurrent reconfiguration: walk the weights 100/0 → 0/100, paced so
	// the sweep overlaps the whole traffic window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= reconfigurations; i++ {
			pct := float64(i) * 100 / reconfigurations
			cfg := twoBackendConfig(a, b, 100-pct, pct, false)
			cfg.Generation = int64(i + 1)
			if err := p.SetConfig(cfg); err != nil {
				t.Errorf("reconfig %d: %v", i, err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()

	if n := bad.Load(); n != 0 {
		t.Errorf("%d bad responses under reconfiguration", n)
	}
	cfg := p.Config()
	if cfg.Generation != reconfigurations+1 {
		t.Errorf("final generation = %d, want %d", cfg.Generation, reconfigurations+1)
	}
	// Both backends must have served traffic across the sweep.
	if a.hits.Load() == 0 || b.hits.Load() == 0 {
		t.Errorf("hits A=%d B=%d; the sweep should touch both", a.hits.Load(), b.hits.Load())
	}
}

// TestStickyUnderConcurrency verifies that parallel requests with the same
// cookie never split across versions — M really is a function (u → v).
func TestStickyUnderConcurrency(t *testing.T) {
	a := newBackend(t, "A")
	b := newBackend(t, "B")
	_, ts := newTestProxy(t, twoBackendConfig(a, b, 50, 50, true))

	cookie := &http.Cookie{Name: CookieName, Value: "123e4567-e89b-42d3-a456-426614174000"}
	versions := make(chan string, 200)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < 25; i++ {
				req, _ := http.NewRequest(http.MethodGet, ts.URL+"/s", nil)
				req.AddCookie(cookie)
				resp, err := client.Do(req)
				if err != nil {
					continue
				}
				versions <- resp.Header.Get("X-Bifrost-Version")
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(versions)

	seen := map[string]bool{}
	for v := range versions {
		seen[v] = true
	}
	if len(seen) != 1 {
		t.Errorf("one sticky client reached %d versions: %v", len(seen), seen)
	}
}

// TestShadowQueueOverflowDoesNotBlock floods the shadow queue with a slow
// shadow target; live traffic must stay fast and drops must be counted.
func TestShadowQueueOverflowDoesNotBlock(t *testing.T) {
	live := newBackend(t, "live")
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {} // never answers; worker slots stay occupied
	}))
	// Note: no Cleanup close for `slow` — closing would hang on the stuck
	// handlers. The unclosed test server dies with the process.

	p, ts := newTestProxy(t, Config{
		Service: "product", Generation: 1,
		Backends: []Backend{{Version: "live", URL: live.srv.URL, Weight: 1}},
		Shadows:  []Shadow{{Target: "dark", TargetURL: slow.URL, Percent: 100}},
	})

	// More requests than queue + workers can absorb.
	client := ts.Client()
	for i := 0; i < maxShadowQueue+200; i++ {
		resp, err := client.Get(ts.URL + "/x")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var dropped float64
	for _, pt := range p.Registry().Gather() {
		if pt.Name == "proxy_shadow_dropped_total" {
			dropped = pt.Value
		}
	}
	if dropped == 0 {
		t.Error("no shadow drops recorded despite a wedged shadow target")
	}
}

// TestSetConfigServeHTTPRace interleaves config swaps with full-speed
// in-process traffic (stub transport, no pacing) — the test the race
// detector needs to vouch for the lock-free snapshot data plane. Every
// request must route to a version of one of the two configs.
func TestSetConfigServeHTTPRace(t *testing.T) {
	cfgA := Config{
		Service: "product", Generation: 1, Sticky: true,
		Backends: []Backend{
			{Version: "A1", URL: "http://a1.test", Weight: 50},
			{Version: "A2", URL: "http://a2.test", Weight: 50},
		},
	}
	cfgB := Config{
		Service: "product", Generation: 1,
		Backends: []Backend{
			{Version: "B1", URL: "http://b1.test", Weight: 100},
		},
		Shadows: []Shadow{{Target: "B1", Percent: 50}},
	}
	p, err := New("product", cfgA, WithTransport(stubTransport{}), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var stop atomic.Bool
	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodGet, "http://front/x", nil)
			req.AddCookie(&http.Cookie{Name: CookieName,
				Value: "123e4567-e89b-42d3-a456-426614174000"})
			for i := 0; !stop.Load(); i++ {
				rec := newStatusRecorder()
				p.ServeHTTP(rec, req)
				if rec.status != http.StatusOK {
					bad.Add(1)
				}
				switch v := rec.h.Get("X-Bifrost-Version"); v {
				case "A1", "A2", "B1":
				default:
					bad.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		cfg := cfgA
		if i%2 == 1 {
			cfg = cfgB
		}
		cfg.Generation = int64(i + 2)
		if err := p.SetConfig(cfg); err != nil {
			t.Fatalf("reconfig %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d bad responses while snapshots were swapped", n)
	}
}

// --- Routing-throughput and contention benchmarks --------------------------
//
// These measure the data plane alone: a stub transport answers round trips
// in-process, so the numbers isolate decide() + observe() + header
// handling — the per-request overhead the paper's Table 1 attributes to
// the proxy. Run with -cpu to see scaling, e.g.:
//
//	go test ./internal/proxy -bench ServeHTTPParallel -cpu 1,4,8

func benchProxy(b *testing.B, sticky bool, mode string) *Proxy {
	b.Helper()
	cfg := Config{
		Service: "bench", Generation: 1, Sticky: sticky,
		Backends: []Backend{
			{Version: "v1", URL: "http://v1.test", Weight: 90},
			{Version: "v2", URL: "http://v2.test", Weight: 10},
		},
	}
	if mode == "header" {
		cfg.Mode = "header"
		cfg.Header = "X-Group"
	}
	p, err := New("bench", cfg, WithTransport(stubTransport{}), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	return p
}

// BenchmarkServeHTTPParallel is the headline contention benchmark: many
// goroutines in ServeHTTP at once, as under production load.
func BenchmarkServeHTTPParallel(b *testing.B) {
	b.Run("weighted", func(b *testing.B) {
		p := benchProxy(b, false, "")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			req, _ := http.NewRequest(http.MethodGet, "http://front/x", nil)
			req.AddCookie(&http.Cookie{Name: CookieName,
				Value: "123e4567-e89b-42d3-a456-426614174000"})
			for pb.Next() {
				p.ServeHTTP(newStatusRecorder(), req)
			}
		})
	})
	b.Run("sticky", func(b *testing.B) {
		p := benchProxy(b, true, "")
		var n atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			// Each goroutine simulates a distinct returning client.
			id := n.Add(1)
			req, _ := http.NewRequest(http.MethodGet, "http://front/x", nil)
			req.AddCookie(&http.Cookie{Name: CookieName,
				Value: fmt.Sprintf("123e4567-e89b-42d3-a456-4266141%05d", id)})
			for pb.Next() {
				p.ServeHTTP(newStatusRecorder(), req)
			}
		})
	})
	b.Run("header", func(b *testing.B) {
		p := benchProxy(b, false, "header")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			req, _ := http.NewRequest(http.MethodGet, "http://front/x", nil)
			req.Header.Set("X-Group", "v1")
			for pb.Next() {
				p.ServeHTTP(newStatusRecorder(), req)
			}
		})
	})
}

// BenchmarkServeHTTPUnderReconfiguration measures data-plane throughput
// while the control plane swaps snapshots continuously — the worst case
// for any lock-based design.
func BenchmarkServeHTTPUnderReconfiguration(b *testing.B) {
	p := benchProxy(b, true, "")
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cfg := p.Config()
		for gen := cfg.Generation + 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg.Generation = gen
			_ = p.SetConfig(cfg)
		}
	}()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		req, _ := http.NewRequest(http.MethodGet, "http://front/x", nil)
		req.AddCookie(&http.Cookie{Name: CookieName,
			Value: "123e4567-e89b-42d3-a456-426614174000"})
		for pb.Next() {
			p.ServeHTTP(newStatusRecorder(), req)
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkStickyStore isolates the sharded assignment store.
func BenchmarkStickyStore(b *testing.B) {
	s := newStickyStore(1<<16, stickyShardCount, nil)
	for i := 0; i < 1<<15; i++ {
		s.put(fmt.Sprintf("warm-%d", i), "v1")
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("warm-%d", i&(1<<15-1))
			if _, ok := s.get(key); !ok {
				s.put(key, "v1")
			}
			i++
		}
	})
}
