package engine

import (
	"errors"
	"sync"

	"bifrost/internal/journal"
)

// journalWriter moves journal I/O off the publish pipeline's critical
// section. Publishers enqueue records while still holding pubMu — so the
// queue order is exactly the publish order, per run and globally — and a
// single writer goroutine drains the queue, grouping consecutive same-run
// records into one AppendBatch (one partition lock acquisition and bufio
// pass per group) instead of a bufio write per record under pubMu.
//
// Durability points are preserved, not weakened:
//
//   - terminal records (run completed/aborted/failed) carry a done channel;
//     publish waits on it after releasing pubMu, and the writer closes it
//     only after the record is appended and its partition fsynced — exactly
//     the synchronous j.Sync() the old inline path performed.
//   - write-through journals (FlushInterval < 0) never use the writer at
//     all: the engine keeps appending inline under pubMu, so the "a
//     subscriber never sees an event a crash could unwind" contract of
//     write-through mode is untouched.
//   - barrier() lets Remove/Evict/close drain every record enqueued so far
//     before deleting or closing a partition, so a queued record can never
//     resurrect a removed run's directory.
type journalWriter struct {
	e *Engine

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []jreq
	stopped bool
	done    chan struct{} // closed when the writer goroutine exits
}

// jreq is one queued journal write (or a barrier marker).
type jreq struct {
	rec journal.Record
	// f, when set, supplies rec.Data at write time: the record shares the
	// frame's encode-once bytes, and the reference is held until the write
	// completes so the pooled buffer cannot be recycled under the writer.
	f *frame
	// sync requests a partition fsync after this record's group is written
	// (terminal records). doneCh, when set, is closed once the record is
	// written (and synced, if requested).
	sync    bool
	doneCh  chan struct{}
	barrier bool
}

func newJournalWriter(e *Engine) *journalWriter {
	w := &journalWriter{e: e, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

// enqueue queues one record. Callers hold pubMu, which makes the queue
// order the publish order.
func (w *journalWriter) enqueue(req jreq) {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		// The engine is past drain: drop the record like a fenced append
		// (the journal is closing or closed; nothing durable is lost that
		// the close-time snapshot does not cover).
		if req.f != nil {
			req.f.release()
		}
		if req.doneCh != nil {
			close(req.doneCh)
		}
		return
	}
	w.queue = append(w.queue, req)
	w.cond.Signal()
	w.mu.Unlock()
}

// barrier blocks until every record enqueued before the call has been
// written through to its partition. The writer goroutine takes neither e.mu
// nor pubMu, so barrier is safe to call while holding either.
func (w *journalWriter) barrier() {
	ch := make(chan struct{})
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.queue = append(w.queue, jreq{barrier: true, doneCh: ch})
	w.cond.Signal()
	w.mu.Unlock()
	<-ch
}

// stopAndDrain writes everything queued, then stops the writer goroutine.
// Records enqueued after stopAndDrain begins are dropped.
func (w *journalWriter) stopAndDrain() {
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		w.cond.Signal()
	}
	w.mu.Unlock()
	<-w.done
}

func (w *journalWriter) loop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.stopped {
			w.cond.Wait()
		}
		batch := w.queue
		w.queue = nil
		stopped := w.stopped
		w.mu.Unlock()

		w.writeBatch(batch)
		if stopped {
			return
		}
	}
}

// writeBatch writes one drained queue slice, grouping consecutive same-run
// records into single AppendBatch calls.
func (w *journalWriter) writeBatch(batch []jreq) {
	recs := make([]journal.Record, 0, len(batch))
	for i := 0; i < len(batch); {
		if batch[i].barrier {
			close(batch[i].doneCh)
			i++
			continue
		}
		run := batch[i].rec.Run
		j := i
		for j < len(batch) && !batch[j].barrier && batch[j].rec.Run == run {
			j++
		}
		group := batch[i:j]
		recs = recs[:0]
		needSync := false
		for k := range group {
			rec := group[k].rec
			if group[k].f != nil {
				rec.Data = group[k].f.data()
			}
			recs = append(recs, rec)
			needSync = needSync || group[k].sync
		}
		w.appendGroup(run, recs, needSync)
		for k := range group {
			if group[k].f != nil {
				group[k].f.release()
			}
			if group[k].doneCh != nil {
				close(group[k].doneCh)
			}
		}
		i = j
	}
}

// appendGroup writes one run's consecutive records, counting them the same
// way the inline path did: journaled on success, fenced when this replica
// lost the run's ownership mid-write (the new owner's replay defines the
// truth; the records are dropped).
func (w *journalWriter) appendGroup(run string, recs []journal.Record, needSync bool) {
	e := w.e
	e.pubMu.Lock()
	js := e.journals
	e.pubMu.Unlock()
	if js == nil {
		return
	}
	j, err := js.Partition(run, e.fenceFor(run))
	if err != nil {
		if !errors.Is(err, journal.ErrClosed) {
			e.mFenced.Add(float64(len(recs)))
		}
		return
	}
	switch err := j.AppendBatch(recs); {
	case err == nil:
		e.mJournaled.Add(float64(len(recs)))
	case errors.Is(err, journal.ErrFenced):
		e.mFenced.Add(float64(len(recs)))
	}
	if needSync {
		_ = j.Sync()
	}
}
