package engine

import (
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/dsl"
)

// TestLeaseTakeoverCrashPoints kills a takeover at its three interesting
// points — right after the lease claim, mid partition replay, and after
// the replay but while the previous incarnation is still a live zombie —
// and requires the same two invariants to hold in every case:
//
//   - no run is ever owned twice: a deposed owner's journal appends are
//     rejected by the fencing token no matter when it wakes up, and its
//     next renew evicts the run locally;
//   - no run is orphaned: whatever the half-dead adopter left behind, a
//     later sweep by a healthy replica claims the expired lease and
//     resumes the run.
//
// Replica a is the original owner (left running, unsuspended — the
// zombie); b is the adopter that crashes mid-takeover; c is the survivor
// that must end up owning the run exactly once.
func TestLeaseTakeoverCrashPoints(t *testing.T) {
	cases := []struct {
		name string
		// crash performs b's partial takeover up to the kill point and
		// returns b's lease token (0 if it never got one).
		crash func(t *testing.T, b *clusterFixture, run string) int64
	}{
		{
			// Crash after the lease claim, before a single byte of the
			// partition was read: the fence was never re-registered, so
			// only the lease record changed hands.
			name: "after lease claim",
			crash: func(t *testing.T, b *clusterFixture, run string) int64 {
				rec, err := b.cluster.leases.Acquire(run, "b", b.cluster.ttl)
				if err != nil {
					t.Fatalf("b acquire: %v", err)
				}
				return rec.Token
			},
		},
		{
			// Crash mid-replay: the partition was opened under b's token
			// (fence re-registered, a is already fenced out) but no run
			// was resumed.
			name: "mid replay",
			crash: func(t *testing.T, b *clusterFixture, run string) int64 {
				rec, err := b.cluster.leases.Acquire(run, "b", b.cluster.ttl)
				if err != nil {
					t.Fatalf("b acquire: %v", err)
				}
				if _, err := b.eng.journals.Partition(run, rec.Token); err != nil {
					t.Fatalf("b open partition: %v", err)
				}
				return rec.Token
			},
		},
		{
			// Full adoption, then b goes silent without suspending: its
			// run loop keeps living on the shared clock — the strongest
			// zombie, holding an open journal under a stale token.
			name: "live zombie after adoption",
			crash: func(t *testing.T, b *clusterFixture, run string) int64 {
				b.cluster.sweepOnce()
				r, ok := b.eng.Run(run)
				if !ok {
					t.Fatalf("b did not adopt the run")
				}
				waitReentries(t, b.eng, run, 2)
				if r.Status().Current != "canary" {
					t.Fatalf("b adopted into %q, want canary", r.Status().Current)
				}
				return b.cluster.Token(run)
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := clock.NewManual(time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC))
			// Every replica considers every other dead: adoption decisions
			// ride purely on lease expiry, never on liveness guesses.
			fleet := newClusterFleet(t, 3, clk, func(string) bool { return false })
			a, b, c := fleet[0], fleet[1], fleet[2]
			defer c.eng.Suspend()

			strategy, err := dsl.Compile(holdStrategy)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			run := strategy.Name
			if _, err := a.eng.EnactSource(strategy, holdStrategy); err != nil {
				t.Fatalf("EnactSource: %v", err)
			}
			eventually(t, "run entering canary on a", func() bool {
				r, ok := a.eng.Run(run)
				return ok && r.Status().Current == "canary"
			})
			aTok := a.cluster.Token(run)

			// Thirty in-phase seconds, then a goes silent (no suspend, no
			// release: a crashed-but-not-dead original owner).
			clk.Advance(30 * time.Second)
			eventually(t, "journal clock advanced on a", func() bool {
				a.eng.pubMu.Lock()
				defer a.eng.pubMu.Unlock()
				return !a.eng.mirror.LastTime.Before(clk.Now())
			})

			// Past a's TTL: b starts the takeover and dies at the kill
			// point.
			clk.Advance(2 * time.Minute)
			bTok := tc.crash(t, b, run)
			if bTok <= aTok {
				t.Fatalf("b's token %d does not dominate a's %d", bTok, aTok)
			}

			// Past b's TTL too: c's sweep must find the expired lease and
			// finish the job — nothing stays orphaned.
			clk.Advance(2 * time.Minute)
			adoptTime := clk.Now()
			c.cluster.sweepOnce()
			rc, ok := c.eng.Run(run)
			if !ok {
				t.Fatalf("c did not adopt the run (orphaned after %q)", tc.name)
			}
			waitTakeover(t, c.eng, run, adoptTime)
			cTok := c.cluster.Token(run)
			if cTok <= bTok {
				t.Fatalf("c's token %d does not dominate b's %d", cTok, bTok)
			}
			st := rc.Status()
			if st.Current != "canary" || st.State != RunRunning || !st.Recovered {
				t.Fatalf("c resumed run as %+v, want running in canary, recovered", st)
			}
			// Elapsed-in-state survived the chain of crashes: at least the
			// 30 in-phase seconds a lived, never reset.
			if elapsed := clk.Now().Sub(st.EnteredAt); elapsed < 25*time.Second {
				t.Fatalf("elapsed after takeover = %s, want ≥ ~30s (clock reset)", elapsed)
			}

			// The zombies wake up and try to write: every append must be
			// rejected by the fence, never accepted into the partition.
			aFencedBefore := a.eng.mFenced.Value()
			if _, err := a.eng.Pause(run); err != nil {
				t.Fatalf("zombie a pause: %v", err)
			}
			eventually(t, "a's zombie append fenced", func() bool {
				return a.eng.mFenced.Value() > aFencedBefore
			})
			if tc.name == "live zombie after adoption" {
				bFencedBefore := b.eng.mFenced.Value()
				if _, err := b.eng.Pause(run); err != nil {
					t.Fatalf("zombie b pause: %v", err)
				}
				eventually(t, "b's zombie append fenced", func() bool {
					return b.eng.mFenced.Value() > bFencedBefore
				})
				// b's next renew discovers the loss and evicts: after it,
				// exactly one replica hosts the run.
				b.cluster.renewOnce()
				if _, still := b.eng.Run(run); still {
					t.Fatalf("b still hosts the run after losing its lease")
				}
			}
			// c is untouched by the zombie writes: still running, still
			// the holder, and its event history never absorbed the
			// zombies' pauses.
			if st := rc.Status(); st.State != RunRunning {
				t.Fatalf("c's run state = %s after zombie writes, want running", st.State)
			}
			rec, found, err := c.cluster.leases.Get(run)
			if err != nil || !found || rec.Holder != "c" || rec.Token != cTok {
				t.Fatalf("lease after takeover = %+v (found=%v, err=%v), want holder c token %d",
					rec, found, err, cTok)
			}
			for _, ev := range c.eng.RunEvents(run, 0) {
				if ev.Type == EventPaused {
					t.Fatalf("zombie pause leaked into the owner's event history")
				}
			}
		})
	}
}

// waitTakeover blocks until the run's history shows this takeover's own
// recovered event and re-entry — events stamped at (or after) the adoption
// instant, as opposed to the replayed ones from earlier lives.
func waitTakeover(t *testing.T, eng *Engine, name string, since time.Time) {
	t.Helper()
	eventually(t, "takeover recovered event and re-entry", func() bool {
		var recov, reentry bool
		for _, ev := range eng.RunEvents(name, 0) {
			if ev.Time.Before(since) {
				continue
			}
			switch ev.Type {
			case EventRecovered:
				recov = true
			case EventStateEntered:
				reentry = true
			}
		}
		return recov && reentry
	})
}
