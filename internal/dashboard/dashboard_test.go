package dashboard

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/engine"
	"bifrost/internal/httpx"
)

func dashFixture(t *testing.T) (*engine.Engine, *httptest.Server) {
	t.Helper()
	eng := engine.New()
	t.Cleanup(eng.Shutdown)
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return eng, ts
}

func quickStrategy(name string) *core.Strategy {
	return &core.Strategy{
		Name: name,
		Services: []core.Service{{
			Name:     "svc",
			Versions: []core.Version{{Name: "v1", Endpoint: "h:1"}},
		}},
		Automaton: core.Automaton{
			Start:  "go",
			Finals: []string{"end"},
			States: []core.State{
				{
					ID: "go",
					Checks: []core.Check{{
						Name: "ok", Kind: core.BasicCheck,
						Eval: core.ConstEvaluator(true), Interval: time.Millisecond,
						Executions: 2, Thresholds: []int{1}, Outputs: []int{0, 1},
					}},
					Thresholds:  []int{0},
					Transitions: []string{"go", "end"},
					Routing: []core.RoutingConfig{{
						Service: "svc", Weights: map[string]float64{"v1": 1},
					}},
				},
				{ID: "end"},
			},
		},
	}
}

func TestStatusEndpoint(t *testing.T) {
	eng, ts := dashFixture(t)
	run, err := eng.Enact(quickStrategy("dash-test"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := run.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	var statuses []engine.Status
	if err := httpx.GetJSON(context.Background(), ts.URL+"/dashboard/status", &statuses); err != nil {
		t.Fatalf("status: %v", err)
	}
	if len(statuses) != 1 || statuses[0].Strategy != "dash-test" {
		t.Fatalf("statuses = %+v", statuses)
	}
	if statuses[0].State != engine.RunCompleted {
		t.Errorf("state = %s", statuses[0].State)
	}
}

func TestHTMLPage(t *testing.T) {
	_, ts := dashFixture(t)
	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	page := string(buf[:n])
	for _, want := range []string{"Bifrost Dashboard", "EventSource", "/api/v2/events/stream", "/api/v2/runs"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestSSEStreamDeliversEvents(t *testing.T) {
	eng, ts := dashFixture(t)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/dashboard/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	run, err := eng.Enact(quickStrategy("sse-test"))
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Read until the completed event appears.
	scanner := bufio.NewScanner(resp.Body)
	sawCompleted := false
	sawTransition := false
	deadline := time.After(8 * time.Second)
	lines := make(chan string, 64)
	go func() {
		for scanner.Scan() {
			lines <- scanner.Text()
		}
		close(lines)
	}()
	for !sawCompleted {
		select {
		case line, open := <-lines:
			if !open {
				t.Fatal("stream closed before completed event")
			}
			if strings.Contains(line, "event: completed") {
				sawCompleted = true
			}
			if strings.Contains(line, "event: transition") {
				sawTransition = true
			}
		case <-deadline:
			t.Fatal("no completed event on SSE stream")
		}
	}
	if !sawTransition {
		t.Error("no transition event on SSE stream")
	}
	cancel() // disconnect client; handler must return
}
