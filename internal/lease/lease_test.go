package lease

import (
	"errors"
	"testing"
	"time"

	"bifrost/internal/clock"
)

func openTestStore(t *testing.T) (*Store, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual(time.Unix(1700000000, 0))
	s, err := Open(t.TempDir(), WithClock(clk))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, clk
}

func TestAcquireRenewRelease(t *testing.T) {
	s, clk := openTestStore(t)

	rec, err := s.Acquire("canary-1", "engine-a", time.Minute)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if rec.Token != 1 || rec.Holder != "engine-a" {
		t.Fatalf("unexpected first lease: %+v", rec)
	}

	// A rival cannot claim a live lease.
	if _, err := s.Acquire("canary-1", "engine-b", time.Minute); !errors.Is(err, ErrHeld) {
		t.Fatalf("rival Acquire = %v, want ErrHeld", err)
	}

	// The holder renews; expiry moves forward, token stays.
	clk.Advance(30 * time.Second)
	renewed, err := s.Renew("canary-1", "engine-a", rec.Token, time.Minute)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if renewed.Token != rec.Token {
		t.Fatalf("Renew changed token: %d -> %d", rec.Token, renewed.Token)
	}
	if !renewed.Expires.After(rec.Expires) {
		t.Fatalf("Renew did not extend expiry: %v !> %v", renewed.Expires, rec.Expires)
	}

	// Release lets a rival in immediately, with a higher token.
	if err := s.Release("canary-1", "engine-a", rec.Token); err != nil {
		t.Fatalf("Release: %v", err)
	}
	stolen, err := s.Acquire("canary-1", "engine-b", time.Minute)
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	if stolen.Token <= rec.Token {
		t.Fatalf("token did not advance across owners: %d -> %d", rec.Token, stolen.Token)
	}
}

func TestStealExpiredLease(t *testing.T) {
	s, clk := openTestStore(t)

	orig, err := s.Acquire("run", "engine-a", time.Minute)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.Advance(61 * time.Second)

	stolen, err := s.Acquire("run", "engine-b", time.Minute)
	if err != nil {
		t.Fatalf("steal: %v", err)
	}
	if stolen.Token != orig.Token+1 {
		t.Fatalf("steal token = %d, want %d", stolen.Token, orig.Token+1)
	}

	// The dead owner's renew and release must both fail now.
	if _, err := s.Renew("run", "engine-a", orig.Token, time.Minute); !errors.Is(err, ErrLost) {
		t.Fatalf("zombie Renew = %v, want ErrLost", err)
	}
	if err := s.Release("run", "engine-a", orig.Token); !errors.Is(err, ErrLost) {
		t.Fatalf("zombie Release = %v, want ErrLost", err)
	}
}

func TestReacquireBySameHolderBumpsToken(t *testing.T) {
	s, _ := openTestStore(t)
	first, err := s.Acquire("run", "engine-a", time.Minute)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// A restarted incarnation of the same holder re-claims mid-TTL; the new
	// token must fence the old incarnation's journal writer.
	second, err := s.Acquire("run", "engine-a", time.Minute)
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if second.Token != first.Token+1 {
		t.Fatalf("re-acquire token = %d, want %d", second.Token, first.Token+1)
	}
	if _, err := s.Renew("run", "engine-a", first.Token, time.Minute); !errors.Is(err, ErrLost) {
		t.Fatalf("old-incarnation Renew = %v, want ErrLost", err)
	}
}

func TestGetAndList(t *testing.T) {
	s, clk := openTestStore(t)
	if _, ok, err := s.Get("nope"); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
	for _, run := range []string{"b-run", "a-run", "weird/name with spaces"} {
		if _, err := s.Acquire(run, "engine-a", time.Minute); err != nil {
			t.Fatalf("Acquire(%s): %v", run, err)
		}
	}
	recs, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("List = %d records, want 3", len(recs))
	}
	if recs[0].Run != "a-run" || recs[1].Run != "b-run" || recs[2].Run != "weird/name with spaces" {
		t.Fatalf("List order/decoding wrong: %+v", recs)
	}
	rec, ok, err := s.Get("weird/name with spaces")
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v", ok, err)
	}
	if rec.Expired(clk.Now()) {
		t.Fatalf("fresh lease reported expired")
	}
}

func TestTokensPersistAcrossStoreReopen(t *testing.T) {
	clk := clock.NewManual(time.Unix(1700000000, 0))
	dir := t.TempDir()
	s1, err := Open(dir, WithClock(clk))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec, err := s1.Acquire("run", "engine-a", time.Minute)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.Advance(2 * time.Minute)
	s2, err := Open(dir, WithClock(clk))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stolen, err := s2.Acquire("run", "engine-b", time.Minute)
	if err != nil {
		t.Fatalf("steal after reopen: %v", err)
	}
	if stolen.Token != rec.Token+1 {
		t.Fatalf("token sequence broke across reopen: %d -> %d", rec.Token, stolen.Token)
	}
}
