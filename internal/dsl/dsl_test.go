package dsl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeQuerier returns canned values per query.
type fakeQuerier struct {
	values map[string]float64
	calls  int
}

func (f *fakeQuerier) Query(_ context.Context, expr string) (float64, error) {
	f.calls++
	v, ok := f.values[expr]
	if !ok {
		return 0, errors.New("no data")
	}
	return v, nil
}

const productStrategy = `
name: product-release
deployment:
  services:
    - service: product
      proxy: 127.0.0.1:8081
      versions:
        - name: product
          endpoint: 127.0.0.1:9001
        - name: productA
          endpoint: 127.0.0.1:9002
        - name: productB
          endpoint: 127.0.0.1:9003
providers:
  prometheus: http://127.0.0.1:9090
strategy:
  start: canary
  phases:
    - phase: canary
      description: canary launch for A and B
      duration: 60s
      routes:
        - route:
            service: product
            weights: {product: 90, productA: 5, productB: 5}
      checks:
        - metric:
            name: a_errors
            provider: prometheus
            query: request_errors{version="productA"}
            intervalTime: 12
            intervalLimit: 5
            threshold: 5
            validator: "<5"
        - metric:
            name: b_errors
            query: request_errors{version="productB"}
            intervalTime: 12
            intervalLimit: 5
            validator: "<5"
      on:
        success: darklaunch
        failure: rollback
    - phase: darklaunch
      duration: 60s
      routes:
        - route:
            service: product
            weights: {product: 100}
            shadows:
              - target: productA
                percent: 100
              - target: productB
                percent: 100
      on:
        success: abtest
        failure: rollback
    - phase: abtest
      duration: 60s
      routes:
        - route:
            service: product
            weights: {productA: 50, productB: 50}
            sticky: true
      checks:
        - metric:
            name: sales_compare
            query: sales{version="productA"} - sales{version="productB"}
            intervalLimit: 1
            validator: ">=0"
      thresholds: [0]
      transitions: [rollout-b, rollout-a]
    - phase: rollout-a
      gradual:
        service: product
        stable: product
        candidate: productA
        from: 5
        to: 100
        step: 5
        interval: 10s
      on:
        success: done
        failure: rollback
    - phase: rollout-b
      gradual:
        service: product
        stable: product
        candidate: productB
        from: 5
        to: 100
        step: 5
        interval: 10s
      on:
        success: done
        failure: rollback
    - phase: done
      routes:
        - route:
            service: product
            weights: {productA: 50, productB: 50}
    - phase: rollback
      routes:
        - route:
            service: product
            weights: {product: 100}
`

func testCompiler() (*Compiler, *fakeQuerier) {
	fq := &fakeQuerier{values: map[string]float64{
		`request_errors{version="productA"}`:                    0,
		`request_errors{version="productB"}`:                    0,
		`sales{version="productA"} - sales{version="productB"}`: 3,
	}}
	return &Compiler{Providers: map[string]Querier{"prometheus": fq}}, fq
}

// TestDeploymentProxiesList covers the fleet syntax: `proxies:` compiles
// to Service.ProxyURLs, coexists with the `proxy:` single-replica
// shorthand on other services, and declaring both on one service is
// rejected — as are duplicate replicas.
func TestDeploymentProxiesList(t *testing.T) {
	const src = `
name: fleet
deployment:
  services:
    - service: shop
      proxies: [127.0.0.1:8081, 127.0.0.1:8082, 127.0.0.1:8083]
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
strategy:
  phases:
    - phase: hold
      duration: 1m
      routes:
        - route:
            service: shop
            weights: {stable: 100}
      on:
        success: done
    - phase: done
`
	s, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	want := []string{"127.0.0.1:8081", "127.0.0.1:8082", "127.0.0.1:8083"}
	got := s.Services[0].ProxyEndpoints()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("ProxyEndpoints = %v, want %v", got, want)
	}
	if s.Services[0].ProxyURL != "" {
		t.Errorf("ProxyURL = %q, want empty with proxies list", s.Services[0].ProxyURL)
	}

	both := strings.Replace(src, "proxies: [127.0.0.1:8081, 127.0.0.1:8082, 127.0.0.1:8083]",
		"proxy: 127.0.0.1:8080\n      proxies: [127.0.0.1:8081]", 1)
	if _, err := Compile(both); err == nil || !strings.Contains(err.Error(), "not both") {
		t.Errorf("proxy+proxies compiled, err = %v", err)
	}

	dup := strings.Replace(src, "127.0.0.1:8082, 127.0.0.1:8083",
		"127.0.0.1:8081, 127.0.0.1:8083", 1)
	if _, err := Compile(dup); err == nil || !strings.Contains(err.Error(), "duplicate proxy replica") {
		t.Errorf("duplicate replicas compiled, err = %v", err)
	}
}

func TestCompileProductStrategy(t *testing.T) {
	c, _ := testCompiler()
	s, err := c.Compile(productStrategy)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if s.Name != "product-release" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.Services) != 1 || s.Services[0].Name != "product" {
		t.Fatalf("services = %+v", s.Services)
	}
	if len(s.Services[0].Versions) != 3 {
		t.Errorf("versions = %d", len(s.Services[0].Versions))
	}
	if s.Services[0].ProxyURL != "127.0.0.1:8081" {
		t.Errorf("proxy = %q", s.Services[0].ProxyURL)
	}
	if s.Automaton.Start != "canary" {
		t.Errorf("start = %q", s.Automaton.Start)
	}

	// 3 explicit + 2×20 gradual + done + rollback = 45 states.
	if len(s.Automaton.States) != 45 {
		t.Errorf("states = %d, want 45", len(s.Automaton.States))
	}
	if len(s.Automaton.Finals) != 2 {
		t.Errorf("finals = %v", s.Automaton.Finals)
	}

	canary, ok := s.Automaton.State("canary")
	if !ok {
		t.Fatal("canary state missing")
	}
	if canary.Duration != 60*time.Second {
		t.Errorf("duration = %v", canary.Duration)
	}
	if len(canary.Checks) != 2 {
		t.Fatalf("canary checks = %d", len(canary.Checks))
	}
	ch := canary.Checks[0]
	if ch.Interval != 12*time.Second || ch.Executions != 5 {
		t.Errorf("check timer = %v × %d", ch.Interval, ch.Executions)
	}
	// threshold 5 → thresholds [4], outputs [0,1].
	if len(ch.Thresholds) != 1 || ch.Thresholds[0] != 4 {
		t.Errorf("check thresholds = %v", ch.Thresholds)
	}
	// Success sugar: 2 basic checks × weight 1 → threshold [1].
	if len(canary.Thresholds) != 1 || canary.Thresholds[0] != 1 {
		t.Errorf("canary thresholds = %v", canary.Thresholds)
	}
	if canary.Transitions[0] != "rollback" || canary.Transitions[1] != "darklaunch" {
		t.Errorf("canary transitions = %v", canary.Transitions)
	}

	dark, _ := s.Automaton.State("darklaunch")
	if len(dark.Routing) != 1 || len(dark.Routing[0].Shadows) != 2 {
		t.Fatalf("dark routing = %+v", dark.Routing)
	}
	if dark.Routing[0].Shadows[0].Percent != 100 {
		t.Errorf("shadow percent = %v", dark.Routing[0].Shadows[0].Percent)
	}

	ab, _ := s.Automaton.State("abtest")
	if !ab.Routing[0].Sticky {
		t.Error("abtest not sticky")
	}
	if ab.Transitions[0] != "rollout-b" || ab.Transitions[1] != "rollout-a" {
		t.Errorf("ab transitions = %v", ab.Transitions)
	}
	if ab.Checks[0].Interval != 0 || ab.Checks[0].Executions != 1 {
		t.Errorf("ab check = %+v (want single end-of-state execution)", ab.Checks[0])
	}

	// Gradual expansion: rollout-a alias + rollout-a-10 … rollout-a-100.
	first, ok := s.Automaton.State("rollout-a")
	if !ok {
		t.Fatal("rollout-a missing")
	}
	if first.Routing[0].Weights["productA"] != 5 {
		t.Errorf("first step weights = %v", first.Routing[0].Weights)
	}
	if first.Transitions[0] != "rollout-a-10" {
		t.Errorf("first step transitions = %v", first.Transitions)
	}
	last, ok := s.Automaton.State("rollout-a-100")
	if !ok {
		t.Fatal("rollout-a-100 missing")
	}
	if last.Routing[0].Weights["productA"] != 100 || last.Routing[0].Weights["product"] != 0 {
		t.Errorf("last step weights = %v", last.Routing[0].Weights)
	}
	if last.Transitions[len(last.Transitions)-1] != "done" {
		t.Errorf("last step transitions = %v", last.Transitions)
	}
	mid, ok := s.Automaton.State("rollout-a-55")
	if !ok {
		t.Fatal("rollout-a-55 missing")
	}
	if mid.Duration != 10*time.Second {
		t.Errorf("step duration = %v", mid.Duration)
	}
}

func TestCompiledEvaluatorQueriesProvider(t *testing.T) {
	c, fq := testCompiler()
	s, err := c.Compile(productStrategy)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	canary, _ := s.Automaton.State("canary")
	ok, err := canary.Checks[0].Eval.Evaluate(context.Background())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !ok {
		t.Error("0 errors should satisfy <5")
	}
	if fq.calls != 1 {
		t.Errorf("querier calls = %d", fq.calls)
	}

	// Failing validator.
	fq.values[`request_errors{version="productA"}`] = 10
	ok, err = canary.Checks[0].Eval.Evaluate(context.Background())
	if err != nil || ok {
		t.Errorf("10 errors: ok=%v err=%v, want false,nil", ok, err)
	}

	// Missing data surfaces as an error.
	delete(fq.values, `request_errors{version="productA"}`)
	if _, err := canary.Checks[0].Eval.Evaluate(context.Background()); err == nil {
		t.Error("missing data did not error")
	}
}

const paperListingStrategy = `
name: fastsearch-darklaunch
deployment:
  services:
    - service: search
      proxy: 127.0.0.1:8091
      versions:
        - name: search
          endpoint: 127.0.0.1:9101
        - name: fastSearch
          endpoint: 127.0.0.1:9102
providers:
  prometheus: http://127.0.0.1:9090
strategy:
  phases:
    - phase: dark
      duration: 60s
      routes:
        - route:
            from: search
            to: fastSearch
            filters:
              - traffic:
                  percentage: 100
                  shadow: true
                  intervalTime: 60
      checks:
        - metric:
            providers:
              - prometheus:
                  name: search_error
                  query: request_errors{instance="search:80"}
            name: search_error
            intervalTime: 5
            intervalLimit: 12
            threshold: 12
            validator: "<5"
      on:
        success: finish
        failure: abort
    - phase: finish
      routes:
        - route:
            service: search
            weights: {search: 0, fastSearch: 100}
    - phase: abort
      routes:
        - route:
            service: search
            weights: {search: 100}
`

func TestCompilePaperListings(t *testing.T) {
	fq := &fakeQuerier{values: map[string]float64{
		`request_errors{instance="search:80"}`: 2,
	}}
	c := &Compiler{Providers: map[string]Querier{"prometheus": fq}}
	s, err := c.Compile(paperListingStrategy)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	dark, ok := s.Automaton.State("dark")
	if !ok {
		t.Fatal("dark state missing")
	}
	// Listing 2: all traffic stays on search, 100% duplicated to fastSearch.
	rc := dark.Routing[0]
	if rc.Service != "search" {
		t.Errorf("service = %q", rc.Service)
	}
	if rc.Weights["search"] != 100 {
		t.Errorf("weights = %v", rc.Weights)
	}
	if len(rc.Shadows) != 1 || rc.Shadows[0].Target != "fastSearch" || rc.Shadows[0].Percent != 100 {
		t.Errorf("shadows = %+v", rc.Shadows)
	}
	// Listing 1: 12 executions every 5 seconds, all must pass.
	ch := dark.Checks[0]
	if ch.Name != "search_error" {
		t.Errorf("check name = %q", ch.Name)
	}
	if ch.Interval != 5*time.Second || ch.Executions != 12 {
		t.Errorf("timer = %v × %d", ch.Interval, ch.Executions)
	}
	if len(ch.Thresholds) != 1 || ch.Thresholds[0] != 11 {
		t.Errorf("thresholds = %v (threshold 12 → range bound 11)", ch.Thresholds)
	}
	ok2, err := ch.Eval.Evaluate(context.Background())
	if err != nil || !ok2 {
		t.Errorf("evaluate = %v, %v", ok2, err)
	}
}

func TestCompileErrorsAreAggregated(t *testing.T) {
	src := `
name: broken
deployment:
  services:
    - service: s1
      versions:
        - name: v1
          endpoint: 127.0.0.1:1
strategy:
  phases:
    - phase: p1
      checks:
        - metric:
            name: m1
            provider: nope
            query: x
            validator: "<<bad"
      on:
        success: ghost-phase
`
	c, _ := testCompiler()
	_, err := c.Compile(src)
	if err == nil {
		t.Fatal("broken strategy compiled")
	}
	var cerr *CompileError
	if errors.As(err, &cerr) {
		if len(cerr.Problems) < 2 {
			t.Errorf("problems = %v, want ≥ 2", cerr.Problems)
		}
	}
	// Validation errors (unknown transition target) also surface.
	if !strings.Contains(err.Error(), "nope") && !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error lacks detail: %v", err)
	}
}

func TestCompileRejectsUnknownFields(t *testing.T) {
	src := strings.Replace(productStrategy, "duration: 60s", "duraton: 60s", 1)
	c, _ := testCompiler()
	_, err := c.Compile(src)
	if err == nil {
		t.Fatal("typo field accepted")
	}
	if !strings.Contains(err.Error(), "duraton") {
		t.Errorf("error does not name the typo: %v", err)
	}
}

func TestCompileMissingSections(t *testing.T) {
	cases := []string{
		"",        // empty
		"name: x", // no deployment/strategy
		"name: x\ndeployment:\n  services: []\nstrategy:\n  phases: []",
	}
	c, _ := testCompiler()
	for _, src := range cases {
		if _, err := c.Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestDurationForms(t *testing.T) {
	src := `
name: durations
deployment:
  services:
    - service: s
      versions:
        - name: a
          endpoint: h:1
        - name: b
          endpoint: h:2
strategy:
  phases:
    - phase: p1
      duration: 90
      routes:
        - route:
            service: s
            weights: {a: 50, b: 50}
      on:
        success: p2
    - phase: p2
      duration: 1500ms
      routes:
        - route:
            service: s
            weights: {a: 100}
`
	s, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p1, _ := s.Automaton.State("p1")
	if p1.Duration != 90*time.Second {
		t.Errorf("p1 duration = %v, want 90s (bare number = seconds)", p1.Duration)
	}
	p2, _ := s.Automaton.State("p2")
	if p2.Duration != 1500*time.Millisecond {
		t.Errorf("p2 duration = %v", p2.Duration)
	}
}

func TestImplicitSuccessorAndFinals(t *testing.T) {
	src := `
name: implicit
deployment:
  services:
    - service: s
      versions:
        - name: a
          endpoint: h:1
strategy:
  phases:
    - phase: first
      duration: 1s
      routes:
        - route:
            service: s
            weights: {a: 100}
      on: {}
    - phase: second
      routes:
        - route:
            service: s
            weights: {a: 100}
`
	s, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	first, _ := s.Automaton.State("first")
	if len(first.Transitions) != 1 || first.Transitions[0] != "second" {
		t.Errorf("first transitions = %v (implicit successor)", first.Transitions)
	}
	if len(s.Automaton.Finals) != 1 || s.Automaton.Finals[0] != "second" {
		t.Errorf("finals = %v", s.Automaton.Finals)
	}
}

func TestGradualStepCount(t *testing.T) {
	for _, tc := range []struct {
		from, to, step float64
		want           int
	}{
		{5, 100, 5, 20},
		{10, 100, 10, 10},
		{50, 50, 5, 1},
		{5, 100, 30, 4}, // 5, 35, 65, 95→clamped 100? (5,35,65,95, then 100)
	} {
		src := fmt.Sprintf(`
name: g
deployment:
  services:
    - service: s
      versions:
        - name: old
          endpoint: h:1
        - name: new
          endpoint: h:2
strategy:
  phases:
    - phase: roll
      gradual:
        service: s
        stable: old
        candidate: new
        from: %g
        to: %g
        step: %g
        interval: 1s
      on:
        success: done
    - phase: done
      routes:
        - route:
            service: s
            weights: {new: 100}
`, tc.from, tc.to, tc.step)
		s, err := Compile(src)
		if err != nil {
			t.Fatalf("Compile(%+v): %v", tc, err)
		}
		steps := 0
		for _, st := range s.Automaton.States {
			if st.ID == "roll" || strings.HasPrefix(st.ID, "roll-") {
				steps++
			}
		}
		if tc.want == 4 {
			// 5,35,65,95 then clamp adds 100 → 5 states.
			tc.want = 5
		}
		if steps != tc.want {
			t.Errorf("from=%g to=%g step=%g: steps = %d, want %d",
				tc.from, tc.to, tc.step, steps, tc.want)
		}
	}
}
