package engine

import (
	"sync"
	"time"

	"bifrost/internal/core"
)

// EventType classifies engine events.
type EventType string

// Engine event types, published on the event bus and shown by the CLI and
// dashboard.
const (
	// EventScheduled marks a strategy entering the engine (Enact accepted
	// it); the run journal stores the strategy source alongside it.
	EventScheduled      EventType = "scheduled"
	EventStateEntered   EventType = "state_entered"
	EventRoutingApplied EventType = "routing_applied"
	// EventRoutingConverged marks every proxy replica of a service
	// reporting the run's current routing generation again after a
	// degradation; EventRoutingDegraded marks one or more replicas lagging
	// or unreachable (the reconciler keeps re-pushing until they return).
	EventRoutingConverged   EventType = "routing_converged"
	EventRoutingDegraded    EventType = "routing_degraded"
	EventCheckExecuted      EventType = "check_executed"
	EventExceptionTriggered EventType = "exception_triggered"
	// EventCheckConcluded marks a sequential check reaching a decision
	// before the state timer: the state ends early and either δ fires or
	// the check's fallback is taken.
	EventCheckConcluded EventType = "check_concluded"
	// EventBurnRateTriggered marks a burnrate check detecting SLO
	// error-budget burn in both of its windows; the run transitions to
	// the check's fallback state (automatic rollback).
	EventBurnRateTriggered EventType = "burnrate_triggered"
	EventTransition        EventType = "transition"
	EventPaused            EventType = "paused"
	EventResumed           EventType = "resumed"
	EventGateDecision      EventType = "gate_decision"
	EventCompleted         EventType = "completed"
	EventAborted           EventType = "aborted"
	EventError             EventType = "error"
	// EventRecovered marks a run resuming after an engine restart: the
	// journal was replayed and the automaton continues from its recorded
	// state with elapsed-in-state time preserved.
	EventRecovered EventType = "recovered"
	// EventRemoved marks a finished run being forgotten (Engine.Remove);
	// journaled so restarts do not resurrect the run's history.
	EventRemoved EventType = "removed"
	// EventChildScheduled, EventChildUpdate, and EventChildTerminal are the
	// child-linkage events of hierarchical rollouts, journaled into the
	// PARENT's partition: a parent run entering a sub-rollout state
	// schedules one child run per region and mirrors their progress here,
	// so the region tree is reduced into the parent's Status.Children both
	// live and on journal replay. The quorum decision itself is a normal
	// transition event (Cause "quorum", "quorum_failed", or
	// "child_failure").
	EventChildScheduled EventType = "child_scheduled"
	EventChildUpdate    EventType = "child_update"
	EventChildTerminal  EventType = "child_terminal"
	// EventEventsDropped is a per-stream marker (never journaled as part of
	// a run): the SSE client's Last-Event-ID points before the retained
	// history, so a gap could not be replayed.
	EventEventsDropped EventType = "events_dropped"
)

// Event is one observable engine occurrence.
type Event struct {
	Seq      int64     `json:"seq"`
	Strategy string    `json:"strategy"`
	Type     EventType `json:"type"`
	State    string    `json:"state,omitempty"`
	Check    string    `json:"check,omitempty"`
	// Detail is type-specific: transition target, routing service,
	// exception fallback, or error text.
	Detail  string `json:"detail,omitempty"`
	Outcome int    `json:"outcome,omitempty"`
	// Cause labels transition events like Transition.Cause: empty for δ,
	// "exception", "burnrate", "sequential", "promote", "rollback".
	Cause string `json:"cause,omitempty"`
	// PauseGen is the pause generation announced by paused events; a
	// conditional resume must present it.
	PauseGen int `json:"pauseGen,omitempty"`
	// Elapsed is the preserved elapsed-in-state time announced by
	// recovered events, so the journal's reduction backdates the state
	// entry exactly like the live run does — keeping the invariant across
	// any number of restarts.
	Elapsed time.Duration `json:"elapsed,omitempty"`
	// Active is the run's cumulative active wall time before this
	// recovery (recovered events only): delay accounting resumes from it,
	// excluding every restart's downtime.
	Active time.Duration `json:"active,omitempty"`
	// Generation is the proxy config generation of routing_applied,
	// routing_converged, and routing_degraded events; recovery restores
	// the engine's generation counter from it so re-applied configs are
	// not rejected as stale by surviving proxies.
	Generation int64 `json:"generation,omitempty"`
	// Service, Replicas, and Acked describe fleet convergence on
	// routing_converged and routing_degraded events: the affected
	// service, its fleet size, and how many replicas run Generation.
	// Lagging names the replicas behind Generation (degraded only), so
	// status reduced from events identifies them across restarts.
	Service  string   `json:"service,omitempty"`
	Replicas int      `json:"replicas,omitempty"`
	Acked    int      `json:"acked,omitempty"`
	Lagging  []string `json:"lagging,omitempty"`
	// Child, Region, ChildState, and ChildPhase describe one sub-rollout
	// child on child_scheduled / child_update / child_terminal events: the
	// child run's name, its region label, its run state, and the automaton
	// state it is in. On child_terminal, Outcome is 1 when the child passed
	// (completed in its success final) and 0 otherwise.
	Child      string `json:"child,omitempty"`
	Region     string `json:"region,omitempty"`
	ChildState string `json:"childState,omitempty"`
	ChildPhase string `json:"childPhase,omitempty"`
	// Verdict carries the statistical result of check_executed,
	// check_concluded, and burnrate_triggered events for compare,
	// sequential, and burnrate checks.
	Verdict *core.Verdict `json:"verdict,omitempty"`
	Time    time.Time     `json:"time"`
}

// eventBus fans events out to subscribers and keeps a bounded replay
// buffer for the status API.
type eventBus struct {
	mu   sync.Mutex
	seq  int64
	ring []Event
	next int
	full bool
	subs map[int]chan Event
	// frameSubs receive the pooled encode-once frames instead of Event
	// copies: the SSE fan-out path subscribes here so each delivery is one
	// pointer send and the pre-encoded bytes are shared by every stream.
	frameSubs map[int]chan *frame
	subSeq    int
	closed    bool
}

func newEventBus(ringSize int) *eventBus {
	return &eventBus{
		ring:      make([]Event, ringSize),
		subs:      make(map[int]chan Event),
		frameSubs: make(map[int]chan *frame),
	}
}

// stamp assigns the next sequence number and inserts the event into the
// replay ring WITHOUT fanning it out. The publish pipeline journals the
// stamped event between stamp and fanout, so with write-through flushing a
// subscriber never observes an event a crash could still unwind.
func (b *eventBus) stamp(ev Event) Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ev
	}
	b.seq++
	ev.Seq = b.seq
	b.ring[b.next] = ev
	b.next = (b.next + 1) % len(b.ring)
	if b.next == 0 {
		b.full = true
	}
	return ev
}

// fanout delivers a stamped frame to subscribers: Event copies to classic
// channels, retained frame pointers to frame channels. It consumes the
// caller's reference.
func (b *eventBus) fanout(f *frame) {
	b.mu.Lock()
	for _, ch := range b.subs {
		select {
		case ch <- f.ev:
		default: // slow subscriber: drop; ServeEventStream backfills from the ring
		}
	}
	for _, ch := range b.frameSubs {
		f.retain()
		select {
		case ch <- f:
		default:
			// Slow subscriber: drop the delivery (and its reference);
			// ServeEventStream backfills the gap from retained history.
			f.release()
		}
	}
	b.mu.Unlock()
	f.release()
}

// restore replays a journaled event into the ring during recovery, without
// fanning it out, and advances the sequence counter so new events continue
// the pre-restart numbering (SSE Last-Event-ID stays valid across restarts).
func (b *eventBus) restore(ev Event) {
	b.mu.Lock()
	if ev.Seq > b.seq {
		b.seq = ev.Seq
	}
	b.ring[b.next] = ev
	b.next = (b.next + 1) % len(b.ring)
	if b.next == 0 {
		b.full = true
	}
	b.mu.Unlock()
}

// setSeq fast-forwards the sequence counter (recovery from a snapshot whose
// events are no longer individually available).
func (b *eventBus) setSeq(seq int64) {
	b.mu.Lock()
	if seq > b.seq {
		b.seq = seq
	}
	b.mu.Unlock()
}

// currentSeq returns the sequence number of the newest published event.
func (b *eventBus) currentSeq() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// since returns the buffered events with Seq > afterSeq, oldest first, and
// whether events in that range were already evicted from the ring (the gap
// exceeds retention and cannot be fully replayed).
func (b *eventBus) since(afterSeq int64) ([]Event, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.full {
		size = len(b.ring)
	}
	start := b.next - size
	if start < 0 {
		start += len(b.ring)
	}
	var out []Event
	for i := 0; i < size; i++ {
		ev := b.ring[(start+i)%len(b.ring)]
		if ev.Seq > afterSeq {
			out = append(out, ev)
		}
	}
	var oldest int64
	if size > 0 {
		oldest = b.ring[start%len(b.ring)].Seq
	} else {
		// Empty ring: everything up to the current counter is gone.
		oldest = b.seq + 1
	}
	dropped := oldest > afterSeq+1
	return out, dropped
}

func (b *eventBus) subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := b.subSeq
	b.subSeq++
	b.subs[id] = ch
	b.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[id]; ok {
				delete(b.subs, id)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// subscribeFrames is subscribe for the encode-once frame path. Receivers
// must release every frame they take from the channel.
func (b *eventBus) subscribeFrames(buffer int) (<-chan *frame, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan *frame, buffer)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := b.subSeq
	b.subSeq++
	b.frameSubs[id] = ch
	b.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.frameSubs[id]; ok {
				delete(b.frameSubs, id)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

func (b *eventBus) recent(n int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.full {
		size = len(b.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	start := b.next - n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

func (b *eventBus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
	for id, ch := range b.frameSubs {
		delete(b.frameSubs, id)
		close(ch)
	}
}
