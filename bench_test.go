// Benchmarks regenerating the paper's evaluation (§5): one benchmark per
// table and figure, plus ablation benches for the design decisions called
// out in DESIGN.md. The macro benches run compressed phase plans (seconds
// instead of minutes) and report the paper's metrics as custom units:
//
//	Table 1 / Figure 6:  proxy overhead in ms (active vs baseline means)
//	Figures 7 & 8:       engine CPU % and enactment delay vs N strategies
//	Figures 9 & 10:      engine CPU % and enactment delay vs N checks
//
// Full paper-scale runs (with figure series printed) live in
// cmd/benchrunner; EXPERIMENTS.md records paper-vs-measured numbers.
package bifrost

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/dsl"
	"bifrost/internal/engine"
	"bifrost/internal/experiments"
	"bifrost/internal/loadgen"
	"bifrost/internal/metrics"
	"bifrost/internal/proxy"
	"bifrost/internal/yaml"
)

// benchPlan compresses the §5.1 schedule enough for iterated benchmarks.
func benchPlan() experiments.PhasePlan {
	return experiments.PhasePlan{
		Canary: 1200 * time.Millisecond, Dark: 1200 * time.Millisecond,
		AB:          1200 * time.Millisecond,
		RolloutStep: 150 * time.Millisecond, RolloutStepPct: 25,
		CheckInterval: 300 * time.Millisecond, CheckCount: 3,
	}
}

// BenchmarkTable1ResponseTimes reproduces Table 1: per-phase response time
// statistics for baseline / inactive / active. One benchmark iteration is
// one full three-variation experiment; the headline metrics are reported
// as ms_baseline / ms_inactive / ms_active and overhead_ms.
func BenchmarkTable1ResponseTimes(b *testing.B) {
	cfg := experiments.EndUserConfig{
		Plan: benchPlan(), RPS: 30, RampUp: time.Second, Users: 10, Seed: 7,
	}
	for i := 0; i < b.N; i++ {
		t1, err := experiments.RunTable1(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		means := map[experiments.Variation]float64{}
		for v, r := range t1.Results {
			var sum float64
			var n int
			for _, p := range r.Phases {
				if p.Stats.Count > 0 {
					sum += p.Stats.Mean
					n++
				}
			}
			if n > 0 {
				means[v] = sum / float64(n)
			}
		}
		b.ReportMetric(means[experiments.Baseline], "ms_baseline")
		b.ReportMetric(means[experiments.Inactive], "ms_inactive")
		b.ReportMetric(means[experiments.Active], "ms_active")
		b.ReportMetric(means[experiments.Active]-means[experiments.Baseline], "overhead_ms")
	}
}

// BenchmarkFigure6EndUserOverhead reproduces Figure 6's active variation:
// the moving-average response time during the four-phase strategy. The
// per-phase means are reported so the dark-launch bump and A/B dip are
// visible in benchmark output.
func BenchmarkFigure6EndUserOverhead(b *testing.B) {
	cfg := experiments.EndUserConfig{
		Plan: benchPlan(), RPS: 30, RampUp: time.Second, Users: 10, Seed: 11,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEndUser(context.Background(), experiments.Active, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Phases {
			switch p.Phase {
			case "Canary":
				b.ReportMetric(p.Stats.Mean, "ms_canary")
			case "Dark Launch":
				b.ReportMetric(p.Stats.Mean, "ms_dark")
			case "A/B Test":
				b.ReportMetric(p.Stats.Mean, "ms_ab")
			case "Gradual Rollout":
				b.ReportMetric(p.Stats.Mean, "ms_rollout")
			}
		}
	}
}

// BenchmarkFigure7ParallelStrategies reproduces Figure 7 (engine CPU vs
// parallel strategies) at a single representative N per run; sweep with
// cmd/benchrunner for the full curve.
func BenchmarkFigure7ParallelStrategies(b *testing.B) {
	for _, n := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("strategies-%d", n), func(b *testing.B) {
			plan := experiments.PhasePlan{
				Canary: time.Second, Dark: time.Second, AB: time.Second,
				RolloutStep: 200 * time.Millisecond, RolloutStepPct: 50,
				CheckInterval: 250 * time.Millisecond, CheckCount: 3,
			}
			for i := 0; i < b.N; i++ {
				points, err := experiments.RunParallelStrategies(context.Background(),
					experiments.ParallelStrategiesConfig{Counts: []int{n}, Plan: plan})
				if err != nil {
					b.Fatal(err)
				}
				p := points[0]
				if p.Failed > 0 {
					b.Fatalf("%d runs failed", p.Failed)
				}
				b.ReportMetric(p.CPU.Median, "cpu_median_%")
				b.ReportMetric(p.DelayMeanSeconds*1000, "delay_ms")
			}
		})
	}
}

// BenchmarkFigure8EnactmentDelay reproduces Figure 8: the per-strategy
// enactment delay as parallelism grows (same sweep, delay-focused metric).
func BenchmarkFigure8EnactmentDelay(b *testing.B) {
	plan := experiments.PhasePlan{
		Canary: 800 * time.Millisecond, Dark: 800 * time.Millisecond,
		AB:          800 * time.Millisecond,
		RolloutStep: 200 * time.Millisecond, RolloutStepPct: 50,
		CheckInterval: 200 * time.Millisecond, CheckCount: 3,
	}
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunParallelStrategies(context.Background(),
			experiments.ParallelStrategiesConfig{Counts: []int{8}, Plan: plan})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].DelayMeanSeconds*1000, "delay_mean_ms")
		b.ReportMetric(points[0].DelaySDSeconds*1000, "delay_sd_ms")
	}
}

// BenchmarkFigure9ParallelChecks reproduces Figure 9: engine CPU vs number
// of parallel checks (8·n checks per phase).
func BenchmarkFigure9ParallelChecks(b *testing.B) {
	for _, n := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("checks-%d", 8*n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiments.RunParallelChecks(context.Background(),
					experiments.ParallelChecksConfig{
						GroupCounts:   []int{n},
						PhaseDuration: 1200 * time.Millisecond,
						CheckInterval: 300 * time.Millisecond,
					})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(points[0].CPU.Median, "cpu_median_%")
			}
		})
	}
}

// BenchmarkFigure10CheckDelay reproduces Figure 10: enactment delay of a
// single strategy as its parallel check count grows.
func BenchmarkFigure10CheckDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunParallelChecks(context.Background(),
			experiments.ParallelChecksConfig{
				GroupCounts:   []int{8}, // 64 checks
				PhaseDuration: 1200 * time.Millisecond,
				CheckInterval: 300 * time.Millisecond,
			})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].DelayMeanSeconds*1000, "delay_ms")
	}
}

// --- Micro and ablation benchmarks -----------------------------------------

func benchBackends(b *testing.B, n int) []proxy.Backend {
	b.Helper()
	backends := make([]proxy.Backend, 0, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write([]byte("ok"))
			}))
		b.Cleanup(srv.Close)
		backends = append(backends, proxy.Backend{
			Version: fmt.Sprintf("v%d", i), URL: srv.URL, Weight: 1,
		})
	}
	return backends
}

// BenchmarkProxyForwarding measures the per-request cost of one proxy hop —
// the mechanism behind the paper's 8 ms overhead claim.
func BenchmarkProxyForwarding(b *testing.B) {
	backends := benchBackends(b, 2)
	p, err := proxy.New("bench", proxy.Config{
		Service: "bench", Generation: 1, Backends: backends,
	}, proxy.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	client := front.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(front.URL + "/x")
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkAblationCookieVsHeaderRouting quantifies the paper's remark that
// "cookie-based routing ... is generally slower than a header-based routing
// would be".
func BenchmarkAblationCookieVsHeaderRouting(b *testing.B) {
	for _, mode := range []string{"cookie", "header"} {
		b.Run(mode, func(b *testing.B) {
			backends := benchBackends(b, 2)
			cfg := proxy.Config{
				Service: "bench", Generation: 1, Backends: backends, Sticky: mode == "cookie",
			}
			if mode == "header" {
				cfg.Mode = "header"
				cfg.Header = "X-Group"
			}
			p, err := proxy.New("bench", cfg, proxy.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			front := httptest.NewServer(p)
			defer front.Close()

			req, _ := http.NewRequest(http.MethodGet, front.URL+"/x", nil)
			if mode == "header" {
				req.Header.Set("X-Group", "v0")
			} else {
				req.AddCookie(&http.Cookie{Name: proxy.CookieName,
					Value: "123e4567-e89b-42d3-a456-426614174000"})
			}
			client := front.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Do(req)
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}

// BenchmarkAblationShadowing measures the client-visible cost of dark
// launching: 0% vs 100% duplication on the same proxy.
func BenchmarkAblationShadowing(b *testing.B) {
	for _, shadowPct := range []float64{0, 100} {
		b.Run(fmt.Sprintf("shadow-%.0f%%", shadowPct), func(b *testing.B) {
			backends := benchBackends(b, 2)
			cfg := proxy.Config{
				Service: "bench", Generation: 1,
				Backends: []proxy.Backend{
					{Version: backends[0].Version, URL: backends[0].URL, Weight: 1},
					{Version: backends[1].Version, URL: backends[1].URL, Weight: 0},
				},
			}
			if shadowPct > 0 {
				cfg.Shadows = []proxy.Shadow{{Target: backends[1].Version, Percent: shadowPct}}
			}
			p, err := proxy.New("bench", cfg, proxy.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			front := httptest.NewServer(p)
			defer front.Close()

			client := front.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Get(front.URL + "/x")
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}

// BenchmarkDSLCompile measures strategy compilation (parse + compile +
// validate) for the full §5.1 release strategy.
func BenchmarkDSLCompile(b *testing.B) {
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{
		WithProxies: true, Products: 4, Users: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	src := experiments.ReleaseStrategyYAML("bench", tb, experiments.QuickPhases())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsl.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYAMLParse measures the DSL host-language parser alone.
func BenchmarkYAMLParse(b *testing.B) {
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{
		WithProxies: true, Products: 4, Users: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	src := experiments.ReleaseStrategyYAML("bench", tb, experiments.QuickPhases())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yaml.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateTransition measures the model's δ evaluation: check output
// mapping, weighted aggregation, range lookup.
func BenchmarkStateTransition(b *testing.B) {
	s := core.RunningExample(time.Hour)
	state, _ := s.Automaton.State("b")
	results := []int{96}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapped, err := state.Checks[0].MapOutcome(results[0])
		if err != nil {
			b.Fatal(err)
		}
		outcome, err := state.Outcome([]int{mapped})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := state.NextState(outcome); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsQueryUnderLoad measures the metrics provider's query path
// with a populated store, the hot loop of every check execution.
func BenchmarkMetricsQueryUnderLoad(b *testing.B) {
	store := metrics.NewStore()
	now := time.Now()
	for i := 0; i < 100; i++ {
		for v := 0; v < 4; v++ {
			store.Append("shop_requests_total",
				metrics.Labels{"version": fmt.Sprintf("v%d", v)},
				float64(i), now.Add(time.Duration(i)*time.Second))
		}
	}
	at := now.Add(101 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Query(`sum(shop_requests_total{version="v1"})`, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadgenStats measures the harness's own statistics pipeline to
// show it is negligible next to the measured requests.
func BenchmarkLoadgenStats(b *testing.B) {
	samples := make([]loadgen.Sample, 10000)
	for i := range samples {
		samples[i] = loadgen.Sample{
			Offset:  time.Duration(i) * time.Millisecond,
			Latency: time.Duration(20+i%17) * time.Millisecond,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = loadgen.StatsOf(samples)
	}
}

// BenchmarkAblationProxyChainDepth measures how per-hop overhead stacks
// when a request traverses 0, 1, or 2 Bifrost proxies — the paper's
// one-proxy-per-service design means deep call chains pay one hop per
// service (product → search in the case study traverses two).
func BenchmarkAblationProxyChainDepth(b *testing.B) {
	origin := httptest.NewServer(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("ok"))
		}))
	defer origin.Close()

	buildChain := func(b *testing.B, depth int) string {
		url := origin.URL
		for i := 0; i < depth; i++ {
			p, err := proxy.New(fmt.Sprintf("hop%d", i), proxy.Config{
				Service: fmt.Sprintf("hop%d", i), Generation: 1,
				Backends: []proxy.Backend{{Version: "v", URL: url, Weight: 1}},
			}, proxy.WithSeed(int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(p.Close)
			srv := httptest.NewServer(p)
			b.Cleanup(srv.Close)
			url = srv.URL
		}
		return url
	}

	for _, depth := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("hops-%d", depth), func(b *testing.B) {
			url := buildChain(b, depth)
			client := &http.Client{Timeout: 10 * time.Second}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Get(url + "/x")
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}

// BenchmarkAblationCheckTimerFanout measures the engine-side cost of the
// model's one-timer-per-check design (Figure 3): wall time to run a state
// whose N checks each tick on an independent timer.
func BenchmarkAblationCheckTimerFanout(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("checks-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New()
				checks := make([]core.Check, n)
				for c := range checks {
					checks[c] = core.Check{
						Name: fmt.Sprintf("c%d", c), Kind: core.BasicCheck,
						Eval:     core.ConstEvaluator(true),
						Interval: 10 * time.Millisecond, Executions: 5,
						Thresholds: []int{4}, Outputs: []int{0, 1},
					}
				}
				s := &core.Strategy{
					Name: "fanout",
					Services: []core.Service{{
						Name:     "svc",
						Versions: []core.Version{{Name: "v", Endpoint: "h:1"}},
					}},
					Automaton: core.Automaton{
						Start: "probe", Finals: []string{"end"},
						States: []core.State{
							{ID: "probe", Checks: checks,
								Transitions: []string{"end"},
								Routing: []core.RoutingConfig{{
									Service: "svc", Weights: map[string]float64{"v": 1},
								}}},
							{ID: "end"},
						},
					},
				}
				run, err := eng.Enact(s)
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if err := run.Wait(ctx); err != nil {
					cancel()
					b.Fatal(err)
				}
				cancel()
				delay := run.Status().Delay()
				b.ReportMetric(float64(delay.Microseconds())/1000, "sched_delay_ms")
				eng.Shutdown()
			}
		})
	}
}

// BenchmarkProxyRoutingParallel measures routing throughput under
// contention with the network removed (stub round tripper): many
// goroutines in ServeHTTP at once, sticky and non-sticky, which is the
// regime the lock-free snapshot data plane is built for. The in-package
// contention benches live in internal/proxy (BenchmarkServeHTTPParallel,
// BenchmarkServeHTTPUnderReconfiguration, BenchmarkStickyStore).
func BenchmarkProxyRoutingParallel(b *testing.B) {
	for _, sticky := range []bool{false, true} {
		name := "weighted"
		if sticky {
			name = "sticky"
		}
		b.Run(name, func(b *testing.B) {
			p, err := proxy.New("bench", proxy.Config{
				Service: "bench", Generation: 1, Sticky: sticky,
				Backends: []proxy.Backend{
					{Version: "v1", URL: "http://v1.invalid", Weight: 90},
					{Version: "v2", URL: "http://v2.invalid", Weight: 10},
				},
			}, proxy.WithSeed(1), proxy.WithTransport(nullTransport{}))
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			var id atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				cookie := fmt.Sprintf("123e4567-e89b-42d3-a456-4266141%05d", id.Add(1))
				req, _ := http.NewRequest(http.MethodGet, "http://front/x", nil)
				req.AddCookie(&http.Cookie{Name: proxy.CookieName, Value: cookie})
				for pb.Next() {
					p.ServeHTTP(nullResponseWriter{h: http.Header{}}, req)
				}
			})
		})
	}
}

// nullTransport answers round trips in-process so the benchmark isolates
// the proxy's own per-request work.
type nullTransport struct{}

func (nullTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return &http.Response{StatusCode: http.StatusOK, Proto: "HTTP/1.1",
		ProtoMajor: 1, ProtoMinor: 1, Header: make(http.Header),
		Body: http.NoBody, Request: r}, nil
}

type nullResponseWriter struct{ h http.Header }

func (w nullResponseWriter) Header() http.Header         { return w.h }
func (w nullResponseWriter) WriteHeader(int)             {}
func (w nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
