package core

import (
	"context"
	"time"
)

// Decision is the conclusion of one statistical check analysis.
type Decision string

// Decisions. A verdict check contributes to the state's weighted outcome
// like a basic check: DecisionPass maps to 1, DecisionFail to 0, and a
// check still DecisionContinue when the state ends maps through
// Check.InconclusivePass.
const (
	// DecisionContinue means the analysis has not accumulated enough
	// evidence to conclude either way.
	DecisionContinue Decision = "continue"
	// DecisionPass means the analysis concluded in favor of the candidate.
	DecisionPass Decision = "pass"
	// DecisionFail means the analysis concluded against the candidate.
	DecisionFail Decision = "fail"
)

// WindowStat describes one window (or population) an analysis looked at,
// for status output and events: the baseline/candidate populations of a
// compare check, or the short/long windows of a burn-rate check.
type WindowStat struct {
	// Name identifies the window: "baseline", "candidate", "short", "long".
	Name string `json:"name"`
	// Window is the time span the statistics were computed over.
	Window time.Duration `json:"window"`
	// Count is the number of samples (or trials) in the window.
	Count float64 `json:"count"`
	// Value is the window's headline number: a mean for compare
	// populations, a burn-rate factor for burnrate windows.
	Value float64 `json:"value"`
}

// Verdict is the typed result of one execution of a statistical check:
// what the engine carries instead of a bare pass/fail bit. It surfaces in
// run status, engine events, the v2 API run resource, and CLI output.
type Verdict struct {
	// Decision is the analysis conclusion for this execution.
	Decision Decision `json:"decision"`
	// Statistic is the test statistic behind the decision: Welch's t for
	// compare checks, the burn-rate factor for burnrate checks, the
	// log-likelihood ratio for sequential checks.
	Statistic float64 `json:"statistic,omitempty"`
	// PValue is the one-sided p-value of a compare check's t-test.
	PValue float64 `json:"pValue,omitempty"`
	// LLR is the accumulated log-likelihood ratio of a sequential check.
	LLR float64 `json:"llr,omitempty"`
	// Windows describes the windows/populations the analysis consulted.
	Windows []WindowStat `json:"windows,omitempty"`
	// Detail is a human-readable summary of the decision.
	Detail string `json:"detail,omitempty"`
	// Err records why an execution was inconclusive for lack of data
	// (e.g. a metrics query matched no samples). It does not abort the
	// run: the analysis simply continues on the next timer tick.
	Err string `json:"err,omitempty"`
}

// Analyzer is the statistical counterpart of Evaluator: instead of a
// boolean it produces a Verdict, and it may keep state across the
// executions of one automaton state (the sequential check's accumulated
// likelihood ratio). Implementations that accumulate must also implement
// Reset so the engine can clear them when a state is (re-)entered.
//
// An error return means the analysis itself is broken (misconfiguration);
// unavailable monitoring data is reported in Verdict.Err instead, with
// DecisionContinue.
type Analyzer interface {
	Analyze(ctx context.Context) (Verdict, error)
}

// AnalyzerFunc adapts a function to the Analyzer interface.
type AnalyzerFunc func(ctx context.Context) (Verdict, error)

var _ Analyzer = AnalyzerFunc(nil)

// Analyze implements Analyzer.
func (f AnalyzerFunc) Analyze(ctx context.Context) (Verdict, error) { return f(ctx) }

// ResettableAnalyzer is implemented by analyzers that accumulate evidence
// across executions; the engine resets them when their state is entered.
type ResettableAnalyzer interface {
	Analyzer
	Reset()
}
