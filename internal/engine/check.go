package engine

import (
	"context"
	"sync"

	"bifrost/internal/clock"
	"bifrost/internal/core"
)

// interruptMsg asks the state loop to end the current state before its
// timer: target names the state to jump to directly (exception fallbacks,
// burn-rate rollbacks), or is empty to end the state now and let δ decide
// from the aggregated outcomes (a sequential check concluding early).
type interruptMsg struct {
	target string
	// cause labels the transition: "exception", "burnrate", "sequential",
	// "changepoint".
	cause string
}

// checkRunner executes one check's timed (re-)executions within a state,
// implementing the τ timer mechanism of §3.2 and Figure 3 of the paper.
// Statistical checks (compare, sequential, burnrate) run their Analyzer
// instead of the boolean evaluator and carry a typed Verdict.
type checkRunner struct {
	run       *Run
	check     *core.Check
	interrupt chan<- interruptMsg

	mu           sync.Mutex
	executions   int
	successes    int
	failures     int
	inconclusive int
	lastError    string
	lastVerdict  core.Verdict
	concluded    bool
	// fired marks that this runner already sent its one interrupt. The
	// state's interrupt channel has one buffer slot per runner, so a
	// claimFire-guarded send can never block — even when several runners
	// conclude in the same instant (the first message consumed wins; the
	// rest are drained unread when the state ends).
	fired bool
}

func newCheckRunner(r *Run, c *core.Check, interrupt chan<- interruptMsg) *checkRunner {
	// Analyzers that accumulate evidence across executions (the
	// sequential check's SPRT) restart fresh each time the state is
	// (re-)entered.
	if ra, ok := c.Analyze.(core.ResettableAnalyzer); ok {
		ra.Reset()
	}
	return &checkRunner{run: r, check: c, interrupt: interrupt}
}

// runTimed executes the check every Interval until the scheduled number of
// executions is reached or the state context ends. Following Figure 3 of
// the paper, the first execution happens immediately on state entry (a1
// starts at t0), so n executions span (n−1)·Interval and always fit inside
// a state whose duration is n·Interval.
func (cr *checkRunner) runTimed(ctx context.Context, clk clock.Clock) {
	if ctx.Err() != nil {
		return
	}
	cr.executeOnce(ctx)
	total := cr.check.ExecutionsOrDefault()
	if total <= 1 {
		return
	}
	ticker := clk.NewTicker(cr.check.Interval)
	defer ticker.Stop()
	for i := 1; i < total; i++ {
		select {
		case <-ticker.C():
			cr.executeOnce(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// runOnce performs a single end-of-state execution (checks without timers).
func (cr *checkRunner) runOnce(ctx context.Context) {
	cr.executeOnce(ctx)
}

func (cr *checkRunner) executeOnce(ctx context.Context) {
	if cr.check.Analyze != nil {
		cr.executeAnalysis(ctx)
		return
	}
	ok, err := cr.check.Eval.Evaluate(ctx)
	cr.run.engine.mChecks.Inc()

	cr.mu.Lock()
	cr.executions++
	if err != nil {
		cr.lastError = err.Error()
		ok = false
	}
	if ok {
		cr.successes++
	} else {
		cr.failures++
	}
	cr.mu.Unlock()

	cr.run.publish(Event{
		Type:    EventCheckExecuted,
		State:   cr.currentState(),
		Check:   cr.check.Name,
		Outcome: boolToInt(ok),
		Time:    cr.run.engine.clk.Now(),
	})

	// Exception semantics: a single failed execution triggers the state
	// transition immediately (first failure wins; later ones are no-ops).
	if !ok && cr.check.Kind == core.ExceptionCheck && cr.claimFire() {
		cr.interrupt <- interruptMsg{target: cr.check.Fallback, cause: "exception"}
		cr.run.publish(Event{
			Type:   EventExceptionTriggered,
			State:  cr.currentState(),
			Check:  cr.check.Name,
			Detail: cr.check.Fallback,
			Time:   cr.run.engine.clk.Now(),
		})
	}
}

// claimFire reserves this runner's single interrupt send; only the first
// caller wins. With the interrupt channel sized to the number of runners,
// a claimed send is guaranteed buffer space and cannot wedge the runner.
func (cr *checkRunner) claimFire() bool {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if cr.fired {
		return false
	}
	cr.fired = true
	return true
}

// executeAnalysis runs one execution of a statistical check: the analyzer
// produces a Verdict, which is tallied, published, and — for sequential
// conclusions and burn-rate alarms — turned into a state interrupt.
func (cr *checkRunner) executeAnalysis(ctx context.Context) {
	v, err := cr.check.Analyze.Analyze(ctx)
	if ctx.Err() != nil {
		// The state ended while the analysis was in flight (timer expiry,
		// another check's interrupt, an operator decision). Discard this
		// execution entirely: a query aborted mid-request must not
		// overwrite the check's last real verdict with an inconclusive
		// one right before the outcomes are aggregated.
		return
	}
	cr.run.engine.mChecks.Inc()
	if err != nil {
		// A broken analysis (misconfiguration, unreachable provider) is
		// inconclusive for this execution; the error surfaces in status.
		v = core.Verdict{Decision: core.DecisionContinue, Err: err.Error()}
	}

	cr.mu.Lock()
	cr.executions++
	cr.lastVerdict = v
	switch v.Decision {
	case core.DecisionPass:
		cr.successes++
	case core.DecisionFail:
		cr.failures++
	default:
		cr.inconclusive++
	}
	if v.Err != "" {
		cr.lastError = v.Err
	}
	firstConclusion := false
	switch cr.check.Kind {
	case core.SequentialCheck:
		if v.Decision != core.DecisionContinue && !cr.concluded {
			cr.concluded = true
			firstConclusion = true
		}
	case core.ChangePointCheck:
		// A changepoint check only ever concludes by detecting a shift; a
		// stationary trajectory stays inconclusive until the state ends.
		if v.Decision == core.DecisionFail && !cr.concluded {
			cr.concluded = true
			firstConclusion = true
		}
	}
	cr.mu.Unlock()

	now := cr.run.engine.clk.Now()
	cr.run.publish(Event{
		Type:    EventCheckExecuted,
		State:   cr.currentState(),
		Check:   cr.check.Name,
		Outcome: boolToInt(v.Decision == core.DecisionPass),
		Verdict: &v,
		Time:    now,
	})

	switch cr.check.Kind {
	case core.SequentialCheck:
		if !firstConclusion || !cr.claimFire() {
			return
		}
		// The gate concluded: end the state now. A failing conclusion
		// with a configured fallback jumps there directly; otherwise the
		// early end goes through the normal δ aggregation, where this
		// check maps to 1 (pass) or 0 (fail). The conclusion event is
		// published even when another runner's interrupt already ended the
		// state: the decision was reached and must be observable.
		msg := interruptMsg{cause: "sequential"}
		if v.Decision == core.DecisionFail {
			msg.target = cr.check.Fallback
		}
		cr.interrupt <- msg
		cr.run.publish(Event{
			Type:    EventCheckConcluded,
			State:   cr.currentState(),
			Check:   cr.check.Name,
			Detail:  string(v.Decision),
			Verdict: &v,
			Time:    now,
		})
	case core.ChangePointCheck:
		if !firstConclusion || !cr.claimFire() {
			return
		}
		// The trajectory shifted: end the state now, jumping straight to
		// the fallback when one is configured, otherwise through δ where
		// this check's verdict maps to 0.
		cr.interrupt <- interruptMsg{target: cr.check.Fallback, cause: "changepoint"}
		cr.run.publish(Event{
			Type:    EventCheckConcluded,
			State:   cr.currentState(),
			Check:   cr.check.Name,
			Detail:  string(v.Decision),
			Verdict: &v,
			Time:    now,
		})
	case core.BurnRateCheck:
		if v.Decision != core.DecisionFail || !cr.claimFire() {
			return
		}
		cr.interrupt <- interruptMsg{target: cr.check.Fallback, cause: "burnrate"}
		cr.run.publish(Event{
			Type:    EventBurnRateTriggered,
			State:   cr.currentState(),
			Check:   cr.check.Name,
			Detail:  cr.check.Fallback,
			Verdict: &v,
			Time:    now,
		})
	}
}

// mappedOutcome aggregates the execution results (Σ f_j) and maps basic
// checks through their output mapping Out_ci. Exception checks contribute
// their raw success count, which equals n when all executions succeeded.
// Statistical checks contribute their latest verdict: pass → 1, fail → 0,
// still-continue → InconclusivePass.
func (cr *checkRunner) mappedOutcome() (int, error) {
	cr.mu.Lock()
	successes := cr.successes
	verdict := cr.lastVerdict
	cr.mu.Unlock()
	if cr.check.Kind.Statistical() {
		switch verdict.Decision {
		case core.DecisionPass:
			return 1, nil
		case core.DecisionFail:
			return 0, nil
		default:
			if cr.check.InconclusivePass {
				return 1, nil
			}
			return 0, nil
		}
	}
	if cr.check.Kind == core.ExceptionCheck {
		return successes, nil
	}
	return cr.check.MapOutcome(successes)
}

func (cr *checkRunner) snapshot() CheckStatus {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	st := CheckStatus{
		Name:         cr.check.Name,
		Kind:         cr.check.Kind.String(),
		Executions:   cr.executions,
		Successes:    cr.successes,
		Failures:     cr.failures,
		Inconclusive: cr.inconclusive,
		LastError:    cr.lastError,
	}
	if cr.check.Kind.Statistical() && cr.executions > 0 {
		v := cr.lastVerdict
		st.Verdict = &v
	}
	return st
}

// hasConcluded reports whether a sequential or changepoint check has
// reached its sticky decision.
func (cr *checkRunner) hasConcluded() bool {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.concluded
}

func (cr *checkRunner) currentState() string {
	cr.run.mu.Lock()
	defer cr.run.mu.Unlock()
	return cr.run.status.Current
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
