// Package experiments reproduces the paper's evaluation (§5): the end-user
// overhead experiment behind Figure 6 and Table 1, the parallel-strategy
// scalability sweep behind Figures 7 and 8, and the parallel-check sweep
// behind Figures 9 and 10.
//
// Everything the paper deployed as Docker containers on twelve cloud VMs
// runs here as separate HTTP servers on loopback: the seven case-study
// services, the two Bifrost proxies, the metrics provider, the engine, and
// the load generator. The network hops are real sockets; only the machines
// are collapsed onto one host (see DESIGN.md for the substitution table).
package experiments

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"bifrost/internal/docstore"
	"bifrost/internal/engine"
	"bifrost/internal/httpx"
	"bifrost/internal/metrics"
	"bifrost/internal/proxy"
	"bifrost/internal/shop"
)

// TestbedConfig sizes the deployed case-study application.
type TestbedConfig struct {
	// Products and Users seed the catalog and user base.
	Products int
	Users    int
	// WithProxies places Bifrost proxies in front of the product and
	// search services (the "inactive"/"active" variations). When false
	// the gateway talks to the stable versions directly ("baseline").
	WithProxies bool
	// ScrapeInterval is the metrics collection period (default 500ms).
	ScrapeInterval time.Duration
	// ProductLatency/ProductALatency/ProductBLatency shape the variants.
	ProductLatency  time.Duration
	ProductALatency time.Duration
	ProductBLatency time.Duration
	// ConversionA/ConversionB bias the A/B business metric (default 1.1
	// vs 0.9, so product A reliably wins the A/B test).
	ConversionA float64
	ConversionB float64
	// Seed fixes all injected randomness.
	Seed int64
}

func (c TestbedConfig) withDefaults() TestbedConfig {
	if c.Products == 0 {
		c.Products = 40
	}
	if c.Users == 0 {
		c.Users = 25
	}
	if c.ScrapeInterval == 0 {
		c.ScrapeInterval = 500 * time.Millisecond
	}
	if c.ConversionA == 0 {
		c.ConversionA = 1.1
	}
	if c.ConversionB == 0 {
		c.ConversionB = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 20160501
	}
	return c
}

// Testbed is the running case-study deployment.
type Testbed struct {
	Config TestbedConfig

	Store        *docstore.Store
	MetricsStore *metrics.Store
	Scraper      *metrics.Scraper

	// Servers by role; ProductVersions/SearchVersions key by version name.
	MetricsSrv      *httpx.Server
	DB              *httpx.Server
	Auth            *httpx.Server
	Frontend        *httpx.Server
	Gateway         *httpx.Server
	ProductVersions map[string]*httpx.Server
	SearchVersions  map[string]*httpx.Server

	ProductProxy    *proxy.Proxy
	ProductProxySrv *httpx.Server
	SearchProxy     *proxy.Proxy
	SearchProxySrv  *httpx.Server

	Engine    *engine.Engine
	EngineSrv *httpx.Server

	ProductIDs []string

	servers []*httpx.Server
}

// NewTestbed deploys the full case-study application on loopback.
func NewTestbed(cfg TestbedConfig) (tb *Testbed, err error) {
	cfg = cfg.withDefaults()
	tb = &Testbed{
		Config:          cfg,
		Store:           docstore.New(),
		MetricsStore:    metrics.NewStore(),
		ProductVersions: make(map[string]*httpx.Server, 3),
		SearchVersions:  make(map[string]*httpx.Server, 2),
	}
	defer func() {
		if err != nil {
			tb.Close()
		}
	}()

	if tb.ProductIDs, err = shop.SeedCatalog(tb.Store, cfg.Products); err != nil {
		return nil, err
	}
	if _, err = shop.SeedUsers(tb.Store, cfg.Users); err != nil {
		return nil, err
	}

	// Metrics provider (the Prometheus container).
	if tb.MetricsSrv, err = tb.serve(metrics.NewServer(tb.MetricsStore).Handler()); err != nil {
		return nil, err
	}
	tb.Scraper = metrics.NewScraper(tb.MetricsStore, cfg.ScrapeInterval, nil)

	// Database (the MongoDB container).
	if tb.DB, err = tb.serve(docstore.NewServer(tb.Store).Handler()); err != nil {
		return nil, err
	}

	// Auth service.
	auth := shop.NewAuth(tb.DB.URL(), metrics.NewRegistry())
	if tb.Auth, err = tb.serve(auth.Handler()); err != nil {
		return nil, err
	}
	tb.scrape("auth:80", tb.Auth.URL()+"/metrics")

	// Search versions: stable (slow) search and fastSearch.
	searchProfiles := []shop.VariantProfile{
		{Version: "search", ExtraLatency: 4 * time.Millisecond, Seed: cfg.Seed + 1},
		{Version: "fastSearch", Seed: cfg.Seed + 2},
	}
	for _, p := range searchProfiles {
		svc := shop.NewSearch(shop.SearchConfig{
			Profile: p, DBURL: tb.DB.URL(), AuthURL: tb.Auth.URL(),
		})
		srv, serr := tb.serve(svc.Handler())
		if serr != nil {
			return nil, serr
		}
		tb.SearchVersions[p.Version] = srv
		tb.scrape(p.Version+":80", srv.URL()+"/metrics")
	}

	// Search proxy (only meaningful with proxies enabled).
	searchURL := tb.SearchVersions["search"].URL()
	if cfg.WithProxies {
		tb.SearchProxy, err = proxy.New("search", proxy.Config{
			Service: "search", Generation: 1,
			Backends: []proxy.Backend{
				{Version: "search", URL: tb.SearchVersions["search"].URL(), Weight: 1},
				{Version: "fastSearch", URL: tb.SearchVersions["fastSearch"].URL(), Weight: 0},
			},
		}, proxy.WithSeed(cfg.Seed+10))
		if err != nil {
			return nil, err
		}
		if tb.SearchProxySrv, err = tb.serve(tb.SearchProxy); err != nil {
			return nil, err
		}
		searchURL = tb.SearchProxySrv.URL()
		tb.scrape("search-proxy:80", tb.SearchProxySrv.URL()+"/_bifrost/metrics")
	}

	// Product versions: stable, A (faster, converts better), B.
	productProfiles := []shop.VariantProfile{
		{Version: "product", ExtraLatency: cfg.ProductLatency, Seed: cfg.Seed + 3},
		{Version: "productA", ExtraLatency: cfg.ProductALatency,
			ConversionBoost: cfg.ConversionA, Seed: cfg.Seed + 4},
		{Version: "productB", ExtraLatency: cfg.ProductBLatency,
			ConversionBoost: cfg.ConversionB, Seed: cfg.Seed + 5},
	}
	for _, p := range productProfiles {
		svc := shop.NewProduct(shop.ProductConfig{
			Profile: p, DBURL: tb.DB.URL(), AuthURL: tb.Auth.URL(),
			SearchURL: searchURL,
		})
		srv, serr := tb.serve(svc.Handler())
		if serr != nil {
			return nil, serr
		}
		tb.ProductVersions[p.Version] = srv
		tb.scrape(p.Version+":80", srv.URL()+"/metrics")
	}

	// Product proxy.
	productURL := tb.ProductVersions["product"].URL()
	if cfg.WithProxies {
		tb.ProductProxy, err = proxy.New("product", proxy.Config{
			Service: "product", Generation: 1,
			Backends: []proxy.Backend{
				{Version: "product", URL: tb.ProductVersions["product"].URL(), Weight: 1},
				{Version: "productA", URL: tb.ProductVersions["productA"].URL(), Weight: 0},
				{Version: "productB", URL: tb.ProductVersions["productB"].URL(), Weight: 0},
			},
		}, proxy.WithSeed(cfg.Seed+11))
		if err != nil {
			return nil, err
		}
		if tb.ProductProxySrv, err = tb.serve(tb.ProductProxy); err != nil {
			return nil, err
		}
		productURL = tb.ProductProxySrv.URL()
		tb.scrape("product-proxy:80", tb.ProductProxySrv.URL()+"/_bifrost/metrics")
	}

	// Frontend and gateway (the nginx entry point).
	if tb.Frontend, err = tb.serve(shop.NewFrontend().Handler()); err != nil {
		return nil, err
	}
	gw := shop.NewGateway(tb.Frontend.URL(), productURL, tb.Auth.URL())
	if tb.Gateway, err = tb.serve(gw.Handler()); err != nil {
		return nil, err
	}

	// Engine with its own registry, scraped like the cAdvisor'd engine
	// container of the paper.
	tb.Engine = engine.New(engine.WithConfigurator(engine.HTTPConfigurator{}))
	if tb.EngineSrv, err = tb.serve(tb.Engine.Registry().Handler()); err != nil {
		return nil, err
	}
	tb.scrape("engine:80", tb.EngineSrv.URL())

	// One synchronous scrape so checks enacted immediately after deployment
	// find fresh series, then the periodic loop takes over.
	tb.Scraper.ScrapeOnce(context.Background())
	tb.Scraper.Start()
	return tb, nil
}

func (tb *Testbed) serve(h http.Handler) (*httpx.Server, error) {
	srv, err := httpx.NewServer("127.0.0.1:0", h)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	srv.Start()
	tb.servers = append(tb.servers, srv)
	return srv, nil
}

func (tb *Testbed) scrape(instance, url string) {
	tb.Scraper.AddTarget(metrics.Target{URL: url, Instance: instance})
}

// Close shuts the whole deployment down.
func (tb *Testbed) Close() {
	if tb.Engine != nil {
		tb.Engine.Shutdown()
	}
	if tb.Scraper != nil {
		tb.Scraper.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range tb.servers {
		_ = srv.Shutdown(ctx)
	}
	if tb.ProductProxy != nil {
		tb.ProductProxy.Close()
	}
	if tb.SearchProxy != nil {
		tb.SearchProxy.Close()
	}
}
