package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is an HdrHistogram-style latency histogram: log-linear buckets over
// microsecond values, so quantiles carry a bounded relative error (≤ 1/32,
// ~3%) across the full range from 1µs to ~1h without storing samples.
//
// Record is lock-free (one atomic add), so many load-generator goroutines
// can share a single Hist — the recording path must never become the
// coordination point that hides the very stalls it is measuring.
//
// The zero value is ready to use.
type Hist struct {
	// counts is indexed log-linearly: values below histSub land in their
	// own unit bucket; above that, each power-of-two range is split into
	// histSub linear sub-buckets.
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // µs
	max    atomic.Int64 // µs
}

const (
	// histSubBits is the sub-bucket resolution: 2^5 = 32 linear
	// sub-buckets per power of two, bounding quantile error at 1/32.
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histRanges covers values up to 2^(histSubBits+histRanges) µs ≈ 2.3h.
	histRanges  = 33 - histSubBits
	histBuckets = histSub * (histRanges + 1)
)

// histIndex maps a non-negative µs value to its bucket.
func histIndex(us int64) int {
	if us < histSub {
		return int(us)
	}
	// The value's magnitude above the linear range picks the power-of-two
	// range; the top histSubBits bits below the leading bit pick the
	// sub-bucket within it.
	exp := bits.Len64(uint64(us)) - 1 - histSubBits
	if exp > histRanges-1 {
		exp = histRanges - 1 // clamp: everything past ~2.3h shares the top range
	}
	sub := int(us>>exp) - histSub // 0..histSub-1
	return histSub + exp*histSub + sub
}

// histLow returns the inclusive lower bound (µs) of bucket i; the bucket's
// representative value reported by Quantile is its upper midpoint.
func histLow(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := (i - histSub) / histSub
	sub := (i - histSub) % histSub
	return int64(histSub+sub) << exp
}

func histHigh(i int) int64 {
	if i < histSub {
		return int64(i) + 1
	}
	exp := (i - histSub) / histSub
	return histLow(i) + (int64(1) << exp)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[histIndex(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Max returns the largest recorded latency (bucket-exact: the true maximum
// is tracked separately from the buckets).
func (h *Hist) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Mean returns the mean recorded latency.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Quantile returns the latency at quantile q (0 < q ≤ 1), with the
// histogram's ~3% relative error. The top bucket answers with the exact
// recorded maximum so p100 is never inflated by bucket width.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			mid := (histLow(i) + histHigh(i)) / 2
			if max := h.max.Load(); mid > max {
				mid = max
			}
			return time.Duration(mid) * time.Microsecond
		}
	}
	return h.Max()
}

// Merge folds other into h (concurrent Records on either side are allowed;
// the merge observes a consistent-enough snapshot for reporting).
func (h *Hist) Merge(other *Hist) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		om, cur := other.max.Load(), h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}
