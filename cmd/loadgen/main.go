// Command loadgen drives the case-study application with the paper's
// JMeter workload: a steady mix of Buy, Details, Products and Search
// requests from a pool of logged-in users, printing summary statistics and
// optionally the moving-average series as CSV.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:PORT -rps 35 -duration 60s [-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"bifrost/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	target := flag.String("target", "", "application entry point (gateway URL)")
	rps := flag.Float64("rps", 35, "steady request rate")
	duration := flag.Duration("duration", 60*time.Second, "steady-state duration")
	rampUp := flag.Duration("rampup", 5*time.Second, "ramp-up period")
	users := flag.Int("users", 25, "user pool size")
	csv := flag.Bool("csv", false, "print 3s moving-average series as CSV")
	seed := flag.Int64("seed", 0, "workload seed (0 = time-based)")
	flag.Parse()

	if *target == "" {
		return fmt.Errorf("missing -target")
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  *target,
		RPS:      *rps,
		Duration: *duration,
		RampUp:   *rampUp,
		Users:    *users,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	st := loadgen.StatsOf(res.Samples)
	fmt.Printf("requests: %d  errors: %d\n", st.Count, st.Errors)
	fmt.Printf("latency ms: mean=%.2f min=%.2f max=%.2f sd=%.2f median=%.2f\n",
		st.Mean, st.Min, st.Max, st.SD, st.Median)
	if *csv {
		fmt.Println("offset_s,mean_ms,count")
		for _, p := range res.MovingAverage(3 * time.Second) {
			fmt.Printf("%.0f,%.2f,%d\n", p.OffsetSeconds, p.MeanMillis, p.Count)
		}
	}
	return nil
}
