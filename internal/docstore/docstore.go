// Package docstore implements the document database behind the case-study
// application — the standard-library substitute for the MongoDB instance in
// the paper's deployment (§5.1.1).
//
// It is a real service, not a mock: collections of JSON documents with
// insert/find/update/delete, equality and comparison filters, optional
// unique indexes, and an HTTP facade so the store can sit behind a Bifrost
// proxy and receive shadowed traffic exactly like any other service (the
// dark-launch phase duplicates requests "to the authentication service, the
// product service, and the database").
package docstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Document is one stored record. Every document has a string "_id" field,
// assigned on insert when absent.
type Document map[string]any

// Common errors.
var (
	// ErrNotFound is returned when no document matches.
	ErrNotFound = errors.New("docstore: not found")
	// ErrDuplicateID is returned when inserting an existing _id or
	// violating a unique index.
	ErrDuplicateID = errors.New("docstore: duplicate key")
)

// Filter selects documents. A nil filter matches everything. Field values
// match on equality; Ops add comparisons.
type Filter struct {
	// Equals matches fields by equality.
	Equals map[string]any
	// Ops matches fields by comparison.
	Ops []FilterOp
}

// FilterOp is one comparison, e.g. {"price", "<", 100}.
type FilterOp struct {
	Field string
	Op    string // <, <=, >, >=, !=, contains, prefix
	Value any
}

// Store is an in-memory multi-collection document store, safe for
// concurrent use.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*collection
	idSeq       int64
}

type collection struct {
	docs   map[string]Document
	unique map[string]map[string]string // field -> value -> _id
}

// New creates an empty store.
func New() *Store {
	return &Store{collections: make(map[string]*collection, 4)}
}

func (s *Store) coll(name string) *collection {
	c, ok := s.collections[name]
	if !ok {
		c = &collection{
			docs:   make(map[string]Document, 64),
			unique: make(map[string]map[string]string),
		}
		s.collections[name] = c
	}
	return c
}

// EnsureUniqueIndex enforces uniqueness of a string field in a collection.
func (s *Store) EnsureUniqueIndex(collectionName, field string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.coll(collectionName)
	if _, exists := c.unique[field]; exists {
		return nil
	}
	idx := make(map[string]string, len(c.docs))
	for id, doc := range c.docs {
		v, _ := doc[field].(string)
		if v == "" {
			continue
		}
		if _, dup := idx[v]; dup {
			return fmt.Errorf("docstore: existing duplicate %q=%q in %q",
				field, v, collectionName)
		}
		idx[v] = id
	}
	c.unique[field] = idx
	return nil
}

// Insert stores a document, assigning _id when missing, and returns the id.
func (s *Store) Insert(collectionName string, doc Document) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.coll(collectionName)

	id, _ := doc["_id"].(string)
	if id == "" {
		s.idSeq++
		id = fmt.Sprintf("doc-%d", s.idSeq)
	}
	if _, exists := c.docs[id]; exists {
		return "", fmt.Errorf("%w: _id %q", ErrDuplicateID, id)
	}
	for field, idx := range c.unique {
		if v, _ := doc[field].(string); v != "" {
			if _, dup := idx[v]; dup {
				return "", fmt.Errorf("%w: %s=%q", ErrDuplicateID, field, v)
			}
		}
	}

	stored := cloneDoc(doc)
	stored["_id"] = id
	c.docs[id] = stored
	for field, idx := range c.unique {
		if v, _ := stored[field].(string); v != "" {
			idx[v] = id
		}
	}
	return id, nil
}

// Get fetches a document by id.
func (s *Store) Get(collectionName, id string) (Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return nil, ErrNotFound
	}
	doc, ok := c.docs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return cloneDoc(doc), nil
}

// Find returns all matching documents ordered by _id. limit ≤ 0 means all.
func (s *Store) Find(collectionName string, f *Filter, limit int) ([]Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return nil, nil
	}
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Document, 0, min(len(ids), 64))
	for _, id := range ids {
		doc := c.docs[id]
		match, err := matches(doc, f)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		out = append(out, cloneDoc(doc))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// FindOne returns the first match or ErrNotFound.
func (s *Store) FindOne(collectionName string, f *Filter) (Document, error) {
	docs, err := s.Find(collectionName, f, 1)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNotFound
	}
	return docs[0], nil
}

// Update merges fields into the document with the given id.
func (s *Store) Update(collectionName, id string, fields Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return ErrNotFound
	}
	doc, ok := c.docs[id]
	if !ok {
		return ErrNotFound
	}
	for k, v := range fields {
		if k == "_id" {
			continue
		}
		doc[k] = v
	}
	return nil
}

// Delete removes a document by id.
func (s *Store) Delete(collectionName, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[collectionName]
	if !ok {
		return ErrNotFound
	}
	doc, ok := c.docs[id]
	if !ok {
		return ErrNotFound
	}
	for field, idx := range c.unique {
		if v, _ := doc[field].(string); v != "" {
			delete(idx, v)
		}
	}
	delete(c.docs, id)
	return nil
}

// Count returns the number of matching documents.
func (s *Store) Count(collectionName string, f *Filter) (int, error) {
	docs, err := s.Find(collectionName, f, 0)
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// Collections lists collection names.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func matches(doc Document, f *Filter) (bool, error) {
	if f == nil {
		return true, nil
	}
	for field, want := range f.Equals {
		if !valuesEqual(doc[field], want) {
			return false, nil
		}
	}
	for _, op := range f.Ops {
		ok, err := applyOp(doc[op.Field], op)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func applyOp(have any, op FilterOp) (bool, error) {
	switch op.Op {
	case "contains", "prefix":
		hs, ok1 := have.(string)
		ws, ok2 := op.Value.(string)
		if !ok1 || !ok2 {
			return false, nil
		}
		if op.Op == "contains" {
			return strings.Contains(strings.ToLower(hs), strings.ToLower(ws)), nil
		}
		return strings.HasPrefix(strings.ToLower(hs), strings.ToLower(ws)), nil
	case "!=":
		return !valuesEqual(have, op.Value), nil
	case "<", "<=", ">", ">=":
		hf, ok1 := toFloat(have)
		wf, ok2 := toFloat(op.Value)
		if !ok1 || !ok2 {
			return false, nil
		}
		switch op.Op {
		case "<":
			return hf < wf, nil
		case "<=":
			return hf <= wf, nil
		case ">":
			return hf > wf, nil
		default:
			return hf >= wf, nil
		}
	default:
		return false, fmt.Errorf("docstore: unknown filter op %q", op.Op)
	}
}

// valuesEqual compares with numeric tolerance across int/float types, which
// JSON round-trips blur.
func valuesEqual(a, b any) bool {
	if af, ok := toFloat(a); ok {
		if bf, ok := toFloat(b); ok {
			return af == bf
		}
		return false
	}
	return a == b
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	case float64:
		return t, true
	}
	return 0, false
}

func cloneDoc(doc Document) Document {
	out := make(Document, len(doc))
	for k, v := range doc {
		out[k] = v
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
