package dsl

import (
	"context"
	"strings"
	"testing"
	"time"

	"bifrost/internal/clock"
	"bifrost/internal/core"
	"bifrost/internal/metrics"
)

// verdictDoc wraps one checks snippet in a minimal two-phase strategy.
func verdictDoc(checks string) string {
	return `
name: verdict-test
deployment:
  services:
    - service: svc
      proxy: 127.0.0.1:8081
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: candidate
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: canary
      duration: 60s
      routes:
        - route:
            service: svc
            weights: {stable: 90, candidate: 10}
      checks:
` + checks + `
      on:
        success: done
        failure: rollback
    - phase: done
    - phase: rollback
`
}

func verdictCompiler(store *metrics.Store) *Compiler {
	return &Compiler{Providers: map[string]Querier{
		"prom": metrics.StoreQuerier{Store: store},
	}}
}

func compileVerdict(t *testing.T, store *metrics.Store, checks string) *core.Check {
	t.Helper()
	s, err := verdictCompiler(store).Compile(verdictDoc(checks))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st, ok := s.Automaton.State("canary")
	if !ok || len(st.Checks) != 1 {
		t.Fatalf("canary state: %+v", st)
	}
	return &st.Checks[0]
}

func seedLatency(store *metrics.Store, clk clock.Clock, version string, base float64, n int) {
	now := clk.Now()
	for i := 0; i < n; i++ {
		store.Append("response_ms", metrics.Labels{"version": version},
			base+float64(i%5), now.Add(-time.Duration(n-i)*100*time.Millisecond))
	}
}

const compareYAML = `
        - compare:
            name: latency-ab
            provider: prom
            baseline: response_ms{version="stable"}
            candidate: response_ms{version="candidate"}
            window: 30s
            confidence: 0.99
            intervalTime: 5
            intervalLimit: 3
`

func TestCompareCheckVerdicts(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 7, 30, 10, 0, 0, 0, time.UTC))
	store := metrics.NewStore(metrics.WithClock(clk))
	c := compileVerdict(t, store, compareYAML)
	if c.Kind != core.CompareCheck || c.Analyze == nil {
		t.Fatalf("check = %+v", c)
	}

	// No data at all: inconclusive, ErrNoData surfaced in the verdict.
	v, err := c.Analyze.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != core.DecisionContinue || !strings.Contains(v.Err, "no data") {
		t.Errorf("empty-store verdict = %+v, want continue with no-data error", v)
	}

	// Comparable populations: pass.
	seedLatency(store, clk, "stable", 100, 40)
	seedLatency(store, clk, "candidate", 100.5, 40)
	v, _ = c.Analyze.Analyze(context.Background())
	if v.Decision != core.DecisionPass {
		t.Errorf("similar populations: %+v, want pass", v)
	}
	if len(v.Windows) != 2 || v.Windows[0].Name != "baseline" || v.Windows[1].Name != "candidate" {
		t.Errorf("windows = %+v", v.Windows)
	}

	// Candidate clearly slower: fail with a small p-value.
	store2 := metrics.NewStore(metrics.WithClock(clk))
	c2 := compileVerdict(t, store2, compareYAML)
	seedLatency(store2, clk, "stable", 100, 40)
	seedLatency(store2, clk, "candidate", 150, 40)
	v, _ = c2.Analyze.Analyze(context.Background())
	if v.Decision != core.DecisionFail {
		t.Errorf("degraded candidate: %+v, want fail", v)
	}
	if v.Statistic <= 0 || v.PValue > 0.01 {
		t.Errorf("t = %v, p = %v; want positive t, p ≤ 0.01", v.Statistic, v.PValue)
	}
}

func TestCompareCheckMinSamples(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 7, 30, 10, 0, 0, 0, time.UTC))
	store := metrics.NewStore(metrics.WithClock(clk))
	c := compileVerdict(t, store, compareYAML)
	seedLatency(store, clk, "stable", 100, 40)
	seedLatency(store, clk, "candidate", 150, 3) // below the default 5
	v, _ := c.Analyze.Analyze(context.Background())
	if v.Decision != core.DecisionContinue {
		t.Errorf("thin candidate arm: %+v, want continue", v)
	}
}

func TestSequentialCheckConcludes(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 7, 30, 10, 0, 0, 0, time.UTC))
	store := metrics.NewStore(metrics.WithClock(clk))
	c := compileVerdict(t, store, `
        - sequential:
            name: ab-gate
            provider: prom
            errors: request_errors_total{version="candidate"}
            total: requests_total{version="candidate"}
            p0: 0.01
            p1: 0.10
            intervalTime: 5
            intervalLimit: 12
            fallback: rollback
`)
	if c.Kind != core.SequentialCheck || c.Fallback != "rollback" {
		t.Fatalf("check = %+v", c)
	}
	ra, ok := c.Analyze.(core.ResettableAnalyzer)
	if !ok {
		t.Fatal("sequential analyzer is not resettable")
	}

	// No data yet: inconclusive with the query error noted.
	v, _ := ra.Analyze(context.Background())
	if v.Decision != core.DecisionContinue || !strings.Contains(v.Err, "no data") {
		t.Errorf("empty-store verdict = %+v", v)
	}

	// The first data-bearing execution only baselines the cumulative
	// counters; the next one observes the delta — 30% failures, far
	// above p1 = 10% — and the gate concludes degraded.
	now := clk.Now()
	seed := func(step int, errs, total float64) {
		at := now.Add(time.Duration(step) * time.Second)
		store.Append("request_errors_total", metrics.Labels{"version": "candidate"}, errs, at)
		store.Append("requests_total", metrics.Labels{"version": "candidate"}, total, at)
	}
	seed(0, 0, 0)
	clk.Advance(time.Second)
	v, _ = ra.Analyze(context.Background())
	if v.Decision != core.DecisionContinue {
		t.Errorf("baseline execution: %+v, want continue", v)
	}
	seed(1, 30, 100)
	clk.Advance(time.Second)
	v, _ = ra.Analyze(context.Background())
	if v.Decision != core.DecisionFail {
		t.Errorf("30%% failures: %+v, want fail", v)
	}
	if v.LLR < 0 {
		t.Errorf("llr = %v, want positive (evidence of degradation)", v.LLR)
	}

	// Each request is counted exactly once: the observed trials equal the
	// counter delta, not a window re-count.
	if n := v.Windows[0].Count; n != 100 {
		t.Errorf("trials = %v, want 100", n)
	}

	// Reset clears all accumulated evidence and the counter baseline.
	ra.Reset()
	v, _ = ra.Analyze(context.Background())
	if v.Decision != core.DecisionContinue || v.LLR != 0 {
		t.Errorf("after reset: %+v, want fresh baseline with llr 0", v)
	}
}

func TestSequentialCheckPassesOnHealthy(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 7, 30, 10, 0, 0, 0, time.UTC))
	store := metrics.NewStore(metrics.WithClock(clk))
	c := compileVerdict(t, store, `
        - sequential:
            name: ab-gate
            provider: prom
            errors: request_errors_total{version="candidate"}
            total: requests_total{version="candidate"}
            p0: 0.02
            effect: 10
            intervalTime: 5
            intervalLimit: 12
`)
	now := clk.Now()
	store.Append("request_errors_total", metrics.Labels{"version": "candidate"}, 0, now)
	store.Append("requests_total", metrics.Labels{"version": "candidate"}, 0, now)
	if v, _ := c.Analyze.Analyze(context.Background()); v.Decision != core.DecisionContinue {
		t.Fatalf("baseline execution: %+v, want continue", v)
	}
	store.Append("request_errors_total", metrics.Labels{"version": "candidate"}, 0, now.Add(time.Second))
	store.Append("requests_total", metrics.Labels{"version": "candidate"}, 200, now.Add(time.Second))
	clk.Advance(2 * time.Second)
	v, _ := c.Analyze.Analyze(context.Background())
	if v.Decision != core.DecisionPass {
		t.Errorf("zero failures over 200 trials: %+v, want pass", v)
	}
}

func TestBurnRateCheckVerdicts(t *testing.T) {
	clk := clock.NewManual(time.Date(2026, 7, 30, 10, 0, 0, 0, time.UTC))
	store := metrics.NewStore(metrics.WithClock(clk))
	c := compileVerdict(t, store, `
        - burnrate:
            name: slo-guard
            provider: prom
            errors: request_errors_total{service="svc"}
            total: requests_total{service="svc"}
            slo: 99
            shortWindow: 30s
            longWindow: 2m
            factor: 10
            intervalTime: 5
            intervalLimit: 12
            fallback: rollback
`)
	if c.Kind != core.BurnRateCheck || c.Fallback != "rollback" {
		t.Fatalf("check = %+v", c)
	}

	// Empty store: inconclusive with ErrNoData noted.
	v, _ := c.Analyze.Analyze(context.Background())
	if v.Decision != core.DecisionContinue || !strings.Contains(v.Err, "no data") {
		t.Errorf("empty-store verdict = %+v", v)
	}

	// Healthy traffic: ≈0.1% errors against a 1% budget. Both windows
	// need at least two samples for a counter increase to exist.
	now := clk.Now()
	seed := func(offset time.Duration, errs, total float64) {
		store.Append("request_errors_total", metrics.Labels{"service": "svc"}, errs, now.Add(offset))
		store.Append("requests_total", metrics.Labels{"service": "svc"}, total, now.Add(offset))
	}
	seed(-2*time.Minute, 0, 0)
	seed(-20*time.Second, 0, 500)
	seed(-time.Second, 1, 1000)
	v, _ = c.Analyze.Analyze(context.Background())
	if v.Decision != core.DecisionPass {
		t.Errorf("healthy traffic: %+v, want pass", v)
	}

	// Error explosion: 50% errors burns the budget 50× in both windows.
	seed(time.Second, 501, 2000)
	clk.Advance(2 * time.Second)
	v, _ = c.Analyze.Analyze(context.Background())
	if v.Decision != core.DecisionFail {
		t.Errorf("error explosion: %+v, want fail", v)
	}
	if len(v.Windows) != 2 || v.Windows[0].Value < 10 || v.Windows[1].Value < 10 {
		t.Errorf("windows = %+v, want both burning ≥ 10×", v.Windows)
	}
}

func TestVerdictCheckCompileErrors(t *testing.T) {
	store := metrics.NewStore()
	cases := map[string]string{
		"unknown provider": `
        - compare:
            name: x
            provider: ghost
            baseline: m{v="a"}
            candidate: m{v="b"}
            window: 30s
`,
		"missing window": `
        - compare:
            name: x
            provider: prom
            baseline: m{v="a"}
            candidate: m{v="b"}
`,
		"bad selector": `
        - compare:
            name: x
            provider: prom
            baseline: rate(m[1m])
            candidate: m{v="b"}
            window: 30s
`,
		"bad confidence": `
        - compare:
            name: x
            provider: prom
            baseline: m{v="a"}
            candidate: m{v="b"}
            window: 30s
            confidence: 1.5
`,
		"bad direction": `
        - compare:
            name: x
            provider: prom
            baseline: m{v="a"}
            candidate: m{v="b"}
            window: 30s
            direction: "<="
`,
		"sequential p0 ≥ p1": `
        - sequential:
            name: x
            provider: prom
            errors: e{v="b"}
            total: t{v="b"}
            p0: 0.2
            p1: 0.1
            intervalTime: 5
`,
		"burnrate without fallback": `
        - burnrate:
            name: x
            provider: prom
            errors: e{v="b"}
            total: t{v="b"}
            slo: 99
            intervalTime: 5
`,
		"burnrate slo out of range": `
        - burnrate:
            name: x
            provider: prom
            errors: e{v="b"}
            total: t{v="b"}
            slo: 120
            fallback: rollback
            intervalTime: 5
`,
		"burnrate windows inverted": `
        - burnrate:
            name: x
            provider: prom
            errors: e{v="b"}
            total: t{v="b"}
            slo: 99
            shortWindow: 10m
            longWindow: 1m
            fallback: rollback
            intervalTime: 5
`,
		"unknown field": `
        - sequential:
            name: x
            provider: prom
            errors: e{v="b"}
            total: t{v="b"}
            typo: true
            intervalTime: 5
`,
		"two kinds in one element": `
        - compare:
            name: x
            provider: prom
            baseline: m{v="a"}
            candidate: m{v="b"}
            window: 30s
          burnrate:
            name: y
            provider: prom
            errors: e{v="b"}
            total: t{v="b"}
            slo: 99
            fallback: rollback
            intervalTime: 5
`,
		"stray key beside the kind": `
        - metric:
            name: x
            provider: prom
            query: m
            validator: "<5"
          fallback: rollback
`,
		"onInconclusive typo": `
        - compare:
            name: x
            provider: prom
            baseline: m{v="a"}
            candidate: m{v="b"}
            window: 30s
            onInconclusive: maybe
`,
	}
	for name, checks := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := verdictCompiler(store).Compile(verdictDoc(checks)); err == nil {
				t.Errorf("compiled successfully, want error")
			}
		})
	}
}

// queryOnlyQuerier implements Querier but not MomentsQuerier.
type queryOnlyQuerier struct{}

func (queryOnlyQuerier) Query(context.Context, string) (float64, error) { return 0, nil }

func TestCompareNeedsMomentsCapableProvider(t *testing.T) {
	c := &Compiler{Providers: map[string]Querier{"prom": queryOnlyQuerier{}}}
	_, err := c.Compile(verdictDoc(compareYAML))
	if err == nil || !strings.Contains(err.Error(), "moments") {
		t.Errorf("err = %v, want moments-capability error", err)
	}
}

func TestOnInconclusivePassDecodes(t *testing.T) {
	store := metrics.NewStore()
	c := compileVerdict(t, store, `
        - compare:
            name: latency-ab
            provider: prom
            baseline: m{v="a"}
            candidate: m{v="b"}
            window: 30s
            onInconclusive: pass
`)
	if !c.InconclusivePass {
		t.Error("onInconclusive: pass not decoded")
	}
}
