// Package sketch implements a mergeable quantile sketch in the DDSketch
// family (Masson, Rim, Lee: "DDSketch: a fast and fully-mergeable quantile
// sketch with relative-error guarantees", VLDB 2019): values are counted
// in logarithmically sized buckets, so any quantile estimate is within a
// configurable *relative value error* α of a true sample value at that
// rank, regardless of the data's scale or distribution.
//
// # Error model
//
// For a sketch built with accuracy α, Quantile(q) returns an estimate x̂
// such that |x̂ − x_q| ≤ α·|x_q|, where x_q is the empirical q-quantile
// (the value of rank ⌈q·n⌉ among the n inserted values). The guarantee is
// on the value axis, not the rank axis: a p99 latency of 250ms is reported
// in [250·(1−α), 250·(1+α)] ms. The default α of 1% means fleet p99s are
// exact enough for verdict checks while a sketch stays a few KB.
//
// Two properties make the sketch the right federation unit:
//
//   - Merging is lossless: Merge adds bucket counts, and the merged sketch
//     is byte-identical to the sketch of the concatenated sample streams.
//     N proxy replicas can sketch locally and ship summaries; the
//     federating store's merged quantiles carry the same α guarantee as if
//     every raw sample had been centralized.
//   - Insertion and merge are O(1) per bucket; the bucket count is bounded
//     (maxBuckets, default 2048), with the lowest buckets collapsing into
//     one when the bound is hit — the upper quantiles live testing cares
//     about (p90/p99) keep their guarantee; only quantiles that fall into
//     the collapsed low tail degrade.
//
// Unlike the P² estimator in internal/stats (fixed five markers, not
// mergeable, must be told its quantile up front), a sketch answers every
// quantile after the fact and merges across replicas — the property the
// fleet metrics federation is built on.
package sketch

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultAlpha is the relative accuracy used across the Bifrost federation
// layer: quantile estimates within 1% of a true sample value.
const DefaultAlpha = 0.01

// DefaultMaxBuckets bounds a sketch's memory. At α = 1% each bucket covers
// a ≈2% value band, so 2048 buckets span a dynamic range far beyond 2^40 —
// collapse only triggers on pathological inputs.
const DefaultMaxBuckets = 2048

// Sketch is a mergeable quantile sketch. The zero value is not usable;
// create sketches with New or FromSummary. A Sketch is not safe for
// concurrent use; callers synchronize (the federation agent folds samples
// under its own lock).
type Sketch struct {
	alpha      float64
	gamma      float64
	logGamma   float64
	maxBuckets int

	// pos and neg count values by logarithmic index: pos[i] counts values
	// in (γ^(i−1), γ^i], neg mirrors for negative magnitudes. zero counts
	// values whose magnitude is below the smallest representable bucket.
	pos  map[int]uint64
	neg  map[int]uint64
	zero uint64

	count     uint64
	sum       float64
	min, max  float64
	collapsed bool
}

// minIndexable is the smallest magnitude that gets its own bucket; values
// below it (including exact zeros) land in the zero bucket. Latencies and
// counter increments are far above this.
const minIndexable = 1e-9

// Option configures a Sketch.
type Option func(*Sketch)

// WithMaxBuckets bounds the per-sign bucket maps to n buckets each
// (default DefaultMaxBuckets). When a map would exceed the bound its
// lowest-index buckets collapse into one, preserving upper quantiles.
func WithMaxBuckets(n int) Option {
	return func(s *Sketch) {
		if n > 1 {
			s.maxBuckets = n
		}
	}
}

// New creates an empty sketch with relative accuracy alpha in (0, 1).
func New(alpha float64, opts ...Option) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		alpha = DefaultAlpha
	}
	s := &Sketch{
		alpha:      alpha,
		gamma:      (1 + alpha) / (1 - alpha),
		maxBuckets: DefaultMaxBuckets,
		pos:        make(map[int]uint64, 64),
		neg:        make(map[int]uint64),
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}
	s.logGamma = math.Log(s.gamma)
	for _, o := range opts {
		o(s)
	}
	return s
}

// Alpha returns the sketch's relative accuracy.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of inserted values.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of inserted values.
func (s *Sketch) Sum() float64 { return s.sum }

// Min returns the smallest inserted value (+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the largest inserted value (−Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// Collapsed reports whether low buckets have been collapsed (the low-tail
// guarantee is degraded; upper quantiles are unaffected).
func (s *Sketch) Collapsed() bool { return s.collapsed }

// index maps a positive magnitude to its logarithmic bucket index.
func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// value maps a bucket index back to the bucket's midpoint estimate
// 2γ^i/(γ+1), the value within α of everything the bucket counted.
func (s *Sketch) value(i int) float64 {
	return 2 * math.Exp(float64(i)*s.logGamma) / (s.gamma + 1)
}

// Add inserts one value. NaN is ignored.
func (s *Sketch) Add(v float64) { s.AddN(v, 1) }

// AddN inserts a value n times.
func (s *Sketch) AddN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) {
		return
	}
	switch {
	case v > minIndexable:
		s.bump(s.pos, s.index(v), n)
	case v < -minIndexable:
		s.bump(s.neg, s.index(-v), n)
	default:
		s.zero += n
	}
	s.count += n
	s.sum += v * float64(n)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

func (s *Sketch) bump(m map[int]uint64, idx int, n uint64) {
	m[idx] += n
	if len(m) > s.maxBuckets {
		collapseLowest(m)
		s.collapsed = true
	}
}

// collapseLowest folds the two lowest-index buckets together, preserving
// the counts (and therefore every rank) while shrinking the map by one.
// Estimates for the collapsed tail shift toward the surviving bucket's
// value; upper quantiles are untouched.
func collapseLowest(m map[int]uint64) {
	lo1, lo2 := math.MaxInt, math.MaxInt
	for i := range m {
		if i < lo1 {
			lo1, lo2 = i, lo1
		} else if i < lo2 {
			lo2 = i
		}
	}
	m[lo2] += m[lo1]
	delete(m, lo1)
}

// ErrAlphaMismatch is returned when merging sketches built with different
// relative accuracies; their bucket grids are incompatible.
var ErrAlphaMismatch = errors.New("sketch: cannot merge sketches with different alpha")

// Merge folds other into s. Both sketches must share the same alpha; the
// merge is lossless — s afterwards equals the sketch of both input
// streams concatenated. other is not modified.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if math.Abs(other.alpha-s.alpha) > 1e-12 {
		return fmt.Errorf("%w: %v vs %v", ErrAlphaMismatch, s.alpha, other.alpha)
	}
	for i, n := range other.pos {
		s.bump(s.pos, i, n)
	}
	for i, n := range other.neg {
		s.bump(s.neg, i, n)
	}
	s.zero += other.zero
	s.count += other.count
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.collapsed = s.collapsed || other.collapsed
	return nil
}

// Quantile returns the estimate for quantile q in [0, 1]; NaN when the
// sketch is empty. The estimate is within relative error α of the
// empirical q-quantile of the inserted values (see the package comment for
// the exact guarantee and the collapsed-tail caveat).
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// rank is 1-based: the ⌈q·n⌉-th smallest value.
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}

	// Walk the value axis upward: negative buckets from most negative
	// (largest magnitude index) to least, then zeros, then positives.
	var seen uint64
	for _, i := range sortedIndices(s.neg, true) {
		seen += s.neg[i]
		if seen >= rank {
			return clamp(-s.value(i), s.min, s.max)
		}
	}
	seen += s.zero
	if seen >= rank {
		return 0
	}
	for _, i := range sortedIndices(s.pos, false) {
		seen += s.pos[i]
		if seen >= rank {
			return clamp(s.value(i), s.min, s.max)
		}
	}
	return s.max
}

// clamp bounds an estimate by the observed extremes: the true sample lies
// inside [min, max], and the bucket midpoint never needs to leave it.
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sortedIndices(m map[int]uint64, descending bool) []int {
	idx := make([]int, 0, len(m))
	for i := range m {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	if descending {
		for l, r := 0, len(idx)-1; l < r; l, r = l+1, r-1 {
			idx[l], idx[r] = idx[r], idx[l]
		}
	}
	return idx
}

// Summary is the wire form of a sketch: what a federation agent ships and
// the federating store reconstructs. Buckets are parallel index/count
// slices sorted by index, so encoding is deterministic and compact.
type Summary struct {
	Alpha     float64  `json:"alpha"`
	Count     uint64   `json:"count"`
	Sum       float64  `json:"sum"`
	Min       float64  `json:"min"`
	Max       float64  `json:"max"`
	Zero      uint64   `json:"zero,omitempty"`
	PosIdx    []int    `json:"posIdx,omitempty"`
	PosCnt    []uint64 `json:"posCnt,omitempty"`
	NegIdx    []int    `json:"negIdx,omitempty"`
	NegCnt    []uint64 `json:"negCnt,omitempty"`
	Collapsed bool     `json:"collapsed,omitempty"`
}

// Export snapshots the sketch into its wire form.
func (s *Sketch) Export() Summary {
	out := Summary{
		Alpha: s.alpha, Count: s.count, Sum: s.sum,
		Min: s.min, Max: s.max, Zero: s.zero, Collapsed: s.collapsed,
	}
	out.PosIdx, out.PosCnt = exportBuckets(s.pos)
	out.NegIdx, out.NegCnt = exportBuckets(s.neg)
	return out
}

func exportBuckets(m map[int]uint64) ([]int, []uint64) {
	if len(m) == 0 {
		return nil, nil
	}
	idx := sortedIndices(m, false)
	cnt := make([]uint64, len(idx))
	for i, b := range idx {
		cnt[i] = m[b]
	}
	return idx, cnt
}

// FromSummary reconstructs a sketch from its wire form, validating the
// bucket slices.
func FromSummary(sum Summary) (*Sketch, error) {
	if !(sum.Alpha > 0 && sum.Alpha < 1) {
		return nil, fmt.Errorf("sketch: bad alpha %v in summary", sum.Alpha)
	}
	if len(sum.PosIdx) != len(sum.PosCnt) || len(sum.NegIdx) != len(sum.NegCnt) {
		return nil, errors.New("sketch: summary bucket slices misaligned")
	}
	s := New(sum.Alpha)
	s.count = sum.Count
	s.sum = sum.Sum
	s.zero = sum.Zero
	s.collapsed = sum.Collapsed
	s.min, s.max = sum.Min, sum.Max
	if sum.Count == 0 {
		s.min, s.max = math.Inf(1), math.Inf(-1)
	}
	var total uint64 = sum.Zero
	for i, b := range sum.PosIdx {
		s.pos[b] = sum.PosCnt[i]
		total += sum.PosCnt[i]
	}
	for i, b := range sum.NegIdx {
		s.neg[b] = sum.NegCnt[i]
		total += sum.NegCnt[i]
	}
	if total != sum.Count {
		return nil, fmt.Errorf("sketch: summary counts inconsistent (%d buckets vs %d total)",
			total, sum.Count)
	}
	return s, nil
}

// MergeSummary folds a wire-form summary directly into s without building
// an intermediate sketch — the federating store's hot ingest path.
func (s *Sketch) MergeSummary(sum Summary) error {
	other, err := FromSummary(sum)
	if err != nil {
		return err
	}
	return s.Merge(other)
}
