package dsl

import (
	"strings"
	"testing"
)

const hierYAML = `
name: multi
deployment:
  services:
    - service: shop
      target: flag
      versions:
        - name: stable
          endpoint: stable.svc:80
        - name: canary
          endpoint: canary-${region}.svc:80
strategy:
  phases:
    - phase: regions
      rollouts:
        regions: [eu, us, ap]
        quorum: 2
        onChildFail: fallback
        strategy:
          phases:
            - phase: canary
              description: canary in ${region}
              duration: 5m
              routes:
                - route:
                    service: shop
                    weights: {stable: 90, canary: 10}
              on:
                success: full
                failure: fallback
            - phase: full
              routes:
                - route:
                    service: shop
                    weights: {canary: 100}
            - phase: fallback
              routes:
                - route:
                    service: shop
                    weights: {stable: 100}
      on:
        success: done
        failure: holdback
    - phase: done
    - phase: holdback
`

func TestRolloutsCompile(t *testing.T) {
	s, err := Compile(hierYAML)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st, ok := s.Automaton.State("regions")
	if !ok || st.Sub == nil {
		t.Fatal("regions phase did not compile into a sub-rollout state")
	}
	sub := st.Sub
	if len(sub.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(sub.Children))
	}
	if sub.Quorum != 2 || sub.OnChildFail != "fallback" {
		t.Errorf("quorum=%d onChildFail=%q, want 2/fallback", sub.Quorum, sub.OnChildFail)
	}
	for i, want := range []struct{ name, region string }{
		{"multi-eu", "eu"}, {"multi-us", "us"}, {"multi-ap", "ap"},
	} {
		c := sub.Children[i]
		if c.Name != want.name || c.Region != want.region {
			t.Errorf("child %d = %s/%s, want %s/%s", i, c.Name, c.Region, want.name, want.region)
		}
		if c.SuccessFinal != "full" {
			t.Errorf("child %s success final = %q, want full (derived)", c.Name, c.SuccessFinal)
		}
		// The stamped child must be a standalone compilable document with
		// the region substituted into its deployment.
		child, err := Compile(c.Source)
		if err != nil {
			t.Fatalf("child %s source does not recompile: %v", c.Name, err)
		}
		if child.Name != want.name {
			t.Errorf("recompiled child name = %q, want %q", child.Name, want.name)
		}
		v, _ := child.Services[0].FindVersion("canary")
		if wantEP := "canary-" + want.region + ".svc:80"; v.Endpoint != wantEP {
			t.Errorf("child %s canary endpoint = %q, want %q", c.Name, v.Endpoint, wantEP)
		}
		canary, _ := child.Automaton.State("canary")
		if !strings.Contains(canary.Description, want.region) {
			t.Errorf("child %s description %q not stamped with region", c.Name, canary.Description)
		}
	}
	// The quorum decision maps through δ: 0 → failure, 1 → success.
	if len(st.Thresholds) != 1 || st.Thresholds[0] != 0 {
		t.Errorf("sub state thresholds = %v, want [0]", st.Thresholds)
	}
	if len(st.Transitions) != 2 || st.Transitions[0] != "holdback" || st.Transitions[1] != "done" {
		t.Errorf("sub state transitions = %v, want [holdback done]", st.Transitions)
	}
}

// TestRolloutsInsideTemplate combines PR 7's matrix templates with
// rollouts: the template pass must leave ${region} references inside the
// rollouts block for the per-region stamping.
func TestRolloutsInsideTemplate(t *testing.T) {
	src := strings.Replace(hierYAML, "name: multi\n",
		"name: multi-${tier}\nmatrix:\n  tier: [free, paid]\n", 1)
	// ${region} outside the rollouts block is undefined at template time;
	// keep it inside only for this combination test.
	src = strings.Replace(src, "canary-${region}.svc:80", "canary.svc:80", 1)
	runs, err := CompileAll(src)
	if err != nil {
		t.Fatalf("CompileAll: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("expanded to %d runs, want 2", len(runs))
	}
	for i, wantTier := range []string{"free", "paid"} {
		s := runs[i].Strategy
		if s.Name != "multi-"+wantTier {
			t.Errorf("run %d name = %q", i, s.Name)
		}
		st, _ := s.Automaton.State("regions")
		if st == nil || st.Sub == nil || len(st.Sub.Children) != 3 {
			t.Fatalf("run %q lost its sub-rollout", s.Name)
		}
		if got := st.Sub.Children[0].Name; got != "multi-"+wantTier+"-eu" {
			t.Errorf("run %q child 0 = %q", s.Name, got)
		}
		canary, _ := st.Sub.Children[0].Strategy.Automaton.State("canary")
		if !strings.Contains(canary.Description, "eu") {
			t.Errorf("template pass consumed ${region}: description %q", canary.Description)
		}
	}
}

func TestRolloutsCompileErrors(t *testing.T) {
	cases := []struct {
		name, from, to, want string
	}{
		{"empty regions", "regions: [eu, us, ap]", "regions: []", "regions list is required"},
		{"missing strategy", "        strategy:\n          phases:", "        notstrategy:\n          phases:", "strategy block is required"},
		{"quorum too high", "quorum: 2", "quorum: 7", "quorum 7 out of range"},
		{"duration forbidden", "      rollouts:", "      duration: 5m\n      rollouts:", "not allowed on a rollouts phase"},
		{"bad policy", "onChildFail: fallback", "onChildFail: detonate", "not fallback|abort|continue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := strings.Replace(hierYAML, tc.from, tc.to, 1)
			if src == hierYAML {
				t.Fatalf("replacement %q did not apply", tc.from)
			}
			_, err := Compile(src)
			if err == nil {
				t.Fatal("want compile error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
