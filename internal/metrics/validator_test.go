package metrics

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestValidatorComparisons(t *testing.T) {
	cases := []struct {
		src   string
		value float64
		want  bool
	}{
		{"<5", 4, true},
		{"<5", 5, false},
		{"<=5", 5, true},
		{">150", 151, true},
		{">150", 150, false},
		{">=150", 150, true},
		{"==0", 0, true},
		{"==0", 0.1, false},
		{"=0", 0, true}, // single '=' alias
		{"!=1", 2, true},
		{"!=1", 1, false},
		{" < 5 ", 4, true}, // whitespace tolerated
		{"10..20", 10, true},
		{"10..20", 20, true},
		{"10..20", 9.99, false},
		{"10..20", 20.01, false},
		{"<-3", -4, true},
		{"<-3", 0, false},
	}
	for _, c := range cases {
		v, err := ParseValidator(c.src)
		if err != nil {
			t.Errorf("ParseValidator(%q): %v", c.src, err)
			continue
		}
		if got := v.Apply(c.value); got != c.want {
			t.Errorf("(%q).Apply(%v) = %v, want %v", c.src, c.value, got, c.want)
		}
	}
}

func TestValidatorParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "   ", "<", "<abc", "~5", "5", "1..", "..2", "20..10", "== five",
	} {
		if _, err := ParseValidator(src); err == nil {
			t.Errorf("ParseValidator(%q) succeeded, want error", src)
		}
	}
}

func TestValidatorStringAndZero(t *testing.T) {
	v, err := ParseValidator("<5")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "<5" {
		t.Errorf("String = %q", v.String())
	}
	if v.IsZero() {
		t.Error("parsed validator IsZero")
	}
	var zero Validator
	if !zero.IsZero() {
		t.Error("zero validator not IsZero")
	}
	if zero.Apply(1) {
		t.Error("zero validator matched")
	}
}

// Property: "<x" and ">=x" are complementary for every value, as are
// "<=x"/">x" and "==x"/"!=x".
func TestValidatorComplementProperty(t *testing.T) {
	f := func(bound int16, value float64) bool {
		b := strconv.FormatFloat(float64(bound), 'g', -1, 64)
		pairs := [][2]string{
			{"<", ">="},
			{"<=", ">"},
			{"==", "!="},
		}
		for _, pair := range pairs {
			v1, err1 := ParseValidator(pair[0] + b)
			v2, err2 := ParseValidator(pair[1] + b)
			if err1 != nil || err2 != nil {
				return false
			}
			if v1.Apply(value) == v2.Apply(value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: range validator a..b accepts exactly the values that satisfy
// both >=a and <=b.
func TestValidatorRangeConjunctionProperty(t *testing.T) {
	f := func(a, b int16, value float64) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		los := strconv.FormatFloat(lo, 'g', -1, 64)
		his := strconv.FormatFloat(hi, 'g', -1, 64)
		rng, err := ParseValidator(los + ".." + his)
		if err != nil {
			return false
		}
		ge, _ := ParseValidator(">=" + los)
		le, _ := ParseValidator("<=" + his)
		return rng.Apply(value) == (ge.Apply(value) && le.Apply(value))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkValidatorApply(b *testing.B) {
	v, err := ParseValidator("<150")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Apply(float64(i % 300))
	}
}
