package stats

import (
	"fmt"
	"math"
)

// SPRTDecision is the state of a sequential probability ratio test.
type SPRTDecision int

// SPRT outcomes. AcceptH0 means the null hypothesis (healthy, error rate
// p0) is accepted; AcceptH1 means the alternative (degraded, error rate
// p1) is accepted; Undecided means more data is needed.
const (
	Undecided SPRTDecision = iota
	AcceptH0
	AcceptH1
)

// String implements fmt.Stringer.
func (d SPRTDecision) String() string {
	switch d {
	case AcceptH0:
		return "accept-h0"
	case AcceptH1:
		return "accept-h1"
	default:
		return "undecided"
	}
}

// SPRT is Wald's sequential probability ratio test for a Bernoulli
// parameter: it watches a stream of (failures, trials) batches and decides
// between H0: p = P0 (healthy) and H1: p = P1 (degraded) as soon as the
// accumulated log-likelihood ratio crosses a boundary — typically long
// before a fixed-horizon test would conclude. This is the engine of the
// DSL's `sequential` check.
//
// SPRT is not safe for concurrent use; the engine executes a state's
// checks from a single runner goroutine.
type SPRT struct {
	// P0 and P1 are the hypothesized Bernoulli parameters, 0 < P0 < P1 < 1.
	P0, P1 float64
	// Upper and Lower are the decision boundaries on the log-likelihood
	// ratio: crossing Upper accepts H1, crossing Lower accepts H0.
	Upper, Lower float64

	llr       float64
	trials    int
	failures  int
	concluded SPRTDecision
}

// NewSPRT builds a test of H0: p = p0 against H1: p = p1 with the given
// type-I error α (accepting H1 when H0 holds) and type-II error β
// (accepting H0 when H1 holds), using Wald's boundary approximations
// A = ln((1−β)/α) and B = ln(β/(1−α)).
func NewSPRT(p0, p1, alpha, beta float64) (*SPRT, error) {
	if !(0 < p0 && p0 < p1 && p1 < 1) {
		return nil, fmt.Errorf("stats: sprt needs 0 < p0 < p1 < 1 (got p0=%v p1=%v)", p0, p1)
	}
	if !(0 < alpha && alpha < 1) || !(0 < beta && beta < 1) {
		return nil, fmt.Errorf("stats: sprt needs α, β in (0,1) (got %v, %v)", alpha, beta)
	}
	return &SPRT{
		P0:    p0,
		P1:    p1,
		Upper: math.Log((1 - beta) / alpha),
		Lower: math.Log(beta / (1 - alpha)),
	}, nil
}

// Observe folds a batch of trials (failures of them failed) into the
// log-likelihood ratio and returns the updated decision. Once the test has
// concluded, further batches do not change the decision.
func (s *SPRT) Observe(failures, trials int) SPRTDecision {
	if s.concluded != Undecided || trials <= 0 {
		return s.concluded
	}
	if failures < 0 {
		failures = 0
	}
	if failures > trials {
		failures = trials
	}
	k, n := float64(failures), float64(trials)
	s.llr += k*math.Log(s.P1/s.P0) + (n-k)*math.Log((1-s.P1)/(1-s.P0))
	s.trials += trials
	s.failures += failures
	switch {
	case s.llr >= s.Upper:
		s.concluded = AcceptH1
	case s.llr <= s.Lower:
		s.concluded = AcceptH0
	}
	return s.concluded
}

// LLR returns the accumulated log-likelihood ratio.
func (s *SPRT) LLR() float64 { return s.llr }

// Decision returns the current decision without observing new data.
func (s *SPRT) Decision() SPRTDecision { return s.concluded }

// Totals returns the accumulated failure and trial counts.
func (s *SPRT) Totals() (failures, trials int) { return s.failures, s.trials }

// Reset clears all accumulated evidence so the test can be reused, e.g.
// when the engine re-enters an automaton state after a pause or a
// self-transition.
func (s *SPRT) Reset() {
	s.llr = 0
	s.trials = 0
	s.failures = 0
	s.concluded = Undecided
}
