//go:build !race

// Allocation counts differ under the race detector's instrumentation, so
// these regression pins only run in the plain test/CI lanes.

package engine

import (
	"testing"
	"time"
)

// publishAndDrain measures the pooled publish pipeline end to end for subs
// frame subscribers: stamp, encode-once, mirror reduction, and fan-out,
// with every delivered frame received and released (as ServeEventStream
// does) so the pool reaches steady state.
func publishAndDrain(t *testing.T, subs, iters int) float64 {
	t.Helper()
	e := New()
	defer e.Shutdown()

	chans := make([]<-chan *frame, subs)
	cancels := make([]func(), subs)
	for i := range chans {
		chans[i], cancels[i] = e.bus.subscribeFrames(4)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	ev := Event{Strategy: "bench", Type: EventCheckExecuted, Time: time.Unix(1700000000, 0)}
	drain := func() {
		e.publish(nil, ev)
		for _, ch := range chans {
			f := <-ch
			_ = f.data()
			f.release()
		}
	}
	// Warm-up: fill the frame pool and grow the mirror's history slice to
	// its steady-state capacity (the history is trimmed in place once it
	// hits its cap, so growth stops).
	for i := 0; i < 5000; i++ {
		drain()
	}
	return testing.AllocsPerRun(iters, drain)
}

// The publish fan-out must be allocation-flat: delivering to 64 subscribers
// is pointer sends of one shared pooled frame, so per-event allocations may
// not grow with the subscriber count, and the absolute count stays at most
// one amortized allocation per event.
func TestPublishFanoutAllocationFlat(t *testing.T) {
	one := publishAndDrain(t, 1, 2000)
	many := publishAndDrain(t, 64, 2000)
	t.Logf("allocs/event: 1 subscriber=%.3f, 64 subscribers=%.3f", one, many)
	if many > one+0.5 {
		t.Fatalf("fan-out allocations grow with subscribers: %.3f (1 sub) vs %.3f (64 subs)", one, many)
	}
	if many > 1.0 {
		t.Fatalf("publish path allocates %.3f objects per event with 64 subscribers, want <= 1", many)
	}
}
