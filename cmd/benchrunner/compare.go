package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// compareBench prints per-metric deltas between two BENCH_*.json files so
// the committed trajectory is diffable in PR review: every numeric leaf of
// the two documents is flattened to a dotted path and compared. With a
// positive tolerance it also gates: a known-direction metric present in
// both files that regresses by more than tolerance (a fraction, 0.2 = 20%)
// makes the comparison return an error, so CI can fail the build on a perf
// regression between committed baselines.
func compareBench(w io.Writer, oldPath, newPath string, tolerance float64) error {
	oldVals, err := loadBenchMetrics(oldPath)
	if err != nil {
		return err
	}
	newVals, err := loadBenchMetrics(newPath)
	if err != nil {
		return err
	}

	keys := make([]string, 0, len(oldVals)+len(newVals))
	seen := make(map[string]bool, len(oldVals)+len(newVals))
	for k := range oldVals {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newVals {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var regressions []string
	fmt.Fprintf(w, "%-40s %14s %14s %14s %9s\n", "metric", "old", "new", "delta", "change")
	for _, k := range keys {
		ov, haveOld := oldVals[k]
		nv, haveNew := newVals[k]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-40s %14s %14.3f %14s %9s\n", k, "-", nv, "-", "new")
		case !haveNew:
			fmt.Fprintf(w, "%-40s %14.3f %14s %14s %9s\n", k, ov, "-", "-", "gone")
		default:
			change := "-"
			if ov != 0 {
				change = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			mark := ""
			if tolerance > 0 && regressed(k, ov, nv, tolerance) {
				mark = "  REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.3f -> %.3f (%s, tolerance %.0f%%)", k, ov, nv, change, tolerance*100))
			}
			fmt.Fprintf(w, "%-40s %14.3f %14.3f %+14.3f %9s%s\n", k, ov, nv, nv-ov, change, mark)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond tolerance:\n  %s",
			len(regressions), strings.Join(regressions, "\n  "))
	}
	return nil
}

// metricDirection classifies a flattened metric key by name: +1 means
// higher is better (throughputs, speedups), -1 lower is better (latency
// tails, error counts, wall times), 0 unknown or config — report-only,
// never gated. The name conventions are the BENCH_*.json vocabulary.
func metricDirection(key string) int {
	if strings.HasPrefix(key, "config.") {
		return 0
	}
	k := strings.ToLower(key)
	for _, s := range []string{"persec", "rps", "speedup"} {
		if strings.Contains(k, s) {
			return 1
		}
	}
	for _, s := range []string{"p99", "p95", "errors", "wallms", "latency", "aborted"} {
		if strings.Contains(k, s) {
			return -1
		}
	}
	return 0
}

// regressed reports whether new is worse than old by more than tolerance
// in the metric's known direction. A lower-is-better metric with a zero
// baseline (proxyErrors: 0) regresses on any increase.
func regressed(key string, old, new, tolerance float64) bool {
	switch metricDirection(key) {
	case 1:
		return new < old*(1-tolerance)
	case -1:
		return new > old*(1+tolerance)
	}
	return false
}

// loadBenchMetrics reads a bench JSON file and flattens its numeric leaves
// into dotted-path keys ("config.events", "pipelineEventsPerSec", ...).
func loadBenchMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flattenNumbers("", doc, out)
	return out, nil
}

func flattenNumbers(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case float64:
		out[prefix] = t
	case map[string]any:
		for k, sub := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenNumbers(key, sub, out)
		}
	case []any:
		for i, sub := range t {
			flattenNumbers(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	}
}
