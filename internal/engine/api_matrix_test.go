package engine

import (
	"context"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"bifrost/internal/dsl"
	"bifrost/internal/target"
)

// matrixYAML is a 2×2 template over the flag target: one POST to
// /api/v2/runs must schedule all four expansions.
const matrixYAML = `
name: canary-${region}-${cohort}
matrix:
  region: [eu, us]
  cohort: [free, paid]
deployment:
  services:
    - service: shop
      target: flag
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
strategy:
  phases:
    - phase: canary
      duration: 2ms
      routes:
        - route:
            service: shop
            weights:
              stable: 100
      on:
        success: done
    - phase: done
      routes:
        - route:
            service: shop
            weights:
              stable: 100
`

func matrixFixture(t *testing.T) (*Engine, *Client) {
	t.Helper()
	reg := target.NewRegistry()
	if err := reg.Register(target.KindFlag, &recordingTarget{}); err != nil {
		t.Fatal(err)
	}
	eng := New(WithConfigurator(NewTargetConfigurator(reg)))
	t.Cleanup(eng.Shutdown)
	expand := func(src string) ([]ExpandedStrategy, error) {
		runs, err := dsl.CompileAll(src)
		if err != nil {
			return nil, err
		}
		out := make([]ExpandedStrategy, len(runs))
		for i, r := range runs {
			out[i] = ExpandedStrategy{Strategy: r.Strategy, Source: r.Source, Vars: r.Vars}
		}
		return out, nil
	}
	ts := httptest.NewServer(NewAPI(eng, dsl.Compile).WithExpander(expand).Handler())
	t.Cleanup(ts.Close)
	return eng, &Client{BaseURL: ts.URL}
}

func TestAPIScheduleMatrixTemplate(t *testing.T) {
	eng, c := matrixFixture(t)
	ctx := context.Background()

	sts, err := c.ScheduleAll(ctx, matrixYAML)
	if err != nil {
		t.Fatalf("ScheduleAll: %v", err)
	}
	if len(sts) != 4 {
		t.Fatalf("scheduled %d runs, want 4", len(sts))
	}
	var names []string
	for _, st := range sts {
		names = append(names, st.Strategy)
	}
	sort.Strings(names)
	want := []string{"canary-eu-free", "canary-eu-paid", "canary-us-free", "canary-us-paid"}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("run names = %v, want %v", names, want)
			break
		}
	}

	// Every expansion is a first-class run: individually fetchable and in
	// the listing.
	for _, r := range eng.Runs() {
		waitDone(t, r)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 4 {
		t.Errorf("listed %d runs, want 4", len(list))
	}
	st, err := c.Get(ctx, "canary-us-paid")
	if err != nil {
		t.Fatalf("Get expanded run: %v", err)
	}
	if st.State != RunCompleted {
		t.Errorf("expanded run state = %s", st.State)
	}
}

func TestAPIScheduleSingleStillReturnsObject(t *testing.T) {
	_, c := matrixFixture(t)
	// A non-template source keeps the single-object wire shape: the v2
	// single-run client path is unchanged.
	single := strings.Replace(matrixYAML, "name: canary-${region}-${cohort}", "name: solo", 1)
	single = strings.Replace(single, "matrix:\n  region: [eu, us]\n  cohort: [free, paid]\n", "", 1)
	st, err := c.Schedule(context.Background(), single)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if st.Strategy != "solo" {
		t.Errorf("strategy = %q", st.Strategy)
	}
}

func TestAPIScheduleTemplateRejectedBySingleClient(t *testing.T) {
	_, c := matrixFixture(t)
	if _, err := c.Schedule(context.Background(), matrixYAML); err == nil {
		t.Fatal("single-run Schedule accepted a 4-run template")
	}
}

func TestAPIDryRunMatrixTemplate(t *testing.T) {
	eng, c := matrixFixture(t)
	reports, err := c.DryRunAll(context.Background(), matrixYAML)
	if err != nil {
		t.Fatalf("DryRunAll: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("dry-run reports = %d, want 4", len(reports))
	}
	for _, r := range reports {
		if !strings.HasPrefix(r.Strategy, "canary-") {
			t.Errorf("report strategy = %q", r.Strategy)
		}
	}
	if len(eng.Runs()) != 0 {
		t.Error("dry-run enacted runs")
	}
}

func TestAPIScheduleTemplateIsAtomic(t *testing.T) {
	eng, c := matrixFixture(t)
	ctx := context.Background()

	// Occupy one of the four expanded names: the template POST must fail
	// as a whole and unwind the siblings it had already scheduled.
	blocker := strings.Replace(matrixYAML, "name: canary-${region}-${cohort}",
		"name: canary-us-paid", 1)
	blocker = strings.Replace(blocker, "matrix:\n  region: [eu, us]\n  cohort: [free, paid]\n", "", 1)
	blocker = strings.Replace(blocker, "duration: 2ms", "duration: 10s", 1)
	if _, err := c.Schedule(ctx, blocker); err != nil {
		t.Fatal(err)
	}

	_, err := c.ScheduleAll(ctx, matrixYAML)
	if err == nil {
		t.Fatal("conflicting template scheduled")
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Errorf("error does not mention sibling unwind: %v", err)
	}
	// Only the pre-existing run survives; the engine is back where the
	// failed POST found it (terminal sibling runs are removed).
	alive := 0
	for _, r := range eng.Runs() {
		st := r.Status()
		if st.Strategy == "canary-us-paid" && st.State == RunRunning {
			alive++
			continue
		}
		t.Errorf("leftover run %q in state %s after unwind", st.Strategy, st.State)
	}
	if alive != 1 {
		t.Errorf("blocker run missing after unwind")
	}
}
