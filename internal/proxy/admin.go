package proxy

import (
	"context"
	"net/http"

	"bifrost/internal/httpx"
)

// Admin API, served under /_bifrost/ on the proxy's listener:
//
//	PUT /_bifrost/config    — engine pushes a routing configuration
//	GET /_bifrost/config    — inspect the active configuration
//	GET /_bifrost/mappings  — materialized sticky user mappings (M)
//	GET /_bifrost/metrics   — text exposition of proxy metrics
//	GET /_bifrost/healthy   — liveness
func (p *Proxy) adminHandler() http.Handler {
	p.adminOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("PUT /_bifrost/config", func(w http.ResponseWriter, r *http.Request) {
			var cfg Config
			if err := httpx.ReadJSON(r, &cfg); err != nil {
				httpx.WriteError(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := p.SetConfig(cfg); err != nil {
				httpx.WriteError(w, http.StatusConflict, err.Error())
				return
			}
			httpx.WriteJSON(w, http.StatusOK, map[string]any{
				"service":    p.service,
				"generation": cfg.Generation,
			})
		})
		mux.HandleFunc("GET /_bifrost/config", func(w http.ResponseWriter, r *http.Request) {
			httpx.WriteJSON(w, http.StatusOK, p.Config())
		})
		mux.HandleFunc("GET /_bifrost/mappings", func(w http.ResponseWriter, r *http.Request) {
			httpx.WriteJSON(w, http.StatusOK, p.Mappings())
		})
		mux.Handle("GET /_bifrost/metrics", p.registry.Handler())
		mux.HandleFunc("GET /_bifrost/healthy", func(w http.ResponseWriter, r *http.Request) {
			httpx.WriteJSON(w, http.StatusOK, map[string]string{
				"status":  "ok",
				"service": p.service,
			})
		})
		p.adminMux = mux
	})
	return p.adminMux
}

// Client configures remote proxies over their admin API; this is the
// engine-side counterpart ("the engine updates the affected proxies").
type Client struct {
	// BaseURL is the proxy root, e.g. "http://127.0.0.1:8081".
	BaseURL string
}

// SetConfig pushes a routing configuration.
func (c *Client) SetConfig(ctx context.Context, cfg Config) error {
	return httpx.PutJSON(ctx, c.BaseURL+"/_bifrost/config", cfg, nil)
}

// GetConfig fetches the active configuration.
func (c *Client) GetConfig(ctx context.Context) (Config, error) {
	var cfg Config
	err := httpx.GetJSON(ctx, c.BaseURL+"/_bifrost/config", &cfg)
	return cfg, err
}

// Healthy checks proxy liveness.
func (c *Client) Healthy(ctx context.Context) error {
	var out map[string]string
	return httpx.GetJSON(ctx, c.BaseURL+"/_bifrost/healthy", &out)
}
