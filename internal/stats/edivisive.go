package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// ChangePoint is the result of an E-Divisive means scan over a series.
type ChangePoint struct {
	// Index is the estimated change location: the first index of the
	// right-hand segment at the best split.
	Index int
	// Stat is the maximal scaled energy statistic Q̂ over all admissible
	// splits — large when the two segments' distributions differ.
	Stat float64
	// P is the permutation-test p-value of Stat: the probability of a
	// split statistic at least this large if the series were exchangeable
	// (no change). NaN when the test ran with zero permutations.
	P float64
}

// EDivisive runs E-Divisive means change-point detection (Matteson &
// James, "A nonparametric approach for multiple change point analysis of
// multivariate data", JASA 2014 — the estimator popularized for CI
// performance trajectories by MongoDB's testing pipeline) on a univariate
// series.
//
// For every admissible split τ it computes the scaled sample energy
// divergence between the left and right segments,
//
//	Q(τ) = (m·k/n) · (2·B̄ − W̄x − W̄y)
//
// where B̄ is the mean pairwise |x−y| distance between segments and
// W̄x/W̄y the mean distances within each, and reports the maximizing
// split. Significance comes from a permutation test: the series is
// shuffled `permutations` times with a deterministic generator seeded by
// seed, and P is the fraction of shuffles whose own maximal Q reaches the
// observed one, with the +1 correction: P = (1 + #{Q_perm ≥ Q̂}) / (1 +
// permutations). The scan is distribution-free — it needs no normality or
// variance assumptions, which is exactly why it suits latency series.
//
// minSegment (≥ 2) is the minimum number of points each side of a split
// must keep. The incremental update makes the full scan O(n²) and each
// permutation O(n²); n is expected to be a sliding window of at most a
// few hundred points.
func EDivisive(series []float64, minSegment, permutations int, seed int64) (ChangePoint, error) {
	if minSegment < 2 {
		minSegment = 2
	}
	n := len(series)
	if n < 2*minSegment {
		return ChangePoint{}, fmt.Errorf("stats: edivisive needs ≥ %d points (got %d)", 2*minSegment, n)
	}
	for _, v := range series {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ChangePoint{}, fmt.Errorf("stats: edivisive series contains non-finite value %v", v)
		}
	}
	if permutations < 0 {
		permutations = 0
	}

	idx, stat := bestSplit(series, minSegment)
	cp := ChangePoint{Index: idx, Stat: stat, P: math.NaN()}
	if permutations == 0 {
		return cp, nil
	}
	rng := rand.New(rand.NewSource(seed))
	perm := append([]float64(nil), series...)
	ge := 0
	for p := 0; p < permutations; p++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if _, s := bestSplit(perm, minSegment); s >= stat {
			ge++
		}
	}
	cp.P = float64(1+ge) / float64(1+permutations)
	return cp, nil
}

// bestSplit scans every admissible split with O(n) incremental updates
// per step: advancing the split moves one point from the right segment to
// the left, and the three pairwise-distance sums (between, within-left,
// within-right) shift by that point's summed distances to each side.
func bestSplit(x []float64, minSegment int) (int, float64) {
	n := len(x)
	// Initialize at the smallest admissible split m = minSegment.
	m0 := minSegment
	var wx, wy, b float64
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			wx += math.Abs(x[i] - x[j])
		}
	}
	for i := m0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wy += math.Abs(x[i] - x[j])
		}
	}
	for i := 0; i < m0; i++ {
		for j := m0; j < n; j++ {
			b += math.Abs(x[i] - x[j])
		}
	}

	bestIdx, bestQ := m0, qStat(b, wx, wy, m0, n)
	for m := m0 + 1; m <= n-minSegment; m++ {
		// Move z = x[m-1] from the right segment into the left.
		z := x[m-1]
		var dLeft, dRight float64
		for i := 0; i < m-1; i++ {
			dLeft += math.Abs(x[i] - z)
		}
		for j := m; j < n; j++ {
			dRight += math.Abs(x[j] - z)
		}
		wx += dLeft
		wy -= dRight
		b += dRight - dLeft
		if q := qStat(b, wx, wy, m, n); q > bestQ {
			bestQ, bestIdx = q, m
		}
	}
	return bestIdx, bestQ
}

// qStat scales the energy divergence of a split at m into Q(τ).
func qStat(b, wx, wy float64, m, n int) float64 {
	fm, fk := float64(m), float64(n-m)
	e := 2*b/(fm*fk) - 2*wx/(fm*(fm-1)) - 2*wy/(fk*(fk-1))
	return fm * fk / (fm + fk) * e
}
