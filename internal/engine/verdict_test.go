package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"bifrost/internal/core"
	"bifrost/internal/dsl"
	"bifrost/internal/metrics"
)

// verdictStrategyYAML builds a canary strategy whose gate phase holds a
// long explicit duration (10s) so that only an early conclusion can end
// it quickly.
func verdictStrategyYAML(name, checks string) string {
	return `
name: ` + name + `
deployment:
  services:
    - service: svc
      versions:
        - name: stable
          endpoint: 127.0.0.1:9001
        - name: candidate
          endpoint: 127.0.0.1:9002
strategy:
  phases:
    - phase: gate
      duration: 10s
      routes:
        - route:
            service: svc
            weights: {stable: 90, candidate: 10}
      checks:
` + checks + `
      on:
        success: done
        failure: rollback
    - phase: done
      routes:
        - route:
            service: svc
            weights: {stable: 0, candidate: 100}
    - phase: rollback
      routes:
        - route:
            service: svc
            weights: {stable: 100, candidate: 0}
`
}

// trafficFeeder appends candidate request/error counters to a store in
// the background, simulating live traffic at a fixed error ratio.
type trafficFeeder struct {
	store *metrics.Store
	stop  chan struct{}
	done  chan struct{}
}

func feedTraffic(store *metrics.Store, requestsPerTick, errorsPerTick float64) *trafficFeeder {
	f := &trafficFeeder{store: store, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(f.done)
		var requests, errors float64
		labels := metrics.Labels{"version": "candidate"}
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				requests += requestsPerTick
				errors += errorsPerTick
				now := time.Now()
				f.store.Append("requests_total", labels, requests, now)
				f.store.Append("request_errors_total", labels, errors, now)
			case <-f.stop:
				return
			}
		}
	}()
	return f
}

func (f *trafficFeeder) Stop() {
	close(f.stop)
	<-f.done
}

func compileWithStore(t *testing.T, store *metrics.Store, yaml string) *core.Strategy {
	t.Helper()
	c := &dsl.Compiler{Providers: map[string]dsl.Querier{
		"prom": metrics.StoreQuerier{Store: store},
	}}
	s, err := c.Compile(yaml)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return s
}

// TestSequentialGateConcludesBeforeTimer is the acceptance scenario: a
// strategy whose gate state would run 10 seconds transitions early because
// the sequential check accepts H0 (healthy candidate), observed end to end
// through run events.
func TestSequentialGateConcludesBeforeTimer(t *testing.T) {
	store := metrics.NewStore()
	s := compileWithStore(t, store, verdictStrategyYAML("seq-early-pass", `
        - sequential:
            name: ab-gate
            provider: prom
            errors: request_errors_total{version="candidate"}
            total: requests_total{version="candidate"}
            p0: 0.02
            p1: 0.20
            intervalTime: 20ms
            intervalLimit: 400
`))
	feeder := feedTraffic(store, 3, 0) // healthy: zero errors
	defer feeder.Stop()

	eng := New()
	defer eng.Shutdown()
	events, cancel := eng.Subscribe(1024)
	defer cancel()

	start := time.Now()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	elapsed := time.Since(start)

	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "done" {
		t.Fatalf("path = %+v, want gate→done", st.Path)
	}
	// The gate state's timer is 10s; the early conclusion must beat it
	// comfortably.
	if elapsed > 5*time.Second {
		t.Errorf("run took %v; sequential conclusion should interrupt the 10s state", elapsed)
	}

	var concluded, transitioned bool
	deadline := time.After(5 * time.Second)
	for !(concluded && transitioned) {
		select {
		case ev := <-events:
			switch ev.Type {
			case EventCheckConcluded:
				concluded = true
				if ev.Check != "ab-gate" || ev.Verdict == nil ||
					ev.Verdict.Decision != core.DecisionPass {
					t.Errorf("check_concluded event = %+v", ev)
				}
			case EventTransition:
				transitioned = true
				if ev.Detail != "done" {
					t.Errorf("transition to %q, want done", ev.Detail)
				}
				if !concluded {
					t.Error("transition published before check_concluded")
				}
			case EventCompleted:
				if !(concluded && transitioned) {
					t.Fatalf("completed without conclude+transition (concluded=%v transitioned=%v)",
						concluded, transitioned)
				}
			}
		case <-deadline:
			t.Fatalf("events missing: concluded=%v transitioned=%v", concluded, transitioned)
		}
	}
}

// TestEarlyConclusionRefreshesSiblingChecks guards the aggregation
// semantics when a sequential gate passes early: a sibling timed compare
// check whose schedule was cancelled mid-flight gets one final fresh
// execution, so its (passing) verdict — not a stale mid-schedule
// "continue" — enters the outcome, and the run promotes.
func TestEarlyConclusionRefreshesSiblingChecks(t *testing.T) {
	store := metrics.NewStore()
	s := compileWithStore(t, store, verdictStrategyYAML("seq-pass-with-sibling", `
        - sequential:
            name: ab-gate
            provider: prom
            errors: request_errors_total{version="candidate"}
            total: requests_total{version="candidate"}
            p0: 0.02
            p1: 0.20
            intervalTime: 20ms
            intervalLimit: 400
        - compare:
            name: latency-ab
            provider: prom
            baseline: upstream_ms{version="stable"}
            candidate: upstream_ms{version="candidate"}
            window: 10s
            minSamples: 5
            intervalTime: 3s
            intervalLimit: 100
`))
	// Latency for both arms is identical, so the final compare execution
	// passes — but its 3s timer means it has at most one (possibly
	// data-less) execution before the gate concludes.
	now := time.Now()
	for i := 0; i < 20; i++ {
		at := now.Add(time.Duration(i-20) * 100 * time.Millisecond)
		store.Append("upstream_ms", metrics.Labels{"version": "stable"}, 100+float64(i%7), at)
		store.Append("upstream_ms", metrics.Labels{"version": "candidate"}, 100+float64(i%7), at)
	}
	feeder := feedTraffic(store, 3, 0)
	defer feeder.Stop()

	eng := New()
	defer eng.Shutdown()
	start := time.Now()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "done" {
		t.Fatalf("path = %+v, want gate→done (sibling refreshed, not stale-failed)", st.Path)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v, want early conclusion", elapsed)
	}
	for _, c := range st.Checks {
		if c.Name == "latency-ab" {
			if c.Verdict == nil || c.Verdict.Decision != core.DecisionPass {
				t.Errorf("compare verdict = %+v, want refreshed pass", c.Verdict)
			}
		}
	}
}

// seqAnalyzer is a deterministic fake: Continue for n calls, then the
// given decision (sticky, like a real SPRT).
type seqAnalyzer struct {
	mu        sync.Mutex
	calls     int
	after     int
	decision  core.Decision
	concluded bool
}

func (a *seqAnalyzer) Analyze(context.Context) (core.Verdict, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls++
	if a.concluded || a.calls > a.after {
		a.concluded = true
		return core.Verdict{Decision: a.decision}, nil
	}
	return core.Verdict{Decision: core.DecisionContinue}, nil
}

func (a *seqAnalyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls, a.concluded = 0, false
}

// TestEarlyConclusionRefreshDeterministic pins the refresh semantics with
// fake analyzers: the compare sibling's only scheduled execution (at state
// entry) is inconclusive, the gate concludes pass shortly after, and the
// final-refresh execution turns the sibling's verdict into a pass — so
// the run promotes instead of failing on a stale "continue".
func TestEarlyConclusionRefreshDeterministic(t *testing.T) {
	gate := &seqAnalyzer{after: 2, decision: core.DecisionPass}
	sibling := &seqAnalyzer{after: 1, decision: core.DecisionPass} // Continue on call 1 only
	s := &core.Strategy{
		Name:     "refresh-deterministic",
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "gate",
			Finals: []string{"done", "rollback"},
			States: []core.State{
				{
					ID:       "gate",
					Duration: 10 * time.Second,
					Checks: []core.Check{
						{
							Name: "gate", Kind: core.SequentialCheck, Analyze: gate,
							Interval: 2 * time.Millisecond, Executions: 1000,
						},
						{
							// One execution at state entry, then a 1h timer
							// that never fires again before the gate concludes.
							Name: "sibling", Kind: core.CompareCheck, Analyze: sibling,
							Interval: time.Hour, Executions: 2,
						},
					},
					Thresholds:  []int{1},
					Transitions: []string{"rollback", "done"},
					Routing:     routeTo(90, 10),
				},
				{ID: "done", Routing: routeTo(0, 100)},
				{ID: "rollback", Routing: routeTo(100, 0)},
			},
		},
	}
	eng := New()
	defer eng.Shutdown()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "done" {
		t.Fatalf("path = %+v, want gate→done via refreshed sibling verdict", st.Path)
	}
}

// TestSequentialGateFailsToFallback drives the gate with heavy errors: the
// SPRT accepts H1 and, because the check has a fallback, the run jumps
// straight to it with cause "sequential".
func TestSequentialGateFailsToFallback(t *testing.T) {
	store := metrics.NewStore()
	s := compileWithStore(t, store, verdictStrategyYAML("seq-early-fail", `
        - sequential:
            name: ab-gate
            provider: prom
            errors: request_errors_total{version="candidate"}
            total: requests_total{version="candidate"}
            p0: 0.02
            p1: 0.20
            intervalTime: 20ms
            intervalLimit: 400
            fallback: rollback
`))
	feeder := feedTraffic(store, 3, 1.2) // 40% errors: far above p1
	defer feeder.Stop()

	eng := New()
	defer eng.Shutdown()
	start := time.Now()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if time.Since(start) > 5*time.Second {
		t.Errorf("run took %v, want early conclusion", time.Since(start))
	}
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "rollback" || st.Path[0].Cause != "sequential" {
		t.Fatalf("path = %+v, want gate→rollback with cause sequential", st.Path)
	}
}

// TestBurnRateRollsBackUnderErrorLoad is the second acceptance scenario:
// injected error load trips the multi-window burn-rate guard and the run
// rolls back automatically, long before the state timer.
func TestBurnRateRollsBackUnderErrorLoad(t *testing.T) {
	store := metrics.NewStore()
	s := compileWithStore(t, store, verdictStrategyYAML("burnrate-rollback", `
        - burnrate:
            name: slo-guard
            provider: prom
            errors: request_errors_total{version="candidate"}
            total: requests_total{version="candidate"}
            slo: 99
            shortWindow: 100ms
            longWindow: 400ms
            factor: 5
            intervalTime: 20ms
            intervalLimit: 400
            fallback: rollback
`))
	feeder := feedTraffic(store, 4, 2) // 50% errors: burn ≈ 50× the budget
	defer feeder.Stop()

	eng := New()
	defer eng.Shutdown()
	events, cancel := eng.Subscribe(1024)
	defer cancel()

	start := time.Now()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if time.Since(start) > 5*time.Second {
		t.Errorf("rollback took %v, want early burn-rate interrupt", time.Since(start))
	}
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "rollback" || st.Path[0].Cause != "burnrate" {
		t.Fatalf("path = %+v, want gate→rollback with cause burnrate", st.Path)
	}

	var sawTrigger bool
	deadline := time.After(5 * time.Second)
	for !sawTrigger {
		select {
		case ev := <-events:
			if ev.Type == EventBurnRateTriggered {
				sawTrigger = true
				if ev.Check != "slo-guard" || ev.Verdict == nil ||
					ev.Verdict.Decision != core.DecisionFail {
					t.Errorf("burnrate_triggered event = %+v", ev)
				}
				if len(ev.Verdict.Windows) != 2 || ev.Verdict.Windows[0].Value < 5 {
					t.Errorf("verdict windows = %+v, want short window burning ≥ 5×",
						ev.Verdict.Windows)
				}
			}
		case <-deadline:
			t.Fatal("no burnrate_triggered event")
		}
	}
}

// TestErrNoDataPropagatesIntoVerdict runs a compare check against an empty
// store: every execution is inconclusive, the no-data error surfaces in
// the check's Verdict, and the default onInconclusive: fail sends the run
// to the failure path.
func TestErrNoDataPropagatesIntoVerdict(t *testing.T) {
	store := metrics.NewStore()
	yaml := strings.Replace(verdictStrategyYAML("nodata-compare", `
        - compare:
            name: latency-ab
            provider: prom
            baseline: response_ms{version="stable"}
            candidate: response_ms{version="candidate"}
            window: 1s
            intervalTime: 10ms
            intervalLimit: 3
`), "duration: 10s", "duration: 60ms", 1)
	s := compileWithStore(t, store, yaml)

	eng := New()
	defer eng.Shutdown()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if len(st.Path) != 1 || st.Path[0].To != "rollback" {
		t.Fatalf("path = %+v, want gate→rollback (inconclusive defaults to fail)", st.Path)
	}
	if len(st.Checks) != 1 {
		t.Fatalf("checks = %+v", st.Checks)
	}
	c := st.Checks[0]
	if c.Kind != "compare" || c.Inconclusive == 0 || c.Successes != 0 {
		t.Errorf("check status = %+v, want all executions inconclusive", c)
	}
	if c.Verdict == nil || c.Verdict.Decision != core.DecisionContinue {
		t.Fatalf("verdict = %+v, want continue", c.Verdict)
	}
	if !strings.Contains(c.Verdict.Err, "no data") {
		t.Errorf("verdict err = %q, want ErrNoData propagated", c.Verdict.Err)
	}
	if !strings.Contains(c.LastError, "no data") {
		t.Errorf("lastError = %q, want no-data note", c.LastError)
	}
}

// TestInconclusivePassPromotes flips onInconclusive to pass: the same
// no-data compare check now lets the canary proceed.
func TestInconclusivePassPromotes(t *testing.T) {
	store := metrics.NewStore()
	yaml := strings.Replace(verdictStrategyYAML("nodata-pass", `
        - compare:
            name: latency-ab
            provider: prom
            baseline: response_ms{version="stable"}
            candidate: response_ms{version="candidate"}
            window: 1s
            intervalTime: 10ms
            intervalLimit: 3
            onInconclusive: pass
`), "duration: 10s", "duration: 60ms", 1)
	s := compileWithStore(t, store, yaml)

	eng := New()
	defer eng.Shutdown()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if len(st.Path) != 1 || st.Path[0].To != "done" {
		t.Fatalf("path = %+v, want gate→done under onInconclusive: pass", st.Path)
	}
}

// TestSequentialAnalyzerResetsOnReentry pins the ResettableAnalyzer
// contract at the engine level: a state re-entered via a self-transition
// restarts the SPRT from zero evidence instead of reusing stale evidence.
func TestSequentialAnalyzerResetsOnReentry(t *testing.T) {
	var mu sync.Mutex
	resets := 0
	analyzer := &countingResettable{onReset: func() {
		mu.Lock()
		resets++
		mu.Unlock()
	}}
	s := &core.Strategy{
		Name:     "reset-on-reentry",
		Services: twoVersionServices(),
		Automaton: core.Automaton{
			Start:  "probe",
			Finals: []string{"done"},
			States: []core.State{
				{
					ID: "probe",
					Checks: []core.Check{{
						Name:             "gate",
						Kind:             core.SequentialCheck,
						Analyze:          analyzer,
						Interval:         time.Millisecond,
						Executions:       2,
						InconclusivePass: false,
					}},
					Thresholds:  []int{0},
					Transitions: []string{"probe", "done"}, // ≤ 0 re-enters
					Routing:     routeTo(95, 5),
				},
				{ID: "done", Routing: routeTo(0, 100)},
			},
		},
	}
	eng := New()
	defer eng.Shutdown()
	run, err := eng.Enact(s)
	if err != nil {
		t.Fatalf("Enact: %v", err)
	}
	st := waitDone(t, run)
	if st.State != RunCompleted {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	mu.Lock()
	defer mu.Unlock()
	// The analyzer passes from its third execution on: the first pass
	// through the state stays inconclusive (outcome 0 → re-enter), the
	// second passes. Each entry must have reset the analyzer.
	if resets < 2 {
		t.Errorf("resets = %d, want one per state entry (≥ 2)", resets)
	}
}

// TestCancelledAnalysisDiscarded pins the teardown semantics the live
// stack exposed: an analysis still in flight when the state ends (its
// context cancelled mid-query) must not overwrite the check's last real
// verdict with an inconclusive one.
func TestCancelledAnalysisDiscarded(t *testing.T) {
	eng := New()
	defer eng.Shutdown()
	r := &Run{engine: eng, strategy: &core.Strategy{Name: "cancel-test"}}

	blocked := core.AnalyzerFunc(func(ctx context.Context) (core.Verdict, error) {
		<-ctx.Done() // the query outlives the state
		return core.Verdict{Decision: core.DecisionContinue, Err: ctx.Err().Error()}, nil
	})
	check := &core.Check{Name: "g", Kind: core.CompareCheck, Analyze: blocked}
	cr := newCheckRunner(r, check, make(chan interruptMsg, 1))
	cr.lastVerdict = core.Verdict{Decision: core.DecisionPass}
	cr.executions, cr.successes = 1, 1

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	cr.executeOnce(ctx)

	st := cr.snapshot()
	if st.Executions != 1 || st.Inconclusive != 0 {
		t.Errorf("cancelled execution tallied: %+v", st)
	}
	if st.Verdict == nil || st.Verdict.Decision != core.DecisionPass {
		t.Errorf("verdict overwritten by cancelled execution: %+v", st.Verdict)
	}
	if out, err := cr.mappedOutcome(); err != nil || out != 1 {
		t.Errorf("mappedOutcome = %d, %v; want 1 (the real verdict)", out, err)
	}
}

// countingResettable is a test analyzer: inconclusive twice, then passing.
type countingResettable struct {
	mu      sync.Mutex
	calls   int
	onReset func()
}

func (c *countingResettable) Analyze(context.Context) (core.Verdict, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls <= 2 {
		return core.Verdict{Decision: core.DecisionContinue}, nil
	}
	return core.Verdict{Decision: core.DecisionPass}, nil
}

func (c *countingResettable) Reset() {
	c.onReset()
}
